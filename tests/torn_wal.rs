//! Torn-write corpus: take a small but representative WAL (DDL, AST
//! registration, inserts, maintenance, an epoch bump) and a snapshot, then
//! mutilate them at **every byte offset** — truncations and bit flips —
//! and recover from each mutant. The contract: recovery either succeeds
//! with a consistent prefix of the original history, or fails with a typed
//! [`PersistError`]/[`RecoverError`]; it never panics and never serves a
//! state that disagrees with itself.
//!
//! Fail-point state is process-global elsewhere in the suite, so these
//! tests take the same lock even though they arm nothing themselves.

#![allow(clippy::unwrap_used, clippy::expect_used)]
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use sumtab::persist::{snapshot, wal, PersistError};
use sumtab::{sort_rows, DurableOptions, DurableSession, RecoverError};

static LOCK: Mutex<()> = Mutex::new(());

fn serialize() -> MutexGuard<'static, ()> {
    match LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "sumtab-torn-{}-{}-{}",
        std::process::id(),
        tag,
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

const PROBE: &str = "select k, sum(v) as sv from t group by k";

/// Build a golden durability directory covering every record kind, with
/// `snapshot_every: 0` so the whole history lives in the WAL.
fn golden_dir(tag: &str) -> (PathBuf, usize) {
    let dir = tmp_dir(tag);
    let mut s = DurableSession::open_with(
        &dir,
        DurableOptions {
            snapshot_every: 0,
            ..DurableOptions::default()
        },
    )
    .unwrap();
    s.run_script(
        "create table t (k int not null, v int not null);
         insert into t values (1, 10);
         create summary table st as (select k, sum(v) as sv, count(*) as c from t group by k);
         insert into t values (2, 20);
         insert into t values (1, 5);",
    )
    .unwrap();
    s.invalidate("t");
    s.refresh("st").unwrap();
    let rows = s.session().session.db.row_count("t");
    drop(s);
    (dir, rows)
}

/// Open a scratch dir holding `wal_bytes` as its entire WAL (recovery
/// *writes* — truncating torn tails, appending — so every mutant needs a
/// fresh directory) and check the recovery contract.
fn check_mutant(scratch: &Path, wal_bytes: &[u8], golden_rows: usize, what: &str) {
    std::fs::create_dir_all(scratch).unwrap();
    std::fs::write(scratch.join("wal.bin"), wal_bytes).unwrap();
    // The call must return, not panic; catch_unwind would mask aborts and
    // is redundant — a panic fails the test on its own.
    match DurableSession::open(scratch) {
        Ok(mut s) => {
            let recovered = s.session().session.db.row_count("t");
            assert!(
                recovered <= golden_rows,
                "{what}: recovered {recovered} rows from a prefix of {golden_rows}"
            );
            // Consistency of whatever prefix survived: if the AST came
            // back, it must agree exactly with the base tables.
            if !s.session().asts().is_empty() && recovered > 0 {
                let with = s.query(PROBE).unwrap();
                let without = s.query_no_rewrite(PROBE).unwrap();
                assert_eq!(
                    sort_rows(with.rows),
                    sort_rows(without.rows),
                    "{what}: recovered AST diverges from base data"
                );
            }
            // The tail (if any) was truncated: recovering the recovered
            // state is clean and identical.
            let torn = s.recovery_report().torn_tail.clone();
            drop(s);
            let s2 = DurableSession::open(scratch).unwrap();
            assert!(
                s2.recovery_report().torn_tail.is_none(),
                "{what}: first recovery (torn: {torn:?}) left a torn tail behind"
            );
            assert_eq!(
                s2.session().session.db.row_count("t"),
                recovered,
                "{what}: double recovery diverged"
            );
        }
        Err(e) => {
            // Typed, attributable failure — header corruption and the like.
            assert!(
                matches!(
                    &e,
                    RecoverError::Storage(PersistError::Corrupt { .. })
                        | RecoverError::Storage(PersistError::Io { .. })
                ),
                "{what}: recovery error must be typed storage corruption, got {e}"
            );
        }
    }
    std::fs::remove_dir_all(scratch).ok();
}

#[test]
fn wal_truncated_at_every_offset_recovers_or_fails_typed() {
    let _serial = serialize();
    let (dir, golden_rows) = golden_dir("trunc-golden");
    let bytes = std::fs::read(dir.join("wal.bin")).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert!(
        bytes.len() > wal::WAL_MAGIC.len(),
        "golden wal is non-trivial"
    );
    let scratch = tmp_dir("trunc");
    for cut in 0..bytes.len() {
        check_mutant(
            &scratch,
            &bytes[..cut],
            golden_rows,
            &format!("truncate at {cut}/{}", bytes.len()),
        );
    }
    // The unmutilated log recovers everything, proving the corpus actually
    // exercises shorter prefixes against a full baseline.
    check_mutant(&scratch, &bytes, golden_rows, "full log");
}

#[test]
fn wal_bitflip_at_every_offset_recovers_or_fails_typed() {
    let _serial = serialize();
    let (dir, golden_rows) = golden_dir("flip-golden");
    let bytes = std::fs::read(dir.join("wal.bin")).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    let scratch = tmp_dir("flip");
    for i in 0..bytes.len() {
        let mut mutant = bytes.clone();
        mutant[i] ^= 0x40;
        check_mutant(
            &scratch,
            &mutant,
            golden_rows,
            &format!("flip byte {i}/{}", bytes.len()),
        );
    }
}

/// Flipping any byte of a snapshot must yield a typed corruption error
/// from [`snapshot::read_snapshot`] — never a panic, never a half-decoded
/// state — and recovery on top of it must refuse with the same typed error
/// rather than silently starting fresh over live data.
#[test]
fn snapshot_corruption_at_every_offset_is_typed() {
    let _serial = serialize();
    let dir = tmp_dir("snap-golden");
    {
        let mut s = DurableSession::open(&dir).unwrap();
        s.run_script(
            "create table t (k int not null, v int not null);
             insert into t values (1, 10), (2, 20);
             create summary table st as (select k, sum(v) as sv, count(*) as c from t group by k);",
        )
        .unwrap();
        s.snapshot_now().unwrap();
    }
    let snap_path = dir.join(snapshot::SNAP_FILE);
    let bytes = std::fs::read(&snap_path).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    let scratch = tmp_dir("snap");
    let mut flips_rejected = 0usize;
    for i in 0..bytes.len() {
        let mut mutant = bytes.clone();
        mutant[i] ^= 0x01;
        std::fs::create_dir_all(&scratch).unwrap();
        std::fs::write(scratch.join(snapshot::SNAP_FILE), &mutant).unwrap();
        match snapshot::read_snapshot(&scratch) {
            Ok(_) => {}
            Err(PersistError::Corrupt { .. }) => flips_rejected += 1,
            Err(e) => panic!("flip byte {i}: expected Corrupt, got {e}"),
        }
        // Recovery over the corrupt snapshot refuses with the same typed
        // error instead of quietly dropping persisted state.
        match DurableSession::open(&scratch) {
            Err(RecoverError::Storage(PersistError::Corrupt { .. })) => {}
            other => panic!(
                "flip byte {i}: open over corrupt snapshot must fail typed, got {:?}",
                other.map(|_| "Ok(session)")
            ),
        }
        std::fs::remove_dir_all(&scratch).ok();
    }
    // Every single-byte flip lands inside magic, checksummed payload, or
    // the checksum itself; none may slip through.
    assert_eq!(flips_rejected, bytes.len());

    // Truncations too: every shorter prefix is typed corruption (a missing
    // file, by contrast, is a legitimate fresh start — Ok(None)).
    for cut in 0..bytes.len() {
        std::fs::create_dir_all(&scratch).unwrap();
        std::fs::write(scratch.join(snapshot::SNAP_FILE), &bytes[..cut]).unwrap();
        match snapshot::read_snapshot(&scratch) {
            Err(PersistError::Corrupt { .. }) => {}
            other => panic!("truncate at {cut}: expected Corrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&scratch).ok();
    }
    assert!(matches!(snapshot::read_snapshot(&scratch), Ok(None)));
}
