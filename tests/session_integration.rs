//! End-to-end SQL session scenarios exercising the whole stack: DDL, data
//! loading, AST materialization, transparent rewriting, ORDER BY/LIMIT,
//! and error paths.

// Tests and examples assert on fixed inputs; unwrap/expect failures are
// test failures, which is exactly what we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use sumtab::{sort_rows, SummarySession, Value};

#[test]
fn warehouse_lifecycle() {
    let mut s = SummarySession::new();
    s.run_script(
        "create table store (sid int not null, region varchar not null, primary key (sid));
         create table sales (id int not null, fsid int not null, amount double not null,
                             day date not null);
         alter table sales add foreign key (fsid) references store;
         insert into store values (1, 'west'), (2, 'west'), (3, 'east');
         insert into sales values
            (1, 1, 100.0, date '2001-01-10'),
            (2, 1, 150.0, date '2001-02-11'),
            (3, 2,  80.0, date '2001-02-15'),
            (4, 3, 200.0, date '2002-03-01'),
            (5, 3,  70.0, date '2002-07-04');",
    )
    .unwrap();
    s.run_script(
        "create summary table sales_by_store_year as (
             select fsid, year(day) as year, sum(amount) as total, count(*) as cnt
             from sales group by fsid, year(day));",
    )
    .unwrap();

    // Rejoin to the dimension + regroup to region level.
    let sql = "select region, year(day) as year, sum(amount) as total \
               from sales, store where fsid = sid group by region, year(day)";
    let res = s.query(sql).unwrap();
    assert_eq!(res.used_ast.as_deref(), Some("sales_by_store_year"));
    let plain = s.query_no_rewrite(sql).unwrap();
    assert_eq!(sort_rows(res.rows.clone()), sort_rows(plain.rows));
    assert_eq!(res.rows.len(), 2);

    // ORDER BY / LIMIT still honored on the rewritten query.
    let top = s
        .query(
            "select fsid, sum(amount) as total from sales group by fsid \
             order by total desc limit 1",
        )
        .unwrap();
    assert_eq!(top.rows, vec![vec![Value::Int(3), Value::Double(270.0)]]);
    assert_eq!(top.used_ast.as_deref(), Some("sales_by_store_year"));
}

#[test]
fn queries_outside_ast_scope_fall_back() {
    let mut s = SummarySession::new();
    s.run_script(
        "create table t (a int not null, b int not null);
         insert into t values (1, 1), (2, 4);
         create summary table st as (select a, count(*) as c from t group by a);",
    )
    .unwrap();
    // Needs column `b`, absent from the AST.
    let res = s.query("select a, sum(b) as sb from t group by a").unwrap();
    assert_eq!(res.used_ast, None);
    assert_eq!(res.rows.len(), 2);
}

#[test]
fn error_paths_are_clean() {
    let mut s = SummarySession::new();
    assert!(s.query("select x from missing").is_err());
    assert!(s
        .run_script("create summary table st as (select * from missing)")
        .is_err());
    s.run_script("create table t (a int not null)").unwrap();
    assert!(
        s.run_script("create table t (a int)").is_err(),
        "duplicate table"
    );
    assert!(s.refresh("nope").is_err());
}

#[test]
fn distinct_queries_use_group_by_bridge() {
    // SELECT DISTINCT normalizes to GROUP BY (footnote 2), so a grouping
    // AST can answer it.
    let mut s = SummarySession::new();
    s.run_script(
        "create table t (a int not null, b int not null);
         insert into t values (1, 1), (1, 2), (2, 1), (1, 1);
         create summary table st as (select a, b, count(*) as c from t group by a, b);",
    )
    .unwrap();
    let res = s.query("select distinct a from t").unwrap();
    assert_eq!(res.used_ast.as_deref(), Some("st"));
    assert_eq!(
        sort_rows(res.rows),
        vec![vec![Value::Int(1)], vec![Value::Int(2)]]
    );
}

#[test]
fn decimal_style_aggregates_preserved() {
    let mut s = SummarySession::new();
    s.run_script(
        "create table m (g int not null, x double not null);
         insert into m values (1, 0.5), (1, 0.25), (2, 1.75);
         create summary table sm as
            (select g, sum(x) as sx, count(x) as cx, min(x) as mn, max(x) as mx
             from m group by g);",
    )
    .unwrap();
    let res = s
        .query(
            "select g, sum(x) as sx, min(x) as mn, max(x) as mx, avg(x) as ax \
                from m group by g",
        )
        .unwrap();
    assert_eq!(res.used_ast.as_deref(), Some("sm"));
    let plain = s
        .query_no_rewrite(
            "select g, sum(x) as sx, min(x) as mn, max(x) as mx, avg(x) as ax \
             from m group by g",
        )
        .unwrap();
    assert_eq!(sort_rows(res.rows), sort_rows(plain.rows));
}
