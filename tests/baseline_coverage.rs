//! Coverage comparison (DESIGN.md experiment E-P2): the paper's algorithm
//! must cover strictly more of the figure workload than the syntactic
//! single-block baseline, and agree with it wherever the baseline works.

// Tests and examples assert on fixed inputs; unwrap/expect failures are
// test failures, which is exactly what we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use sumtab::datagen::workloads::FIGURES;
use sumtab::matcher::baseline::baseline_matches;
use sumtab::{RegisteredAst, Rewriter};

#[test]
fn full_matcher_dominates_the_baseline() {
    let cat = sumtab::Catalog::credit_card_sample();
    let rewriter = Rewriter::new(&cat);
    let mut ours = 0usize;
    let mut theirs = 0usize;
    for case in FIGURES {
        let ast = RegisteredAst::from_sql("b", case.ast, &cat).unwrap();
        let q =
            sumtab::build_query(&sumtab::parser::parse_query(case.query).unwrap(), &cat).unwrap();
        let full = matches!(rewriter.rewrite(&q, &ast), Ok(Some(_)));
        let base = baseline_matches(&q, &ast.graph);
        assert_eq!(full, case.matches, "{}", case.id);
        if base {
            assert!(
                full,
                "{}: baseline matched but the full matcher did not — the \
                 full matcher must dominate",
                case.id
            );
        }
        ours += usize::from(full);
        theirs += usize::from(base);
    }
    assert!(
        ours > theirs,
        "the paper's contribution is the coverage gap: ours={ours} baseline={theirs}"
    );
    // The figure suite is deliberately built from the paper's hard cases;
    // the baseline should cover none of them.
    assert_eq!(theirs, 0, "figure suite uses only post-baseline features");
}

#[test]
fn baseline_still_handles_its_own_domain() {
    // Sanity: on plain single-block column-only workloads both agree.
    let cat = sumtab::Catalog::credit_card_sample();
    let rewriter = Rewriter::new(&cat);
    let pairs = [
        (
            "select faid, count(*) as c from trans group by faid",
            "select faid, flid, count(*) as c from trans group by faid, flid",
            true,
        ),
        (
            "select faid, sum(qty) as s from trans group by faid",
            "select faid, sum(qty) as s, count(*) as c from trans group by faid",
            true,
        ),
        (
            "select faid, count(*) as c from trans group by faid",
            "select flid, count(*) as c from trans group by flid",
            false,
        ),
    ];
    for (qs, as_, expect) in pairs {
        let ast = RegisteredAst::from_sql("b", as_, &cat).unwrap();
        let q = sumtab::build_query(&sumtab::parser::parse_query(qs).unwrap(), &cat).unwrap();
        assert_eq!(baseline_matches(&q, &ast.graph), expect, "baseline: {qs}");
        if expect {
            assert!(
                matches!(rewriter.rewrite(&q, &ast), Ok(Some(_))),
                "full: {qs}"
            );
        }
    }
}
