//! Deterministic mutation-kill suite for the plan verifier
//! (`sumtab-qgm::verify` + `Program::verify`).
//!
//! Each test applies one corruption class to a known-good graph or compiled
//! program and asserts the verifier rejects it with a typed [`VerifyError`]
//! naming the *right* pass. The final tests are the acceptance side: every
//! graph in the paper workload — AST definitions, query plans, and the
//! rewrites the matcher produces for them — must verify clean, so the
//! verifier kills mutants without ever killing a legitimate plan.
//!
//! Random choices (which box/output to corrupt) come from the in-tree
//! SplitMix64 PRNG with fixed seeds: the suite is bit-for-bit deterministic.

// Tests assert on fixed inputs; unwrap/expect failures are test failures.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use sumtab::datagen::rng::SplitMix64;
use sumtab::datagen::workloads::FIGURES;
use sumtab::engine::{Program, Resolved};
use sumtab::qgm::verify::{
    verify_backing_projection, verify_plan, verify_plan_structure, verify_schema_preservation,
    verify_structure, verify_types, VerifyPass,
};
use sumtab::qgm::{
    build_query, AggCall, AggFunc, BinOp, BoxId, BoxKind, GraphId, QgmGraph, QuantId, ScalarExpr,
};
use sumtab::{parser, Catalog, RegisteredAst, Rewriter, Value};

fn cat() -> Catalog {
    Catalog::credit_card_sample()
}

fn built(sql: &str) -> QgmGraph {
    build_query(&parser::parse_query(sql).unwrap(), &cat()).unwrap()
}

/// A join + group-by graph with plenty of boxes to corrupt.
fn rich() -> QgmGraph {
    built("select state, min(city) as m, sum(qty) as s from trans, loc where flid = lid group by state")
}

fn expect_pass(e: sumtab::qgm::VerifyError, pass: VerifyPass, frag: &str) {
    assert_eq!(e.pass, pass, "wrong pass for `{e}`");
    assert!(
        e.reason.contains(frag),
        "expected reason containing `{frag}`, got `{e}`"
    );
}

// ---------------------------------------------------------------------------
// Pass 1: structural corruptions
// ---------------------------------------------------------------------------

#[test]
fn kill_dangling_root() {
    let mut g = rich();
    g.root = BoxId(999);
    let e = verify_plan(&g, &cat()).unwrap_err();
    expect_pass(e, VerifyPass::Structural, "out of range");
}

#[test]
fn kill_dangling_quantifier_input() {
    let mut g = rich();
    let mut rng = SplitMix64::new(0xDEAD_0001);
    let qi = rng.gen_index(g.quants.len());
    g.quants[qi].input = BoxId(4_000_000);
    let e = verify_plan(&g, &cat()).unwrap_err();
    expect_pass(e, VerifyPass::Structural, "dangling");
}

#[test]
fn kill_cycle() {
    // `tid` is ordinal 0, so re-pointing the child edge at the root keeps
    // every ordinal in range — only the acyclicity check can fire.
    let mut g = built("select tid from trans");
    let qidx = g.boxed(g.root).quants[0].idx as usize;
    g.quants[qidx].input = g.root;
    let e = verify_plan(&g, &cat()).unwrap_err();
    expect_pass(e, VerifyPass::Structural, "cycle");
}

#[test]
fn kill_orphan_box() {
    let mut g = rich();
    g.add_box(BoxKind::BaseTable {
        table: "pgroup".into(),
    });
    let e = verify_plan(&g, &cat()).unwrap_err();
    expect_pass(e, VerifyPass::Structural, "orphan");
}

#[test]
fn kill_foreign_quantifier_reference() {
    let mut g = rich();
    let alien = QuantId {
        graph: GraphId(9_999_999),
        idx: 0,
    };
    let root = g.root;
    g.boxed_mut(root).outputs[0].expr = ScalarExpr::col(alien, 0);
    let e = verify_plan(&g, &cat()).unwrap_err();
    expect_pass(e, VerifyPass::Structural, "foreign quantifier");
}

#[test]
fn kill_unowned_quantifier_listing() {
    let mut g = rich();
    // Graft some other box's quantifier onto the root's list.
    let stolen = g
        .boxes
        .iter()
        .enumerate()
        .find(|(i, b)| BoxId(*i as u32) != g.root && !b.quants.is_empty())
        .map(|(_, b)| b.quants[0])
        .unwrap();
    let root = g.root;
    g.boxed_mut(root).quants.push(stolen);
    let e = verify_plan(&g, &cat()).unwrap_err();
    expect_pass(e, VerifyPass::Structural, "does not own");
}

#[test]
fn kill_ordinal_out_of_range_randomized() {
    // Across seeds, corrupt a random output of a random quantifier-bearing
    // box; the structural pass must catch every mutant.
    for seed in 0..16u64 {
        let mut rng = SplitMix64::new(0xC0FFEE ^ seed);
        let mut g = rich();
        let candidates: Vec<BoxId> = (0..g.boxes.len() as u32)
            .map(BoxId)
            .filter(|&b| !g.boxed(b).quants.is_empty() && !g.boxed(b).outputs.is_empty())
            .collect();
        let b = *rng.choose(&candidates);
        let q = g.boxed(b).quants[rng.gen_index(g.boxed(b).quants.len())];
        let oi = rng.gen_index(g.boxed(b).outputs.len());
        g.boxed_mut(b).outputs[oi].expr = ScalarExpr::col(q, 100 + rng.gen_index(100));
        let e =
            verify_plan(&g, &cat()).expect_err(&format!("seed {seed}: mutant must be rejected"));
        // A group-by output mutated this way trips either the ordinal check
        // or the grouping-item check — both structural.
        assert_eq!(e.pass, VerifyPass::Structural, "seed {seed}: `{e}`");
    }
}

#[test]
fn kill_non_canonical_grouping_sets() {
    let cube = || {
        built(
            "select flid, year(date) as y, count(*) as c from trans \
             group by grouping sets ((flid, year(date)), (flid), ())",
        )
    };
    let gb_of = |g: &QgmGraph| {
        (0..g.boxes.len() as u32)
            .map(BoxId)
            .find(|&b| g.boxed(b).is_group_by())
            .unwrap()
    };
    // Unsorted set.
    let mut g = cube();
    let b = gb_of(&g);
    if let BoxKind::GroupBy(gb) = &mut g.boxed_mut(b).kind {
        gb.sets[0] = vec![1, 0];
    }
    expect_pass(
        verify_plan(&g, &cat()).unwrap_err(),
        VerifyPass::Structural,
        "not sorted",
    );
    // Duplicate set.
    let mut g = cube();
    let b = gb_of(&g);
    if let BoxKind::GroupBy(gb) = &mut g.boxed_mut(b).kind {
        let dup = gb.sets[0].clone();
        gb.sets.push(dup);
    }
    expect_pass(
        verify_plan(&g, &cat()).unwrap_err(),
        VerifyPass::Structural,
        "duplicate",
    );
    // Set index out of range.
    let mut g = cube();
    let b = gb_of(&g);
    if let BoxKind::GroupBy(gb) = &mut g.boxed_mut(b).kind {
        gb.sets.push(vec![97]);
    }
    expect_pass(
        verify_plan(&g, &cat()).unwrap_err(),
        VerifyPass::Structural,
        "out of range",
    );
}

#[test]
fn kill_aggregate_in_select_output() {
    let mut g = rich();
    let root = g.root;
    assert!(g.boxed(root).is_select());
    g.boxed_mut(root).outputs[0].expr = ScalarExpr::Agg(AggCall {
        func: AggFunc::Count,
        arg: None,
        distinct: false,
    });
    let e = verify_plan(&g, &cat()).unwrap_err();
    expect_pass(e, VerifyPass::Structural, "aggregate");
}

// ---------------------------------------------------------------------------
// Pass 2: typing corruptions
// ---------------------------------------------------------------------------

#[test]
fn kill_non_boolean_predicate() {
    let mut g = built("select tid from trans where qty > 0");
    let sel = (0..g.boxes.len() as u32)
        .map(BoxId)
        .find(|&b| {
            g.boxed(b)
                .as_select()
                .is_some_and(|s| !s.predicates.is_empty())
        })
        .unwrap();
    if let BoxKind::Select(s) = &mut g.boxed_mut(sel).kind {
        s.predicates.push(ScalarExpr::Lit(Value::Int(7)));
    }
    // Structure is still fine — only the typing pass can reject this.
    verify_plan_structure(&g).unwrap();
    let e = verify_types(&g, &cat()).unwrap_err();
    expect_pass(e, VerifyPass::Typing, "expected Bool");
}

#[test]
fn kill_sum_over_varchar() {
    // Flip `min(city)` (fine) into `sum(city)` (a type clash).
    let mut g = rich();
    let gb = (0..g.boxes.len() as u32)
        .map(BoxId)
        .find(|&b| g.boxed(b).is_group_by())
        .unwrap();
    let mut flipped = false;
    for oc in &mut g.boxed_mut(gb).outputs {
        if let ScalarExpr::Agg(a) = &mut oc.expr {
            if a.func == AggFunc::Min {
                a.func = AggFunc::Sum;
                flipped = true;
            }
        }
    }
    assert!(flipped, "fixture must contain a MIN aggregate");
    verify_plan_structure(&g).unwrap();
    let e = verify_types(&g, &cat()).unwrap_err();
    expect_pass(e, VerifyPass::Typing, "non-numeric");
}

#[test]
fn kill_base_table_catalog_mismatch() {
    let mut g = rich();
    let mut rng = SplitMix64::new(0xBEEF);
    let bases: Vec<BoxId> = (0..g.boxes.len() as u32)
        .map(BoxId)
        .filter(|&b| matches!(g.boxed(b).kind, BoxKind::BaseTable { .. }))
        .collect();
    let b = *rng.choose(&bases);
    let oi = rng.gen_index(g.boxed(b).outputs.len());
    g.boxed_mut(b).outputs[oi].name = "no_such_column".into();
    verify_plan_structure(&g).unwrap();
    let e = verify_types(&g, &cat()).unwrap_err();
    expect_pass(e, VerifyPass::Typing, "no_such_column");
}

// ---------------------------------------------------------------------------
// Pass 3: rewrite-soundness corruptions
// ---------------------------------------------------------------------------

#[test]
fn kill_dropped_output_column() {
    let g = built("select faid, count(*) as c from trans group by faid");
    let mut rw = g.clone();
    let root = rw.root;
    rw.boxed_mut(root).outputs.pop();
    let e = verify_schema_preservation(&g, &rw, &cat()).unwrap_err();
    expect_pass(e, VerifyPass::Schema, "arity");
}

#[test]
fn kill_renamed_output_column() {
    let g = built("select faid, count(*) as c from trans group by faid");
    let mut rw = g.clone();
    let root = rw.root;
    rw.boxed_mut(root).outputs[1].name = "cnt".into();
    let e = verify_schema_preservation(&g, &rw, &cat()).unwrap_err();
    expect_pass(e, VerifyPass::Schema, "renamed");
}

#[test]
fn kill_output_type_clash() {
    let g = built("select faid, count(*) as c from trans group by faid");
    let clash = built("select faid, date as c from trans");
    let e = verify_schema_preservation(&g, &clash, &cat()).unwrap_err();
    expect_pass(e, VerifyPass::Schema, "type");
}

#[test]
fn kill_narrowed_nullability() {
    // A grand-total SUM is nullable (empty input); COUNT(*) is not. A
    // rewrite replacing the former with the latter invents non-nullability.
    let orig = built("select sum(qty) as s from trans");
    let narrower = built("select count(*) as s from trans");
    let e = verify_schema_preservation(&orig, &narrower, &cat()).unwrap_err();
    expect_pass(e, VerifyPass::Schema, "nullability");
}

#[test]
fn kill_rewrite_reading_unknown_ast_column() {
    // A rewrite over AST `a(k, total)` must not read a third column or
    // rename what it reads.
    let mut base = QgmGraph::new();
    let t = base.add_box(BoxKind::BaseTable { table: "a".into() });
    base.boxed_mut(t).outputs = vec![
        sumtab::qgm::OutputCol {
            name: "k".into(),
            expr: ScalarExpr::BaseCol(0),
        },
        sumtab::qgm::OutputCol {
            name: "phantom".into(),
            expr: ScalarExpr::BaseCol(2),
        },
    ];
    let s = base.add_box(BoxKind::Select(sumtab::qgm::SelectBox::default()));
    let q = base.add_quant(s, t, sumtab::qgm::QuantKind::Foreach, "a");
    base.boxed_mut(s).outputs = vec![sumtab::qgm::OutputCol {
        name: "k".into(),
        expr: ScalarExpr::col(q, 0),
    }];
    base.root = s;
    let e = verify_backing_projection(&base, "a", &["k".into(), "total".into()]).unwrap_err();
    expect_pass(e, VerifyPass::Schema, "exposes only");
}

// ---------------------------------------------------------------------------
// Pass 4: program corruptions
// ---------------------------------------------------------------------------

fn compiled() -> Program {
    let qid = QuantId {
        graph: GraphId(0),
        idx: 0,
    };
    let e = ScalarExpr::bin(
        BinOp::And,
        ScalarExpr::bin(
            BinOp::Gt,
            ScalarExpr::col(qid, 0),
            ScalarExpr::Lit(Value::Int(1)),
        ),
        ScalarExpr::bin(
            BinOp::Lt,
            ScalarExpr::col(qid, 1),
            ScalarExpr::Lit(Value::Int(9)),
        ),
    );
    Program::compile(&e, &mut |c| Ok(Resolved::Slot(c.ordinal))).unwrap()
}

#[test]
fn kill_bad_jump_targets() {
    compiled().verify(2).expect("pristine program verifies");
    let mut p = compiled();
    assert!(
        p.corrupt_retarget_jumps(0) > 0,
        "fixture must contain jumps"
    );
    assert!(p.verify(2).unwrap_err().contains("backward"));
    let mut p = compiled();
    p.corrupt_retarget_jumps(60_000);
    assert!(p.verify(2).unwrap_err().contains("out of bounds"));
}

#[test]
fn kill_unbalanced_stack() {
    let mut p = compiled();
    p.corrupt_pop_op();
    assert!(p.verify(2).is_err(), "truncated program must not verify");
    let mut p = compiled();
    p.corrupt_push_extra();
    assert!(p.verify(2).unwrap_err().contains("values"));
}

#[test]
fn kill_slot_outside_input_arity() {
    // The same program is valid at arity 2 and a verifier error at arity 1:
    // slot indices are checked against the declared input width.
    compiled().verify(2).unwrap();
    assert!(compiled().verify(1).unwrap_err().contains("slot"));
    assert!(compiled().verify(0).unwrap_err().contains("slot"));
}

// ---------------------------------------------------------------------------
// Acceptance: the whole paper workload verifies clean
// ---------------------------------------------------------------------------

#[test]
fn paper_workload_verifies_clean() {
    let cat = cat();
    let rewriter = Rewriter::new(&cat);
    for case in FIGURES {
        let ast = RegisteredAst::from_sql("ast_v", case.ast, &cat)
            .unwrap_or_else(|e| panic!("{}: {e}", case.id));
        verify_plan(&ast.graph, &cat).unwrap_or_else(|e| panic!("{} AST: {e}", case.id));
        let q = built(case.query);
        verify_plan(&q, &cat).unwrap_or_else(|e| panic!("{} query: {e}", case.id));
        let Some(rw) = rewriter
            .rewrite(&q, &ast)
            .unwrap_or_else(|e| panic!("{}: {e}", case.id))
        else {
            continue;
        };
        verify_plan(&rw.graph, &cat).unwrap_or_else(|e| panic!("{} rewrite: {e}", case.id));
        verify_schema_preservation(&q, &rw.graph, &cat)
            .unwrap_or_else(|e| panic!("{} schema: {e}", case.id));
        verify_backing_projection(&rw.graph, "ast_v", &ast.backing_columns())
            .unwrap_or_else(|e| panic!("{} projection: {e}", case.id));
    }
}

#[test]
fn permissive_structure_tolerates_matcher_shapes_but_plans_do_not() {
    // A SubsumerRef leaf is legal in matcher-internal graphs (permissive
    // mode) and must be rejected from final plans (strict mode).
    let mut g = QgmGraph::new();
    let donor = built("select tid from trans");
    let sr = g.add_box(BoxKind::SubsumerRef {
        graph: donor.id,
        target: donor.root,
    });
    g.boxed_mut(sr).outputs.push(sumtab::qgm::OutputCol {
        name: "x".into(),
        expr: ScalarExpr::BaseCol(0),
    });
    let s = g.add_box(BoxKind::Select(sumtab::qgm::SelectBox::default()));
    let q = g.add_quant(s, sr, sumtab::qgm::QuantKind::Foreach, "sr");
    g.boxed_mut(s).outputs = vec![sumtab::qgm::OutputCol {
        name: "x".into(),
        expr: ScalarExpr::col(q, 0),
    }];
    g.root = s;
    verify_structure(&g).expect("permissive mode tolerates SubsumerRef");
    let e = verify_plan_structure(&g).unwrap_err();
    expect_pass(e, VerifyPass::Structural, "SubsumerRef");
}
