//! Property tests for incremental summary maintenance and the
//! maintainability analyzer.
//!
//! Two halves:
//!
//! 1. **Soundness** — seeded random scripts of mixed INSERT/DELETE/UPDATE
//!    statements against a mix of summary-table shapes (visible counter,
//!    hidden counter, MIN/MAX, joined dimension). After every statement the
//!    session's answer to each probe query must be byte-identical to a
//!    from-scratch recomputation over the base tables. The recompute-
//!    equivalence runtime assertion is active throughout (debug builds), so
//!    any unsound incremental merge degrades loudly to refresh — and any
//!    *divergence* that survives fails the probe comparison here.
//!
//! 2. **Mutation kill** — a suite of non-maintainable definition classes
//!    (HAVING, grand total, DISTINCT aggregates, scalar subquery, self-join,
//!    nullable SUM under delete, expression outputs, ...): each must be
//!    rejected with a *typed* obstruction that names the offending box.
//!
//! Seeds are deterministic but overridable via `SUMTAB_MAINTAIN_SEED`.

#![allow(clippy::unwrap_used, clippy::expect_used)]
use sumtab::qgm::{
    analyze_maintainability, build_query, MaintStrategy, ObstructionKind,
};
use sumtab::{sort_rows, Catalog, Row, SummarySession};
use sumtab_parser::parse_query;

/// SplitMix64 — tiny, deterministic, good enough for workload shuffling.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn base_seed() -> u64 {
    match std::env::var("SUMTAB_MAINTAIN_SEED") {
        Ok(s) => {
            let t = s.trim().trim_start_matches("0x");
            u64::from_str_radix(t, 16)
                .or_else(|_| t.parse())
                .expect("SUMTAB_MAINTAIN_SEED must be a (hex or decimal) u64")
        }
        Err(_) => 0x3a1e_2026_0807_0002,
    }
}

/// Fact table with a unique id (so deletes/updates can target single rows),
/// a nullable measure (forces the insert-delta downgrade on SUM(w)), a
/// dimension join, and summaries covering every maintenance strategy.
const SETUP: &str = "
    create table dim (d int not null, grp int not null);
    create table f (id int not null, d int not null, v int not null, w int);
    insert into dim values (0, 0), (1, 0), (2, 1), (3, 1);
    create summary table s_counting as
      (select d, sum(v) as sv, count(*) as c from f group by d);
    create summary table s_hidden as
      (select d, sum(v) as sv from f group by d);
    create summary table s_extrema as
      (select d, min(v) as mn, max(v) as mx, count(*) as c from f group by d);
    create summary table s_nullable as
      (select d, sum(w) as sw, count(*) as c from f group by d);
    create summary table s_joined as
      (select grp, sum(v) as sv, count(*) as c from f, dim where f.d = dim.d group by grp);
";

const PROBES: &[&str] = &[
    "select d, sum(v) as sv, count(*) as c from f group by d",
    "select d, min(v) as mn, max(v) as mx from f group by d",
    "select d, sum(w) as sw from f group by d",
    "select grp, sum(v) as sv from f, dim where f.d = dim.d group by grp",
];

const SUMMARIES: &[&str] = &["s_counting", "s_hidden", "s_extrema", "s_nullable", "s_joined"];

/// Generate one random mutation statement. Ids are dense, so delete/update
/// targets frequently hit live rows (and sometimes miss — the 0-row paths
/// must hold too).
fn gen_stmt(rng: &mut Rng, next_id: &mut i64) -> String {
    match rng.below(10) {
        0..=4 => {
            *next_id += 1;
            let d = rng.below(4);
            let v = rng.below(50);
            let w = if rng.below(4) == 0 {
                "null".to_string()
            } else {
                rng.below(50).to_string()
            };
            format!("insert into f values ({next_id}, {d}, {v}, {w})")
        }
        5..=6 => {
            let id = 1 + rng.below((*next_id).max(1) as u64);
            format!("delete from f where id = {id}")
        }
        7 => {
            // Range delete: multi-row victims in one statement.
            let v = rng.below(50);
            format!("delete from f where v < {v}")
        }
        8 => {
            let id = 1 + rng.below((*next_id).max(1) as u64);
            let v = rng.below(50);
            format!("update f set v = {v} where id = {id}")
        }
        _ => {
            // Multi-row update touching the grouping column: rows migrate
            // between groups (delete from one, insert into another).
            let from = rng.below(4);
            let to = rng.below(4);
            format!("update f set d = {to} where d = {from}")
        }
    }
}

/// The ground truth: each probe recomputed from base tables only.
fn recompute(s: &mut SummarySession, probe: &str) -> Vec<Row> {
    sort_rows(s.query_no_rewrite(probe).unwrap().rows)
}

/// What the session answers (transparently rewritten when a summary is
/// fresh).
fn answer(s: &mut SummarySession, probe: &str) -> Vec<Row> {
    sort_rows(s.query(probe).unwrap().rows)
}

#[test]
fn random_mixed_scripts_stay_byte_identical_to_recompute() {
    let base = base_seed();
    for case in 0..3u64 {
        let seed = base ^ case.wrapping_mul(0xA076_1D64_78BD_642F);
        let mut rng = Rng(seed);
        let mut s = SummarySession::new();
        s.run_script(SETUP).unwrap();
        let mut next_id = 0i64;
        for step in 0..60 {
            let stmt = gen_stmt(&mut rng, &mut next_id);
            s.run_script(&stmt).unwrap();
            for probe in PROBES {
                let expected = recompute(&mut s, probe);
                let got = answer(&mut s, probe);
                assert_eq!(
                    got, expected,
                    "seed {seed:#x} step {step}: `{stmt}` diverged on `{probe}`"
                );
            }
        }
        // Every summary must still be fresh enough to serve its own
        // definition (maintained or refreshed — never silently stale).
        for name in SUMMARIES {
            let def = format!("select * from {name}");
            assert!(
                s.query_no_rewrite(&def).is_ok(),
                "seed {seed:#x}: `{name}` unreadable"
            );
        }
    }
}

/// Deleting every row of a group must drop the group's row from the
/// backing table (the hidden/visible counter reaching zero), not leave a
/// zero-count ghost that a rewritten query would surface.
#[test]
fn emptied_groups_vanish_from_summaries() {
    let mut s = SummarySession::new();
    s.run_script(
        "create table t (k int not null, v int not null);
         insert into t values (1, 10), (1, 20), (2, 30);
         create summary table st as (select k, sum(v) as sv from t group by k);",
    )
    .unwrap();
    // `st` does not project a counter: the hidden one must be doing this.
    let m = s.maintainability("st").unwrap();
    assert!(m.hidden_counter, "hidden counter expected for SUM-only AST");
    assert_eq!(m.strategy_for("t"), MaintStrategy::CountingDelta);
    let r = s.run_script("delete from t where k = 1").unwrap();
    assert_eq!(format!("{:?}", r[0]), "Count(2)");
    let q = s.query("select k, sum(v) as sv from t group by k").unwrap();
    assert_eq!(q.used_ast.as_deref(), Some("st"), "summary must stay fresh");
    assert_eq!(q.rows, vec![vec![sumtab::Value::Int(2), sumtab::Value::Int(30)]]);
}

/// The hidden counter column lives in backing rows only — queries over the
/// summary table itself must never see it.
#[test]
fn hidden_counter_is_invisible_to_queries() {
    let mut s = SummarySession::new();
    s.run_script(
        "create table t (k int not null, v int not null);
         insert into t values (1, 10), (2, 20);
         create summary table st as (select k, sum(v) as sv from t group by k);",
    )
    .unwrap();
    let q = s.query_no_rewrite("select k, sv from st").unwrap();
    assert_eq!(q.header, vec!["k", "sv"]);
    assert!(q.rows.iter().all(|r| r.len() == 2));
}

/// A deleted extremum cannot be repaired from a delta: the apply must
/// detect the shrink and refresh, and the answer must stay exact.
#[test]
fn extremum_deletion_refreshes_and_stays_exact() {
    let mut s = SummarySession::new();
    s.run_script(
        "create table t (k int not null, v int not null);
         insert into t values (1, 5), (1, 9), (1, 7);
         create summary table st as
           (select k, min(v) as mn, max(v) as mx, count(*) as c from t group by k);",
    )
    .unwrap();
    s.run_script("delete from t where v = 9").unwrap();
    let q = s
        .query("select k, min(v) as mn, max(v) as mx from t group by k")
        .unwrap();
    assert_eq!(q.used_ast.as_deref(), Some("st"));
    assert_eq!(
        q.rows,
        vec![vec![
            sumtab::Value::Int(1),
            sumtab::Value::Int(5),
            sumtab::Value::Int(7),
        ]]
    );
}

// ---------------------------------------------------------------------------
// Mutation-kill suite: each non-maintainable class must be rejected with a
// typed obstruction naming the offending box.
// ---------------------------------------------------------------------------

/// Run the analyzer on `sql` (over the paper's sample schema) for `table`
/// and return `(strategy, obstruction kinds with their box paths)`.
fn analyze(sql: &str, table: &str) -> (MaintStrategy, Vec<(ObstructionKind, String)>) {
    let cat = Catalog::credit_card_sample();
    let g = build_query(&parse_query(sql).unwrap(), &cat).unwrap();
    let r = analyze_maintainability(&g, table, &cat);
    let obs = r
        .obstructions
        .iter()
        .map(|o| (o.reason, o.path.clone()))
        .collect();
    (r.strategy, obs)
}

/// Assert `sql` is refresh-only for `table` and that the stated obstruction
/// kind is reported with a non-empty box path.
fn assert_killed(sql: &str, table: &str, kind: ObstructionKind) {
    let (strategy, obs) = analyze(sql, table);
    assert_eq!(
        strategy,
        MaintStrategy::RefreshOnly,
        "`{sql}` must be refresh-only"
    );
    let hit = obs.iter().find(|(k, _)| *k == kind);
    match hit {
        Some((_, path)) => assert!(
            !path.is_empty(),
            "`{sql}`: obstruction {kind} must name a box path"
        ),
        None => panic!("`{sql}`: expected obstruction {kind}, got {obs:?}"),
    }
}

#[test]
fn kill_having_predicate() {
    assert_killed(
        "select faid, count(*) as c from trans group by faid having count(*) > 1",
        "trans",
        ObstructionKind::PostAggregationPredicate,
    );
}

#[test]
fn kill_grand_total() {
    assert_killed(
        "select count(*) as c from trans",
        "trans",
        ObstructionKind::GrandTotal,
    );
}

#[test]
fn kill_distinct_aggregate() {
    assert_killed(
        "select faid, count(distinct flid) as c from trans group by faid",
        "trans",
        ObstructionKind::DistinctAggregate,
    );
}

#[test]
fn kill_scalar_subquery() {
    assert_killed(
        "select faid, count(*) as c, (select count(*) from loc) as t \
         from trans group by faid",
        "trans",
        ObstructionKind::ScalarSubquery,
    );
}

#[test]
fn kill_self_join_nonlinearity() {
    assert_killed(
        "select t1.faid as f, count(*) as c from trans as t1, trans as t2 \
         where t1.faid = t2.faid group by t1.faid",
        "trans",
        ObstructionKind::NonLinear,
    );
}

#[test]
fn kill_table_not_read() {
    assert_killed(
        "select faid, count(*) as c from trans group by faid",
        "acct",
        ObstructionKind::TableNotRead,
    );
}

#[test]
fn kill_no_aggregation_root() {
    assert_killed(
        "select tid, qty from trans",
        "trans",
        ObstructionKind::NoAggregationRoot,
    );
}

#[test]
fn kill_average_not_lowered() {
    // `avg` reaching the analyzer un-lowered (no SUM/COUNT decomposition)
    // cannot be merged; build keeps it as an Avg aggregate.
    let (strategy, obs) = analyze(
        "select faid, avg(qty) as a from trans group by faid",
        "trans",
    );
    if strategy != MaintStrategy::RefreshOnly {
        // The builder lowers AVG into SUM/COUNT — then it must be fully
        // counting-maintainable instead.
        assert_eq!(strategy, MaintStrategy::CountingDelta);
    } else {
        assert!(
            obs.iter().any(|(k, _)| matches!(
                k,
                ObstructionKind::UnloweredAverage | ObstructionKind::NonMaintainableExpression
            )),
            "avg rejection must be typed, got {obs:?}"
        );
    }
}

#[test]
fn kill_expression_output() {
    // A root output that is not a bare column of the group-by box (e.g. an
    // arithmetic expression over aggregates) cannot be delta-merged.
    let (strategy, obs) = analyze(
        "select faid, sum(qty) + count(*) as blend from trans group by faid",
        "trans",
    );
    assert_eq!(strategy, MaintStrategy::RefreshOnly);
    assert!(
        obs.iter()
            .any(|(k, _)| *k == ObstructionKind::NonMaintainableExpression),
        "expression output must be typed, got {obs:?}"
    );
}

#[test]
fn downgrade_nullable_sum_to_insert_delta() {
    // Over a schema where the SUM argument is nullable, deletes cannot
    // reproduce SUM=NULL from stored - delta: the strategy must downgrade
    // to insert-delta with a typed explanation.
    let mut s = SummarySession::new();
    s.run_script("create table n (k int not null, v int);").unwrap();
    let cat = &s.session.catalog;
    let g = build_query(
        &parse_query("select k, sum(v) as sv, count(*) as c from n group by k").unwrap(),
        cat,
    )
    .unwrap();
    let r = analyze_maintainability(&g, "n", cat);
    assert_eq!(r.strategy, MaintStrategy::InsertDelta);
    assert!(
        r.obstructions
            .iter()
            .any(|o| o.reason == ObstructionKind::NullableSumUnderDelete),
        "nullable SUM downgrade must be typed, got {:?}",
        r.obstructions
    );
}

#[test]
fn advisory_shrink_sensitive_extrema_stay_counting() {
    // MIN/MAX do not downgrade the strategy — they are handled at apply
    // time — but the certificate must flag them.
    let (strategy, obs) = analyze(
        "select faid, min(price) as mn, count(*) as c from trans group by faid",
        "trans",
    );
    assert_eq!(strategy, MaintStrategy::CountingDelta);
    assert!(
        obs.iter()
            .any(|(k, _)| *k == ObstructionKind::ShrinkSensitiveExtremum),
        "shrink-sensitive extremum must be flagged, got {obs:?}"
    );
}

#[test]
fn explain_surfaces_strategy_and_obstructions() {
    let mut s = SummarySession::new();
    s.run_script(
        "create table t (k int not null, v int);
         insert into t values (1, 10);
         create summary table st as
           (select k, sum(v) as sv, count(*) as c from t group by k);",
    )
    .unwrap();
    let plan = s
        .explain("select k, sum(v) as sv from t group by k")
        .unwrap();
    assert!(
        plan.contains("-- maintenance st: t=insert-delta"),
        "{plan}"
    );
    assert!(
        plan.contains("nullable-sum-under-delete"),
        "obstruction must be surfaced: {plan}"
    );
}
