//! Fault-injection tests: arm the in-tree fail points and assert the
//! pipeline degrades the way the design promises — skipped ASTs, execution
//! fallback, and maintenance falling back to a full refresh — instead of
//! erroring out or answering wrong.
//!
//! Fail-point state is process-global, so every test here serializes on
//! `LOCK` and uses the scope-bound `armed` guard (disarms even on panic).

// Tests and examples assert on fixed inputs; unwrap/expect failures are
// test failures, which is exactly what we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use std::sync::{Mutex, MutexGuard};
use sumtab::{failpoint, sort_rows, SummarySession, Value};

static LOCK: Mutex<()> = Mutex::new(());

fn serialize() -> MutexGuard<'static, ()> {
    match LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn session_with_summary() -> SummarySession {
    let mut s = SummarySession::new();
    s.run_script(
        "create table t (k int not null, v int not null);
         insert into t values (1, 10), (1, 20), (2, 30);
         create summary table st as (select k, sum(v) as sv, count(*) as c from t group by k);",
    )
    .unwrap();
    s
}

const QUERY: &str = "select k, sum(v) as sv from t group by k";

fn expected() -> Vec<Vec<Value>> {
    vec![
        vec![Value::Int(1), Value::Int(30)],
        vec![Value::Int(2), Value::Int(30)],
    ]
}

#[test]
fn match_failure_degrades_to_base_plan() {
    let _serial = serialize();
    let mut s = session_with_summary();
    let _fp = failpoint::armed("match");

    // Planning survives a matcher that errors on every AST: the AST is
    // skipped with a reason and the base plan runs.
    let detail = s.plan_detail(QUERY).unwrap();
    assert!(detail.used.is_empty(), "errored AST must not be used");
    assert_eq!(detail.skipped.len(), 1);
    assert!(
        detail.skipped[0].reason.contains("matcher error"),
        "{:?}",
        detail.skipped
    );

    let r = s.query(QUERY).unwrap();
    assert_eq!(r.used_ast, None);
    assert!(r.fallback.is_none(), "plan-time skip is not a fallback");
    assert_eq!(sort_rows(r.rows), expected());
}

#[test]
fn execution_failure_falls_back_to_base_plan() {
    let _serial = serialize();
    let mut s = session_with_summary();

    // Sanity: without the fail point the AST answers the query.
    let r = s.query(QUERY).unwrap();
    assert_eq!(r.used_ast.as_deref(), Some("st"));
    assert!(r.fallback.is_none());

    let _fp = failpoint::armed("execute-rewritten");
    let r = s.query(QUERY).unwrap();
    assert_eq!(r.used_ast, None, "fallback result is not AST-backed");
    let cause = r.fallback.expect("fallback must be reported");
    assert!(cause.contains("st"), "names the failed AST: {cause}");
    assert!(
        cause.contains("injected fault"),
        "carries the cause: {cause}"
    );
    assert_eq!(sort_rows(r.rows), expected(), "fallback answers correctly");
}

#[test]
fn execution_failure_without_ast_still_errors() {
    let _serial = serialize();
    let mut s = SummarySession::new();
    s.run_script("create table t (k int not null); insert into t values (1);")
        .unwrap();
    let _fp = failpoint::armed("execute-rewritten");
    // No AST in the plan → the fail point must not fire, and a genuine
    // planning error (unknown table) surfaces as Err, not a fallback.
    assert_eq!(s.query("select k from t").unwrap().rows.len(), 1);
    assert!(s.query("select k from nope").is_err());
}

#[test]
fn maintenance_failure_degrades_to_full_refresh() {
    let _serial = serialize();
    let mut s = session_with_summary();
    let _fp = failpoint::armed("maintain");

    // The incremental path fails (injected); append must fall back to a
    // full recompute and report nothing as incrementally maintained.
    let maintained = s
        .append("t", vec![vec![Value::Int(2), Value::Int(5)]])
        .unwrap();
    assert!(maintained.is_empty(), "incremental path was injected dead");

    // The summary is nonetheless correct and fresh enough to route to.
    drop(_fp);
    let r = s.query(QUERY).unwrap();
    assert_eq!(r.used_ast.as_deref(), Some("st"));
    assert_eq!(
        sort_rows(r.rows),
        vec![
            vec![Value::Int(1), Value::Int(30)],
            vec![Value::Int(2), Value::Int(35)],
        ]
    );
}

#[test]
fn stale_skip_composes_with_injected_match_faults() {
    let _serial = serialize();
    let mut s = session_with_summary();
    // Second summary over the same base table.
    s.run_script("create summary table st2 as (select k, count(*) as c2 from t group by k);")
        .unwrap();

    // Stale both ASTs by writing behind the session's back.
    let sumtab::Session { catalog, db, .. } = &mut s.session;
    db.insert(catalog, "t", vec![vec![Value::Int(3), Value::Int(1)]])
        .unwrap();

    let detail = s.plan_detail(QUERY).unwrap();
    assert!(detail.used.is_empty());
    assert_eq!(detail.skipped.len(), 2, "{:?}", detail.skipped);
    assert!(detail.skipped.iter().all(|sk| sk.reason.contains("stale")));

    // Refresh one; arm `match`: the fresh AST now errors instead. The query
    // still answers from base data.
    s.refresh("st").unwrap();
    let _fp = failpoint::armed("match");
    let detail = s.plan_detail(QUERY).unwrap();
    assert!(detail.used.is_empty());
    let reasons: Vec<&str> = detail.skipped.iter().map(|sk| sk.reason.as_str()).collect();
    assert!(
        reasons.iter().any(|r| r.contains("stale"))
            && reasons.iter().any(|r| r.contains("matcher error")),
        "{reasons:?}"
    );
    let r = s.query(QUERY).unwrap();
    assert_eq!(
        sort_rows(r.rows),
        vec![
            vec![Value::Int(1), Value::Int(30)],
            vec![Value::Int(2), Value::Int(30)],
            vec![Value::Int(3), Value::Int(1)],
        ]
    );
}
