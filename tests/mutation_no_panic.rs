//! No-panic property test: the parse → plan → rewrite pipeline must return
//! typed errors on arbitrary garbage, never panic or overflow the stack.
//!
//! Strategy: start from valid workload SQL, then (a) truncate at every
//! prefix length, (b) apply deterministic byte mutations (SplitMix64-seeded
//! splices, duplications, and deletions), and (c) feed adversarial
//! deep-nesting inputs that would blow the stack without the recursion
//! guards. Every input goes through the full facade pipeline.

// Tests and examples assert on fixed inputs; unwrap/expect failures are
// test failures, which is exactly what we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use sumtab::datagen::SplitMix64;
use sumtab::parser::{ParseError, ParseErrorKind, MAX_PARSE_DEPTH};
use sumtab::SummarySession;

const SEEDS: [&str; 6] = [
    "select k, sum(v) as sv, count(*) as c from t group by k",
    "select k, sum(v) as sv from t where v > 5 group by k having count(*) > 1",
    "create summary table st as (select k, count(*) as c from t group by k)",
    "insert into t values (1, 10), (2, -3)",
    "select t.k, u.k from t, u where t.k = u.k and t.v between 1 and 10",
    "select case when v > 0 then 'pos' else 'neg' end from t where k in (1, 2, 3)",
];

fn session() -> SummarySession {
    let mut s = SummarySession::new();
    s.run_script(
        "create table t (k int not null, v int not null);
         create table u (k int not null);
         insert into t values (1, 10), (2, 20);
         insert into u values (1);
         create summary table base_st as (select k, sum(v) as sv, count(*) as c from t group by k);",
    )
    .unwrap();
    s
}

/// Drive one input through every facade entry point; panics propagate and
/// fail the test, typed errors are the accepted outcome.
fn pipeline_must_not_panic(s: &mut SummarySession, input: &str) {
    let _ = s.plan_detail(input);
    let _ = s.query(input);
    let _ = s.run_script(input);
}

#[test]
fn truncated_sql_never_panics() {
    let mut s = session();
    for seed in SEEDS {
        for end in 0..=seed.len() {
            if seed.is_char_boundary(end) {
                pipeline_must_not_panic(&mut s, &seed[..end]);
            }
        }
    }
}

#[test]
fn byte_mutated_sql_never_panics() {
    let mut s = session();
    let mut rng = SplitMix64::new(0x5eed_f00d);
    // Printable mutation alphabet plus SQL-significant punctuation.
    const ALPHABET: &[u8] = b"abcdexyz0159 '\"(),.*=<>-+;%_";
    for seed in SEEDS {
        for _round in 0..200 {
            let mut bytes = seed.as_bytes().to_vec();
            for _edit in 0..=rng.gen_index(4) {
                if bytes.is_empty() {
                    break;
                }
                let at = rng.gen_index(bytes.len());
                match rng.gen_index(3) {
                    0 => bytes[at] = ALPHABET[rng.gen_index(ALPHABET.len())],
                    1 => bytes.insert(at, ALPHABET[rng.gen_index(ALPHABET.len())]),
                    _ => {
                        bytes.remove(at);
                    }
                }
            }
            if let Ok(mutated) = String::from_utf8(bytes) {
                pipeline_must_not_panic(&mut s, &mutated);
            }
        }
    }
}

#[test]
fn deep_nesting_is_rejected_not_overflowed() {
    let mut s = session();
    // Parenthesized expression nesting: an error, not a stack overflow.
    let deep = format!(
        "select {}k{} from t",
        "(".repeat(4 * MAX_PARSE_DEPTH),
        ")".repeat(4 * MAX_PARSE_DEPTH)
    );
    let err = s.query(&deep).expect_err("too deep to accept");
    assert!(err.to_string().contains("nesting"), "{err}");

    // Prefix-operator chains recurse without passing through `expr`.
    for prefix in ["not ", "- ", "+ "] {
        let deep = format!("select {}k from t", prefix.repeat(4 * MAX_PARSE_DEPTH));
        assert!(s.query(&deep).is_err(), "`{prefix}` chain must error");
    }

    // The parser reports the depth kind specifically.
    let deep_expr = format!(
        "{}1{}",
        "(".repeat(4 * MAX_PARSE_DEPTH),
        ")".repeat(4 * MAX_PARSE_DEPTH)
    );
    match sumtab::parser::parse_expr(&deep_expr) {
        Err(ParseError {
            kind: ParseErrorKind::DepthExceeded,
            ..
        }) => {}
        other => panic!("expected DepthExceeded, got {other:?}"),
    }
}
