//! Fast-path behaviour: the session plan cache (hits avoid the matcher
//! entirely, epoch bumps and registrations invalidate) and the determinism
//! of the parallel candidate sweep across pool sizes.
//!
//! The match-attempt counter (`matcher::stats::navigator_runs`) is
//! process-global, so every test here serializes on `LOCK` and asserts on
//! before/after deltas.

// Tests and examples assert on fixed inputs; unwrap/expect failures are
// test failures, which is exactly what we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use std::sync::{Mutex, MutexGuard};
use sumtab::matcher::stats;
use sumtab::{Catalog, RegisteredAst, Rewriter, SummarySession, Value};

static LOCK: Mutex<()> = Mutex::new(());

fn serialize() -> MutexGuard<'static, ()> {
    match LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn session_with_summary() -> SummarySession {
    let mut s = SummarySession::new();
    s.run_script(
        "create table t (k int not null, v int not null);
         insert into t values (1, 10), (1, 20), (2, 30);
         create summary table st as (select k, sum(v) as sv, count(*) as c from t group by k);",
    )
    .unwrap();
    s
}

const QUERY: &str = "select k, sum(v) as sv from t group by k";

/// A repeated query is answered from the plan cache: zero navigator runs —
/// no match attempt at all — on the second planning of the same SQL.
#[test]
fn repeated_query_skips_the_matcher_entirely() {
    let _g = serialize();
    let mut s = session_with_summary();
    let first = s.query(QUERY).unwrap();
    assert_eq!(first.used_ast.as_deref(), Some("st"));

    let nav_before = stats::navigator_runs();
    let hits_before = s.plan_cache_stats().hits;
    let detail = s.plan_detail(QUERY).unwrap();
    assert_eq!(
        stats::navigator_runs() - nav_before,
        0,
        "cached plan must not run the navigator"
    );
    assert_eq!(s.plan_cache_stats().hits - hits_before, 1);
    assert_eq!(detail.used, vec!["st".to_string()]);

    // And the cached plan still executes correctly.
    let again = s.query(QUERY).unwrap();
    assert_eq!(again.used_ast.as_deref(), Some("st"));
    assert_eq!(sumtab::sort_rows(again.rows), sumtab::sort_rows(first.rows));
}

/// A base-table epoch bump evicts the cached entry: the next planning of
/// the same query recomputes (and correctly refuses the now-stale AST).
#[test]
fn epoch_bump_evicts_cached_plan() {
    let _g = serialize();
    let mut s = session_with_summary();
    assert_eq!(s.query(QUERY).unwrap().used_ast.as_deref(), Some("st"));

    // Mutate the base table behind the session's back: bumps `t`'s epoch
    // without maintaining `st`.
    let sumtab::Session { catalog, db, .. } = &mut s.session;
    db.insert(catalog, "t", vec![vec![Value::Int(3), Value::Int(5)]])
        .unwrap();

    let stats_before = s.plan_cache_stats();
    let detail = s.plan_detail(QUERY).unwrap();
    let stats_after = s.plan_cache_stats();
    assert_eq!(
        stats_after.invalidations - stats_before.invalidations,
        1,
        "the epoch mismatch must evict the entry"
    );
    assert_eq!(stats_after.hits, stats_before.hits, "no false hit");
    assert!(detail.used.is_empty(), "stale AST must not be used");
    assert!(detail.skipped[0].reason.contains("stale"), "{detail:?}");

    // The recomputed (stale-skipping) plan is itself cached at the new
    // epochs and serves the follow-up without matching.
    let nav_before = stats::navigator_runs();
    let detail2 = s.plan_detail(QUERY).unwrap();
    assert_eq!(stats::navigator_runs() - nav_before, 0);
    assert!(detail2.used.is_empty());

    // Refresh advances the AST snapshot AND the backing-table epoch, so the
    // cache re-plans and routes through the summary again.
    s.refresh("st").unwrap();
    assert_eq!(s.query(QUERY).unwrap().used_ast.as_deref(), Some("st"));
}

/// Registering a new AST bumps the plan generation, invalidating cached
/// plans computed before it existed — even though no table epoch moved.
#[test]
fn ast_registration_invalidates_cached_plans() {
    let _g = serialize();
    let mut s = SummarySession::new();
    s.run_script(
        "create table t (k int not null, v int not null);
         insert into t values (1, 10), (2, 30);",
    )
    .unwrap();
    let gen_before = s.plan_generation();
    let no_ast = s.plan_detail(QUERY).unwrap();
    assert!(no_ast.used.is_empty());

    s.run_script(
        "create summary table st as (select k, sum(v) as sv, count(*) as c from t group by k);",
    )
    .unwrap();
    assert!(s.plan_generation() > gen_before);
    let with_ast = s.plan_detail(QUERY).unwrap();
    assert_eq!(
        with_ast.used,
        vec!["st".to_string()],
        "a stale cached plan would have missed the new AST"
    );
}

/// The parallel sweep is deterministic: identical ordered results for any
/// pool size, so `rewrite_best` stays reproducible.
#[test]
fn rewrite_all_is_deterministic_across_pool_sizes() {
    let _g = serialize();
    let cat = Catalog::credit_card_sample();
    // A mix of matching, non-matching, and signature-filtered candidates.
    let asts: Vec<RegisteredAst> = [
        "select faid, sum(qty) as s, count(*) as c from trans group by faid",
        "select faid, flid, sum(qty) as s, count(*) as c from trans group by faid, flid",
        "select state, count(*) as c from loc group by state", // filtered: no shared table
        "select faid, max(qty) as m from trans group by faid", // no SUM: kind-filtered
        "select faid, qty, price from trans where qty > 100",
        "select faid, sum(price) as sp, count(*) as c from trans group by faid",
    ]
    .iter()
    .enumerate()
    .map(|(i, sql)| RegisteredAst::from_sql(&format!("a{i}"), sql, &cat).unwrap())
    .collect();
    let q = sumtab::build_query(
        &sumtab::parser::parse_query("select faid, sum(qty) as s from trans group by faid")
            .unwrap(),
        &cat,
    )
    .unwrap();

    let names = |pool: usize| -> Vec<String> {
        Rewriter::with_pool_size(&cat, pool)
            .rewrite_all(&q, &asts)
            .into_iter()
            .map(|rw| rw.ast_name)
            .collect()
    };
    let serial = names(1);
    assert!(!serial.is_empty(), "population must contain matches");
    for pool in [2, 3, 8] {
        assert_eq!(names(pool), serial, "pool size {pool} diverged");
    }

    // rewrite_best inherits the determinism: same pick every pool size.
    let best = |pool: usize| {
        Rewriter::with_pool_size(&cat, pool)
            .rewrite_best(&q, &asts, |_| 42)
            .map(|rw| rw.ast_name)
    };
    let serial_best = best(1);
    assert!(serial_best.is_some());
    for pool in [2, 3, 8] {
        assert_eq!(best(pool), serial_best);
    }
}

/// The signature filter really fires on the sweep path: provably
/// unmatchable candidates are rejected without a navigator run.
#[test]
fn filter_rejections_avoid_navigator_runs() {
    let _g = serialize();
    let cat = Catalog::credit_card_sample();
    let asts: Vec<RegisteredAst> = [
        (
            "a0",
            "select faid, sum(qty) as s, count(*) as c from trans group by faid",
        ),
        ("a1", "select state, count(*) as c from loc group by state"),
        ("a2", "select cid, count(*) as c from cust group by cid"),
    ]
    .iter()
    .map(|(name, sql)| RegisteredAst::from_sql(name, sql, &cat).unwrap())
    .collect();
    let q = sumtab::build_query(
        &sumtab::parser::parse_query("select faid, sum(qty) as s from trans group by faid")
            .unwrap(),
        &cat,
    )
    .unwrap();
    let nav_before = stats::navigator_runs();
    let rej_before = stats::filter_rejections();
    let rewrites = Rewriter::new(&cat).rewrite_all(&q, &asts);
    assert_eq!(rewrites.len(), 1);
    assert_eq!(
        stats::navigator_runs() - nav_before,
        1,
        "only the surviving candidate reaches the navigator"
    );
    assert_eq!(stats::filter_rejections() - rej_before, 2);
}
