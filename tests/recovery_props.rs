//! Property tests for crash recovery: random workload scripts (inserts
//! with unique ids, id-targeted deletes and updates, refreshes,
//! invalidations, AST register/deregister) killed at random points — cleanly and at every IO fail point — must
//! recover to byte-identical results against an uninterrupted run of the
//! same script. Double recovery must be idempotent.
//!
//! Seeds are deterministic but overridable: set `SUMTAB_RECOVERY_SEED` to
//! reproduce a failure. Before each case runs, its seed (and the exact
//! reproduction command) is written to `target/recovery-props-seed.txt`,
//! so a failing run always leaves the seed on disk for CI to upload.

#![allow(clippy::unwrap_used, clippy::expect_used)]
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use sumtab::{failpoint, sort_rows, DurabilityMode, DurableOptions, DurableSession, Row, Value};

static LOCK: Mutex<()> = Mutex::new(());

fn serialize() -> MutexGuard<'static, ()> {
    match LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "sumtab-props-{}-{}-{}",
        std::process::id(),
        tag,
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

/// SplitMix64 — tiny, deterministic, good enough for workload shuffling.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn base_seed() -> u64 {
    match std::env::var("SUMTAB_RECOVERY_SEED") {
        Ok(s) => {
            let t = s.trim().trim_start_matches("0x");
            u64::from_str_radix(t, 16)
                .or_else(|_| t.parse())
                .expect("SUMTAB_RECOVERY_SEED must be a (hex or decimal) u64")
        }
        Err(_) => 0x5eed_2026_0807_0001,
    }
}

/// Leave the case's seed on disk *before* running it, so a failure (or a
/// kill) still has the reproduction recipe available for CI to upload.
/// Integration tests run with the package root (`crates/sumtab`) as cwd.
fn record_seed(label: &str, seed: u64) {
    let dir = std::path::Path::new("../../target");
    std::fs::create_dir_all(dir).ok();
    std::fs::write(
        dir.join("recovery-props-seed.txt"),
        format!(
            "case: {label}\nseed: {seed:#x}\nreproduce: SUMTAB_RECOVERY_SEED={seed:#x} \
             cargo test -p sumtab --test recovery_props\n"
        ),
    )
    .ok();
}

const SETUP: &str = "create table t (k int not null, id int not null, v int not null);
     create summary table st as (select k, sum(v) as sv, count(*) as c from t group by k);";

const PROBE: &str = "select k, sum(v) as sv, count(*) as c from t group by k";

#[derive(Debug, Clone)]
enum Op {
    /// Insert one row with a workload-unique `id` — the uniqueness is what
    /// makes "was this op made durable?" decidable after a crash.
    Insert {
        k: i64,
        id: i64,
        v: i64,
    },
    /// Remove the row with this `id` (no-op if never inserted or already
    /// deleted) — exercises the counting-delta WAL record and replay path.
    Delete {
        id: i64,
    },
    /// Rewrite the row with this `id` to a new `v` (no-op if absent) —
    /// exercises the update (delete + insert of signed deltas) WAL record.
    Update {
        id: i64,
        v: i64,
    },
    Refresh,
    Invalidate,
    RegisterExtra,
    DeregisterExtra,
}

fn gen_ops(rng: &mut Rng, n: usize) -> Vec<Op> {
    let mut ops = Vec::with_capacity(n);
    let mut next_id = 0i64;
    for _ in 0..n {
        ops.push(match rng.below(12) {
            0..=5 => {
                next_id += 1;
                Op::Insert {
                    k: rng.below(4) as i64,
                    id: next_id,
                    v: rng.below(100) as i64,
                }
            }
            6 => Op::Delete {
                id: 1 + rng.below(next_id.max(1) as u64) as i64,
            },
            7 => Op::Update {
                id: 1 + rng.below(next_id.max(1) as u64) as i64,
                v: rng.below(100) as i64,
            },
            8 => Op::Refresh,
            9 => Op::Invalidate,
            10 => Op::RegisterExtra,
            _ => Op::DeregisterExtra,
        });
    }
    ops
}

/// Apply one op. Register/deregister check current state first, which
/// doubles as the exactly-once guard when an op is conditionally re-applied
/// after a mid-op crash.
fn apply(s: &mut DurableSession, op: &Op) {
    match op {
        Op::Insert { k, id, v } => {
            s.run_script(&format!("insert into t values ({k}, {id}, {v})"))
                .unwrap();
        }
        // Both are idempotent (the WHERE targets a unique id, the SET is a
        // constant), so unconditional re-apply after a crash is safe.
        Op::Delete { id } => {
            s.run_script(&format!("delete from t where id = {id}"))
                .unwrap();
        }
        Op::Update { id, v } => {
            s.run_script(&format!("update t set v = {v} where id = {id}"))
                .unwrap();
        }
        Op::Refresh => s.refresh("st").unwrap(),
        Op::Invalidate => s.invalidate("t"),
        Op::RegisterExtra => {
            if !s.session().session.catalog.is_summary_table("st2") {
                s.run_script(
                    "create summary table st2 as (select id, sum(v) as sv from t group by id)",
                )
                .unwrap();
            }
        }
        Op::DeregisterExtra => {
            if s.session().session.catalog.is_summary_table("st2") {
                s.deregister("st2").unwrap();
            }
        }
    }
}

/// Is this op's effect already present? Only inserts need real detection
/// (via their unique id); register/deregister self-check inside [`apply`];
/// refresh/invalidate are idempotent and safe to re-apply.
fn already_applied(s: &DurableSession, op: &Op) -> bool {
    match op {
        Op::Insert { id, .. } => {
            let (data, _) = s.session().session.db.export_state();
            data.iter()
                .find(|(name, _)| name == "t")
                .is_some_and(|(_, rows)| rows.iter().any(|r| r.get(1) == Some(&Value::Int(*id))))
        }
        _ => false,
    }
}

/// Everything a workload can observe: full per-table contents (sorted —
/// summary maintenance order is an implementation detail) and the probe
/// query's result rows. Byte-identical here means recovery is exact.
fn observe(s: &mut DurableSession) -> (Vec<(String, Vec<Row>)>, Vec<Row>) {
    let (data, _) = s.session().session.db.export_state();
    let data = data
        .into_iter()
        .map(|(name, rows)| (name, sort_rows(rows)))
        .collect();
    let probe = sort_rows(s.query(PROBE).unwrap().rows);
    (data, probe)
}

fn open(dir: &std::path::Path) -> DurableSession {
    DurableSession::open_with(
        dir,
        DurableOptions {
            snapshot_every: 5,
            ..DurableOptions::default()
        },
    )
    .unwrap()
}

/// Clean kills: drop the session at random points mid-workload (every op
/// was acked durable, so *nothing* may be lost) and compare the final
/// state — including per-table modification epochs, which recovery
/// restores exactly — against an uninterrupted run.
#[test]
fn clean_kills_recover_byte_identical_state() {
    let _serial = serialize();
    failpoint::disarm_all();
    let base = base_seed();
    for case in 0..4u64 {
        let seed = base ^ case.wrapping_mul(0xA076_1D64_78BD_642F);
        record_seed(&format!("clean-kills[{case}]"), seed);
        let mut rng = Rng(seed);
        let ops = gen_ops(&mut rng, 30);

        let dir_a = tmp_dir("clean-a");
        let mut a = open(&dir_a);
        a.run_script(SETUP).unwrap();
        for op in &ops {
            apply(&mut a, op);
        }
        let (data_a, probe_a) = observe(&mut a);
        let (_, epochs_a) = a.session().session.db.export_state();
        drop(a);

        let dir_b = tmp_dir("clean-b");
        let mut b = open(&dir_b);
        b.run_script(SETUP).unwrap();
        let mut kills = 0usize;
        for op in &ops {
            apply(&mut b, op);
            assert_eq!(b.mode(), &DurabilityMode::Durable, "seed {seed:#x}");
            if rng.below(5) == 0 {
                drop(b);
                b = open(&dir_b);
                kills += 1;
            }
        }
        // Final kill plus a double recovery: recovering a recovered state
        // must change nothing.
        drop(b);
        let b1 = open(&dir_b);
        assert!(b1.recovery_report().rejected.is_empty(), "seed {seed:#x}");
        drop(b1);
        let mut b = open(&dir_b);
        let (data_b, probe_b) = observe(&mut b);
        let (_, epochs_b) = b.session().session.db.export_state();

        let ctx = format!("seed {seed:#x}, {kills} kills");
        assert_eq!(probe_a, probe_b, "{ctx}: query results diverged");
        assert_eq!(data_a, data_b, "{ctx}: table contents diverged");
        assert_eq!(epochs_a, epochs_b, "{ctx}: epochs must recover exactly");
        std::fs::remove_dir_all(&dir_a).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    }
}

/// Kill at every IO fail point mid-workload. A WAL fault degrades the
/// session to ephemeral — at that point we "crash", recover, and re-apply
/// the interrupted op only if its effect is missing (its durability was
/// exactly what the fault destroyed; with `wal-fsync` the bytes may have
/// survived anyway, which is why the re-apply must be conditional).
/// Snapshot faults must be absorbed without losing anything at all. Either
/// way the final state matches the uninterrupted run byte for byte.
#[test]
fn faulted_kills_converge_with_conditional_reapply() {
    let _serial = serialize();
    let base = base_seed();
    for (ci, fp) in [
        "wal-append",
        "wal-fsync",
        "snapshot-write",
        "snapshot-rename",
    ]
    .into_iter()
    .enumerate()
    {
        failpoint::disarm_all();
        let seed = base ^ (ci as u64 + 11).wrapping_mul(0xD6E8_FEB8_6659_FD93);
        record_seed(&format!("faulted[{fp}]"), seed);
        let mut rng = Rng(seed);
        let mut ops = gen_ops(&mut rng, 24);
        // Arm the fault at an insert: inserts always emit WAL records (a
        // register/deregister can be a state-checked no-op), so a WAL fail
        // point armed there is guaranteed to fire during that very op.
        let inserts: Vec<usize> = ops
            .iter()
            .enumerate()
            .filter(|(_, op)| matches!(op, Op::Insert { .. }))
            .map(|(i, _)| i)
            .collect();
        let fault_at = if inserts.is_empty() {
            ops.push(Op::Insert {
                k: 0,
                id: 1000,
                v: 1,
            });
            ops.len() - 1
        } else {
            inserts[rng.below(inserts.len() as u64) as usize]
        };

        let dir_a = tmp_dir("fault-a");
        let mut a = open(&dir_a);
        a.run_script(SETUP).unwrap();
        for op in &ops {
            apply(&mut a, op);
        }
        let (data_a, probe_a) = observe(&mut a);
        drop(a);

        let dir_b = tmp_dir("fault-b");
        let mut b = open(&dir_b);
        b.run_script(SETUP).unwrap();
        let mut crashed = false;
        for (i, op) in ops.iter().enumerate() {
            if i == fault_at {
                failpoint::arm_times(fp, 1);
            }
            apply(&mut b, op);
            if matches!(b.mode(), DurabilityMode::Ephemeral { .. }) {
                // The fault destroyed this op's durability (and only
                // this op's: the mode is checked after every one).
                drop(b);
                failpoint::disarm_all();
                b = open(&dir_b);
                assert_eq!(b.mode(), &DurabilityMode::Durable, "{fp} seed {seed:#x}");
                if !already_applied(&b, op) {
                    apply(&mut b, op);
                }
                crashed = true;
            }
        }
        failpoint::disarm_all();
        match fp {
            "wal-append" | "wal-fsync" => assert!(
                crashed,
                "{fp} seed {seed:#x}: the armed WAL fault must have fired"
            ),
            // Snapshot faults never cost durability, hence never a crash.
            _ => assert!(!crashed, "{fp} seed {seed:#x}"),
        }
        drop(b);
        let mut b = open(&dir_b);
        let (data_b, probe_b) = observe(&mut b);
        let ctx = format!("{fp} seed {seed:#x} fault at op {fault_at}");
        assert_eq!(probe_a, probe_b, "{ctx}: query results diverged");
        assert_eq!(data_a, data_b, "{ctx}: table contents diverged");

        // And once more: double recovery of the converged state is a no-op.
        drop(b);
        let mut b2 = open(&dir_b);
        let (data_b2, probe_b2) = observe(&mut b2);
        assert_eq!(
            (data_b2, probe_b2),
            (data_a, probe_a),
            "{ctx}: double recovery"
        );
        std::fs::remove_dir_all(&dir_a).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    }
}
