//! Cost-based routing properties: whatever the router decides — rewrite,
//! base, or a feedback re-route — the *answer* never changes; a
//! cost-rejected match is cached so repeats skip the matcher; and the
//! result cache serves repeats without execution yet can never survive an
//! epoch or generation bump.
//!
//! The match-attempt counter (`matcher::stats::navigator_runs`) is
//! process-global, so tests that assert on it serialize on `LOCK`.

// Tests and examples assert on fixed inputs; unwrap/expect failures are
// test failures, which is exactly what we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use std::sync::{Mutex, MutexGuard};
use sumtab::catalog::SummaryTableDef;
use sumtab::cost::RoutePolicy;
use sumtab::datagen::workloads::FIGURES;
use sumtab::datagen::{generate, GenConfig};
use sumtab::engine::backing_table_schema;
use sumtab::matcher::stats;
use sumtab::{RegisteredAst, RouteDecision, RouterOptions, SummarySession, Value};

static LOCK: Mutex<()> = Mutex::new(());

fn serialize() -> MutexGuard<'static, ()> {
    match LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Multiset equality with relative tolerance on doubles: base-plan and
/// AST-plan aggregation sum in different orders, so totals can differ in
/// the last few ulps (same comparison as `paper_workload`).
fn rows_approx_eq(a: &[sumtab::Row], b: &[sumtab::Row]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.iter().zip(b).all(|(ra, rb)| {
        ra.len() == rb.len()
            && ra.iter().zip(rb).all(|(x, y)| match (x, y) {
                (Value::Double(p), Value::Double(q)) => {
                    let scale = p.abs().max(q.abs()).max(1.0);
                    (p - q).abs() <= scale * 1e-9
                }
                _ => x == y,
            })
    })
}

/// A session over the generated credit-card data with every figure AST
/// materialized and registered. Deterministic: the same `transactions`
/// always yields the same data, so independently-built sessions agree.
fn figure_session(transactions: usize) -> SummarySession {
    let cfg = GenConfig {
        transactions,
        ..GenConfig::scale(transactions)
    };
    let (mut catalog, mut db) = generate(&cfg);
    let mut defs = Vec::new();
    for case in FIGURES {
        let ast_name = format!("ast_{}", case.id.to_lowercase().replace('.', "_"));
        let ast = RegisteredAst::from_sql(&ast_name, case.ast, &catalog).unwrap();
        sumtab::engine::materialize(&ast_name, &ast.graph, &catalog, &mut db).unwrap();
        let backing = backing_table_schema(&ast_name, &ast.graph, &catalog).unwrap();
        defs.push((
            SummaryTableDef {
                name: ast_name,
                query_sql: case.ast.to_string(),
            },
            backing,
        ));
    }
    for (def, backing) in defs {
        catalog.add_summary_table(def, backing).unwrap();
    }
    SummarySession::with_data(catalog, db)
}

/// Enough rows that figure-query base plans clear the small-plan gate, so
/// the routing decision is live, while staying fast in debug builds.
const SCALE: usize = 3_000;

/// Router options that force one side of the choice, for differential
/// comparison against the default router.
fn always_base() -> RouterOptions {
    RouterOptions {
        policy: RoutePolicy {
            rewrite_penalty: f64::INFINITY,
            min_cost_gate: 0.0,
        },
        reroute_threshold: f64::INFINITY,
    }
}

fn always_rewrite() -> RouterOptions {
    RouterOptions {
        policy: RoutePolicy {
            rewrite_penalty: 0.0,
            min_cost_gate: 0.0,
        },
        reroute_threshold: f64::INFINITY,
    }
}

/// The core soundness property: the router's choice is a pure performance
/// decision. For every paper figure, the base plan, the rewrite, and the
/// default cost-routed choice all return multiset-identical results.
#[test]
fn router_choice_never_changes_results() {
    let mut routed = figure_session(SCALE);
    let mut base = figure_session(SCALE);
    base.set_router_options(always_base());
    let mut rewrite = figure_session(SCALE);
    rewrite.set_router_options(always_rewrite());

    let mut labels = Vec::new();
    for case in FIGURES.iter().filter(|c| c.matches) {
        let oracle = routed.query_no_rewrite(case.query).unwrap();
        let expect = sumtab::sort_rows(oracle.rows);
        for (name, s) in [
            ("default", &mut routed),
            ("always-base", &mut base),
            ("always-rewrite", &mut rewrite),
        ] {
            let r = s.query(case.query).unwrap();
            assert!(
                rows_approx_eq(&sumtab::sort_rows(r.rows), &expect),
                "{}: router `{name}` changed the answer",
                case.id
            );
        }
        labels.push(routed.plan_detail(case.query).unwrap().routing.label());
    }
    // The default router must actually exercise both branches on this
    // workload: the near-base-size AST routes to base, the rest rewrite.
    assert!(labels.contains(&"rewrite"), "{labels:?}");
    assert!(labels.contains(&"base"), "{labels:?}");
}

/// Results stay invariant while the feedback loop probes, re-routes, and
/// settles on measured latencies — and after an epoch bump wipes the
/// rewrites out entirely.
#[test]
fn feedback_reroutes_preserve_results() {
    let mut s = figure_session(SCALE);
    // Probe after every calibrated execution: maximum feedback churn. The
    // result cache is off so every pass actually executes and feeds the
    // loop a fresh observation.
    s.set_result_cache_capacity(0);
    s.set_router_options(RouterOptions {
        reroute_threshold: 0.0,
        ..RouterOptions::default()
    });
    let mut expected = Vec::new();
    for case in FIGURES.iter().filter(|c| c.matches) {
        expected.push(sumtab::sort_rows(
            s.query_no_rewrite(case.query).unwrap().rows,
        ));
    }
    // Pass 1 calibrates, pass 2 arms a probe, pass 3 runs re-routed, pass
    // 4 settles on the measured-faster plan.
    for pass in 0..4 {
        for (case, expect) in FIGURES.iter().filter(|c| c.matches).zip(&expected) {
            let r = s.query(case.query).unwrap();
            assert!(
                rows_approx_eq(&sumtab::sort_rows(r.rows), expect),
                "{} pass {pass}: feedback re-route changed the answer",
                case.id
            );
        }
    }
    assert!(
        s.plan_cache_stats().reroutes > 0,
        "a 0.0 threshold must have probed at least one alternative"
    );

    // Epoch bump: every AST is now stale; the router has no rewrite to
    // choose and the answers still hold (the data did not change).
    s.session.db.bump_epoch("trans");
    for (case, expect) in FIGURES.iter().filter(|c| c.matches).zip(&expected) {
        let r = s.query(case.query).unwrap();
        assert_eq!(r.used_ast, None, "{}: stale AST must not be used", case.id);
        assert!(
            rows_approx_eq(&sumtab::sort_rows(r.rows), expect),
            "{}",
            case.id
        );
    }
}

/// A cost-*rejected* match is cached like any other plan: the second
/// identical query re-serves the base-plan decision with zero navigator
/// runs, instead of re-matching and re-rejecting.
#[test]
fn cost_rejected_match_is_cached() {
    let _g = serialize();
    let mut s = SummarySession::new();
    s.run_script("create table t (k int not null, v int not null);")
        .unwrap();
    // Every key distinct: the summary is as large as the base table, so
    // the rewrite saves nothing and the penalty rejects it. 1500 rows puts
    // the base plan well past the small-plan gate.
    let rows: Vec<Vec<Value>> = (0..1500)
        .map(|i| vec![Value::Int(i), Value::Int(i * 7)])
        .collect();
    {
        let sumtab::Session { catalog, db, .. } = &mut s.session;
        db.insert(catalog, "t", rows).unwrap();
    }
    s.run_script(
        "create summary table st as (select k, sum(v) as sv, count(*) as c from t group by k);",
    )
    .unwrap();

    let q = "select k, sum(v) as sv from t group by k";
    let detail = s.plan_detail(q).unwrap();
    match &detail.routing {
        RouteDecision::Base {
            base_cost,
            rewrite_cost,
            rejected,
        } => {
            assert_eq!(rejected, &vec!["st".to_string()]);
            assert!(
                rewrite_cost * 2.0 > *base_cost,
                "rejection must follow the policy: {rewrite_cost} vs {base_cost}"
            );
        }
        other => panic!("expected a cost-rejected rewrite, got {other:?}"),
    }
    assert!(detail.used.is_empty(), "the base plan carries no ASTs");

    // Repeat: the navigator must not run again for this fingerprint.
    let nav_before = stats::navigator_runs();
    let hits_before = s.plan_cache_stats().hits;
    let again = s.plan_detail(q).unwrap();
    assert_eq!(
        stats::navigator_runs() - nav_before,
        0,
        "cached base-plan decision must skip the matcher"
    );
    assert_eq!(s.plan_cache_stats().hits - hits_before, 1);
    assert_eq!(again.routing.label(), "base");

    // And the executed result reports the routing, distinct from fallback.
    let r = s.query(q).unwrap();
    assert_eq!(r.used_ast, None);
    assert_eq!(r.fallback, None, "a cost choice is not a degradation");
    let why = r.routed.expect("base routing must be reported");
    assert!(why.contains("cost routing kept the base plan"), "{why}");
}

/// The result cache serves repeated identical queries without execution,
/// and a base-table epoch bump ([`sumtab::Database::bump_epoch`]) or a
/// plan-generation bump invalidates it.
#[test]
fn result_cache_hits_and_is_epoch_invalidated() {
    let mut s = SummarySession::new();
    s.run_script(
        "create table t (k int not null, v int not null);
         insert into t values (1, 10), (1, 20), (2, 30);
         create summary table st as (select k, sum(v) as sv, count(*) as c from t group by k);",
    )
    .unwrap();
    let q = "select k, sum(v) as sv from t group by k";

    let first = s.query(q).unwrap();
    let hits0 = s.result_cache_stats().hits;
    let second = s.query(q).unwrap();
    assert_eq!(s.result_cache_stats().hits - hits0, 1, "repeat must hit");
    assert_eq!(
        sumtab::sort_rows(second.rows.clone()),
        sumtab::sort_rows(first.rows.clone())
    );

    // Epoch bump without a data change: the cached result is stale by
    // keying even though its rows happen to still be right — it must be
    // recomputed, not served.
    s.session.db.bump_epoch("t");
    let hits1 = s.result_cache_stats().hits;
    let third = s.query(q).unwrap();
    assert_eq!(s.result_cache_stats().hits, hits1, "stale hit served");
    assert_eq!(
        sumtab::sort_rows(third.rows),
        sumtab::sort_rows(first.rows.clone())
    );

    // A real mutation: the recomputed result reflects the new data.
    {
        let sumtab::Session { catalog, db, .. } = &mut s.session;
        db.insert(catalog, "t", vec![vec![Value::Int(2), Value::Int(5)]])
            .unwrap();
    }
    let fourth = s.query(q).unwrap();
    assert_ne!(
        sumtab::sort_rows(fourth.rows.clone()),
        sumtab::sort_rows(first.rows),
        "the cache must not hide the mutation"
    );

    // Generation bump (AST registration / recovery) also invalidates.
    let hits2 = s.result_cache_stats().hits;
    s.query(q).unwrap(); // re-populate at current epochs
    assert_eq!(s.result_cache_stats().hits - hits2, 1);
    s.bump_plan_generation();
    let hits3 = s.result_cache_stats().hits;
    let fifth = s.query(q).unwrap();
    assert_eq!(s.result_cache_stats().hits, hits3, "stale generation hit");
    assert_eq!(
        sumtab::sort_rows(fifth.rows),
        sumtab::sort_rows(fourth.rows)
    );

    // Capacity 0 disables caching entirely.
    s.set_result_cache_capacity(0);
    let hits4 = s.result_cache_stats().hits;
    s.query(q).unwrap();
    s.query(q).unwrap();
    assert_eq!(s.result_cache_stats().hits, hits4);
}
