//! The full figure workload (datagen::workloads::FIGURES) executed through
//! the high-level session on generated data: every case must match exactly
//! when the paper says it does, and every rewrite must be result-preserving.

// Tests and examples assert on fixed inputs; unwrap/expect failures are
// test failures, which is exactly what we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use sumtab::datagen::workloads::FIGURES;
use sumtab::datagen::{generate, GenConfig};
use sumtab::{sort_rows, RegisteredAst, Rewriter, Row, Value};

/// Multiset equality with relative tolerance on doubles: re-aggregation
/// changes floating-point summation order, so partial-sum totals can differ
/// in the last few ulps.
fn rows_approx_eq(a: &[Row], b: &[Row]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.iter().zip(b).all(|(ra, rb)| {
        ra.len() == rb.len()
            && ra.iter().zip(rb).all(|(x, y)| match (x, y) {
                (Value::Double(p), Value::Double(q)) => {
                    let scale = p.abs().max(q.abs()).max(1.0);
                    (p - q).abs() <= scale * 1e-9
                }
                _ => x == y,
            })
    })
}

fn fixture() -> (sumtab::Catalog, sumtab::Database) {
    generate(&GenConfig {
        transactions: 3_000,
        accounts: 12,
        customers: 8,
        locations: 8,
        pgroups: 4,
        years: 4,
        ..GenConfig::default()
    })
}

#[test]
fn every_figure_behaves_as_the_paper_says() {
    let (cat, mut db) = fixture();
    for case in FIGURES {
        let ast_name = format!("ast_{}", case.id.to_lowercase().replace('.', "_"));
        let ast = RegisteredAst::from_sql(&ast_name, case.ast, &cat)
            .unwrap_or_else(|e| panic!("{}: {e}", case.id));
        let q = sumtab::build_query(&sumtab::parser::parse_query(case.query).unwrap(), &cat)
            .unwrap_or_else(|e| panic!("{}: {e}", case.id));
        let rewriter = Rewriter::new(&cat);
        let rw = rewriter
            .rewrite(&q, &ast)
            .unwrap_or_else(|e| panic!("{}: {e}", case.id));
        assert_eq!(
            rw.is_some(),
            case.matches,
            "{} ({}) match expectation violated",
            case.id,
            case.title
        );
        if let Some(rw) = rw {
            // Materialize under the per-case name, then compare results.
            let mut cat2 = cat.clone();
            let backing =
                sumtab::engine::materialize(&ast_name, &ast.graph, &cat, &mut db).unwrap();
            cat2.add_summary_table(
                sumtab::catalog::SummaryTableDef {
                    name: ast_name.clone(),
                    query_sql: case.ast.to_string(),
                },
                backing,
            )
            .unwrap();
            let original = sumtab::engine::execute(&q, &db).unwrap();
            let rewritten = sumtab::engine::execute(&rw.graph, &db).unwrap();
            assert!(
                !original.is_empty(),
                "{}: vacuous fixture (original result empty)",
                case.id
            );
            let (original, rewritten) = (sort_rows(original), sort_rows(rewritten));
            assert!(
                rows_approx_eq(&original, &rewritten),
                "{} ({}) results differ:\n  {:?}\nvs\n  {:?}",
                case.id,
                case.title,
                original.first(),
                rewritten.first()
            );
            db.drop_table(&ast_name);
        }
    }
}

#[test]
fn figure_12_cube_semantics_reproduced_exactly() {
    // Figure 12 of the paper: the precise result of a grouping-sets query
    // over the sample table, NULL-padding included.
    use sumtab::Value;
    let mut s = sumtab::SummarySession::new();
    s.run_script(
        "create table strans (flid int not null, year int not null, faid int not null);
         insert into strans values
            (1, 1990, 100), (1, 1991, 100), (1, 1991, 200), (1, 1991, 300),
            (1, 1992, 100), (1, 1992, 400), (2, 1991, 400), (2, 1991, 400);",
    )
    .unwrap();
    let res = s
        .query(
            "select flid, year, faid, count(*) as cnt from strans \
             group by grouping sets ((flid, year), (faid))",
        )
        .unwrap();
    let n = Value::Null;
    let expect = vec![
        // (flid, year) cuboid
        vec![Value::Int(1), Value::Int(1990), n.clone(), Value::Int(1)],
        vec![Value::Int(1), Value::Int(1991), n.clone(), Value::Int(3)],
        vec![Value::Int(1), Value::Int(1992), n.clone(), Value::Int(2)],
        vec![Value::Int(2), Value::Int(1991), n.clone(), Value::Int(2)],
        // (faid) cuboid
        vec![n.clone(), n.clone(), Value::Int(100), Value::Int(3)],
        vec![n.clone(), n.clone(), Value::Int(200), Value::Int(1)],
        vec![n.clone(), n.clone(), Value::Int(300), Value::Int(1)],
        vec![n.clone(), n.clone(), Value::Int(400), Value::Int(3)],
    ];
    assert_eq!(sort_rows(res.rows), sort_rows(expect));
}

#[test]
fn stacked_summaries_via_iterative_routing() {
    // Section 7: "a query may be rerouted towards multiple ASTs by an
    // iterative process". Two independent subqueries, each served by a
    // different AST.
    let (cat, db) = fixture();
    let mut s = sumtab::SummarySession::with_data(cat, db);
    s.run_script(
        "create summary table by_loc_year as (
             select flid, year(date) as year, count(*) as cnt
             from trans group by flid, year(date));",
    )
    .unwrap();
    let sql = "select flid, count(*) as cnt from trans group by flid";
    let with = s.query(sql).unwrap();
    assert_eq!(with.used_ast.as_deref(), Some("by_loc_year"));
    let without = s.query_no_rewrite(sql).unwrap();
    assert_eq!(sort_rows(with.rows), sort_rows(without.rows));
}
