//! Differential property test for the morsel-parallel columnar executor:
//! for every query in the paper workload (plus NULL-join and DISTINCT
//! edge cases), `execute_with` at every pool/morsel configuration must
//! return **byte-identical** results to `execute_serial` — same rows, same
//! order. This is the determinism contract that lets the parallel path be
//! the default executor.

// Tests assert on fixed inputs; unwrap/expect failures are test failures.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use sumtab::datagen::workloads::FIGURES;
use sumtab::datagen::{generate, GenConfig};
use sumtab::engine::{execute_serial, execute_with, Database, ExecOptions};
use sumtab::{build_query, Catalog, Value};

const POOLS: [usize; 4] = [1, 2, 4, 8];
const MORSELS: [usize; 3] = [1, 7, 4096];

/// The datagen star schema plus two bespoke nullable tables: `nl`/`nr`
/// carry NULL join keys and duplicated doubles so DISTINCT aggregation and
/// NULL-key join behaviour are exercised.
fn fixture() -> (Catalog, Database) {
    let cfg = GenConfig {
        transactions: 2000,
        ..GenConfig::scale(2000)
    };
    let (mut catalog, mut db) = generate(&cfg);

    use sumtab::catalog::{Column, SqlType, Table};
    catalog
        .add_table(Table::new(
            "nl",
            vec![
                Column::nullable("k", SqlType::Int),
                Column::nullable("v", SqlType::Double),
            ],
        ))
        .unwrap();
    catalog
        .add_table(Table::new("nr", vec![Column::nullable("k", SqlType::Int)]))
        .unwrap();
    // Deterministic pseudo-random rows: every third key NULL, doubles drawn
    // from a small set so DISTINCT collapses duplicates.
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let nl: Vec<Vec<Value>> = (0..300)
        .map(|_| {
            let k = next() % 9;
            let v = next() % 7;
            vec![
                if k % 3 == 0 {
                    Value::Null
                } else {
                    Value::Int(k as i64)
                },
                if v == 6 {
                    Value::Null
                } else {
                    Value::Double(v as f64 * 1.25 - 2.0)
                },
            ]
        })
        .collect();
    let nr: Vec<Vec<Value>> = (0..40)
        .map(|_| {
            let k = next() % 9;
            vec![if k % 3 == 0 {
                Value::Null
            } else {
                Value::Int(k as i64)
            }]
        })
        .collect();
    db.insert(&catalog, "nl", nl).unwrap();
    db.insert(&catalog, "nr", nr).unwrap();

    // Adversarial join/aggregate shapes for the partitioned executor:
    // `hot` skews 90% of its join keys onto one value and carries a
    // high-cardinality `uniq` column (every row its own group); `hotdim`
    // and `dim2` are small build sides for multi-level fused joins;
    // `emptyt` is an always-empty build side; `nullj` is NULL-dense (80%
    // NULL join keys). Sizes sit above the executor's serial-fallback
    // floor so the partitioned paths actually run.
    catalog
        .add_table(Table::new(
            "hot",
            vec![
                Column::new("k", SqlType::Int),
                Column::new("j", SqlType::Int),
                Column::new("uniq", SqlType::Int),
                Column::new("v", SqlType::Double),
            ],
        ))
        .unwrap();
    catalog
        .add_table(Table::new(
            "hotdim",
            vec![
                Column::new("k", SqlType::Int),
                Column::new("name", SqlType::Varchar),
            ],
        ))
        .unwrap();
    catalog
        .add_table(Table::new(
            "dim2",
            vec![
                Column::new("j", SqlType::Int),
                Column::new("w", SqlType::Int),
            ],
        ))
        .unwrap();
    catalog
        .add_table(Table::new(
            "emptyt",
            vec![
                Column::new("k", SqlType::Int),
                Column::new("v", SqlType::Int),
            ],
        ))
        .unwrap();
    catalog
        .add_table(Table::new(
            "nullj",
            vec![
                Column::nullable("k", SqlType::Int),
                Column::new("v", SqlType::Int),
            ],
        ))
        .unwrap();
    let hot: Vec<Vec<Value>> = (0..4000)
        .map(|i: i64| {
            let k = if i % 10 < 9 { 7 } else { i % 97 };
            vec![
                Value::Int(k),
                Value::Int(i % 11),
                Value::Int(i),
                Value::Double((i % 13) as f64 * 0.5),
            ]
        })
        .collect();
    let hotdim: Vec<Vec<Value>> = (0..50)
        .map(|k: i64| vec![Value::Int(k), Value::Str(format!("n{}", k % 5))])
        .collect();
    let dim2: Vec<Vec<Value>> = (0..11)
        .map(|j: i64| vec![Value::Int(j), Value::Int(j * 10)])
        .collect();
    let nullj: Vec<Vec<Value>> = (0..3000)
        .map(|i: i64| {
            vec![
                if i % 5 < 4 {
                    Value::Null
                } else {
                    Value::Int(i % 40)
                },
                Value::Int(i),
            ]
        })
        .collect();
    db.insert(&catalog, "hot", hot).unwrap();
    db.insert(&catalog, "hotdim", hotdim).unwrap();
    db.insert(&catalog, "dim2", dim2).unwrap();
    db.insert(&catalog, "emptyt", Vec::new()).unwrap();
    db.insert(&catalog, "nullj", nullj).unwrap();
    (catalog, db)
}

fn assert_equivalent(sql: &str, catalog: &Catalog, db: &Database) {
    let q = sumtab::parser::parse_query(sql).unwrap_or_else(|e| panic!("{sql}: {e:?}"));
    let g = build_query(&q, catalog).unwrap_or_else(|e| panic!("{sql}: {e:?}"));
    let serial = execute_serial(&g, db).unwrap_or_else(|e| panic!("{sql}: {e}"));
    for pool in POOLS {
        for morsel in MORSELS {
            let opts = ExecOptions {
                pool_size: pool,
                morsel_size: morsel,
            };
            let par = execute_with(&g, db, &opts).unwrap_or_else(|e| panic!("{sql}: {e}"));
            assert_eq!(
                par, serial,
                "parallel result diverged from serial for `{sql}` \
                 (pool {pool}, morsel {morsel})"
            );
        }
    }
}

/// Every figure query of the paper workload, at every configuration.
#[test]
fn paper_workload_queries_match_serial() {
    let (catalog, db) = fixture();
    for case in FIGURES {
        assert_equivalent(case.query, &catalog, &db);
    }
}

/// Every figure AST definition (the queries that get materialized) too.
#[test]
fn paper_workload_ast_definitions_match_serial() {
    let (catalog, db) = fixture();
    for case in FIGURES {
        assert_equivalent(case.ast, &catalog, &db);
    }
}

/// NULL join keys must never match, identically in both executors, and
/// DISTINCT aggregates must fold in the same deterministic order.
#[test]
fn null_keys_and_distinct_aggregates_match_serial() {
    let (catalog, db) = fixture();
    let queries = [
        // NULL keys on both sides of a hash join.
        "select nl.k, nl.v from nl, nr where nl.k = nr.k",
        // NULL keys grouped (NULLs form their own group).
        "select k, count(*) as c, sum(v) as sv from nl group by k",
        // DISTINCT aggregates over doubles: iteration order of the distinct
        // set must not leak into the float fold.
        "select count(distinct v) as n, sum(distinct v) as s from nl",
        "select k, sum(distinct v) as s, min(v) as lo, max(v) as hi from nl group by k",
        // Join + aggregate + DISTINCT combined.
        "select nl.k, count(distinct nl.v) as n from nl, nr where nl.k = nr.k group by nl.k",
        // Grouping sets over nullable data: NULL padding vs NULL keys.
        "select k, count(*) as c from nl group by grouping sets ((k), ())",
        // Top-k selection with duplicate sort keys (ties broken by input
        // order in both paths).
        "select k, v from nl order by v desc limit 17",
        "select k, v from nl order by k, v limit 1",
        // Scalar subquery + filter.
        "select k, v, (select count(*) from nr) as t from nl where v > 0",
    ];
    for sql in queries {
        assert_equivalent(sql, &catalog, &db);
    }
}

/// Larger star-schema joins and multi-way aggregation at scale, where
/// morsel boundaries actually split the work.
#[test]
fn star_schema_joins_match_serial() {
    let (catalog, db) = fixture();
    let queries = [
        "select tid, qty * price * (1 - disc) as amt from trans where qty >= 2",
        "select country, sum(qty * price) as rev from trans, loc \
         where flid = lid group by country",
        "select pgname, year(date) as y, count(*) as cnt, sum(qty) as q \
         from trans, pgroup where fpgid = pgid group by pgname, year(date)",
        "select country, pgname, sum(qty) as q from trans, loc, pgroup \
         where flid = lid and fpgid = pgid group by country, pgname",
    ];
    for sql in queries {
        assert_equivalent(sql, &catalog, &db);
    }
}

/// Adversarial shapes for the partitioned join build and the fused
/// scan→aggregate path: one hot join key owning 90% of the probe rows,
/// high-cardinality grouping (every row its own group), empty build sides,
/// and NULL-dense join columns.
#[test]
fn adversarial_join_and_aggregate_shapes_match_serial() {
    let (catalog, db) = fixture();
    let queries = [
        // Heavily skewed join: the hot key's match list lands in one
        // partition, and its per-key order must still be build scan order.
        "select hot.uniq, hotdim.name from hot, hotdim where hot.k = hotdim.k",
        "select hotdim.name, sum(hot.v) as s, count(*) as c \
         from hot, hotdim where hot.k = hotdim.k group by hotdim.name",
        // Three-way fused join + group-by over both dimensions.
        "select hotdim.name, dim2.w, sum(hot.v) as s from hot, hotdim, dim2 \
         where hot.k = hotdim.k and hot.j = dim2.j group by hotdim.name, dim2.w",
        // High-cardinality group keys: every row is its own group.
        "select uniq, sum(v) as s, min(v) as lo from hot group by uniq",
        "select uniq, k, count(*) as c from hot group by uniq, k",
        // Empty build side (both join orders) and a grand total over an
        // empty join result.
        "select hot.uniq, emptyt.v from hot, emptyt where hot.k = emptyt.k",
        "select emptyt.v, hot.uniq from emptyt, hot where emptyt.k = hot.k",
        "select count(*) as c, sum(hot.v) as s from hot, emptyt where hot.k = emptyt.k",
        // NULL-dense join columns: 80% of probe-side keys are NULL.
        "select nullj.v, hotdim.name from nullj, hotdim where nullj.k = hotdim.k",
        "select nullj.k, min(nullj.v) as lo, max(nullj.v) as hi \
         from nullj, hotdim where nullj.k = hotdim.k group by nullj.k",
        // NULL keys on the build side too (nl has every-third-key NULL).
        "select hot.uniq from hot, nl where hot.k = nl.k and hot.uniq < 50",
    ];
    for sql in queries {
        assert_equivalent(sql, &catalog, &db);
    }
}
