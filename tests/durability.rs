//! Crash-recovery tests for the durable session: kill/restart at every IO
//! fail point, recovery of the full session state (catalog, ASTs, data,
//! staleness epochs), graceful degradation to ephemeral mode, and the
//! plan-generation bump that fences pre-crash cached plans.
//!
//! Fail-point state is process-global, so every test serializes on `LOCK`.
//!
//! The durability contract asserted throughout: after a crash, the
//! recovered state equals the live session as of some *prefix* of its
//! operations, at least as long as the acked prefix (ops that completed
//! while the session still reported [`DurabilityMode::Durable`]). It can
//! be longer — an fsync-failed record whose bytes reached the file is
//! legitimately recovered — but never shorter, never torn, never wrong.

#![allow(clippy::unwrap_used, clippy::expect_used)]
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use sumtab::persist::snapshot;
use sumtab::{
    failpoint, sort_rows, DurabilityMode, DurableOptions, DurableSession, RecoverError, Value,
};

static LOCK: Mutex<()> = Mutex::new(());

fn serialize() -> MutexGuard<'static, ()> {
    match LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "sumtab-durable-{}-{}-{}",
        std::process::id(),
        tag,
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

const SETUP: &str = "create table t (k int not null, v int not null);
     create summary table st as (select k, sum(v) as sv, count(*) as c from t group by k);";

const PROBE: &str = "select k, sum(v) as sv from t group by k";

fn opts(snapshot_every: u64) -> DurableOptions {
    DurableOptions {
        snapshot_every,
        ..DurableOptions::default()
    }
}

#[test]
fn round_trip_recovers_full_session() {
    let _serial = serialize();
    let dir = tmp_dir("roundtrip");
    let expected = {
        let mut s = DurableSession::open(&dir).unwrap();
        s.run_script(SETUP).unwrap();
        s.run_script("insert into t values (1, 10), (1, 20), (2, 30)")
            .unwrap();
        s.run_script("create table u (x int not null); insert into u values (7)")
            .unwrap();
        assert_eq!(s.mode(), &DurabilityMode::Durable);
        sort_rows(s.query(PROBE).unwrap().rows)
    };
    // "Crash" (drop without snapshot) and recover.
    let mut s = DurableSession::open(&dir).unwrap();
    let report = s.recovery_report().clone();
    assert!(report.rejected.is_empty(), "{report:?}");
    assert!(report.torn_tail.is_none());
    assert!(report.replayed > 0, "state came from the wal: {report:?}");

    // Catalog, data, and AST registration all survive.
    assert!(s.session().session.catalog.is_summary_table("st"));
    assert_eq!(s.session().asts().len(), 1);
    assert_eq!(s.session().session.db.row_count("u"), 1);
    let r = s.query(PROBE).unwrap();
    assert_eq!(
        r.used_ast.as_deref(),
        Some("st"),
        "recovered AST is fresh and routable"
    );
    assert_eq!(sort_rows(r.rows), expected);

    // And the session keeps working durably after recovery.
    s.run_script("insert into t values (3, 5)").unwrap();
    assert_eq!(s.mode(), &DurabilityMode::Durable);
    drop(s);
    let mut s = DurableSession::open(&dir).unwrap();
    assert_eq!(s.session().session.db.row_count("t"), 4);
    assert_eq!(s.query(PROBE).unwrap().used_ast.as_deref(), Some("st"));
    std::fs::remove_dir_all(&dir).ok();
}

/// Kill/restart at each IO fail point: arm the point for exactly one
/// trigger mid-workload, crash, recover, and check the consistent-prefix
/// contract plus summary/base agreement.
#[test]
fn kill_at_each_io_failpoint_recovers_consistent_prefix() {
    let _serial = serialize();
    for fp in [
        "wal-append",
        "wal-fsync",
        "snapshot-write",
        "snapshot-rename",
    ] {
        failpoint::disarm_all();
        let dir = tmp_dir(&format!("kill-{fp}"));
        let mut acked = 0usize;
        {
            // Small cadence so snapshot fail points actually fire.
            let mut s = DurableSession::open_with(&dir, opts(3)).unwrap();
            s.run_script(SETUP).unwrap();
            let mut saw_snapshot_error = false;
            for i in 0..10i64 {
                if i == 4 {
                    failpoint::arm_times(fp, 1);
                }
                s.run_script(&format!("insert into t values ({i}, {})", i * 10))
                    .unwrap();
                if s.mode() == &DurabilityMode::Durable {
                    acked += 1;
                }
                // A later successful snapshot clears the error by design,
                // so remember whether it was ever surfaced.
                saw_snapshot_error |= s.last_snapshot_error().is_some_and(|e| e.contains(fp));
            }
            match fp {
                // WAL faults cost durability — explicitly.
                "wal-append" | "wal-fsync" => {
                    assert!(
                        matches!(s.mode(), DurabilityMode::Ephemeral { reason }
                                 if reason.contains(fp)),
                        "{fp}: mode {:?}",
                        s.mode()
                    );
                    assert!(acked >= 4, "{fp}: ops before the fault were acked");
                }
                // Snapshot faults do not: the WAL still holds everything.
                _ => {
                    assert_eq!(s.mode(), &DurabilityMode::Durable, "{fp}");
                    assert_eq!(acked, 10, "{fp}");
                    assert!(
                        saw_snapshot_error,
                        "{fp}: snapshot failure must be surfaced"
                    );
                }
            }
        } // crash
        failpoint::disarm_all();

        let mut s = DurableSession::open_with(&dir, opts(3)).unwrap();
        let persisted = s.session().session.db.row_count("t");
        assert!(
            persisted >= acked && persisted <= 10,
            "{fp}: recovered {persisted} rows, acked {acked}"
        );
        if fp == "wal-append" {
            assert!(
                s.recovery_report().torn_tail.is_some(),
                "{fp}: the short write must be reported as a torn tail"
            );
        }
        // Whatever prefix survived, summary and base data agree exactly.
        let with = s.query(PROBE).unwrap();
        assert_eq!(with.used_ast.as_deref(), Some("st"), "{fp}");
        let without = s.query_no_rewrite(PROBE).unwrap();
        assert_eq!(sort_rows(with.rows), sort_rows(without.rows), "{fp}");

        // The torn tail was healed: a second recovery scans clean.
        drop(s);
        let s = DurableSession::open_with(&dir, opts(3)).unwrap();
        assert!(s.recovery_report().torn_tail.is_none(), "{fp}");
        assert_eq!(s.session().session.db.row_count("t"), persisted, "{fp}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn wal_failure_degrades_to_explicit_ephemeral_mode() {
    let _serial = serialize();
    let dir = tmp_dir("ephemeral");
    let mut s = DurableSession::open(&dir).unwrap();
    s.run_script(SETUP).unwrap();
    s.run_script("insert into t values (1, 10)").unwrap();

    {
        let _fp = failpoint::armed("wal-append");
        s.run_script("insert into t values (2, 20)").unwrap();
    }
    // The op itself succeeded in memory; only durability was lost, and the
    // mode says so rather than pretending.
    assert!(matches!(s.mode(), DurabilityMode::Ephemeral { reason }
                     if reason.contains("wal-append")));
    assert_eq!(s.session().session.db.row_count("t"), 2);

    // The session keeps serving — including further (volatile) mutations.
    s.run_script("insert into t values (3, 30)").unwrap();
    let r = s.query(PROBE).unwrap();
    assert_eq!(r.rows.len(), 3);
    // Snapshots are refused in ephemeral mode (no log to anchor them).
    assert!(s.snapshot_now().is_err());
    drop(s);

    // Recovery yields the durable prefix only: the pre-fault row.
    let s = DurableSession::open(&dir).unwrap();
    assert_eq!(s.session().session.db.row_count("t"), 1);
    assert_eq!(s.mode(), &DurabilityMode::Durable, "durability restored");
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite regression test: recovery must advance the plan-cache
/// generation strictly past the pre-crash session's, so a plan cached
/// before the crash (same fingerprint, same epochs — replay reproduces
/// them exactly) can never validate against the recovered session.
#[test]
fn recovery_bumps_plan_generation_past_pre_crash_plans() {
    let _serial = serialize();
    let dir = tmp_dir("generation");
    let pre_crash_generation = {
        let mut s = DurableSession::open(&dir).unwrap();
        s.run_script(SETUP).unwrap();
        s.run_script("insert into t values (1, 10), (2, 20)")
            .unwrap();
        // Cache a plan, then confirm the cache actually serves it.
        s.query(PROBE).unwrap();
        s.query(PROBE).unwrap();
        assert!(s.session().plan_cache_stats().hits >= 1);
        s.plan_generation()
    };
    let s = DurableSession::open(&dir).unwrap();
    assert!(
        s.plan_generation() > pre_crash_generation,
        "recovered generation {} must exceed pre-crash {}",
        s.plan_generation(),
        pre_crash_generation
    );
    // Double recovery stays strictly above as well (and is deterministic).
    let s2 = DurableSession::open(&dir).unwrap();
    assert_eq!(s2.plan_generation(), s.plan_generation());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn staleness_and_invalidation_survive_recovery() {
    let _serial = serialize();
    let dir = tmp_dir("staleness");
    {
        let mut s = DurableSession::open(&dir).unwrap();
        s.run_script(SETUP).unwrap();
        s.run_script("insert into t values (1, 10)").unwrap();
        assert_eq!(s.query(PROBE).unwrap().used_ast.as_deref(), Some("st"));
        // Durably invalidate the base table: st is now stale.
        s.invalidate("t");
        let d = s.session().plan_detail(PROBE).unwrap();
        assert!(d.used.is_empty(), "stale AST must be skipped");
    }
    // Staleness is bookkeeping, and bookkeeping is state: it recovers.
    let mut s = DurableSession::open(&dir).unwrap();
    let d = s.session().plan_detail(PROBE).unwrap();
    assert!(d.used.is_empty(), "staleness survives the crash: {d:?}");
    assert!(d.skipped[0].reason.contains("stale"), "{d:?}");

    // A durable refresh clears it — across another crash too.
    s.refresh("st").unwrap();
    assert_eq!(s.query(PROBE).unwrap().used_ast.as_deref(), Some("st"));
    drop(s);
    let mut s = DurableSession::open(&dir).unwrap();
    assert_eq!(s.query(PROBE).unwrap().used_ast.as_deref(), Some("st"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn deregistration_survives_recovery() {
    let _serial = serialize();
    let dir = tmp_dir("dereg");
    {
        let mut s = DurableSession::open(&dir).unwrap();
        s.run_script(SETUP).unwrap();
        s.run_script("insert into t values (1, 10)").unwrap();
        s.deregister("st").unwrap();
        assert!(s.session().asts().is_empty());
    }
    let mut s = DurableSession::open(&dir).unwrap();
    assert!(s.session().asts().is_empty(), "deregistration recovered");
    assert!(!s.session().session.catalog.is_summary_table("st"));
    let r = s.query(PROBE).unwrap();
    assert_eq!(r.used_ast, None);
    assert_eq!(r.rows, vec![vec![Value::Int(1), Value::Int(10)]]);
    std::fs::remove_dir_all(&dir).ok();
}

/// An AST whose persisted definition no longer plans is *skipped* with a
/// typed [`RecoverError::AstRejected`] — recovery neither panics nor loads
/// it, and the rest of the session comes back intact.
#[test]
fn undecodable_recovered_ast_is_rejected_typed_not_fatal() {
    let _serial = serialize();
    let dir = tmp_dir("rejected");
    {
        let mut s = DurableSession::open(&dir).unwrap();
        s.run_script(SETUP).unwrap();
        s.run_script("insert into t values (1, 10), (2, 20)")
            .unwrap();
        s.snapshot_now().unwrap();
    }
    // Doctor the snapshot: replace the AST's definition with SQL that no
    // longer plans (references a column that does not exist).
    let mut state = snapshot::read_snapshot(&dir).unwrap().unwrap();
    assert_eq!(state.summaries.len(), 1);
    state.summaries[0].query_sql = "select nope, count(*) as c from t group by nope".into();
    snapshot::write_snapshot(&dir, &state, sumtab::persist::RetryPolicy::none()).unwrap();

    let mut s = DurableSession::open(&dir).unwrap();
    let rejected = &s.recovery_report().rejected;
    assert_eq!(rejected.len(), 1, "{rejected:?}");
    assert!(
        matches!(&rejected[0], RecoverError::AstRejected { name, reason }
                 if name == "st" && reason.contains("nope")),
        "{rejected:?}"
    );
    assert!(s.session().asts().is_empty(), "rejected AST not registered");
    // The rest of the session is intact and the rejected AST plays no part.
    let r = s.query(PROBE).unwrap();
    assert_eq!(r.used_ast, None);
    assert_eq!(
        sort_rows(r.rows),
        vec![
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(2), Value::Int(20)],
        ]
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_cadence_resets_the_log() {
    let _serial = serialize();
    let dir = tmp_dir("cadence");
    let mut s = DurableSession::open_with(&dir, opts(4)).unwrap();
    s.run_script(SETUP).unwrap();
    for i in 0..20i64 {
        s.run_script(&format!("insert into t values ({i}, 1)"))
            .unwrap();
    }
    assert!(s.last_snapshot_error().is_none());
    drop(s);
    // The WAL holds at most one cadence interval of records, not all 22.
    let out = sumtab::persist::wal::scan(&dir.join("wal.bin"))
        .unwrap()
        .unwrap();
    assert!(
        out.records.len() <= 4,
        "log should have been reset by snapshots, holds {}",
        out.records.len()
    );
    // Snapshot + tail replay reproduces everything.
    let s = DurableSession::open_with(&dir, opts(4)).unwrap();
    assert!(s.recovery_report().snapshot_lsn > 0, "snapshot was loaded");
    assert_eq!(s.session().session.db.row_count("t"), 20);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn double_recovery_is_idempotent() {
    let _serial = serialize();
    let dir = tmp_dir("double");
    {
        let mut s = DurableSession::open_with(&dir, opts(3)).unwrap();
        s.run_script(SETUP).unwrap();
        for i in 0..7i64 {
            s.run_script(&format!("insert into t values ({i}, {})", i + 1))
                .unwrap();
        }
        s.invalidate("t");
    }
    let observe = |s: &mut DurableSession| {
        (
            sort_rows(s.query(PROBE).unwrap().rows),
            sort_rows(s.query_no_rewrite("select k, sv, c from st").unwrap().rows),
            s.session().session.db.epoch("t"),
            s.plan_generation(),
        )
    };
    let mut a = DurableSession::open_with(&dir, opts(3)).unwrap();
    let obs_a = observe(&mut a);
    drop(a);
    let mut b = DurableSession::open_with(&dir, opts(3)).unwrap();
    let obs_b = observe(&mut b);
    assert_eq!(obs_a, obs_b, "recovery is idempotent");
    std::fs::remove_dir_all(&dir).ok();
}

/// CI kill/restart entry point: the `crash-recovery` job runs exactly this
/// test with `SUMTAB_FAILPOINTS` arming one IO fail point for the whole
/// process, so the *first* durable write fails. With nothing armed it
/// degenerates to a plain kill/restart round trip.
#[test]
fn env_armed_kill_restart() {
    let _serial = serialize();
    let armed_env = std::env::var("SUMTAB_FAILPOINTS").unwrap_or_default();
    let dir = tmp_dir("env-kill");
    let mut acked = 0usize;
    {
        let mut s = DurableSession::open_with(&dir, opts(3)).unwrap();
        // Under an env-armed wal fail point even the setup DDL may lose
        // durability; that is part of what this exercises.
        if s.run_script(SETUP).is_ok() {
            for i in 0..8i64 {
                s.run_script(&format!("insert into t values ({i}, {})", i * 2))
                    .unwrap();
                if s.mode() == &DurabilityMode::Durable {
                    acked += 1;
                }
            }
        }
    }
    failpoint::disarm_all();
    let mut s = DurableSession::open_with(&dir, opts(3)).unwrap();
    let persisted = s.session().session.db.row_count("t");
    assert!(
        persisted >= acked.min(8),
        "env `{armed_env}`: recovered {persisted} rows < acked {acked}"
    );
    // Whatever survived is consistent: if the AST recovered, it agrees
    // with base data; if not, queries still answer from base.
    if persisted > 0 {
        let with = s.query(PROBE).unwrap();
        let without = s.query_no_rewrite(PROBE).unwrap();
        assert_eq!(sort_rows(with.rows), sort_rows(without.rows));
    }
    // Second recovery is clean and identical.
    drop(s);
    let s = DurableSession::open_with(&dir, opts(3)).unwrap();
    assert!(s.recovery_report().torn_tail.is_none());
    assert_eq!(s.session().session.db.row_count("t"), persisted);
    std::fs::remove_dir_all(&dir).ok();
}
