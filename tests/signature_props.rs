//! Signature-filter soundness: the fast filtering phase may only reject
//! candidates the full matcher would reject too, i.e.
//! `filter(candidates) ⊇ {ast | rewrite(query, ast) matches}`.
//!
//! Query/AST pairs are drawn with the in-tree deterministic PRNG over the
//! credit-card schema (same spec pool as `soundness_prop.rs`), so every run
//! explores the same pairs and failures reproduce by seed alone.

// Tests and examples assert on fixed inputs; unwrap/expect failures are
// test failures, which is exactly what we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use sumtab::datagen::SplitMix64;
use sumtab::matcher::signature::{graph_signature, survives};
use sumtab::{Catalog, RegisteredAst, Rewriter};

/// Grouping expressions the generator can pick from.
const GROUPINGS: &[&str] = &[
    "faid",
    "flid",
    "fpgid",
    "year(date)",
    "month(date)",
    "qty",
    "year(date) % 100",
];

/// Aggregate expressions (name, sql).
const AGGS: &[(&str, &str)] = &[
    ("cnt", "count(*)"),
    ("sq", "sum(qty)"),
    ("sv", "sum(qty * price)"),
    ("mn", "min(price)"),
    ("mx", "max(price)"),
    ("cq", "count(qty)"),
];

/// WHERE predicates (those marked `true` require the Loc join).
const PREDS: &[(&str, bool)] = &[
    ("year(date) > 1990", false),
    ("month(date) >= 6", false),
    ("qty > 2", false),
    ("disc > 0.1", false),
    ("country = 'USA'", true),
    ("price > 50", false),
];

struct Spec {
    groupings: Vec<usize>,
    aggs: Vec<usize>,
    preds: Vec<usize>,
    grouped: bool,
}

impl Spec {
    fn sql(&self) -> String {
        let mut select: Vec<String> = Vec::new();
        if self.grouped {
            select.extend(
                self.groupings
                    .iter()
                    .enumerate()
                    .map(|(i, &g)| format!("{} as g{i}", GROUPINGS[g])),
            );
            for &a in &self.aggs {
                let (name, sql) = AGGS[a];
                select.push(format!("{sql} as {name}"));
            }
        } else {
            select.push("qty".to_string());
            select.push("price".to_string());
        }
        let needs_loc = self.preds.iter().any(|&i| PREDS[i].1);
        let from = if needs_loc { "trans, loc" } else { "trans" };
        let mut preds: Vec<String> = self.preds.iter().map(|&i| PREDS[i].0.to_string()).collect();
        if needs_loc {
            preds.insert(0, "flid = lid".to_string());
        }
        let mut sql = format!("select {} from {from}", select.join(", "));
        if !preds.is_empty() {
            sql.push_str(&format!(" where {}", preds.join(" and ")));
        }
        if self.grouped {
            let gb: Vec<&str> = self.groupings.iter().map(|&g| GROUPINGS[g]).collect();
            sql.push_str(&format!(" group by {}", gb.join(", ")));
        }
        sql
    }
}

fn random_spec(r: &mut SplitMix64) -> Spec {
    Spec {
        groupings: r.subsequence(GROUPINGS.len(), 1, 3),
        aggs: r.subsequence(AGGS.len(), 1, 3),
        preds: r.subsequence(PREDS.len(), 0, 2),
        grouped: r.gen_bool(0.8),
    }
}

/// The filter property itself: whenever the full matcher produces a
/// rewrite, the signature test must have let the candidate through.
#[test]
fn filter_never_rejects_matchable_pairs() {
    let cat = Catalog::credit_card_sample();
    let rewriter = Rewriter::new(&cat);
    let mut r = SplitMix64::new(0x516_0001);
    let mut matched = 0usize;
    let mut filtered = 0usize;
    for _ in 0..192 {
        let query_sql = random_spec(&mut r).sql();
        let ast_sql = random_spec(&mut r).sql();
        let ast = RegisteredAst::from_sql("past", &ast_sql, &cat).unwrap();
        let q =
            sumtab::build_query(&sumtab::parser::parse_query(&query_sql).unwrap(), &cat).unwrap();
        let survives_filter = survives(&graph_signature(&q), &ast.signature, &cat);
        let matches = rewriter.rewrite(&q, &ast).unwrap().is_some();
        assert!(
            survives_filter || !matches,
            "filter rejected a matchable AST!\n  query: {query_sql}\n  ast:   {ast_sql}"
        );
        matched += usize::from(matches);
        filtered += usize::from(!survives_filter);
    }
    // Guard the test's own power: the pool must produce both real matches
    // (so the implication is exercised) and real rejections (so the filter
    // is not vacuously permissive).
    assert!(matched > 0, "spec pool produced no matching pairs");
    assert!(filtered > 0, "spec pool produced no filtered pairs");
}

/// End-to-end agreement: the filtered parallel sweep returns exactly the
/// unfiltered serial sweep's rewrites, in the same order.
#[test]
fn filtered_sweep_equals_unfiltered_sweep() {
    let cat = Catalog::credit_card_sample();
    let rewriter = Rewriter::new(&cat);
    let mut r = SplitMix64::new(0x516_0002);
    for _ in 0..16 {
        let asts: Vec<RegisteredAst> = (0..8)
            .map(|i| {
                RegisteredAst::from_sql(&format!("past{i}"), &random_spec(&mut r).sql(), &cat)
                    .unwrap()
            })
            .collect();
        let query_sql = random_spec(&mut r).sql();
        let q =
            sumtab::build_query(&sumtab::parser::parse_query(&query_sql).unwrap(), &cat).unwrap();
        let fast: Vec<String> = rewriter
            .rewrite_all(&q, &asts)
            .into_iter()
            .map(|rw| rw.ast_name)
            .collect();
        let slow: Vec<String> = rewriter
            .rewrite_all_unfiltered(&q, &asts)
            .into_iter()
            .map(|rw| rw.ast_name)
            .collect();
        assert_eq!(fast, slow, "sweeps diverged for query: {query_sql}");
    }
}
