//! A TPC-D-flavored workload — the benchmark the paper actually reports on
//! ("Experience with the TPC-D benchmark ... has shown that ASTs can often
//! improve the response time of decision-support queries by orders of
//! magnitude"). A lineitem/orders/part/customer star schema, built and
//! loaded through plain SQL, with two warehouse ASTs answering
//! TPC-D-style pricing-summary and volume queries.

// Tests and examples assert on fixed inputs; unwrap/expect failures are
// test failures, which is exactly what we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use sumtab::{sort_rows, SummarySession, Value};

fn setup() -> SummarySession {
    let mut s = SummarySession::new();
    s.run_script(
        "create table part (partkey int not null, brand varchar not null,
                            ptype varchar not null, primary key (partkey));
         create table customer (custkey int not null, segment varchar not null,
                                nation varchar not null, primary key (custkey));
         create table orders (orderkey int not null, ocustkey int not null,
                              odate date not null, primary key (orderkey));
         create table lineitem (lorderkey int not null, lpartkey int not null,
                                quantity int not null, extendedprice double not null,
                                discount double not null, returnflag varchar not null);
         alter table lineitem add foreign key (lpartkey) references part;
         alter table lineitem add foreign key (lorderkey) references orders;
         alter table orders add foreign key (ocustkey) references customer;",
    )
    .unwrap();

    // Deterministic mini-SF data.
    let mut script = String::new();
    for p in 0..20 {
        script.push_str(&format!(
            "insert into part values ({p}, 'Brand#{}', '{}');",
            p % 5,
            ["ECONOMY", "STANDARD", "PROMO"][p % 3]
        ));
    }
    for c in 0..10 {
        script.push_str(&format!(
            "insert into customer values ({c}, '{}', '{}');",
            ["BUILDING", "AUTOMOBILE", "MACHINERY"][c % 3],
            ["FRANCE", "GERMANY", "US"][c % 3]
        ));
    }
    let mut x: u64 = 7;
    let mut rnd = |m: u64| {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (x >> 33) % m
    };
    for o in 0..120 {
        script.push_str(&format!(
            "insert into orders values ({o}, {}, date '199{}-{:02}-15');",
            rnd(10),
            2 + rnd(4),
            1 + rnd(12)
        ));
    }
    s.run_script(&script).unwrap();
    let mut script = String::new();
    for l in 0..1500 {
        let _ = l;
        script.push_str(&format!(
            "insert into lineitem values ({}, {}, {}, {}.0, 0.0{}, '{}');",
            rnd(120),
            rnd(20),
            1 + rnd(50),
            900 + rnd(100_000),
            rnd(9),
            ["N", "R", "A"][rnd(3) as usize]
        ));
    }
    s.run_script(&script).unwrap();

    // Warehouse ASTs.
    s.run_script(
        "create summary table pricing_summary as (
             select returnflag, lpartkey, count(*) as cnt,
                    sum(quantity) as sum_qty,
                    sum(extendedprice) as sum_base,
                    sum(extendedprice * (1 - discount)) as sum_disc
             from lineitem group by returnflag, lpartkey);
         create summary table volume_by_order as (
             select lorderkey, count(*) as cnt, sum(extendedprice) as revenue
             from lineitem group by lorderkey);",
    )
    .unwrap();
    s
}

/// Run with rewriting, verify routing and result equality vs base tables.
fn check_routed(s: &mut SummarySession, sql: &str, expect_ast: &str) {
    let fast = s.query(sql).unwrap();
    assert_eq!(
        fast.used_ast.as_deref(),
        Some(expect_ast),
        "routing for: {sql}\nplan: {}",
        s.explain(sql).unwrap()
    );
    let plain = s.query_no_rewrite(sql).unwrap();
    let (a, b) = (sort_rows(fast.rows), sort_rows(plain.rows));
    let close = a.len() == b.len()
        && a.iter().zip(&b).all(|(ra, rb)| {
            ra.iter().zip(rb).all(|(x, y)| match (x, y) {
                (Value::Double(p), Value::Double(q)) => {
                    (p - q).abs() <= p.abs().max(q.abs()).max(1.0) * 1e-9
                }
                _ => x == y,
            })
        });
    assert!(close, "results differ for {sql}");
}

#[test]
fn q1_style_pricing_summary() {
    let mut s = setup();
    check_routed(
        &mut s,
        "select returnflag, sum(quantity) as sum_qty, \
                sum(extendedprice) as sum_base, \
                sum(extendedprice * (1 - discount)) as sum_disc, \
                count(*) as count_order \
         from lineitem group by returnflag",
        "pricing_summary",
    );
}

#[test]
fn q1_style_with_having() {
    let mut s = setup();
    check_routed(
        &mut s,
        "select returnflag, count(*) as c from lineitem \
         group by returnflag having count(*) > 100",
        "pricing_summary",
    );
}

#[test]
fn brand_rollup_via_rejoin() {
    let mut s = setup();
    check_routed(
        &mut s,
        "select brand, sum(quantity) as q from lineitem, part \
         where lpartkey = partkey group by brand",
        "pricing_summary",
    );
}

#[test]
fn promo_type_filter_via_rejoin_predicate() {
    let mut s = setup();
    check_routed(
        &mut s,
        "select ptype, count(*) as c from lineitem, part \
         where lpartkey = partkey and ptype = 'PROMO' group by ptype",
        "pricing_summary",
    );
}

#[test]
fn order_volume_histogram_multi_block() {
    // Histogram of per-order line counts — the Figure 10 pattern on the
    // TPC-D schema, answered from volume_by_order.
    let mut s = setup();
    check_routed(
        &mut s,
        "select cnt, count(*) as orders_with from \
         (select lorderkey, count(*) as cnt from lineitem group by lorderkey) as v \
         group by cnt",
        "volume_by_order",
    );
}

#[test]
fn revenue_per_customer_nation_via_double_rejoin() {
    // volume_by_order + rejoin orders + rejoin customer, regrouped.
    let mut s = setup();
    check_routed(
        &mut s,
        "select nation, sum(extendedprice) as rev \
         from lineitem, orders, customer \
         where lorderkey = orderkey and ocustkey = custkey \
         group by nation",
        "volume_by_order",
    );
}

#[test]
fn detail_queries_fall_back_to_base_tables() {
    let mut s = setup();
    // Needs the discount column at line granularity — no AST can serve it.
    let r = s
        .query("select lorderkey, discount from lineitem where discount > 0.05")
        .unwrap();
    assert_eq!(r.used_ast, None);
    assert!(!r.rows.is_empty());
    // AVG over a column no AST pre-aggregates as needed.
    let r = s
        .query("select returnflag, min(discount) as m from lineitem group by returnflag")
        .unwrap();
    assert_eq!(r.used_ast, None);
}

#[test]
fn summary_sizes_actually_summarize() {
    let s = setup();
    let fact = s.session.db.row_count("lineitem");
    let ps = s.session.db.row_count("pricing_summary");
    let vo = s.session.db.row_count("volume_by_order");
    assert!(
        fact >= 10 * ps / 2,
        "pricing_summary summarizes: {fact} vs {ps}"
    );
    assert!(vo < fact, "volume_by_order summarizes: {fact} vs {vo}");
}
