//! Randomized soundness: for generated (query, AST) pairs over the
//! credit-card schema, whenever the matcher produces a rewrite, the
//! rewritten query returns exactly the original's multiset of rows on
//! generated data.
//!
//! This is the repository's strongest correctness guarantee: the matcher is
//! free to refuse (it implements sufficient conditions only), but it must
//! never rewrite wrongly. Cases are drawn with the in-tree deterministic
//! PRNG, so every run explores the same pairs and failures reproduce by
//! seed alone.

// Tests and examples assert on fixed inputs; unwrap/expect failures are
// test failures, which is exactly what we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use sumtab::datagen::{generate, GenConfig, SplitMix64};
use sumtab::{sort_rows, RegisteredAst, Rewriter};

/// Grouping expressions the generator can pick from.
const GROUPINGS: &[&str] = &[
    "faid",
    "flid",
    "fpgid",
    "year(date)",
    "month(date)",
    "qty",
    "year(date) % 100",
];

/// Aggregate expressions (name, sql).
const AGGS: &[(&str, &str)] = &[
    ("cnt", "count(*)"),
    ("sq", "sum(qty)"),
    ("sv", "sum(qty * price)"),
    ("mn", "min(price)"),
    ("mx", "max(price)"),
    ("cq", "count(qty)"),
];

/// WHERE predicates (those marked `true` require the Loc join).
const PREDS: &[(&str, bool)] = &[
    ("year(date) > 1990", false),
    ("month(date) >= 6", false),
    ("qty > 2", false),
    ("disc > 0.1", false),
    ("country = 'USA'", true),
    ("price > 50", false),
];

#[derive(Debug, Clone)]
struct SpecQuery {
    groupings: Vec<usize>,
    aggs: Vec<usize>,
    preds: Vec<usize>,
    having_cnt: Option<i64>,
    /// When true, group by ROLLUP(groupings) instead of plain GROUP BY —
    /// exercising the Section 5 cube patterns.
    rollup: bool,
}

impl SpecQuery {
    fn needs_loc(&self) -> bool {
        self.preds.iter().any(|&i| PREDS[i].1)
    }

    fn sql(&self) -> String {
        let mut select: Vec<String> = self
            .groupings
            .iter()
            .enumerate()
            .map(|(i, &g)| format!("{} as g{i}", GROUPINGS[g]))
            .collect();
        for &a in &self.aggs {
            let (name, sql) = AGGS[a];
            select.push(format!("{sql} as {name}"));
        }
        let from = if self.needs_loc() {
            "trans, loc"
        } else {
            "trans"
        };
        let mut preds: Vec<String> = self.preds.iter().map(|&i| PREDS[i].0.to_string()).collect();
        if self.needs_loc() {
            preds.insert(0, "flid = lid".to_string());
        }
        let mut sql = format!("select {} from {from}", select.join(", "));
        if !preds.is_empty() {
            sql.push_str(&format!(" where {}", preds.join(" and ")));
        }
        if !self.groupings.is_empty() {
            let gb: Vec<&str> = self.groupings.iter().map(|&g| GROUPINGS[g]).collect();
            if self.rollup {
                sql.push_str(&format!(" group by rollup({})", gb.join(", ")));
            } else {
                sql.push_str(&format!(" group by {}", gb.join(", ")));
            }
        }
        if let Some(h) = self.having_cnt {
            sql.push_str(&format!(" having count(*) > {h}"));
        }
        sql
    }
}

/// Draw a random spec (mirrors the old proptest strategy).
fn random_spec(r: &mut SplitMix64, max_preds: usize) -> SpecQuery {
    let groupings = r.subsequence(GROUPINGS.len(), 1, 3);
    let aggs = r.subsequence(AGGS.len(), 1, 3);
    let preds = r.subsequence(PREDS.len(), 0, max_preds);
    let having_cnt = r.gen_bool(0.5).then(|| r.gen_i64(1, 4));
    let rollup = r.gen_bool(0.25);
    SpecQuery {
        groupings,
        aggs,
        preds,
        having_cnt: if rollup { None } else { having_cnt },
        rollup,
    }
}

fn fixture() -> (sumtab::Catalog, sumtab::Database) {
    generate(&GenConfig {
        transactions: 800,
        accounts: 8,
        customers: 6,
        locations: 6,
        pgroups: 3,
        years: 3,
        ..GenConfig::default()
    })
}

/// Random query vs random AST: any produced rewrite is result-preserving.
#[test]
fn rewrites_are_sound() {
    let (cat, db0) = fixture();
    let mut r = SplitMix64::new(0x50_0001);
    for _ in 0..64 {
        let query = random_spec(&mut r, 2);
        let ast = random_spec(&mut r, 1);
        let mut db = db0.clone();
        let ast_sql = ast.sql();
        let query_sql = query.sql();
        let registered = RegisteredAst::from_sql("past", &ast_sql, &cat).unwrap();
        sumtab::engine::materialize("past", &registered.graph, &cat, &mut db).unwrap();
        let q =
            sumtab::build_query(&sumtab::parser::parse_query(&query_sql).unwrap(), &cat).unwrap();
        if let Some(rw) = Rewriter::new(&cat).rewrite(&q, &registered).unwrap() {
            let original = sumtab::engine::execute(&q, &db).unwrap();
            let rewritten = sumtab::engine::execute(&rw.graph, &db).unwrap();
            assert_eq!(
                sort_rows(original),
                sort_rows(rewritten),
                "unsound rewrite!\n  query: {}\n  ast:   {}\n  rewritten: {}",
                query_sql,
                ast_sql,
                sumtab::render_graph_sql(&rw.graph)
            );
        }
    }
}

/// A query must always match an identical AST (reflexivity of matching).
#[test]
fn identical_definitions_always_match() {
    let (cat, _db) = fixture();
    let mut r = SplitMix64::new(0x50_0002);
    for _ in 0..64 {
        // HAVING-free specs only: a HAVING clause on the AST constrains its
        // content, and matching it requires predicate-equivalence at the top
        // box, which holds — but keep the reflexivity property unconditional
        // by clearing it. Rollup ASTs additionally need non-nullable
        // grouping columns for slicing, which the pool guarantees.
        let spec = SpecQuery {
            having_cnt: None,
            ..random_spec(&mut r, 2)
        };
        let sql = spec.sql();
        let registered = RegisteredAst::from_sql("past", &sql, &cat).unwrap();
        let q = sumtab::build_query(&sumtab::parser::parse_query(&sql).unwrap(), &cat).unwrap();
        assert!(
            Rewriter::new(&cat)
                .rewrite(&q, &registered)
                .unwrap()
                .is_some(),
            "query failed to match its own definition: {sql}"
        );
    }
}

/// Rollup-AST completeness: a plain GROUP BY over any prefix of a
/// rollup AST's columns must match (the prefix cuboid exists by
/// construction), and the slicing rewrite must be sound.
#[test]
fn rollup_prefix_cuboids_match_and_are_sound() {
    let (cat, db0) = fixture();
    let mut r = SplitMix64::new(0x50_0003);
    for _ in 0..32 {
        let pool = [0usize, 1, 3, 4];
        let picked = r.subsequence(pool.len(), 2, 3);
        let groupings: Vec<usize> = picked.iter().map(|&i| pool[i]).collect();
        let prefix = r.gen_i64(1, 2) as usize;
        let mut db = db0.clone();
        let ast_spec = SpecQuery {
            groupings: groupings.clone(),
            aggs: vec![0, 1],
            preds: vec![],
            having_cnt: None,
            rollup: true,
        };
        let query_spec = SpecQuery {
            groupings: groupings[..prefix.min(groupings.len())].to_vec(),
            aggs: vec![0],
            preds: vec![],
            having_cnt: None,
            rollup: false,
        };
        let registered = RegisteredAst::from_sql("past", &ast_spec.sql(), &cat).unwrap();
        sumtab::engine::materialize("past", &registered.graph, &cat, &mut db).unwrap();
        let q = sumtab::build_query(
            &sumtab::parser::parse_query(&query_spec.sql()).unwrap(),
            &cat,
        )
        .unwrap();
        let rw = Rewriter::new(&cat).rewrite(&q, &registered).unwrap();
        assert!(
            rw.is_some(),
            "prefix cuboid must match\n  query: {}\n  ast: {}",
            query_spec.sql(),
            ast_spec.sql()
        );
        let rw = rw.unwrap();
        let original = sumtab::engine::execute(&q, &db).unwrap();
        let rewritten = sumtab::engine::execute(&rw.graph, &db).unwrap();
        assert_eq!(sort_rows(original), sort_rows(rewritten));
    }
}

/// A coarser re-grouping of an AST's own definition must match whenever
/// the query's groupings/aggregates/predicates are drawn from the AST's.
#[test]
fn coarser_regrouping_matches() {
    let (cat, _db) = fixture();
    let mut r = SplitMix64::new(0x50_0004);
    for _ in 0..32 {
        let pool = [0usize, 1, 3, 4];
        let picked = r.subsequence(pool.len(), 2, 4);
        let groupings: Vec<usize> = picked.iter().map(|&i| pool[i]).collect();
        let query_take = r.gen_i64(1, 2) as usize;
        let ast_spec = SpecQuery {
            groupings: groupings.clone(),
            aggs: vec![0, 1],
            preds: vec![],
            having_cnt: None,
            rollup: false,
        };
        let query_spec = SpecQuery {
            groupings: groupings[..query_take.min(groupings.len())].to_vec(),
            aggs: vec![0],
            preds: vec![],
            having_cnt: None,
            rollup: false,
        };
        let registered = RegisteredAst::from_sql("past", &ast_spec.sql(), &cat).unwrap();
        let q = sumtab::build_query(
            &sumtab::parser::parse_query(&query_spec.sql()).unwrap(),
            &cat,
        )
        .unwrap();
        assert!(
            Rewriter::new(&cat)
                .rewrite(&q, &registered)
                .unwrap()
                .is_some(),
            "coarser regrouping should match\n  query: {}\n  ast: {}",
            query_spec.sql(),
            ast_spec.sql()
        );
    }
}
