//! The SQL syntax tree produced by the parser.
//!
//! This is a faithful surface-syntax representation; semantic analysis
//! (name resolution, aggregate placement, supergroup canonicalization)
//! happens in `sumtab-qgm`.

use sumtab_catalog::{SqlType, Value};

/// A top-level SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A `SELECT` query.
    Query(Box<Query>),
    /// `CREATE TABLE name (col type [NOT NULL], ..., [PRIMARY KEY (cols)])`.
    CreateTable(CreateTable),
    /// `CREATE SUMMARY TABLE name AS (query)` — registers an AST.
    CreateSummaryTable {
        /// The summary table's name.
        name: String,
        /// Its defining query.
        query: Box<Query>,
    },
    /// `ALTER TABLE child ADD FOREIGN KEY (cols) REFERENCES parent`.
    AddForeignKey {
        /// Referencing table.
        child_table: String,
        /// Referencing columns.
        columns: Vec<String>,
        /// Referenced table (its primary key is the target).
        parent_table: String,
    },
    /// `INSERT INTO table VALUES (..), (..)`.
    Insert {
        /// Target table.
        table: String,
        /// Literal rows.
        rows: Vec<Vec<Expr>>,
    },
    /// `DELETE FROM table [WHERE predicate]`.
    Delete {
        /// Target table.
        table: String,
        /// Row filter; `None` deletes every row.
        where_clause: Option<Expr>,
    },
    /// `UPDATE table SET col = expr, .. [WHERE predicate]`.
    Update {
        /// Target table.
        table: String,
        /// Assignments in source order; expressions may read the old row.
        sets: Vec<(String, Expr)>,
        /// Row filter; `None` updates every row.
        where_clause: Option<Expr>,
    },
}

/// A `CREATE TABLE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    /// Table name.
    pub name: String,
    /// Column definitions in order.
    pub columns: Vec<ColumnDef>,
    /// Primary-key column names, if declared.
    pub primary_key: Vec<String>,
}

/// One column in a `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub ty: SqlType,
    /// True unless `NOT NULL` was specified.
    pub nullable: bool,
}

/// A query expression: a single select block (set operations are out of
/// scope; the paper excludes them, and cube queries express their unions
/// internally).
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// `SELECT DISTINCT`?
    pub distinct: bool,
    /// The projection list.
    pub select: Vec<SelectItem>,
    /// `FROM` items (comma or `JOIN ... ON` joins, already flattened; `ON`
    /// conditions are folded into `where_clause` by the parser).
    pub from: Vec<TableRef>,
    /// `WHERE` predicate.
    pub where_clause: Option<Expr>,
    /// `GROUP BY` elements.
    pub group_by: Vec<GroupingElement>,
    /// `HAVING` predicate.
    pub having: Option<Expr>,
    /// `ORDER BY` keys.
    pub order_by: Vec<OrderKey>,
    /// `LIMIT` row count.
    pub limit: Option<u64>,
}

/// An item in the `SELECT` list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// A bare `*`.
    Wildcard,
    /// `qualifier.*`.
    QualifiedWildcard(String),
    /// An expression with an optional `AS` alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// The alias, if given.
        alias: Option<String>,
    },
}

/// A `FROM`-list item.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// A named base (or summary) table with an optional alias.
    Named {
        /// Table name.
        name: String,
        /// Correlation name, if given.
        alias: Option<String>,
    },
    /// A derived table `(query) AS alias`.
    Derived {
        /// The subquery.
        query: Box<Query>,
        /// Its mandatory correlation name.
        alias: String,
    },
}

impl TableRef {
    /// The name other parts of the query use to refer to this item.
    pub fn binding_name(&self) -> &str {
        match self {
            TableRef::Named { name, alias } => alias.as_deref().unwrap_or(name),
            TableRef::Derived { alias, .. } => alias,
        }
    }
}

/// A `GROUP BY` element; elements combine by cross product per SQL:1999.
#[derive(Debug, Clone, PartialEq)]
pub enum GroupingElement {
    /// A plain grouping expression.
    Expr(Expr),
    /// `ROLLUP(e1, ..., en)`.
    Rollup(Vec<Expr>),
    /// `CUBE(e1, ..., en)`.
    Cube(Vec<Expr>),
    /// `GROUPING SETS ((..), (..), ())`.
    GroupingSets(Vec<Vec<Expr>>),
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// The sort expression.
    pub expr: Expr,
    /// Descending?
    pub desc: bool,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `AND`
    And,
    /// `OR`
    Or,
}

impl BinOp {
    /// SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        }
    }

    /// True for `=`, `<>`, `<`, `<=`, `>`, `>=`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical NOT.
    Not,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)` or `COUNT(expr)`.
    Count,
    /// `SUM(expr)`.
    Sum,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
    /// `AVG(expr)` (normalized to SUM/COUNT during QGM construction).
    Avg,
}

impl AggFunc {
    /// SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        }
    }

    /// Recognize an aggregate function name.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            "AVG" => Some(AggFunc::Avg),
            _ => None,
        }
    }
}

/// Scalar built-in functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarFunc {
    /// `YEAR(date)` — the paper's Time-dimension extractor.
    Year,
    /// `MONTH(date)`.
    Month,
    /// `DAY(date)`.
    Day,
    /// `ABS(x)`.
    Abs,
    /// `UPPER(s)`.
    Upper,
    /// `LOWER(s)`.
    Lower,
}

impl ScalarFunc {
    /// SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            ScalarFunc::Year => "YEAR",
            ScalarFunc::Month => "MONTH",
            ScalarFunc::Day => "DAY",
            ScalarFunc::Abs => "ABS",
            ScalarFunc::Upper => "UPPER",
            ScalarFunc::Lower => "LOWER",
        }
    }

    /// Recognize a scalar built-in by name.
    pub fn from_name(name: &str) -> Option<ScalarFunc> {
        match name.to_ascii_uppercase().as_str() {
            "YEAR" => Some(ScalarFunc::Year),
            "MONTH" => Some(ScalarFunc::Month),
            "DAY" => Some(ScalarFunc::Day),
            "ABS" => Some(ScalarFunc::Abs),
            "UPPER" => Some(ScalarFunc::Upper),
            "LOWER" => Some(ScalarFunc::Lower),
            _ => None,
        }
    }

    /// Number of arguments the function takes.
    pub fn arity(self) -> usize {
        1
    }
}

/// A surface-syntax expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Lit(Value),
    /// Possibly-qualified column reference.
    Column {
        /// Table qualifier, if written.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Aggregate call. `arg = None` means `COUNT(*)`.
    Agg {
        /// The aggregate function.
        func: AggFunc,
        /// Argument (`None` only for `COUNT(*)`).
        arg: Option<Box<Expr>>,
        /// `DISTINCT`?
        distinct: bool,
    },
    /// Scalar built-in function call.
    Func {
        /// The function.
        func: ScalarFunc,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `CASE [operand] WHEN .. THEN .. [ELSE ..] END`.
    Case {
        /// Optional comparand (simple CASE).
        operand: Option<Box<Expr>>,
        /// `(when, then)` arms.
        arms: Vec<(Expr, Expr)>,
        /// `ELSE` result.
        else_expr: Option<Box<Expr>>,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// True for `NOT BETWEEN`.
        negated: bool,
    },
    /// `expr [NOT] IN (e1, e2, ...)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate list.
        list: Vec<Expr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern` (pattern restricted to a literal).
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// The literal pattern (`%` and `_` wildcards).
        pattern: String,
        /// True for `NOT LIKE`.
        negated: bool,
    },
    /// A scalar subquery `(SELECT ...)` used as a value.
    ScalarSubquery(Box<Query>),
}

impl Expr {
    /// Convenience constructor for binary expressions.
    pub fn bin(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Convenience constructor for unqualified column references.
    pub fn col(name: &str) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.to_ascii_lowercase(),
        }
    }

    /// True when the expression contains an aggregate call at any depth
    /// (not descending into scalar subqueries, which have their own scope).
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Agg { .. } => true,
            Expr::Lit(_) | Expr::Column { .. } | Expr::ScalarSubquery(_) => false,
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Unary { expr, .. } => expr.contains_aggregate(),
            Expr::Func { args, .. } => args.iter().any(Expr::contains_aggregate),
            Expr::Case {
                operand,
                arms,
                else_expr,
            } => {
                operand.as_deref().is_some_and(Expr::contains_aggregate)
                    || arms
                        .iter()
                        .any(|(w, t)| w.contains_aggregate() || t.contains_aggregate())
                    || else_expr.as_deref().is_some_and(Expr::contains_aggregate)
            }
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::Between {
                expr, low, high, ..
            } => expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::Like { expr, .. } => expr.contains_aggregate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_aggregate_walks_structure() {
        let agg = Expr::Agg {
            func: AggFunc::Count,
            arg: None,
            distinct: false,
        };
        let e = Expr::bin(BinOp::Gt, agg, Expr::Lit(Value::Int(10)));
        assert!(e.contains_aggregate());
        assert!(!Expr::col("x").contains_aggregate());
        // Scalar subqueries are their own scope.
        let q = Query {
            distinct: false,
            select: vec![SelectItem::Expr {
                expr: Expr::Agg {
                    func: AggFunc::Count,
                    arg: None,
                    distinct: false,
                },
                alias: None,
            }],
            from: vec![],
            where_clause: None,
            group_by: vec![],
            having: None,
            order_by: vec![],
            limit: None,
        };
        assert!(!Expr::ScalarSubquery(Box::new(q)).contains_aggregate());
    }

    #[test]
    fn binding_names() {
        let t = TableRef::Named {
            name: "trans".into(),
            alias: Some("t".into()),
        };
        assert_eq!(t.binding_name(), "t");
        let u = TableRef::Named {
            name: "trans".into(),
            alias: None,
        };
        assert_eq!(u.binding_name(), "trans");
    }

    #[test]
    fn agg_func_names() {
        assert_eq!(AggFunc::from_name("count"), Some(AggFunc::Count));
        assert_eq!(AggFunc::from_name("SUM"), Some(AggFunc::Sum));
        assert_eq!(AggFunc::from_name("median"), None);
        assert_eq!(ScalarFunc::from_name("Year"), Some(ScalarFunc::Year));
    }
}
