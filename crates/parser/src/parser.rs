//! Recursive-descent parser.

use crate::lexer::Lexer;
use crate::syntax::*;
use crate::token::{Keyword, Spanned, Token};
use sumtab_catalog::{Date, SqlType, Value};

/// What went wrong while parsing; lets callers distinguish resource-limit
/// failures (nesting too deep) from ordinary syntax errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// The lexer rejected the input.
    Lex,
    /// The token stream does not form a valid statement/expression.
    Syntax,
    /// Expression or subquery nesting exceeded [`MAX_PARSE_DEPTH`].
    DepthExceeded,
}

/// A parse error with byte offset and message.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Classification of the failure.
    pub kind: ParseErrorKind,
    /// Human-readable message.
    pub message: String,
    /// Byte offset of the offending token.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Maximum nesting depth of expressions/subqueries the recursive-descent
/// parser will follow before returning [`ParseErrorKind::DepthExceeded`]
/// (instead of overflowing the stack on adversarial input).
pub const MAX_PARSE_DEPTH: usize = 128;

/// Parse a single `SELECT` query.
pub fn parse_query(sql: &str) -> Result<Query, ParseError> {
    let mut p = Parser::new(sql)?;
    let q = p.query()?;
    p.expect_end()?;
    Ok(q)
}

/// Parse a single statement.
pub fn parse_statement(sql: &str) -> Result<Statement, ParseError> {
    let mut p = Parser::new(sql)?;
    let s = p.statement()?;
    p.eat(&Token::Semicolon);
    p.expect_end()?;
    Ok(s)
}

/// Parse a semicolon-separated script.
pub fn parse_statements(sql: &str) -> Result<Vec<Statement>, ParseError> {
    let mut p = Parser::new(sql)?;
    let mut out = Vec::new();
    loop {
        while p.eat(&Token::Semicolon) {}
        if p.at_end() {
            return Ok(out);
        }
        out.push(p.statement()?);
    }
}

/// Parse a standalone scalar expression (used by tests and tools).
pub fn parse_expr(sql: &str) -> Result<Expr, ParseError> {
    let mut p = Parser::new(sql)?;
    let e = p.expr()?;
    p.expect_end()?;
    Ok(e)
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    /// Current recursion depth of `expr`/`query` frames (bounded by
    /// [`MAX_PARSE_DEPTH`]).
    depth: usize,
}

impl Parser {
    fn new(sql: &str) -> Result<Parser, ParseError> {
        let toks = Lexer::tokenize(sql).map_err(|e| ParseError {
            kind: ParseErrorKind::Lex,
            message: e.message,
            offset: e.offset,
        })?;
        Ok(Parser {
            toks,
            pos: 0,
            depth: 0,
        })
    }

    /// Bump the recursion depth, failing with `DepthExceeded` past the cap.
    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            return Err(ParseError {
                kind: ParseErrorKind::DepthExceeded,
                message: format!("nesting deeper than {MAX_PARSE_DEPTH} levels"),
                offset: self.offset(),
            });
        }
        Ok(())
    }

    fn peek(&self) -> &Token {
        &self.toks[self.pos].tok
    }

    fn peek_at(&self, n: usize) -> &Token {
        let i = (self.pos + n).min(self.toks.len() - 1);
        &self.toks[i].tok
    }

    fn offset(&self) -> usize {
        self.toks[self.pos].offset
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        *self.peek() == Token::Eof
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            kind: ParseErrorKind::Syntax,
            message: msg.into(),
            offset: self.offset(),
        })
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, k: Keyword) -> bool {
        self.eat(&Token::Keyword(k))
    }

    fn expect(&mut self, t: &Token) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            self.err(format!("expected `{t}`, found `{}`", self.peek()))
        }
    }

    fn expect_kw(&mut self, k: Keyword) -> Result<(), ParseError> {
        self.expect(&Token::Keyword(k))
    }

    fn expect_end(&mut self) -> Result<(), ParseError> {
        if self.at_end() {
            Ok(())
        } else {
            self.err(format!("unexpected trailing `{}`", self.peek()))
        }
    }

    /// An identifier; a few keywords double as names (the paper's fact table
    /// has a `date` column).
    fn name(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Token::Ident(s) => {
                self.bump();
                Ok(s)
            }
            Token::Keyword(Keyword::DATE) => {
                self.bump();
                Ok("date".into())
            }
            other => self.err(format!("expected identifier, found `{other}`")),
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn statement(&mut self) -> Result<Statement, ParseError> {
        match self.peek() {
            Token::Keyword(Keyword::SELECT) => Ok(Statement::Query(Box::new(self.query()?))),
            Token::Keyword(Keyword::CREATE) => self.create(),
            Token::Keyword(Keyword::ALTER) => self.alter(),
            Token::Keyword(Keyword::INSERT) => self.insert(),
            Token::Keyword(Keyword::DELETE) => self.delete(),
            Token::Keyword(Keyword::UPDATE) => self.update(),
            other => self.err(format!("expected statement, found `{other}`")),
        }
    }

    fn create(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw(Keyword::CREATE)?;
        if self.eat_kw(Keyword::SUMMARY) {
            self.expect_kw(Keyword::TABLE)?;
            let name = self.name()?;
            self.expect_kw(Keyword::AS)?;
            self.expect(&Token::LParen)?;
            let query = self.query()?;
            self.expect(&Token::RParen)?;
            return Ok(Statement::CreateSummaryTable {
                name,
                query: Box::new(query),
            });
        }
        self.expect_kw(Keyword::TABLE)?;
        let name = self.name()?;
        self.expect(&Token::LParen)?;
        let mut columns = Vec::new();
        let mut primary_key = Vec::new();
        loop {
            if self.eat_kw(Keyword::PRIMARY) {
                self.expect_kw(Keyword::KEY)?;
                self.expect(&Token::LParen)?;
                loop {
                    primary_key.push(self.name()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
            } else {
                let cname = self.name()?;
                let tyname = match self.peek().clone() {
                    Token::Ident(s) => {
                        self.bump();
                        s
                    }
                    Token::Keyword(Keyword::DATE) => {
                        self.bump();
                        "date".into()
                    }
                    other => return self.err(format!("expected type name, found `{other}`")),
                };
                let ty = SqlType::from_sql_name(&tyname).ok_or_else(|| ParseError {
                    kind: ParseErrorKind::Syntax,
                    message: format!("unknown type `{tyname}`"),
                    offset: self.offset(),
                })?;
                let mut nullable = true;
                if self.eat_kw(Keyword::NOT) {
                    self.expect_kw(Keyword::NULL)?;
                    nullable = false;
                }
                columns.push(ColumnDef {
                    name: cname,
                    ty,
                    nullable,
                });
            }
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        Ok(Statement::CreateTable(CreateTable {
            name,
            columns,
            primary_key,
        }))
    }

    fn alter(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw(Keyword::ALTER)?;
        self.expect_kw(Keyword::TABLE)?;
        let child_table = self.name()?;
        self.expect_kw(Keyword::ADD)?;
        self.expect_kw(Keyword::FOREIGN)?;
        self.expect_kw(Keyword::KEY)?;
        self.expect(&Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            columns.push(self.name()?);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        self.expect_kw(Keyword::REFERENCES)?;
        let parent_table = self.name()?;
        Ok(Statement::AddForeignKey {
            child_table,
            columns,
            parent_table,
        })
    }

    fn insert(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw(Keyword::INSERT)?;
        self.expect_kw(Keyword::INTO)?;
        let table = self.name()?;
        self.expect_kw(Keyword::VALUES)?;
        let mut rows = Vec::new();
        loop {
            self.expect(&Token::LParen)?;
            let mut row = Vec::new();
            if !self.eat(&Token::RParen) {
                loop {
                    row.push(self.expr()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
            }
            rows.push(row);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok(Statement::Insert { table, rows })
    }

    fn delete(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw(Keyword::DELETE)?;
        self.expect_kw(Keyword::FROM)?;
        let table = self.name()?;
        let where_clause = if self.eat_kw(Keyword::WHERE) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete {
            table,
            where_clause,
        })
    }

    fn update(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw(Keyword::UPDATE)?;
        let table = self.name()?;
        self.expect_kw(Keyword::SET)?;
        let mut sets = Vec::new();
        loop {
            let col = self.name()?;
            self.expect(&Token::Eq)?;
            sets.push((col, self.expr()?));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw(Keyword::WHERE) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            sets,
            where_clause,
        })
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    fn query(&mut self) -> Result<Query, ParseError> {
        self.enter()?;
        let q = self.query_inner();
        self.depth -= 1;
        q
    }

    fn query_inner(&mut self) -> Result<Query, ParseError> {
        self.expect_kw(Keyword::SELECT)?;
        let distinct = self.eat_kw(Keyword::DISTINCT);
        let mut select = Vec::new();
        loop {
            select.push(self.select_item()?);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let mut from = Vec::new();
        let mut where_clause: Option<Expr> = None;
        if self.eat_kw(Keyword::FROM) {
            loop {
                from.push(self.table_ref()?);
                // `[INNER] JOIN <ref> ON <cond>`: flatten, folding ON into WHERE.
                loop {
                    let inner = self.eat_kw(Keyword::INNER);
                    if self.eat_kw(Keyword::JOIN) {
                        from.push(self.table_ref()?);
                        self.expect_kw(Keyword::ON)?;
                        let cond = self.expr()?;
                        where_clause = Some(match where_clause.take() {
                            None => cond,
                            Some(w) => Expr::bin(BinOp::And, w, cond),
                        });
                    } else if inner {
                        return self.err("expected JOIN after INNER");
                    } else {
                        break;
                    }
                }
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw(Keyword::WHERE) {
            let w = self.expr()?;
            where_clause = Some(match where_clause.take() {
                None => w,
                Some(prev) => Expr::bin(BinOp::And, prev, w),
            });
        }
        let mut group_by = Vec::new();
        if self.eat_kw(Keyword::GROUP) {
            self.expect_kw(Keyword::BY)?;
            loop {
                group_by.push(self.grouping_element()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_kw(Keyword::HAVING) {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw(Keyword::ORDER) {
            self.expect_kw(Keyword::BY)?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw(Keyword::DESC) {
                    true
                } else {
                    self.eat_kw(Keyword::ASC);
                    false
                };
                order_by.push(OrderKey { expr, desc });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw(Keyword::LIMIT) {
            match self.bump() {
                Token::Int(n) if n >= 0 => Some(n as u64),
                other => return self.err(format!("expected LIMIT count, found `{other}`")),
            }
        } else {
            None
        };
        Ok(Query {
            distinct,
            select,
            from,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        if self.eat(&Token::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `qualifier.*`
        if let Token::Ident(q) = self.peek().clone() {
            if *self.peek_at(1) == Token::Dot && *self.peek_at(2) == Token::Star {
                self.bump();
                self.bump();
                self.bump();
                return Ok(SelectItem::QualifiedWildcard(q));
            }
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw(Keyword::AS) {
            Some(self.name()?)
        } else if matches!(self.peek(), Token::Ident(_)) {
            // Implicit alias: `select a b from t`.
            Some(self.name()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef, ParseError> {
        if self.eat(&Token::LParen) {
            let query = self.query()?;
            self.expect(&Token::RParen)?;
            self.eat_kw(Keyword::AS);
            let alias = self.name()?;
            return Ok(TableRef::Derived {
                query: Box::new(query),
                alias,
            });
        }
        let name = self.name()?;
        let alias = if self.eat_kw(Keyword::AS) || matches!(self.peek(), Token::Ident(_)) {
            Some(self.name()?)
        } else {
            None
        };
        Ok(TableRef::Named { name, alias })
    }

    fn grouping_element(&mut self) -> Result<GroupingElement, ParseError> {
        if self.eat_kw(Keyword::ROLLUP) {
            self.expect(&Token::LParen)?;
            let exprs = self.expr_list()?;
            self.expect(&Token::RParen)?;
            return Ok(GroupingElement::Rollup(exprs));
        }
        if self.eat_kw(Keyword::CUBE) {
            self.expect(&Token::LParen)?;
            let exprs = self.expr_list()?;
            self.expect(&Token::RParen)?;
            return Ok(GroupingElement::Cube(exprs));
        }
        if self.eat_kw(Keyword::GROUPING) {
            self.expect_kw(Keyword::SETS)?;
            self.expect(&Token::LParen)?;
            let mut sets = Vec::new();
            loop {
                self.expect(&Token::LParen)?;
                if self.eat(&Token::RParen) {
                    sets.push(Vec::new()); // the grand-total set `()`
                } else {
                    sets.push(self.expr_list()?);
                    self.expect(&Token::RParen)?;
                }
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(GroupingElement::GroupingSets(sets));
        }
        Ok(GroupingElement::Expr(self.expr()?))
    }

    fn expr_list(&mut self) -> Result<Vec<Expr>, ParseError> {
        let mut out = vec![self.expr()?];
        while self.eat(&Token::Comma) {
            out.push(self.expr()?);
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing)
    // ------------------------------------------------------------------

    /// Entry point: OR level. Every recursive cycle through the expression
    /// grammar re-enters here (or `query` for subqueries), so this is where
    /// the depth guard lives.
    pub(crate) fn expr(&mut self) -> Result<Expr, ParseError> {
        self.enter()?;
        let e = self.expr_inner();
        self.depth -= 1;
        e
    }

    fn expr_inner(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw(Keyword::OR) {
            let rhs = self.and_expr()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw(Keyword::AND) {
            let rhs = self.not_expr()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_kw(Keyword::NOT) {
            // Self-recursive (`not not ...`): guarded independently of `expr`.
            self.enter()?;
            let inner = self.not_expr();
            self.depth -= 1;
            return Ok(Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(inner?),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.additive()?;
        // Postfix predicates: IS [NOT] NULL, [NOT] BETWEEN/IN/LIKE.
        if self.eat_kw(Keyword::IS) {
            let negated = self.eat_kw(Keyword::NOT);
            self.expect_kw(Keyword::NULL)?;
            return Ok(Expr::IsNull {
                expr: Box::new(lhs),
                negated,
            });
        }
        let negated = if *self.peek() == Token::Keyword(Keyword::NOT)
            && matches!(
                self.peek_at(1),
                Token::Keyword(Keyword::BETWEEN)
                    | Token::Keyword(Keyword::IN)
                    | Token::Keyword(Keyword::LIKE)
            ) {
            self.bump();
            true
        } else {
            false
        };
        if self.eat_kw(Keyword::BETWEEN) {
            let low = self.additive()?;
            self.expect_kw(Keyword::AND)?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(lhs),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw(Keyword::IN) {
            self.expect(&Token::LParen)?;
            let list = self.expr_list()?;
            self.expect(&Token::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(lhs),
                list,
                negated,
            });
        }
        if self.eat_kw(Keyword::LIKE) {
            match self.bump() {
                Token::Str(pattern) => {
                    return Ok(Expr::Like {
                        expr: Box::new(lhs),
                        pattern,
                        negated,
                    })
                }
                other => return self.err(format!("expected LIKE pattern string, got `{other}`")),
            }
        }
        if negated {
            return self.err("expected BETWEEN, IN, or LIKE after NOT");
        }
        let op = match self.peek() {
            Token::Eq => BinOp::Eq,
            Token::NotEq => BinOp::NotEq,
            Token::Lt => BinOp::Lt,
            Token::LtEq => BinOp::LtEq,
            Token::Gt => BinOp::Gt,
            Token::GtEq => BinOp::GtEq,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.additive()?;
        Ok(Expr::bin(op, lhs, rhs))
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinOp::Add,
                Token::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinOp::Mul,
                Token::Slash => BinOp::Div,
                Token::Percent => BinOp::Mod,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&Token::Minus) {
            // Self-recursive (`- - ...`): guarded independently of `expr`.
            self.enter()?;
            let inner = self.unary();
            self.depth -= 1;
            // Fold negation into numeric literals for cleaner trees.
            return Ok(match inner? {
                Expr::Lit(Value::Int(i)) => Expr::Lit(Value::Int(-i)),
                Expr::Lit(Value::Double(d)) => Expr::Lit(Value::Double(-d)),
                other => Expr::Unary {
                    op: UnOp::Neg,
                    expr: Box::new(other),
                },
            });
        }
        if self.eat(&Token::Plus) {
            self.enter()?;
            let inner = self.unary();
            self.depth -= 1;
            return inner;
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Token::Int(i) => {
                self.bump();
                Ok(Expr::Lit(Value::Int(i)))
            }
            Token::Float(x) => {
                self.bump();
                Ok(Expr::Lit(Value::Double(x)))
            }
            Token::Str(s) => {
                self.bump();
                Ok(Expr::Lit(Value::Str(s)))
            }
            Token::Keyword(Keyword::TRUE) => {
                self.bump();
                Ok(Expr::Lit(Value::Bool(true)))
            }
            Token::Keyword(Keyword::FALSE) => {
                self.bump();
                Ok(Expr::Lit(Value::Bool(false)))
            }
            Token::Keyword(Keyword::NULL) => {
                self.bump();
                Ok(Expr::Lit(Value::Null))
            }
            Token::Keyword(Keyword::CASE) => self.case_expr(),
            Token::Keyword(Keyword::DATE) => {
                // `DATE 'yyyy-mm-dd'` literal, or the column named `date`.
                if let Token::Str(s) = self.peek_at(1).clone() {
                    self.bump();
                    self.bump();
                    let d = Date::parse(&s).ok_or_else(|| ParseError {
                        kind: ParseErrorKind::Syntax,
                        message: format!("invalid date literal `{s}`"),
                        offset: self.offset(),
                    })?;
                    Ok(Expr::Lit(Value::Date(d)))
                } else {
                    self.bump();
                    self.column_or_call("date".into())
                }
            }
            Token::LParen => {
                self.bump();
                if *self.peek() == Token::Keyword(Keyword::SELECT) {
                    let q = self.query()?;
                    self.expect(&Token::RParen)?;
                    Ok(Expr::ScalarSubquery(Box::new(q)))
                } else {
                    let e = self.expr()?;
                    self.expect(&Token::RParen)?;
                    Ok(e)
                }
            }
            Token::Ident(name) => {
                self.bump();
                self.column_or_call(name)
            }
            other => self.err(format!("expected expression, found `{other}`")),
        }
    }

    /// After consuming a leading identifier: a function call, a qualified
    /// column, or a bare column.
    fn column_or_call(&mut self, name: String) -> Result<Expr, ParseError> {
        if self.eat(&Token::LParen) {
            if let Some(func) = AggFunc::from_name(&name) {
                if func == AggFunc::Count && self.eat(&Token::Star) {
                    self.expect(&Token::RParen)?;
                    return Ok(Expr::Agg {
                        func,
                        arg: None,
                        distinct: false,
                    });
                }
                let distinct = self.eat_kw(Keyword::DISTINCT);
                let arg = self.expr()?;
                self.expect(&Token::RParen)?;
                return Ok(Expr::Agg {
                    func,
                    arg: Some(Box::new(arg)),
                    distinct,
                });
            }
            if let Some(func) = ScalarFunc::from_name(&name) {
                let args = self.expr_list()?;
                self.expect(&Token::RParen)?;
                if args.len() != func.arity() {
                    return self.err(format!(
                        "function {} takes {} argument(s), got {}",
                        func.sql(),
                        func.arity(),
                        args.len()
                    ));
                }
                return Ok(Expr::Func { func, args });
            }
            return self.err(format!("unknown function `{name}`"));
        }
        if self.eat(&Token::Dot) {
            let col = self.name()?;
            return Ok(Expr::Column {
                qualifier: Some(name),
                name: col,
            });
        }
        Ok(Expr::Column {
            qualifier: None,
            name,
        })
    }

    fn case_expr(&mut self) -> Result<Expr, ParseError> {
        self.expect_kw(Keyword::CASE)?;
        let operand = if *self.peek() != Token::Keyword(Keyword::WHEN) {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        let mut arms = Vec::new();
        while self.eat_kw(Keyword::WHEN) {
            let when = self.expr()?;
            self.expect_kw(Keyword::THEN)?;
            let then = self.expr()?;
            arms.push((when, then));
        }
        if arms.is_empty() {
            return self.err("CASE requires at least one WHEN arm");
        }
        let else_expr = if self.eat_kw(Keyword::ELSE) {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_kw(Keyword::END)?;
        Ok(Expr::Case {
            operand,
            arms,
            else_expr,
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod tests {
    use super::*;

    #[test]
    fn precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        assert_eq!(
            e,
            Expr::bin(
                BinOp::Add,
                Expr::Lit(Value::Int(1)),
                Expr::bin(
                    BinOp::Mul,
                    Expr::Lit(Value::Int(2)),
                    Expr::Lit(Value::Int(3))
                )
            )
        );
        let e = parse_expr("a = 1 or b = 2 and c = 3").unwrap();
        // AND binds tighter than OR.
        match e {
            Expr::Binary { op: BinOp::Or, .. } => {}
            other => panic!("expected OR at top, got {other:?}"),
        }
    }

    #[test]
    fn qualified_columns_and_functions() {
        assert_eq!(
            parse_expr("t.x").unwrap(),
            Expr::Column {
                qualifier: Some("t".into()),
                name: "x".into()
            }
        );
        assert_eq!(
            parse_expr("year(date)").unwrap(),
            Expr::Func {
                func: ScalarFunc::Year,
                args: vec![Expr::col("date")]
            }
        );
        assert!(parse_expr("nosuchfn(1)").is_err());
    }

    #[test]
    fn aggregates() {
        assert_eq!(
            parse_expr("count(*)").unwrap(),
            Expr::Agg {
                func: AggFunc::Count,
                arg: None,
                distinct: false
            }
        );
        assert_eq!(
            parse_expr("count(distinct faid)").unwrap(),
            Expr::Agg {
                func: AggFunc::Count,
                arg: Some(Box::new(Expr::col("faid"))),
                distinct: true
            }
        );
        assert!(matches!(
            parse_expr("sum(qty * price)").unwrap(),
            Expr::Agg {
                func: AggFunc::Sum,
                ..
            }
        ));
    }

    #[test]
    fn date_literal_vs_date_column() {
        assert_eq!(
            parse_expr("date '1995-01-01'").unwrap(),
            Expr::Lit(Value::Date(Date::parse("1995-01-01").unwrap()))
        );
        assert_eq!(parse_expr("date").unwrap(), Expr::col("date"));
        assert_eq!(
            parse_expr("year(date) % 100").unwrap(),
            Expr::bin(
                BinOp::Mod,
                Expr::Func {
                    func: ScalarFunc::Year,
                    args: vec![Expr::col("date")]
                },
                Expr::Lit(Value::Int(100))
            )
        );
    }

    #[test]
    fn negative_literals_fold() {
        assert_eq!(parse_expr("-5").unwrap(), Expr::Lit(Value::Int(-5)));
        assert_eq!(parse_expr("- 2.5").unwrap(), Expr::Lit(Value::Double(-2.5)));
        assert!(matches!(
            parse_expr("-x").unwrap(),
            Expr::Unary { op: UnOp::Neg, .. }
        ));
    }

    #[test]
    fn query_clauses() {
        let q = parse_query(
            "select faid, state, year(date) as year, count(*) as cnt \
             from trans, loc where flid = lid and country = 'USA' \
             group by faid, state, year(date) having count(*) > 100",
        )
        .unwrap();
        assert_eq!(q.select.len(), 4);
        assert_eq!(q.from.len(), 2);
        assert!(q.where_clause.is_some());
        assert_eq!(q.group_by.len(), 3);
        assert!(q.having.is_some());
    }

    #[test]
    fn join_on_folds_into_where() {
        let q = parse_query("select a from t join u on t.id = u.id where b > 0").unwrap();
        assert_eq!(q.from.len(), 2);
        match q.where_clause.unwrap() {
            Expr::Binary { op: BinOp::And, .. } => {}
            other => panic!("expected AND of ON and WHERE, got {other:?}"),
        }
    }

    #[test]
    fn derived_tables_and_scalar_subqueries() {
        let q = parse_query("select s.c from (select count(*) as c from t) as s").unwrap();
        assert!(matches!(q.from[0], TableRef::Derived { .. }));
        let q =
            parse_query("select flid, (select count(*) from trans) as totcnt from trans").unwrap();
        match &q.select[1] {
            SelectItem::Expr {
                expr: Expr::ScalarSubquery(_),
                ..
            } => {}
            other => panic!("expected scalar subquery, got {other:?}"),
        }
    }

    #[test]
    fn grouping_sets_forms() {
        let q = parse_query(
            "select flid, year(date) from trans \
             group by grouping sets ((flid, year(date)), (year(date)), ())",
        )
        .unwrap();
        match &q.group_by[0] {
            GroupingElement::GroupingSets(sets) => {
                assert_eq!(sets.len(), 3);
                assert_eq!(sets[2].len(), 0);
            }
            other => panic!("expected grouping sets, got {other:?}"),
        }
        let q = parse_query("select a from t group by rollup(a, b), cube(c)").unwrap();
        assert!(matches!(q.group_by[0], GroupingElement::Rollup(_)));
        assert!(matches!(q.group_by[1], GroupingElement::Cube(_)));
    }

    #[test]
    fn order_and_limit() {
        let q = parse_query("select a from t order by a desc, b limit 7").unwrap();
        assert_eq!(q.order_by.len(), 2);
        assert!(q.order_by[0].desc);
        assert!(!q.order_by[1].desc);
        assert_eq!(q.limit, Some(7));
    }

    #[test]
    fn wildcards() {
        let q = parse_query("select *, t.* from t").unwrap();
        assert_eq!(q.select[0], SelectItem::Wildcard);
        assert_eq!(q.select[1], SelectItem::QualifiedWildcard("t".into()));
    }

    #[test]
    fn error_positions() {
        let err = parse_query("select from").unwrap_err();
        assert!(err.offset >= 7, "offset {} should be at FROM", err.offset);
        assert!(parse_query("select a from t where").is_err());
        assert!(parse_query("select a t where").is_err());
    }

    #[test]
    fn script_parsing() {
        let stmts =
            parse_statements("create table t (a int); insert into t values (1); select a from t;")
                .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn between_in_like_negation() {
        assert!(matches!(
            parse_expr("x not between 1 and 2").unwrap(),
            Expr::Between { negated: true, .. }
        ));
        assert!(matches!(
            parse_expr("x not in (1, 2)").unwrap(),
            Expr::InList { negated: true, .. }
        ));
        assert!(matches!(
            parse_expr("s not like 'a%'").unwrap(),
            Expr::Like { negated: true, .. }
        ));
        assert!(parse_expr("x not 5").is_err());
    }

    #[test]
    fn case_forms() {
        assert!(matches!(
            parse_expr("case when a > 0 then 1 else 2 end").unwrap(),
            Expr::Case { operand: None, .. }
        ));
        assert!(matches!(
            parse_expr("case a when 1 then 'one' end").unwrap(),
            Expr::Case {
                operand: Some(_),
                ..
            }
        ));
        assert!(parse_expr("case end").is_err());
    }
}
