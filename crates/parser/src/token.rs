//! Token definitions shared by the lexer and parser.

use sumtab_catalog::Date;

/// A lexical token with its source position (byte offset), for error messages.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Token,
    /// Byte offset of the token start in the source text.
    pub offset: usize,
}

/// SQL tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword (always stored upper-case).
    Keyword(Keyword),
    /// Non-keyword identifier (stored lower-case; the dialect is
    /// case-insensitive and unquoted-only).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Single-quoted string literal (quotes removed, `''` unescaped).
    Str(String),
    /// `DATE 'yyyy-mm-dd'` literal, recognized in the parser; the lexer emits
    /// the DATE keyword + string, but this variant is used for rendering.
    DateLit(Date),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `;`
    Semicolon,
    /// End of input.
    Eof,
}

macro_rules! keywords {
    ($($name:ident),* $(,)?) => {
        /// Reserved words of the dialect.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[allow(missing_docs)]
        pub enum Keyword {
            $($name,)*
        }

        impl Keyword {
            /// Parse a keyword from an identifier, case-insensitively.
            #[allow(clippy::should_implement_trait)] // fallible lookup, not std::str::FromStr
            pub fn from_str(s: &str) -> Option<Keyword> {
                let up = s.to_ascii_uppercase();
                match up.as_str() {
                    $(stringify!($name) => Some(Keyword::$name),)*
                    _ => None,
                }
            }

            /// The canonical (upper-case) spelling.
            pub fn as_str(self) -> &'static str {
                match self {
                    $(Keyword::$name => stringify!($name),)*
                }
            }
        }
    };
}

keywords! {
    SELECT, DISTINCT, FROM, WHERE, GROUP, BY, HAVING, ORDER, LIMIT, ASC, DESC,
    AS, AND, OR, NOT, NULL, IS, IN, BETWEEN, LIKE, CASE, WHEN, THEN, ELSE, END,
    JOIN, INNER, ON, CREATE, TABLE, SUMMARY, PRIMARY, KEY, FOREIGN, REFERENCES,
    ALTER, ADD, INSERT, INTO, VALUES, ROLLUP, CUBE, GROUPING, SETS, TRUE,
    FALSE, DATE, UNION, ALL, DELETE, UPDATE, SET,
}

impl std::fmt::Display for Token {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Token::Keyword(k) => f.write_str(k.as_str()),
            Token::Ident(s) => f.write_str(s),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::DateLit(d) => write!(f, "DATE '{d}'"),
            Token::LParen => f.write_str("("),
            Token::RParen => f.write_str(")"),
            Token::Comma => f.write_str(","),
            Token::Dot => f.write_str("."),
            Token::Plus => f.write_str("+"),
            Token::Minus => f.write_str("-"),
            Token::Star => f.write_str("*"),
            Token::Slash => f.write_str("/"),
            Token::Percent => f.write_str("%"),
            Token::Eq => f.write_str("="),
            Token::NotEq => f.write_str("<>"),
            Token::Lt => f.write_str("<"),
            Token::LtEq => f.write_str("<="),
            Token::Gt => f.write_str(">"),
            Token::GtEq => f.write_str(">="),
            Token::Semicolon => f.write_str(";"),
            Token::Eof => f.write_str("<eof>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup_is_case_insensitive() {
        assert_eq!(Keyword::from_str("select"), Some(Keyword::SELECT));
        assert_eq!(Keyword::from_str("SeLeCt"), Some(Keyword::SELECT));
        assert_eq!(Keyword::from_str("grouping"), Some(Keyword::GROUPING));
        assert_eq!(Keyword::from_str("frobnicate"), None);
    }

    #[test]
    fn display_round_trips_spelling() {
        assert_eq!(Token::Keyword(Keyword::GROUP).to_string(), "GROUP");
        assert_eq!(Token::NotEq.to_string(), "<>");
        assert_eq!(Token::Str("a'b".into()).to_string(), "'a'b'");
    }
}
