//! Render a syntax tree back to SQL text.
//!
//! Used to display rewritten queries and to test that parsing is a fixed
//! point under re-rendering. Output is fully parenthesized at the expression
//! level only where needed for correctness.

use crate::syntax::*;

/// Render a full query.
pub fn render_query(q: &Query) -> String {
    let mut s = String::new();
    write_query(&mut s, q);
    s
}

/// Render a statement.
pub fn render_statement(stmt: &Statement) -> String {
    match stmt {
        Statement::Query(q) => render_query(q),
        Statement::CreateTable(ct) => {
            let mut cols: Vec<String> = ct
                .columns
                .iter()
                .map(|c| {
                    let null = if c.nullable { "" } else { " NOT NULL" };
                    format!("{} {}{}", c.name, c.ty.sql_name(), null)
                })
                .collect();
            if !ct.primary_key.is_empty() {
                cols.push(format!("PRIMARY KEY ({})", ct.primary_key.join(", ")));
            }
            format!("CREATE TABLE {} ({})", ct.name, cols.join(", "))
        }
        Statement::CreateSummaryTable { name, query } => {
            format!("CREATE SUMMARY TABLE {} AS ({})", name, render_query(query))
        }
        Statement::AddForeignKey {
            child_table,
            columns,
            parent_table,
        } => format!(
            "ALTER TABLE {} ADD FOREIGN KEY ({}) REFERENCES {}",
            child_table,
            columns.join(", "),
            parent_table
        ),
        Statement::Insert { table, rows } => {
            let rows: Vec<String> = rows
                .iter()
                .map(|r| {
                    let vals: Vec<String> = r.iter().map(render_expr).collect();
                    format!("({})", vals.join(", "))
                })
                .collect();
            format!("INSERT INTO {} VALUES {}", table, rows.join(", "))
        }
        Statement::Delete {
            table,
            where_clause,
        } => match where_clause {
            Some(p) => format!("DELETE FROM {} WHERE {}", table, render_expr(p)),
            None => format!("DELETE FROM {table}"),
        },
        Statement::Update {
            table,
            sets,
            where_clause,
        } => {
            let assigns: Vec<String> = sets
                .iter()
                .map(|(c, e)| format!("{} = {}", c, render_expr(e)))
                .collect();
            let mut s = format!("UPDATE {} SET {}", table, assigns.join(", "));
            if let Some(p) = where_clause {
                s.push_str(&format!(" WHERE {}", render_expr(p)));
            }
            s
        }
    }
}

fn write_query(out: &mut String, q: &Query) {
    out.push_str("SELECT ");
    if q.distinct {
        out.push_str("DISTINCT ");
    }
    for (i, item) in q.select.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match item {
            SelectItem::Wildcard => out.push('*'),
            SelectItem::QualifiedWildcard(t) => {
                out.push_str(t);
                out.push_str(".*");
            }
            SelectItem::Expr { expr, alias } => {
                out.push_str(&render_expr(expr));
                if let Some(a) = alias {
                    out.push_str(" AS ");
                    out.push_str(a);
                }
            }
        }
    }
    if !q.from.is_empty() {
        out.push_str(" FROM ");
        for (i, tr) in q.from.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            match tr {
                TableRef::Named { name, alias } => {
                    out.push_str(name);
                    if let Some(a) = alias {
                        out.push_str(" AS ");
                        out.push_str(a);
                    }
                }
                TableRef::Derived { query, alias } => {
                    out.push('(');
                    write_query(out, query);
                    out.push_str(") AS ");
                    out.push_str(alias);
                }
            }
        }
    }
    if let Some(w) = &q.where_clause {
        out.push_str(" WHERE ");
        out.push_str(&render_expr(w));
    }
    if !q.group_by.is_empty() {
        out.push_str(" GROUP BY ");
        for (i, g) in q.group_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            match g {
                GroupingElement::Expr(e) => out.push_str(&render_expr(e)),
                GroupingElement::Rollup(es) => {
                    out.push_str("ROLLUP(");
                    out.push_str(&join_exprs(es));
                    out.push(')');
                }
                GroupingElement::Cube(es) => {
                    out.push_str("CUBE(");
                    out.push_str(&join_exprs(es));
                    out.push(')');
                }
                GroupingElement::GroupingSets(sets) => {
                    out.push_str("GROUPING SETS (");
                    for (j, set) in sets.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        out.push('(');
                        out.push_str(&join_exprs(set));
                        out.push(')');
                    }
                    out.push(')');
                }
            }
        }
    }
    if let Some(h) = &q.having {
        out.push_str(" HAVING ");
        out.push_str(&render_expr(h));
    }
    if !q.order_by.is_empty() {
        out.push_str(" ORDER BY ");
        for (i, k) in q.order_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&render_expr(&k.expr));
            if k.desc {
                out.push_str(" DESC");
            }
        }
    }
    if let Some(n) = q.limit {
        out.push_str(&format!(" LIMIT {n}"));
    }
}

fn join_exprs(es: &[Expr]) -> String {
    es.iter().map(render_expr).collect::<Vec<_>>().join(", ")
}

/// Render an expression with precedence-aware parenthesization.
pub fn render_expr(e: &Expr) -> String {
    render_prec(e, 0)
}

/// Precedence levels: OR=1, AND=2, NOT=3, comparison=4, add=5, mul=6, unary=7.
fn prec_of(e: &Expr) -> u8 {
    match e {
        Expr::Binary { op, .. } => match op {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => 4,
            BinOp::Add | BinOp::Sub => 5,
            BinOp::Mul | BinOp::Div | BinOp::Mod => 6,
        },
        Expr::Unary { op: UnOp::Not, .. } => 3,
        Expr::IsNull { .. } | Expr::Between { .. } | Expr::InList { .. } | Expr::Like { .. } => 4,
        Expr::Unary { op: UnOp::Neg, .. } => 7,
        _ => 10,
    }
}

fn render_prec(e: &Expr, parent_prec: u8) -> String {
    let my_prec = prec_of(e);
    let body = match e {
        Expr::Lit(v) => v.to_string(),
        Expr::Column { qualifier, name } => match qualifier {
            Some(q) => format!("{q}.{name}"),
            None => name.clone(),
        },
        Expr::Binary { op, left, right } => {
            // Left-assoc: the right child needs a strictly higher level.
            // Comparisons are NON-associative (`a = b = c` does not parse),
            // so both operands need a strictly higher level there.
            let left_prec = if op.is_comparison() {
                my_prec + 1
            } else {
                my_prec
            };
            let l = render_prec(left, left_prec);
            let r = render_prec(right, my_prec + 1);
            format!("{l} {} {r}", op.sql())
        }
        Expr::Unary { op, expr } => match op {
            UnOp::Neg => format!("-{}", render_prec(expr, 8)),
            UnOp::Not => format!("NOT {}", render_prec(expr, 4)),
        },
        Expr::Agg {
            func,
            arg,
            distinct,
        } => match arg {
            None => "COUNT(*)".to_string(),
            Some(a) => format!(
                "{}({}{})",
                func.sql(),
                if *distinct { "DISTINCT " } else { "" },
                render_expr(a)
            ),
        },
        Expr::Func { func, args } => {
            format!("{}({})", func.sql(), join_exprs(args))
        }
        Expr::Case {
            operand,
            arms,
            else_expr,
        } => {
            let mut s = String::from("CASE");
            if let Some(op) = operand {
                s.push(' ');
                s.push_str(&render_expr(op));
            }
            for (w, t) in arms {
                s.push_str(&format!(" WHEN {} THEN {}", render_expr(w), render_expr(t)));
            }
            if let Some(el) = else_expr {
                s.push_str(&format!(" ELSE {}", render_expr(el)));
            }
            s.push_str(" END");
            s
        }
        Expr::IsNull { expr, negated } => format!(
            "{} IS {}NULL",
            render_prec(expr, 5),
            if *negated { "NOT " } else { "" }
        ),
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => format!(
            "{} {}BETWEEN {} AND {}",
            render_prec(expr, 5),
            if *negated { "NOT " } else { "" },
            render_prec(low, 5),
            render_prec(high, 5)
        ),
        Expr::InList {
            expr,
            list,
            negated,
        } => format!(
            "{} {}IN ({})",
            render_prec(expr, 5),
            if *negated { "NOT " } else { "" },
            join_exprs(list)
        ),
        Expr::Like {
            expr,
            pattern,
            negated,
        } => format!(
            "{} {}LIKE '{}'",
            render_prec(expr, 5),
            if *negated { "NOT " } else { "" },
            pattern
        ),
        Expr::ScalarSubquery(q) => format!("({})", render_query(q)),
    };
    if my_prec < parent_prec {
        format!("({body})")
    } else {
        body
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod tests {
    use super::*;
    use crate::parse_expr;

    fn rt(sql: &str) -> String {
        render_expr(&parse_expr(sql).unwrap())
    }

    #[test]
    fn parenthesization_preserves_structure() {
        assert_eq!(rt("(1 + 2) * 3"), "(1 + 2) * 3");
        assert_eq!(rt("1 + 2 * 3"), "1 + 2 * 3");
        assert_eq!(rt("1 - (2 - 3)"), "1 - (2 - 3)");
        assert_eq!(rt("1 - 2 - 3"), "1 - 2 - 3");
        assert_eq!(rt("qty * price * (1 - disc)"), "qty * price * (1 - disc)");
        assert_eq!(rt("a and (b or c)"), "a AND (b OR c)");
        assert_eq!(rt("not (a = 1)"), "NOT a = 1");
    }

    #[test]
    fn rendered_expr_reparses_identically() {
        for sql in [
            "(1 + 2) * 3",
            "a and (b or c) and not d = 2",
            "case when x > 0 then x else -x end",
            "sum(distinct q) / count(*)",
            "x between 1 + 1 and 2 * 2",
            "year(date) % 100 = 97",
        ] {
            let e1 = parse_expr(sql).unwrap();
            let printed = render_expr(&e1);
            let e2 = parse_expr(&printed).unwrap();
            assert_eq!(e1, e2, "for `{sql}` → `{printed}`");
        }
    }
}
