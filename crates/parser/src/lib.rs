//! # sumtab-parser
//!
//! A from-scratch SQL lexer and recursive-descent parser for the dialect the
//! paper exercises:
//!
//! * `SELECT [DISTINCT] ... FROM ... [WHERE] [GROUP BY] [HAVING] [ORDER BY] [LIMIT]`
//! * comma joins and `[INNER] JOIN ... ON`
//! * derived tables (subqueries in `FROM`) and scalar subqueries in
//!   expressions — the multi-block queries of Sections 4.2.2 and 4.2.4
//! * supergroup functions `ROLLUP`, `CUBE`, `GROUPING SETS` (Section 5)
//! * aggregates `COUNT(*)`, `COUNT`, `SUM`, `MIN`, `MAX`, `AVG`, each with
//!   optional `DISTINCT`
//! * DDL: `CREATE TABLE`, `CREATE SUMMARY TABLE ... AS (...)` (the paper's
//!   ASTs), `ALTER TABLE ... ADD FOREIGN KEY ... REFERENCES ...`
//! * `INSERT INTO ... VALUES`
//!
//! The produced syntax tree is deliberately independent of the Query Graph
//! Model; `sumtab-qgm` performs name resolution and QGM construction.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod parser;
pub mod render;
pub mod syntax;
pub mod token;

pub use lexer::{LexError, Lexer};
pub use parser::{
    parse_expr, parse_query, parse_statement, parse_statements, ParseError, ParseErrorKind,
    MAX_PARSE_DEPTH,
};
pub use syntax::*;

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod roundtrip_tests {
    use crate::render::render_query;
    use crate::{parse_query, parse_statement};

    /// Parsing the rendered form of a parsed query must be a fixed point.
    fn assert_fixed_point(sql: &str) {
        let q1 = parse_query(sql).unwrap_or_else(|e| panic!("parse `{sql}`: {e}"));
        let r1 = render_query(&q1);
        let q2 = parse_query(&r1).unwrap_or_else(|e| panic!("reparse `{r1}`: {e}"));
        let r2 = render_query(&q2);
        assert_eq!(r1, r2, "render not a fixed point for `{sql}`");
    }

    #[test]
    fn fixed_points() {
        for sql in [
            "select 1",
            "select a, b + 1 as c from t where x > 10 and y = 'abc'",
            "select count(*) as cnt from t group by a having count(*) > 100",
            "select a from t, u where t.id = u.id order by a desc limit 10",
            "select year(date) as y, sum(qty * price) from trans group by year(date)",
            "select * from (select a from t) as sub where a < 5",
            "select a, (select count(*) from u) as total from t",
            "select a, b from t group by grouping sets ((a, b), (a), ())",
            "select a from t group by rollup(a, b), cube(c)",
            "select distinct a from t",
            "select case when a > 0 then 'pos' else 'neg' end from t",
            "select a from t where b between 1 and 10 or c in (1, 2, 3)",
            "select a from t where d is not null and e is null",
            "select a from t inner join u on t.id = u.id",
            "select -a, not (b = 1) from t",
            "select a from t where date >= date '1995-01-01'",
        ] {
            assert_fixed_point(sql);
        }
    }

    #[test]
    fn statements_parse() {
        for sql in [
            "create table t (a int not null, b varchar, primary key (a))",
            "create summary table ast1 as (select a, count(*) as c from t group by a)",
            "insert into t values (1, 'x'), (2, 'y')",
            "alter table t add foreign key (b) references u",
        ] {
            parse_statement(sql).unwrap_or_else(|e| panic!("parse `{sql}`: {e}"));
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod random_tree_tests {
    use crate::render::{render_expr, render_query};
    use crate::syntax::*;
    use crate::{parse_expr, parse_query};
    use sumtab_catalog::Value;
    use sumtab_datagen::SplitMix64;

    /// A random expression tree over a fixed column pool (deterministic in
    /// the generator's seed).
    fn arb_expr(r: &mut SplitMix64, depth: usize) -> Expr {
        if depth == 0 || r.gen_bool(0.3) {
            return match r.gen_index(5) {
                0 => Expr::Lit(Value::Int(r.gen_i64(-100, 99))),
                1 => {
                    let cols = ["a", "b", "c", "price"];
                    Expr::col(cols[r.gen_index(cols.len())])
                }
                2 => Expr::Lit(Value::Bool(true)),
                3 => Expr::Lit(Value::Null),
                _ => {
                    let len = r.gen_i64(1, 6) as usize;
                    let s: String = (0..len)
                        .map(|_| (b'a' + r.gen_index(26) as u8) as char)
                        .collect();
                    Expr::Lit(Value::Str(s))
                }
            };
        }
        const OPS: [BinOp; 10] = [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Mod,
            BinOp::Eq,
            BinOp::Lt,
            BinOp::GtEq,
            BinOp::And,
            BinOp::Or,
        ];
        match r.gen_index(4) {
            0 => {
                let op = *r.choose(&OPS);
                let l = arb_expr(r, depth - 1);
                let rhs = arb_expr(r, depth - 1);
                Expr::bin(op, l, rhs)
            }
            1 => Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(arb_expr(r, depth - 1)),
            },
            2 => Expr::IsNull {
                expr: Box::new(arb_expr(r, depth - 1)),
                negated: false,
            },
            _ => Expr::Case {
                operand: None,
                arms: vec![(arb_expr(r, depth - 1), arb_expr(r, depth - 1))],
                else_expr: Some(Box::new(arb_expr(r, depth - 1))),
            },
        }
    }

    /// Any rendered expression re-parses to the identical tree
    /// (precedence-aware parenthesization is faithful).
    #[test]
    fn expr_render_parse_roundtrip() {
        let mut r = SplitMix64::new(0xE0_1234);
        for _ in 0..512 {
            let e = arb_expr(&mut r, 4);
            let printed = render_expr(&e);
            let reparsed = parse_expr(&printed).unwrap_or_else(|err| panic!("`{printed}`: {err}"));
            assert_eq!(e, reparsed, "printed: {printed}");
        }
    }

    /// Rendering a parsed query is a fixed point under re-parsing.
    #[test]
    fn query_render_is_fixed_point() {
        let mut r = SplitMix64::new(0xF1_5678);
        for _ in 0..256 {
            let n = r.gen_i64(1, 3) as usize;
            let select = (0..n)
                .map(|i| SelectItem::Expr {
                    expr: arb_expr(&mut r, 3),
                    alias: Some(format!("c{i}")),
                })
                .collect();
            let where_clause = r.gen_bool(0.5).then(|| arb_expr(&mut r, 3));
            let q = Query {
                distinct: false,
                select,
                from: vec![TableRef::Named {
                    name: "t".into(),
                    alias: None,
                }],
                where_clause,
                group_by: vec![],
                having: None,
                order_by: vec![],
                limit: None,
            };
            let r1 = render_query(&q);
            let q2 = parse_query(&r1).unwrap_or_else(|e| panic!("`{r1}`: {e}"));
            assert_eq!(r1, render_query(&q2), "not a fixed point: {r1}");
        }
    }
}
