//! # sumtab-parser
//!
//! A from-scratch SQL lexer and recursive-descent parser for the dialect the
//! paper exercises:
//!
//! * `SELECT [DISTINCT] ... FROM ... [WHERE] [GROUP BY] [HAVING] [ORDER BY] [LIMIT]`
//! * comma joins and `[INNER] JOIN ... ON`
//! * derived tables (subqueries in `FROM`) and scalar subqueries in
//!   expressions — the multi-block queries of Sections 4.2.2 and 4.2.4
//! * supergroup functions `ROLLUP`, `CUBE`, `GROUPING SETS` (Section 5)
//! * aggregates `COUNT(*)`, `COUNT`, `SUM`, `MIN`, `MAX`, `AVG`, each with
//!   optional `DISTINCT`
//! * DDL: `CREATE TABLE`, `CREATE SUMMARY TABLE ... AS (...)` (the paper's
//!   ASTs), `ALTER TABLE ... ADD FOREIGN KEY ... REFERENCES ...`
//! * `INSERT INTO ... VALUES`
//!
//! The produced syntax tree is deliberately independent of the Query Graph
//! Model; `sumtab-qgm` performs name resolution and QGM construction.

pub mod lexer;
pub mod parser;
pub mod render;
pub mod syntax;
pub mod token;

pub use lexer::{LexError, Lexer};
pub use parser::{parse_expr, parse_query, parse_statement, parse_statements, ParseError};
pub use syntax::*;

#[cfg(test)]
mod roundtrip_tests {
    use crate::render::render_query;
    use crate::{parse_query, parse_statement};

    /// Parsing the rendered form of a parsed query must be a fixed point.
    fn assert_fixed_point(sql: &str) {
        let q1 = parse_query(sql).unwrap_or_else(|e| panic!("parse `{sql}`: {e}"));
        let r1 = render_query(&q1);
        let q2 = parse_query(&r1).unwrap_or_else(|e| panic!("reparse `{r1}`: {e}"));
        let r2 = render_query(&q2);
        assert_eq!(r1, r2, "render not a fixed point for `{sql}`");
    }

    #[test]
    fn fixed_points() {
        for sql in [
            "select 1",
            "select a, b + 1 as c from t where x > 10 and y = 'abc'",
            "select count(*) as cnt from t group by a having count(*) > 100",
            "select a from t, u where t.id = u.id order by a desc limit 10",
            "select year(date) as y, sum(qty * price) from trans group by year(date)",
            "select * from (select a from t) as sub where a < 5",
            "select a, (select count(*) from u) as total from t",
            "select a, b from t group by grouping sets ((a, b), (a), ())",
            "select a from t group by rollup(a, b), cube(c)",
            "select distinct a from t",
            "select case when a > 0 then 'pos' else 'neg' end from t",
            "select a from t where b between 1 and 10 or c in (1, 2, 3)",
            "select a from t where d is not null and e is null",
            "select a from t inner join u on t.id = u.id",
            "select -a, not (b = 1) from t",
            "select a from t where date >= date '1995-01-01'",
        ] {
            assert_fixed_point(sql);
        }
    }

    #[test]
    fn statements_parse() {
        for sql in [
            "create table t (a int not null, b varchar, primary key (a))",
            "create summary table ast1 as (select a, count(*) as c from t group by a)",
            "insert into t values (1, 'x'), (2, 'y')",
            "alter table t add foreign key (b) references u",
        ] {
            parse_statement(sql).unwrap_or_else(|e| panic!("parse `{sql}`: {e}"));
        }
    }
}

#[cfg(test)]
mod proptests {
    use crate::render::{render_expr, render_query};
    use crate::syntax::*;
    use crate::{parse_expr, parse_query};
    use proptest::prelude::*;
    use sumtab_catalog::Value;

    /// A strategy for random expression trees over a fixed column pool.
    fn arb_expr() -> impl Strategy<Value = Expr> {
        let leaf = prop_oneof![
            (-100i64..100).prop_map(|i| Expr::Lit(Value::Int(i))),
            proptest::sample::select(vec!["a", "b", "c", "price"]).prop_map(Expr::col),
            Just(Expr::Lit(Value::Bool(true))),
            Just(Expr::Lit(Value::Null)),
            "[a-z]{1,6}".prop_map(|s| Expr::Lit(Value::Str(s))),
        ];
        leaf.prop_recursive(4, 32, 3, |inner| {
            prop_oneof![
                (
                    proptest::sample::select(vec![
                        BinOp::Add,
                        BinOp::Sub,
                        BinOp::Mul,
                        BinOp::Div,
                        BinOp::Mod,
                        BinOp::Eq,
                        BinOp::Lt,
                        BinOp::GtEq,
                        BinOp::And,
                        BinOp::Or,
                    ]),
                    inner.clone(),
                    inner.clone()
                )
                    .prop_map(|(op, l, r)| Expr::bin(op, l, r)),
                inner.clone().prop_map(|e| Expr::Unary {
                    op: UnOp::Not,
                    expr: Box::new(e)
                }),
                inner.clone().prop_map(|e| Expr::IsNull {
                    expr: Box::new(e),
                    negated: false
                }),
                (inner.clone(), inner.clone(), inner.clone()).prop_map(|(a, b, c)| {
                    Expr::Case {
                        operand: None,
                        arms: vec![(a, b)],
                        else_expr: Some(Box::new(c)),
                    }
                }),
            ]
        })
    }

    proptest! {
        /// Any rendered expression re-parses to the identical tree
        /// (precedence-aware parenthesization is faithful).
        #[test]
        fn expr_render_parse_roundtrip(e in arb_expr()) {
            let printed = render_expr(&e);
            let reparsed = parse_expr(&printed)
                .unwrap_or_else(|err| panic!("`{printed}`: {err}"));
            prop_assert_eq!(e, reparsed, "printed: {}", printed);
        }

        /// Rendering a parsed query is a fixed point under re-parsing.
        #[test]
        fn query_render_is_fixed_point(
            exprs in proptest::collection::vec(arb_expr(), 1..4),
            filter in proptest::option::of(arb_expr()),
        ) {
            let q = Query {
                distinct: false,
                select: exprs
                    .into_iter()
                    .enumerate()
                    .map(|(i, expr)| SelectItem::Expr {
                        expr,
                        alias: Some(format!("c{i}")),
                    })
                    .collect(),
                from: vec![TableRef::Named {
                    name: "t".into(),
                    alias: None,
                }],
                where_clause: filter,
                group_by: vec![],
                having: None,
                order_by: vec![],
                limit: None,
            };
            let r1 = render_query(&q);
            let q2 = parse_query(&r1).unwrap_or_else(|e| panic!("`{r1}`: {e}"));
            prop_assert_eq!(r1.clone(), render_query(&q2), "not a fixed point: {}", r1);
        }
    }
}
