//! Hand-written SQL lexer.

use crate::token::{Keyword, Spanned, Token};

/// Lexical error with a byte offset into the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable message.
    pub message: String,
    /// Byte offset where the error occurred.
    pub offset: usize,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Streaming lexer over a SQL string.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Create a lexer over `src`.
    pub fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    /// Tokenize the whole input, appending a final [`Token::Eof`].
    pub fn tokenize(src: &str) -> Result<Vec<Spanned>, LexError> {
        let mut lx = Lexer::new(src);
        let mut out = Vec::new();
        loop {
            let sp = lx.next_token()?;
            let is_eof = sp.tok == Token::Eof;
            out.push(sp);
            if is_eof {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                // `-- line comment`
                Some(b'-') if self.peek2() == Some(b'-') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                // `/* block comment */`
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.pos += 2;
                                break;
                            }
                            (Some(_), _) => self.pos += 1,
                            (None, _) => {
                                return Err(LexError {
                                    message: "unterminated block comment".into(),
                                    offset: start,
                                })
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Produce the next token.
    pub fn next_token(&mut self) -> Result<Spanned, LexError> {
        self.skip_trivia()?;
        let offset = self.pos;
        let Some(b) = self.peek() else {
            return Ok(Spanned {
                tok: Token::Eof,
                offset,
            });
        };
        let tok = match b {
            b'(' => {
                self.pos += 1;
                Token::LParen
            }
            b')' => {
                self.pos += 1;
                Token::RParen
            }
            b',' => {
                self.pos += 1;
                Token::Comma
            }
            b'.' => {
                self.pos += 1;
                Token::Dot
            }
            b'+' => {
                self.pos += 1;
                Token::Plus
            }
            b'-' => {
                self.pos += 1;
                Token::Minus
            }
            b'*' => {
                self.pos += 1;
                Token::Star
            }
            b'/' => {
                self.pos += 1;
                Token::Slash
            }
            b'%' => {
                self.pos += 1;
                Token::Percent
            }
            b';' => {
                self.pos += 1;
                Token::Semicolon
            }
            b'=' => {
                self.pos += 1;
                Token::Eq
            }
            b'!' => {
                self.pos += 1;
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    Token::NotEq
                } else {
                    return Err(LexError {
                        message: "expected `=` after `!`".into(),
                        offset,
                    });
                }
            }
            b'<' => {
                self.pos += 1;
                match self.peek() {
                    Some(b'=') => {
                        self.pos += 1;
                        Token::LtEq
                    }
                    Some(b'>') => {
                        self.pos += 1;
                        Token::NotEq
                    }
                    _ => Token::Lt,
                }
            }
            b'>' => {
                self.pos += 1;
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    Token::GtEq
                } else {
                    Token::Gt
                }
            }
            b'\'' => self.lex_string(offset)?,
            b'0'..=b'9' => self.lex_number(offset)?,
            b if b.is_ascii_alphabetic() || b == b'_' => self.lex_word(),
            other => {
                return Err(LexError {
                    message: format!("unexpected character `{}`", other as char),
                    offset,
                })
            }
        };
        Ok(Spanned { tok, offset })
    }

    fn lex_string(&mut self, offset: usize) -> Result<Token, LexError> {
        debug_assert_eq!(self.peek(), Some(b'\''));
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'\'') => {
                    // `''` is an escaped quote.
                    if self.peek() == Some(b'\'') {
                        self.pos += 1;
                        out.push('\'');
                    } else {
                        return Ok(Token::Str(out));
                    }
                }
                Some(b) => out.push(b as char),
                None => {
                    return Err(LexError {
                        message: "unterminated string literal".into(),
                        offset,
                    })
                }
            }
        }
    }

    fn lex_number(&mut self, offset: usize) -> Result<Token, LexError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        // Fractional part: only when followed by a digit, so `1.x` lexes as
        // `1` `.` `x` (qualified-name syntax never follows a number, but we
        // stay conservative).
        if self.peek() == Some(b'.') && matches!(self.peek2(), Some(b'0'..=b'9')) {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            let mut ahead = self.pos + 1;
            if matches!(self.src.get(ahead), Some(b'+') | Some(b'-')) {
                ahead += 1;
            }
            if matches!(self.src.get(ahead), Some(b'0'..=b'9')) {
                is_float = true;
                self.pos = ahead + 1;
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
        }
        // The scanned range contains only ASCII digits and '.', so it is
        // valid UTF-8 by construction.
        #[allow(clippy::unwrap_used)]
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>().map(Token::Float).map_err(|e| LexError {
                message: format!("bad float literal: {e}"),
                offset,
            })
        } else {
            text.parse::<i64>().map(Token::Int).map_err(|e| LexError {
                message: format!("bad integer literal: {e}"),
                offset,
            })
        }
    }

    fn lex_word(&mut self) -> Token {
        let start = self.pos;
        while matches!(self.peek(), Some(b) if b.is_ascii_alphanumeric() || b == b'_') {
            self.pos += 1;
        }
        // ASCII alphanumerics and '_' only — valid UTF-8 by construction.
        #[allow(clippy::unwrap_used)]
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        match Keyword::from_str(text) {
            Some(k) => Token::Keyword(k),
            None => Token::Ident(text.to_ascii_lowercase()),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        Lexer::tokenize(src)
            .unwrap()
            .into_iter()
            .map(|s| s.tok)
            .collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("select a, 1.5 from t where x >= 10"),
            vec![
                Token::Keyword(Keyword::SELECT),
                Token::Ident("a".into()),
                Token::Comma,
                Token::Float(1.5),
                Token::Keyword(Keyword::FROM),
                Token::Ident("t".into()),
                Token::Keyword(Keyword::WHERE),
                Token::Ident("x".into()),
                Token::GtEq,
                Token::Int(10),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(
            toks("'USA' 'it''s'"),
            vec![
                Token::Str("USA".into()),
                Token::Str("it's".into()),
                Token::Eof
            ]
        );
        assert!(Lexer::tokenize("'oops").is_err());
    }

    #[test]
    fn comments_are_trivia() {
        assert_eq!(
            toks("select -- comment\n 1 /* block\n comment */ + 2"),
            vec![
                Token::Keyword(Keyword::SELECT),
                Token::Int(1),
                Token::Plus,
                Token::Int(2),
                Token::Eof
            ]
        );
        assert!(Lexer::tokenize("/* unterminated").is_err());
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("< <= <> != = > >="),
            vec![
                Token::Lt,
                Token::LtEq,
                Token::NotEq,
                Token::NotEq,
                Token::Eq,
                Token::Gt,
                Token::GtEq,
                Token::Eof
            ]
        );
        assert!(Lexer::tokenize("!x").is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("42 3.25 1e3 2.5e-2"),
            vec![
                Token::Int(42),
                Token::Float(3.25),
                Token::Float(1000.0),
                Token::Float(0.025),
                Token::Eof
            ]
        );
        // Integer followed by dot-identifier stays separate.
        assert_eq!(
            toks("1.e"),
            vec![
                Token::Int(1),
                Token::Dot,
                Token::Ident("e".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn identifiers_lowercased_keywords_recognized() {
        assert_eq!(
            toks("Trans GROUP grouping_sets"),
            vec![
                Token::Ident("trans".into()),
                Token::Keyword(Keyword::GROUP),
                Token::Ident("grouping_sets".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn offsets_reported() {
        let spanned = Lexer::tokenize("ab  cd").unwrap();
        assert_eq!(spanned[0].offset, 0);
        assert_eq!(spanned[1].offset, 4);
    }

    #[test]
    fn rejects_unknown_characters() {
        let err = Lexer::tokenize("select #").unwrap_err();
        assert!(err.message.contains('#'));
        assert_eq!(err.offset, 7);
    }
}
