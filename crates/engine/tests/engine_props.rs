//! Randomized tests of the execution engine's algebraic invariants, driven
//! by the workspace's deterministic in-tree PRNG (seeded loops instead of a
//! proptest harness, keeping the build hermetic).

// Tests and examples assert on fixed inputs; unwrap/expect failures are
// test failures, which is exactly what we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use sumtab_catalog::{Catalog, Column, SqlType, Table, Value};
use sumtab_datagen::SplitMix64;
use sumtab_engine::{execute, Database};
use sumtab_parser::parse_query;
use sumtab_qgm::build_query;

fn two_table_catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.add_table(Table::new(
        "l",
        vec![
            Column::new("k", SqlType::Int),
            Column::new("v", SqlType::Int),
        ],
    ))
    .unwrap();
    cat.add_table(Table::new(
        "r",
        vec![
            Column::new("k", SqlType::Int),
            Column::new("w", SqlType::Int),
        ],
    ))
    .unwrap();
    cat
}

fn run(cat: &Catalog, db: &Database, sql: &str) -> Vec<Vec<Value>> {
    let g = build_query(&parse_query(sql).unwrap(), cat).unwrap();
    let mut rows = execute(&g, db).unwrap();
    rows.sort();
    rows
}

fn row2(a: i64, b: i64) -> Vec<Value> {
    vec![Value::Int(a), Value::Int(b)]
}

/// `0..max_len` random pairs with both components in `[lo, hi]` ranges.
fn rand_pairs(
    r: &mut SplitMix64,
    max_len: usize,
    min_len: usize,
    k: (i64, i64),
    v: (i64, i64),
) -> Vec<(i64, i64)> {
    let n = r.gen_i64(min_len as i64, max_len as i64) as usize;
    (0..n)
        .map(|_| (r.gen_i64(k.0, k.1), r.gen_i64(v.0, v.1)))
        .collect()
}

/// The engine's hash equi-join must agree with an explicitly computed
/// nested-loop join.
#[test]
fn hash_join_equals_nested_loop() {
    let mut r = SplitMix64::new(0x10);
    for _ in 0..64 {
        let left = rand_pairs(&mut r, 24, 0, (0, 5), (-5, 4));
        let right = rand_pairs(&mut r, 24, 0, (0, 5), (-5, 4));
        let cat = two_table_catalog();
        let mut db = Database::new();
        db.insert(&cat, "l", left.iter().map(|&(k, v)| row2(k, v)).collect())
            .unwrap();
        db.insert(&cat, "r", right.iter().map(|&(k, w)| row2(k, w)).collect())
            .unwrap();
        let joined = run(&cat, &db, "select l.v, r.w from l, r where l.k = r.k");
        let mut expected: Vec<Vec<Value>> = Vec::new();
        for &(lk, lv) in &left {
            for &(rk, rw) in &right {
                if lk == rk {
                    expected.push(vec![Value::Int(lv), Value::Int(rw)]);
                }
            }
        }
        expected.sort();
        assert_eq!(joined, expected);
    }
}

/// Partial/total aggregation consistency — the invariant behind the
/// paper's Section 4.1.2: summing per-(k,v) partial counts/sums gives
/// exactly the per-k totals.
#[test]
fn partial_aggregates_recombine() {
    let mut r = SplitMix64::new(0x11);
    for _ in 0..64 {
        let rows = rand_pairs(&mut r, 40, 1, (0, 4), (-4, 7));
        let cat = two_table_catalog();
        let mut db = Database::new();
        db.insert(&cat, "l", rows.iter().map(|&(k, v)| row2(k, v)).collect())
            .unwrap();
        let direct = run(
            &cat,
            &db,
            "select k, count(*) as c, sum(v) as s from l group by k",
        );
        let via_partials = run(
            &cat,
            &db,
            "select k, sum(c) as c, sum(s) as s from \
             (select k, v, count(*) as c, sum(v) as s from l group by k, v) as p \
             group by k",
        );
        assert_eq!(direct, via_partials);
    }
}

/// Grouping-sets output equals the union of independently computed
/// cuboids with NULL padding (Section 5 semantics).
#[test]
fn grouping_sets_equal_union_of_cuboids() {
    let mut r = SplitMix64::new(0x12);
    for _ in 0..64 {
        let rows = rand_pairs(&mut r, 30, 1, (0, 3), (0, 2));
        let cat = two_table_catalog();
        let mut db = Database::new();
        db.insert(&cat, "l", rows.iter().map(|&(k, v)| row2(k, v)).collect())
            .unwrap();
        let cube = run(
            &cat,
            &db,
            "select k, v, count(*) as c from l group by grouping sets ((k, v), (k), ())",
        );
        let mut union: Vec<Vec<Value>> = Vec::new();
        for row in run(&cat, &db, "select k, v, count(*) as c from l group by k, v") {
            union.push(row);
        }
        for row in run(&cat, &db, "select k, count(*) as c from l group by k") {
            union.push(vec![row[0].clone(), Value::Null, row[1].clone()]);
        }
        for row in run(&cat, &db, "select count(*) as c from l") {
            union.push(vec![Value::Null, Value::Null, row[0].clone()]);
        }
        union.sort();
        assert_eq!(cube, union);
    }
}

/// SELECT DISTINCT equals GROUP BY over the same columns (footnote 2's
/// bridge, applied by the builder).
#[test]
fn distinct_equals_group_by() {
    let mut r = SplitMix64::new(0x13);
    for _ in 0..64 {
        let rows = rand_pairs(&mut r, 30, 0, (0, 3), (0, 3));
        let cat = two_table_catalog();
        let mut db = Database::new();
        db.insert(&cat, "l", rows.iter().map(|&(k, v)| row2(k, v)).collect())
            .unwrap();
        let distinct = run(&cat, &db, "select distinct k, v from l");
        let grouped = run(&cat, &db, "select k, v from l group by k, v");
        assert_eq!(distinct, grouped);
    }
}

/// MIN/MAX agree with a direct fold; AVG equals SUM/COUNT under integer
/// division (truncating toward zero, like the engine).
#[test]
fn min_max_avg_agree_with_fold() {
    let mut r = SplitMix64::new(0x14);
    for _ in 0..64 {
        let rows = rand_pairs(&mut r, 30, 1, (0, 2), (-50, 49));
        let cat = two_table_catalog();
        let mut db = Database::new();
        db.insert(&cat, "l", rows.iter().map(|&(k, v)| row2(k, v)).collect())
            .unwrap();
        let got = run(
            &cat,
            &db,
            "select k, min(v) as mn, max(v) as mx, avg(v) as av from l group by k",
        );
        use std::collections::BTreeMap;
        let mut folds: BTreeMap<i64, (i64, i64, i64, i64)> = BTreeMap::new();
        for &(k, v) in &rows {
            let e = folds.entry(k).or_insert((i64::MAX, i64::MIN, 0, 0));
            e.0 = e.0.min(v);
            e.1 = e.1.max(v);
            e.2 += v;
            e.3 += 1;
        }
        let expected: Vec<Vec<Value>> = folds
            .into_iter()
            .map(|(k, (mn, mx, s, c))| {
                vec![
                    Value::Int(k),
                    Value::Int(mn),
                    Value::Int(mx),
                    Value::Int(s / c),
                ]
            })
            .collect();
        assert_eq!(got, expected);
    }
}
