//! Property-based tests of the execution engine's algebraic invariants.

use proptest::prelude::*;
use sumtab_catalog::{Catalog, Column, SqlType, Table, Value};
use sumtab_engine::{execute, Database};
use sumtab_parser::parse_query;
use sumtab_qgm::build_query;

fn two_table_catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.add_table(Table::new(
        "l",
        vec![
            Column::new("k", SqlType::Int),
            Column::new("v", SqlType::Int),
        ],
    ))
    .unwrap();
    cat.add_table(Table::new(
        "r",
        vec![
            Column::new("k", SqlType::Int),
            Column::new("w", SqlType::Int),
        ],
    ))
    .unwrap();
    cat
}

fn run(cat: &Catalog, db: &Database, sql: &str) -> Vec<Vec<Value>> {
    let g = build_query(&parse_query(sql).unwrap(), cat).unwrap();
    let mut rows = execute(&g, db).unwrap();
    rows.sort();
    rows
}

fn row2(a: i64, b: i64) -> Vec<Value> {
    vec![Value::Int(a), Value::Int(b)]
}

proptest! {
    /// The engine's hash equi-join must agree with an explicitly computed
    /// nested-loop join.
    #[test]
    fn hash_join_equals_nested_loop(
        left in proptest::collection::vec((0i64..6, -5i64..5), 0..24),
        right in proptest::collection::vec((0i64..6, -5i64..5), 0..24),
    ) {
        let cat = two_table_catalog();
        let mut db = Database::new();
        db.insert(&cat, "l", left.iter().map(|&(k, v)| row2(k, v)).collect()).unwrap();
        db.insert(&cat, "r", right.iter().map(|&(k, w)| row2(k, w)).collect()).unwrap();
        let joined = run(&cat, &db, "select l.v, r.w from l, r where l.k = r.k");
        let mut expected: Vec<Vec<Value>> = Vec::new();
        for &(lk, lv) in &left {
            for &(rk, rw) in &right {
                if lk == rk {
                    expected.push(vec![Value::Int(lv), Value::Int(rw)]);
                }
            }
        }
        expected.sort();
        prop_assert_eq!(joined, expected);
    }

    /// Partial/total aggregation consistency — the invariant behind the
    /// paper's Section 4.1.2: summing per-(k,v) partial counts/sums gives
    /// exactly the per-k totals.
    #[test]
    fn partial_aggregates_recombine(
        rows in proptest::collection::vec((0i64..5, -4i64..8), 1..40),
    ) {
        let cat = two_table_catalog();
        let mut db = Database::new();
        db.insert(&cat, "l", rows.iter().map(|&(k, v)| row2(k, v)).collect()).unwrap();
        let direct = run(&cat, &db, "select k, count(*) as c, sum(v) as s from l group by k");
        let via_partials = run(
            &cat,
            &db,
            "select k, sum(c) as c, sum(s) as s from \
             (select k, v, count(*) as c, sum(v) as s from l group by k, v) as p \
             group by k",
        );
        prop_assert_eq!(direct, via_partials);
    }

    /// Grouping-sets output equals the union of independently computed
    /// cuboids with NULL padding (Section 5 semantics).
    #[test]
    fn grouping_sets_equal_union_of_cuboids(
        rows in proptest::collection::vec((0i64..4, 0i64..3), 1..30),
    ) {
        let cat = two_table_catalog();
        let mut db = Database::new();
        db.insert(&cat, "l", rows.iter().map(|&(k, v)| row2(k, v)).collect()).unwrap();
        let cube = run(
            &cat,
            &db,
            "select k, v, count(*) as c from l group by grouping sets ((k, v), (k), ())",
        );
        let mut union: Vec<Vec<Value>> = Vec::new();
        for row in run(&cat, &db, "select k, v, count(*) as c from l group by k, v") {
            union.push(row);
        }
        for row in run(&cat, &db, "select k, count(*) as c from l group by k") {
            union.push(vec![row[0].clone(), Value::Null, row[1].clone()]);
        }
        for row in run(&cat, &db, "select count(*) as c from l") {
            union.push(vec![Value::Null, Value::Null, row[0].clone()]);
        }
        union.sort();
        prop_assert_eq!(cube, union);
    }

    /// SELECT DISTINCT equals GROUP BY over the same columns (footnote 2's
    /// bridge, applied by the builder).
    #[test]
    fn distinct_equals_group_by(
        rows in proptest::collection::vec((0i64..4, 0i64..4), 0..30),
    ) {
        let cat = two_table_catalog();
        let mut db = Database::new();
        db.insert(&cat, "l", rows.iter().map(|&(k, v)| row2(k, v)).collect()).unwrap();
        let distinct = run(&cat, &db, "select distinct k, v from l");
        let grouped = run(&cat, &db, "select k, v from l group by k, v");
        prop_assert_eq!(distinct, grouped);
    }

    /// MIN/MAX agree with a direct fold; AVG equals SUM/COUNT under integer
    /// division.
    #[test]
    fn min_max_avg_agree_with_fold(
        rows in proptest::collection::vec((0i64..3, -50i64..50), 1..30),
    ) {
        let cat = two_table_catalog();
        let mut db = Database::new();
        db.insert(&cat, "l", rows.iter().map(|&(k, v)| row2(k, v)).collect()).unwrap();
        let got = run(
            &cat,
            &db,
            "select k, min(v) as mn, max(v) as mx, avg(v) as av from l group by k",
        );
        use std::collections::BTreeMap;
        let mut folds: BTreeMap<i64, (i64, i64, i64, i64)> = BTreeMap::new();
        for &(k, v) in &rows {
            let e = folds.entry(k).or_insert((i64::MAX, i64::MIN, 0, 0));
            e.0 = e.0.min(v);
            e.1 = e.1.max(v);
            e.2 += v;
            e.3 += 1;
        }
        let expected: Vec<Vec<Value>> = folds
            .into_iter()
            .map(|(k, (mn, mx, s, c))| {
                vec![
                    Value::Int(k),
                    Value::Int(mn),
                    Value::Int(mx),
                    Value::Int(s.div_euclid(c).max(s / c)), // integer division semantics
                ]
            })
            .collect();
        // Integer division in the engine truncates toward zero (wrapping_div).
        let expected: Vec<Vec<Value>> = expected
            .into_iter()
            .map(|mut r| {
                if let (Value::Int(k), _) = (&r[0], ()) {
                    let (s, c) = rows
                        .iter()
                        .filter(|(rk, _)| rk == k)
                        .fold((0i64, 0i64), |(s, c), &(_, v)| (s + v, c + 1));
                    r[3] = Value::Int(s / c);
                }
                r
            })
            .collect();
        prop_assert_eq!(got, expected);
    }
}
