//! # sumtab-engine
//!
//! An in-memory SQL execution engine that evaluates QGM graphs directly.
//!
//! The paper's measurements ran inside DB2; this engine is the substitute
//! substrate that lets the reproduction (a) check that a rewritten query is
//! semantically equivalent to the original (multiset-identical results), and
//! (b) measure the relative cost of original vs rewritten queries, which is
//! what drives the paper's "orders of magnitude" claim.
//!
//! Design: a materializing executor with two paths over one plan shape.
//! Each box produces a `Vec<Row>`. SELECT boxes plan a left-deep join order
//! and use hash joins for equi-join conjuncts (nested loops otherwise);
//! GROUP BY boxes use hash aggregation, evaluating multidimensional
//! grouping sets one cuboid at a time over the same input (Section 5
//! semantics, Figure 12). The default path ([`execute`]) is morsel-parallel
//! and columnar: base tables are scanned through cached [`ColumnarTable`]
//! snapshots, scalar expressions are compiled once per box into flat
//! [`Program`] op slices, and work fans across a scoped thread pool with
//! deterministic slot-merge. The row-at-a-time interpreter survives as
//! [`execute_serial`], the differential-testing oracle.

#![forbid(unsafe_code)]

mod agg;
pub mod csv;
pub mod db;
pub mod error;
pub mod eval;
pub mod exec;
pub mod materialize;
pub mod plancache;
pub mod program;
pub mod session;

pub use csv::{load_csv, to_csv};
pub use db::{ColumnVec, ColumnarTable, Database, DbError, Row};
pub use error::SumtabError;
pub use eval::{eval_expr, like_match, Env, EvalError};
pub use exec::{
    default_pool_size, execute, execute_serial, execute_with, ExecError, ExecOptions,
    DEFAULT_MORSEL_SIZE,
};
pub use materialize::{backing_table_schema, materialize, materialize_with};
pub use plancache::{CacheStats, FeedbackEntry, PlanCache, RouteChoice};
pub use program::{Cell, Program, Resolved, Scratch};
pub use session::{matched_rows, update_deltas, Session};

/// Sort rows with the deterministic `Value` total order; useful for
/// order-insensitive result comparison in tests and tools.
pub fn sort_rows(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort();
    rows
}

/// Render rows as an ASCII table with the given header. Used by the examples
/// and the paper-experiments harness.
pub fn format_table(header: &[String], rows: &[Row]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| r.iter().map(|v| v.to_string()).collect())
        .collect();
    for r in &rendered {
        for (i, cell) in r.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        out.push('+');
        for w in &widths {
            out.push_str(&"-".repeat(w + 2));
            out.push('+');
        }
        out.push('\n');
    };
    sep(&mut out);
    out.push('|');
    for (h, w) in header.iter().zip(&widths) {
        out.push_str(&format!(" {h:<w$} |"));
    }
    out.push('\n');
    sep(&mut out);
    for r in &rendered {
        out.push('|');
        for (c, w) in r.iter().zip(&widths) {
            out.push_str(&format!(" {c:<w$} |"));
        }
        out.push('\n');
    }
    sep(&mut out);
    out
}
