//! The QGM executor.

use crate::db::{Database, Row};
use crate::eval::{eval_expr, truth, Env};
use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use sumtab_catalog::fx::FxHashMap;
use sumtab_catalog::Value;
use sumtab_qgm::{
    AggCall, AggFunc, BinOp, BoxId, BoxKind, ColRef, QgmGraph, QuantId, QuantKind, ScalarExpr,
};

/// Execution errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A scalar subquery produced more than one row.
    ScalarSubqueryCardinality(usize),
    /// Tried to execute a matcher-internal graph.
    SubsumerRefInGraph,
    /// The graph violates an executor invariant (e.g. an un-normalized AVG
    /// or a group-by output that is neither item nor aggregate). Reported
    /// instead of panicking so callers can fall back to another plan.
    MalformedGraph {
        /// The offending box.
        box_id: u32,
        /// Which invariant was violated.
        detail: String,
    },
    /// A fault injected through a failpoint (testing only).
    Injected(String),
}

impl ExecError {
    fn malformed(b: BoxId, detail: impl Into<String>) -> ExecError {
        ExecError::MalformedGraph {
            box_id: b.0,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::ScalarSubqueryCardinality(n) => {
                write!(f, "scalar subquery returned {n} rows")
            }
            ExecError::SubsumerRefInGraph => {
                write!(f, "graph contains a matcher-internal SubsumerRef box")
            }
            ExecError::MalformedGraph { box_id, detail } => {
                write!(f, "malformed graph at box {box_id}: {detail}")
            }
            ExecError::Injected(fp) => write!(f, "injected fault at failpoint `{fp}`"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Execute a QGM graph against a database; returns the root box's rows,
/// with root ORDER BY / LIMIT applied.
pub fn execute(g: &QgmGraph, db: &Database) -> Result<Vec<Row>, ExecError> {
    let mut memo: HashMap<BoxId, Rc<Vec<Row>>> = HashMap::new();
    let rows = exec_box(g, g.root, db, &mut memo)?;
    let mut rows = Rc::try_unwrap(rows).unwrap_or_else(|rc| (*rc).clone());
    if !g.order.keys.is_empty() {
        rows.sort_by(|a, b| {
            for &(ord, desc) in &g.order.keys {
                let c = a[ord].cmp(&b[ord]);
                let c = if desc { c.reverse() } else { c };
                if c != std::cmp::Ordering::Equal {
                    return c;
                }
            }
            std::cmp::Ordering::Equal
        });
    }
    if let Some(n) = g.order.limit {
        rows.truncate(n as usize);
    }
    Ok(rows)
}

fn exec_box(
    g: &QgmGraph,
    b: BoxId,
    db: &Database,
    memo: &mut HashMap<BoxId, Rc<Vec<Row>>>,
) -> Result<Rc<Vec<Row>>, ExecError> {
    if let Some(r) = memo.get(&b) {
        return Ok(Rc::clone(r));
    }
    let rows = match &g.boxed(b).kind {
        BoxKind::BaseTable { table } => Rc::new(db.rows(table).to_vec()),
        BoxKind::SubsumerRef { .. } => return Err(ExecError::SubsumerRefInGraph),
        BoxKind::Select(_) => Rc::new(exec_select(g, b, db, memo)?),
        BoxKind::GroupBy(_) => Rc::new(exec_group_by(g, b, db, memo)?),
    };
    memo.insert(b, Rc::clone(&rows));
    Ok(rows)
}

/// The environment for evaluating expressions of a SELECT box mid-join:
/// bound quantifiers are offsets into a concatenated tuple; scalar
/// quantifiers resolve to pre-computed constants.
struct SelectEnv<'a> {
    offsets: &'a FxHashMap<u32, usize>,
    scalars: &'a FxHashMap<u32, Value>,
    tuple: &'a [Value],
}

impl Env for SelectEnv<'_> {
    fn col(&self, c: ColRef) -> Value {
        if let Some(v) = self.scalars.get(&c.qid.idx) {
            debug_assert_eq!(c.ordinal, 0);
            return v.clone();
        }
        let off = self.offsets[&c.qid.idx];
        self.tuple[off + c.ordinal].clone()
    }
}

fn exec_select(
    g: &QgmGraph,
    b: BoxId,
    db: &Database,
    memo: &mut HashMap<BoxId, Rc<Vec<Row>>>,
) -> Result<Vec<Row>, ExecError> {
    let bx = g.boxed(b);
    let sel = bx
        .as_select()
        .ok_or_else(|| ExecError::malformed(b, "exec_select on a non-SELECT box"))?;

    // 1. Pre-compute scalar subquery values.
    let mut scalars: FxHashMap<u32, Value> = FxHashMap::default();
    let mut foreach: Vec<QuantId> = Vec::new();
    for &q in &bx.quants {
        match g.quant(q).kind {
            QuantKind::Scalar => {
                let rows = exec_box(g, g.input_of(q), db, memo)?;
                let v = match rows.len() {
                    0 => Value::Null,
                    1 => rows[0][0].clone(),
                    n => return Err(ExecError::ScalarSubqueryCardinality(n)),
                };
                scalars.insert(q.idx, v);
            }
            QuantKind::Foreach => foreach.push(q),
        }
    }

    // 2. Classify predicates by the foreach quantifiers they reference.
    let quant_set: HashSet<u32> = foreach.iter().map(|q| q.idx).collect();
    let pred_refs: Vec<HashSet<u32>> = sel
        .predicates
        .iter()
        .map(|p| {
            p.col_refs()
                .into_iter()
                .map(|c| c.qid.idx)
                .filter(|i| quant_set.contains(i))
                .collect()
        })
        .collect();
    let mut pred_done = vec![false; sel.predicates.len()];

    // Constant predicates (no foreach references): evaluate once.
    {
        let offsets = FxHashMap::default();
        let env = SelectEnv {
            offsets: &offsets,
            scalars: &scalars,
            tuple: &[],
        };
        for (i, p) in sel.predicates.iter().enumerate() {
            if pred_refs[i].is_empty() {
                pred_done[i] = true;
                if truth(&eval_expr(p, &env)) != Some(true) {
                    return Ok(Vec::new());
                }
            }
        }
    }

    // 3. Left-deep join. `offsets` maps bound quantifier → start offset in
    // the concatenated tuple.
    let mut offsets: FxHashMap<u32, usize> = FxHashMap::default();
    let mut tuples: Vec<Row> = vec![Vec::new()];
    let mut width = 0usize;
    let mut remaining: Vec<QuantId> = foreach;

    while !remaining.is_empty() {
        // Pick the next quantifier: prefer one linked to the bound set by an
        // equi-join conjunct; fall back to the first remaining.
        let pick = remaining
            .iter()
            .position(|q| {
                !offsets.is_empty()
                    && sel.predicates.iter().enumerate().any(|(i, p)| {
                        !pred_done[i] && is_equi_join(p, &offsets, q.idx, &pred_refs[i])
                    })
            })
            .unwrap_or(0);
        let q = remaining.remove(pick);
        let child_rows = exec_box(g, g.input_of(q), db, memo)?;
        let child_width = g.boxed(g.input_of(q)).outputs.len();

        // Prefilter rows with single-quantifier predicates.
        let mut single_idx = Vec::new();
        for (i, refs) in pred_refs.iter().enumerate() {
            if !pred_done[i] && refs.len() == 1 && refs.contains(&q.idx) {
                pred_done[i] = true;
                single_idx.push(i);
            }
        }
        let single: Vec<&ScalarExpr> = single_idx.iter().map(|&i| &sel.predicates[i]).collect();
        let mut local_off = FxHashMap::default();
        local_off.insert(q.idx, 0usize);
        let filtered: Vec<&Row> = child_rows
            .iter()
            .filter(|row| {
                single.iter().all(|p| {
                    let env = SelectEnv {
                        offsets: &local_off,
                        scalars: &scalars,
                        tuple: row,
                    };
                    truth(&eval_expr(p, &env)) == Some(true)
                })
            })
            .collect();

        // Equi-join conjuncts usable for hashing.
        let mut hash_preds: Vec<(ScalarExpr, ScalarExpr)> = Vec::new(); // (bound side, q side)
        for (i, p) in sel.predicates.iter().enumerate() {
            if pred_done[i] {
                continue;
            }
            if let Some((bound_side, q_side)) = split_equi_join(p, &offsets, q.idx, &pred_refs[i]) {
                hash_preds.push((bound_side, q_side));
                pred_done[i] = true;
            }
        }

        let mut next: Vec<Row> = Vec::new();
        if !hash_preds.is_empty() && !offsets.is_empty() {
            // Hash join: build on the (filtered) child rows.
            let mut table: FxHashMap<Vec<Value>, Vec<&Row>> = FxHashMap::default();
            'rows: for row in &filtered {
                let env = SelectEnv {
                    offsets: &local_off,
                    scalars: &scalars,
                    tuple: row,
                };
                let mut key = Vec::with_capacity(hash_preds.len());
                for (_, qs) in &hash_preds {
                    let v = eval_expr(qs, &env);
                    if v.is_null() {
                        continue 'rows; // NULL never joins
                    }
                    key.push(v);
                }
                table.entry(key).or_default().push(row);
            }
            for t in &tuples {
                let env = SelectEnv {
                    offsets: &offsets,
                    scalars: &scalars,
                    tuple: t,
                };
                let mut key = Vec::with_capacity(hash_preds.len());
                let mut null_key = false;
                for (bs, _) in &hash_preds {
                    let v = eval_expr(bs, &env);
                    if v.is_null() {
                        null_key = true;
                        break;
                    }
                    key.push(v);
                }
                if null_key {
                    continue;
                }
                if let Some(matches) = table.get(&key) {
                    for m in matches {
                        let mut nt = Vec::with_capacity(width + child_width);
                        nt.extend_from_slice(t);
                        nt.extend_from_slice(m);
                        next.push(nt);
                    }
                }
            }
        } else {
            // Cross product (with any remaining predicates applied below).
            for t in &tuples {
                for m in &filtered {
                    let mut nt = Vec::with_capacity(width + child_width);
                    nt.extend_from_slice(t);
                    nt.extend_from_slice(m);
                    next.push(nt);
                }
            }
        }
        offsets.insert(q.idx, width);
        width += child_width;
        tuples = next;

        // Apply any other predicate now fully bound.
        let bound: HashSet<u32> = offsets.keys().copied().collect();
        for (i, p) in sel.predicates.iter().enumerate() {
            if pred_done[i] || !pred_refs[i].is_subset(&bound) {
                continue;
            }
            pred_done[i] = true;
            tuples.retain(|t| {
                let env = SelectEnv {
                    offsets: &offsets,
                    scalars: &scalars,
                    tuple: t,
                };
                truth(&eval_expr(p, &env)) == Some(true)
            });
        }
    }
    debug_assert!(pred_done.iter().all(|&d| d), "all predicates applied");

    // 4. Project the outputs.
    let out = tuples
        .iter()
        .map(|t| {
            let env = SelectEnv {
                offsets: &offsets,
                scalars: &scalars,
                tuple: t,
            };
            bx.outputs
                .iter()
                .map(|oc| eval_expr(&oc.expr, &env))
                .collect()
        })
        .collect();
    Ok(out)
}

/// Is `p` an equality conjunct linking the bound set to quantifier `q`?
fn is_equi_join(
    p: &ScalarExpr,
    offsets: &FxHashMap<u32, usize>,
    q: u32,
    refs: &HashSet<u32>,
) -> bool {
    if !refs.contains(&q) {
        return false;
    }
    let bound_ok = refs.iter().all(|r| *r == q || offsets.contains_key(r));
    bound_ok && refs.len() >= 2 && matches!(p, ScalarExpr::Bin(BinOp::Eq, _, _))
}

/// Split an equality conjunct into (bound-side, q-side) expressions if one
/// side references only bound quantifiers and the other only `q`.
fn split_equi_join(
    p: &ScalarExpr,
    offsets: &FxHashMap<u32, usize>,
    q: u32,
    refs: &HashSet<u32>,
) -> Option<(ScalarExpr, ScalarExpr)> {
    if !refs.contains(&q) || refs.len() < 2 {
        return None;
    }
    if !refs.iter().all(|r| *r == q || offsets.contains_key(r)) {
        return None;
    }
    let ScalarExpr::Bin(BinOp::Eq, l, r) = p else {
        return None;
    };
    let side_refs = |e: &ScalarExpr| -> (bool, bool) {
        let mut has_q = false;
        let mut has_bound = false;
        for c in e.col_refs() {
            if c.qid.idx == q {
                has_q = true;
            } else if offsets.contains_key(&c.qid.idx) {
                has_bound = true;
            }
        }
        (has_q, has_bound)
    };
    let (lq, lb) = side_refs(l);
    let (rq, rb) = side_refs(r);
    match ((lq, lb), (rq, rb)) {
        ((false, true), (true, false)) => Some(((**l).clone(), (**r).clone())),
        ((true, false), (false, true)) => Some(((**r).clone(), (**l).clone())),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

/// A running aggregate accumulator.
enum Acc {
    CountStar(i64),
    Count(i64),
    Sum {
        int: i64,
        fl: f64,
        any_float: bool,
        seen: bool,
    },
    Min(Option<Value>),
    Max(Option<Value>),
    Distinct(HashSet<Value>, AggFunc),
}

impl Acc {
    fn new(call: &AggCall) -> Acc {
        if call.distinct {
            return Acc::Distinct(HashSet::new(), call.func);
        }
        match call.func {
            AggFunc::Count if call.arg.is_none() => Acc::CountStar(0),
            AggFunc::Count => Acc::Count(0),
            AggFunc::Sum => Acc::Sum {
                int: 0,
                fl: 0.0,
                any_float: false,
                seen: false,
            },
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
            // AVG is normalized to SUM/COUNT during QGM build; exec_group_by
            // rejects graphs carrying a raw AVG before any Acc is built, so
            // this arm is never reached with a meaningful call.
            AggFunc::Avg => Acc::Count(0),
        }
    }

    fn update(&mut self, arg: Option<&Value>) {
        match self {
            Acc::CountStar(n) => *n += 1,
            Acc::Count(n) => {
                if arg.is_some_and(|v| !v.is_null()) {
                    *n += 1;
                }
            }
            Acc::Sum {
                int,
                fl,
                any_float,
                seen,
            } => match arg {
                Some(Value::Int(i)) => {
                    *int = int.wrapping_add(*i);
                    *fl += *i as f64;
                    *seen = true;
                }
                Some(Value::Double(d)) => {
                    *fl += d;
                    *any_float = true;
                    *seen = true;
                }
                _ => {}
            },
            Acc::Min(cur) => {
                if let Some(v) = arg {
                    if !v.is_null() && cur.as_ref().is_none_or(|c| v < c) {
                        *cur = Some(v.clone());
                    }
                }
            }
            Acc::Max(cur) => {
                if let Some(v) = arg {
                    if !v.is_null() && cur.as_ref().is_none_or(|c| v > c) {
                        *cur = Some(v.clone());
                    }
                }
            }
            Acc::Distinct(set, _) => {
                if let Some(v) = arg {
                    if !v.is_null() {
                        set.insert(v.clone());
                    }
                }
            }
        }
    }

    fn finish(self) -> Value {
        match self {
            Acc::CountStar(n) | Acc::Count(n) => Value::Int(n),
            Acc::Sum {
                int,
                fl,
                any_float,
                seen,
            } => {
                if !seen {
                    Value::Null
                } else if any_float {
                    Value::Double(fl)
                } else {
                    Value::Int(int)
                }
            }
            Acc::Min(v) | Acc::Max(v) => v.unwrap_or(Value::Null),
            Acc::Distinct(set, func) => match func {
                AggFunc::Count => Value::Int(set.len() as i64),
                AggFunc::Sum => {
                    let mut acc = Acc::Sum {
                        int: 0,
                        fl: 0.0,
                        any_float: false,
                        seen: false,
                    };
                    for v in &set {
                        acc.update(Some(v));
                    }
                    acc.finish()
                }
                AggFunc::Min => set.iter().min().cloned().unwrap_or(Value::Null),
                AggFunc::Max => set.iter().max().cloned().unwrap_or(Value::Null),
                // Unreachable after exec_group_by's up-front AVG rejection.
                AggFunc::Avg => Value::Null,
            },
        }
    }
}

fn exec_group_by(
    g: &QgmGraph,
    b: BoxId,
    db: &Database,
    memo: &mut HashMap<BoxId, Rc<Vec<Row>>>,
) -> Result<Vec<Row>, ExecError> {
    let bx = g.boxed(b);
    let gb = bx
        .as_group_by()
        .ok_or_else(|| ExecError::malformed(b, "exec_group_by on a non-GROUP-BY box"))?;
    let child_q = *bx
        .quants
        .first()
        .ok_or_else(|| ExecError::malformed(b, "group-by box has no input quantifier"))?;
    let input = exec_box(g, g.input_of(child_q), db, memo)?;

    let item_ords: Vec<usize> = gb.items.iter().map(|c| c.ordinal).collect();
    // Outputs reference grouping items or carry aggregates, in any order.
    enum OutPlan {
        Item(usize),
        Agg(usize),
    }
    let mut agg_calls: Vec<AggCall> = Vec::new();
    let mut out_plan: Vec<OutPlan> = Vec::with_capacity(bx.outputs.len());
    for oc in &bx.outputs {
        match &oc.expr {
            ScalarExpr::Col(c) => {
                let i = gb.items.iter().position(|it| it == c).ok_or_else(|| {
                    ExecError::malformed(b, "group-by output must reference a grouping item")
                })?;
                out_plan.push(OutPlan::Item(i));
            }
            ScalarExpr::Agg(a) => {
                // AVG must have been normalized to SUM/COUNT by the builder;
                // reject it here (before any accumulator exists) so `Acc`
                // never observes it.
                if a.func == AggFunc::Avg {
                    return Err(ExecError::malformed(
                        b,
                        "raw AVG aggregate (not normalized to SUM/COUNT)",
                    ));
                }
                agg_calls.push(*a);
                out_plan.push(OutPlan::Agg(agg_calls.len() - 1));
            }
            other => {
                return Err(ExecError::malformed(
                    b,
                    format!("group-by output must be item or aggregate, got {other:?}"),
                ))
            }
        }
    }

    let mut out: Vec<Row> = Vec::new();
    // One aggregation pass per cuboid (Section 5: a cube query is the union
    // of its cuboids, NULL-padding the grouped-out columns).
    for set in &gb.sets {
        let mut groups: FxHashMap<Vec<Value>, Vec<Acc>> = FxHashMap::default();
        for row in input.iter() {
            let key: Vec<Value> = set.iter().map(|&i| row[item_ords[i]].clone()).collect();
            let accs = groups
                .entry(key)
                .or_insert_with(|| agg_calls.iter().map(Acc::new).collect());
            for (acc, call) in accs.iter_mut().zip(&agg_calls) {
                let arg = call.arg.map(|c| &row[c.ordinal]);
                acc.update(arg);
            }
        }
        // Aggregation over an empty input still produces one grand-total row.
        if groups.is_empty() && set.is_empty() {
            groups.insert(Vec::new(), agg_calls.iter().map(Acc::new).collect());
        }
        for (key, accs) in groups {
            let finished: Vec<Value> = accs.into_iter().map(Acc::finish).collect();
            let row = out_plan
                .iter()
                .map(|p| match p {
                    OutPlan::Item(i) => match set.iter().position(|&s| s == *i) {
                        Some(k) => key[k].clone(),
                        None => Value::Null,
                    },
                    OutPlan::Agg(k) => finished[*k].clone(),
                })
                .collect();
            out.push(row);
        }
    }
    Ok(out)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod tests {
    use super::*;
    use crate::db::Database;
    use sumtab_catalog::{Catalog, Date};
    use sumtab_parser::parse_query;
    use sumtab_qgm::build_query;

    fn setup() -> (Catalog, Database) {
        let cat = Catalog::credit_card_sample();
        let mut db = Database::new();
        let d = |s: &str| Value::Date(Date::parse(s).unwrap());
        // trans(tid, faid, flid, fpgid, date, qty, price, disc)
        db.insert(
            &cat,
            "trans",
            vec![
                vec![
                    1.into(),
                    100.into(),
                    1.into(),
                    10.into(),
                    d("1990-01-03"),
                    2.into(),
                    Value::Double(50.0),
                    Value::Double(0.0),
                ],
                vec![
                    2.into(),
                    100.into(),
                    1.into(),
                    10.into(),
                    d("1990-02-10"),
                    1.into(),
                    Value::Double(30.0),
                    Value::Double(0.1),
                ],
                vec![
                    3.into(),
                    100.into(),
                    1.into(),
                    11.into(),
                    d("1990-04-12"),
                    3.into(),
                    Value::Double(20.0),
                    Value::Double(0.2),
                ],
                vec![
                    4.into(),
                    200.into(),
                    2.into(),
                    11.into(),
                    d("1991-10-20"),
                    1.into(),
                    Value::Double(80.0),
                    Value::Double(0.0),
                ],
                vec![
                    5.into(),
                    200.into(),
                    2.into(),
                    10.into(),
                    d("1991-11-21"),
                    2.into(),
                    Value::Double(10.0),
                    Value::Double(0.5),
                ],
            ],
        )
        .unwrap();
        db.insert(
            &cat,
            "loc",
            vec![
                vec![1.into(), "san jose".into(), "CA".into(), "USA".into()],
                vec![2.into(), "paris".into(), "IDF".into(), "France".into()],
            ],
        )
        .unwrap();
        db.insert(
            &cat,
            "pgroup",
            vec![
                vec![10.into(), "TV".into()],
                vec![11.into(), "Radio".into()],
            ],
        )
        .unwrap();
        db.insert(
            &cat,
            "acct",
            vec![
                vec![100.into(), 1000.into(), "gold".into()],
                vec![200.into(), 2000.into(), "basic".into()],
            ],
        )
        .unwrap();
        db.insert(
            &cat,
            "cust",
            vec![
                vec![1000.into(), "alice".into(), 30.into()],
                vec![2000.into(), "bob".into(), 40.into()],
            ],
        )
        .unwrap();
        (cat, db)
    }

    fn run(sql: &str) -> Vec<Row> {
        let (cat, db) = setup();
        let q = parse_query(sql).unwrap();
        let g = build_query(&q, &cat).unwrap();
        execute(&g, &db).unwrap()
    }

    fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
        rows.sort();
        rows
    }

    #[test]
    fn scan_and_filter() {
        let rows = run("select tid from trans where qty >= 2");
        assert_eq!(
            sorted(rows),
            vec![
                vec![Value::Int(1)],
                vec![Value::Int(3)],
                vec![Value::Int(5)]
            ]
        );
    }

    #[test]
    fn projection_expressions() {
        let rows = run("select tid, qty * price as amt from trans where tid = 1");
        assert_eq!(rows, vec![vec![Value::Int(1), Value::Double(100.0)]]);
    }

    #[test]
    fn hash_join_matches_nested_loop_semantics() {
        let rows = run("select tid, country from trans, loc where flid = lid and country = 'USA'");
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r[1] == Value::from("USA")));
    }

    #[test]
    fn three_way_join() {
        let rows = run("select tid, pgname, status from trans, pgroup, acct \
             where fpgid = pgid and faid = aid and pgname = 'TV'");
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn cross_join_without_predicate() {
        let rows = run("select tid, lid from trans, loc");
        assert_eq!(rows.len(), 10);
    }

    #[test]
    fn group_by_count_and_sum() {
        let rows = run("select faid, count(*) as cnt, sum(qty) as q from trans group by faid");
        assert_eq!(
            sorted(rows),
            vec![
                vec![Value::Int(100), Value::Int(3), Value::Int(6)],
                vec![Value::Int(200), Value::Int(2), Value::Int(3)],
            ]
        );
    }

    #[test]
    fn group_by_expression_and_having() {
        let rows = run("select year(date) as y, count(*) as cnt from trans \
             group by year(date) having count(*) > 2");
        assert_eq!(rows, vec![vec![Value::Int(1990), Value::Int(3)]]);
    }

    #[test]
    fn scalar_aggregation_over_empty_input() {
        let rows = run("select count(*) as c, sum(qty) as s from trans where qty > 100");
        assert_eq!(rows, vec![vec![Value::Int(0), Value::Null]]);
    }

    #[test]
    fn min_max_avg() {
        let rows = run("select min(price) as lo, max(price) as hi, avg(qty) as aq from trans");
        assert_eq!(
            rows,
            vec![vec![
                Value::Double(10.0),
                Value::Double(80.0),
                Value::Int(1) // avg = sum/count = 9/5 with integer division
            ]]
        );
    }

    #[test]
    fn count_distinct() {
        let rows = run("select count(distinct faid) as n from trans");
        assert_eq!(rows, vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn grouping_sets_union_with_null_padding() {
        let rows = run("select flid, year(date) as y, count(*) as cnt from trans \
             group by grouping sets ((flid, year(date)), (flid), ())");
        // cuboids: (flid,year): (1,1990,3),(2,1991,2); (flid): (1,3),(2,2); (): (5)
        let expect = vec![
            vec![Value::Null, Value::Null, Value::Int(5)],
            vec![Value::Int(1), Value::Null, Value::Int(3)],
            vec![Value::Int(1), Value::Int(1990), Value::Int(3)],
            vec![Value::Int(2), Value::Null, Value::Int(2)],
            vec![Value::Int(2), Value::Int(1991), Value::Int(2)],
        ];
        assert_eq!(sorted(rows), expect);
    }

    #[test]
    fn distinct_normalizes_to_group_by() {
        let rows = run("select distinct faid from trans");
        assert_eq!(
            sorted(rows),
            vec![vec![Value::Int(100)], vec![Value::Int(200)]]
        );
    }

    #[test]
    fn scalar_subquery_value() {
        let rows = run("select tid, (select count(*) from loc) as n from trans where tid = 1");
        assert_eq!(rows, vec![vec![Value::Int(1), Value::Int(2)]]);
    }

    #[test]
    fn scalar_subquery_empty_is_null() {
        let rows = run(
            "select tid, (select min(lid) from loc where lid > 99) as n from trans where tid = 1",
        );
        assert_eq!(rows, vec![vec![Value::Int(1), Value::Null]]);
    }

    #[test]
    fn derived_table_pipeline() {
        let rows = run(
            "select y, cnt from (select year(date) as y, count(*) as cnt from trans group by year(date)) as v \
             where cnt >= 2 order by y",
        );
        assert_eq!(
            rows,
            vec![
                vec![Value::Int(1990), Value::Int(3)],
                vec![Value::Int(1991), Value::Int(2)],
            ]
        );
    }

    #[test]
    fn order_by_and_limit() {
        let rows = run("select tid from trans order by tid desc limit 2");
        assert_eq!(rows, vec![vec![Value::Int(5)], vec![Value::Int(4)]]);
    }

    #[test]
    fn histogram_of_counts_two_level_aggregation() {
        // Q8-flavored query: counts of yearly counts.
        let rows = run("select tcnt, count(*) as ycnt from \
             (select year(date) as y, count(*) as tcnt from trans group by year(date)) as v \
             group by tcnt");
        assert_eq!(
            sorted(rows),
            vec![
                vec![Value::Int(2), Value::Int(1)],
                vec![Value::Int(3), Value::Int(1)],
            ]
        );
    }

    #[test]
    fn null_join_keys_do_not_match() {
        let cat = Catalog::credit_card_sample();
        let mut db = Database::new();
        // Two custs, one acct with NULL fcid — wait, fcid is non-nullable in
        // the sample schema; use a bespoke catalog instead.
        use sumtab_catalog::{Column, SqlType, Table};
        let mut cat2 = Catalog::new();
        cat2.add_table(Table::new("l", vec![Column::nullable("k", SqlType::Int)]))
            .unwrap();
        cat2.add_table(Table::new("r", vec![Column::nullable("k", SqlType::Int)]))
            .unwrap();
        db.insert(&cat2, "l", vec![vec![Value::Null], vec![Value::Int(1)]])
            .unwrap();
        db.insert(&cat2, "r", vec![vec![Value::Null], vec![Value::Int(1)]])
            .unwrap();
        let q = parse_query("select l.k from l, r where l.k = r.k").unwrap();
        let g = build_query(&q, &cat2).unwrap();
        let rows = execute(&g, &db).unwrap();
        assert_eq!(rows, vec![vec![Value::Int(1)]], "NULL keys never join");
        let _ = cat;
    }

    #[test]
    fn cube_rollup_shorthand() {
        let rows = run(
            "select flid, year(date) as y, count(*) as cnt from trans group by rollup(flid, year(date))",
        );
        // sets: (flid,y), (flid), ()
        assert_eq!(rows.len(), 2 + 2 + 1);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod error_tests {
    use super::*;
    use crate::db::Database;
    use sumtab_catalog::{Catalog, Column, SqlType, Table, Value};
    use sumtab_parser::parse_query;
    use sumtab_qgm::build_query;

    #[test]
    fn scalar_subquery_cardinality_error() {
        let mut cat = Catalog::new();
        cat.add_table(Table::new("t", vec![Column::new("a", SqlType::Int)]))
            .unwrap();
        let mut db = Database::new();
        db.insert(&cat, "t", vec![vec![Value::Int(1)], vec![Value::Int(2)]])
            .unwrap();
        let q = parse_query("select a, (select a from t) as s from t").unwrap();
        let g = build_query(&q, &cat).unwrap();
        assert_eq!(
            execute(&g, &db),
            Err(ExecError::ScalarSubqueryCardinality(2))
        );
    }

    #[test]
    fn subsumer_ref_graph_is_rejected() {
        use sumtab_qgm::{BoxKind, GraphId, OutputCol, QgmGraph, ScalarExpr};
        let mut g = QgmGraph::new();
        let sr = g.add_box(BoxKind::SubsumerRef {
            graph: GraphId(0),
            target: sumtab_qgm::BoxId(0),
        });
        g.boxed_mut(sr).outputs = vec![OutputCol {
            name: "x".into(),
            expr: ScalarExpr::BaseCol(0),
        }];
        g.root = sr;
        let db = Database::new();
        assert_eq!(execute(&g, &db), Err(ExecError::SubsumerRefInGraph));
    }

    #[test]
    fn cloned_subgraph_executes_identically() {
        let cat = Catalog::credit_card_sample();
        let mut db = Database::new();
        db.insert(
            &cat,
            "pgroup",
            vec![
                vec![Value::Int(1), Value::from("a")],
                vec![Value::Int(2), Value::from("b")],
            ],
        )
        .unwrap();
        let q = parse_query("select pgname, count(*) as c from pgroup group by pgname").unwrap();
        let g = build_query(&q, &cat).unwrap();
        let mut g2 = sumtab_qgm::QgmGraph::new();
        let root = g2.clone_subgraph(&g, g.root);
        g2.root = root;
        let mut a = execute(&g, &db).unwrap();
        let mut b = execute(&g2, &db).unwrap();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }
}
