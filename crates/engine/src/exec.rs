//! The QGM executor.
//!
//! Two execution paths share one plan shape (left-deep hash joins, per-cuboid
//! hash aggregation):
//!
//! * [`execute`] / [`execute_with`] — the **morsel-parallel columnar** path.
//!   Base-table scans read [`crate::db::ColumnarTable`] columns in place
//!   (zero-copy, dictionary-encoded strings), every scalar expression is
//!   compiled once per box into a flat [`Program`] of postfix ops, and
//!   scan/filter/build/probe/project work is split into fixed-size morsels
//!   fanned across a `std::thread::scope` pool. Results are byte-identical
//!   to the serial path for any pool/morsel size: morsel outputs are merged
//!   in morsel order (slot-merge discipline), GROUP BY partitions whole
//!   groups by key hash so each group's accumulator folds its rows in global
//!   row order, and group output follows first-occurrence order in both
//!   paths.
//! * [`execute_serial`] — the row-at-a-time interpreter, kept as the
//!   differential-testing oracle and bench baseline.
//!
//! ORDER BY + LIMIT uses bounded-heap top-k selection on the parallel path
//! (equivalent to the serial stable sort + truncate, tie-broken by original
//! row index).

use crate::agg::{
    emit_group_rows, grouped_columnar, grouped_partitioned, grouped_serial, plan_group_by, Acc,
    ArgSrc, GroupPlan,
};
use crate::db::{ColSlice, ColumnarTable, Database, Row};
use crate::eval::{eval_expr, truth, Env};
use crate::program::{compare, Cell, Program, Resolved, Scratch};
use std::cmp::Ordering;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::rc::Rc;
use std::sync::Arc;
use sumtab_catalog::fx::{FxHashMap, FxHasher};
use sumtab_catalog::{Date, Value};
use sumtab_qgm::{BinOp, BoxId, BoxKind, ColRef, QgmGraph, QuantId, QuantKind, ScalarExpr};

/// Execution errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A scalar subquery produced more than one row.
    ScalarSubqueryCardinality(usize),
    /// Tried to execute a matcher-internal graph.
    SubsumerRefInGraph,
    /// The graph violates an executor invariant (e.g. an un-normalized AVG
    /// or a group-by output that is neither item nor aggregate). Reported
    /// instead of panicking so callers can fall back to another plan.
    MalformedGraph {
        /// The offending box.
        box_id: u32,
        /// Which invariant was violated.
        detail: String,
    },
    /// A fault injected through a failpoint (testing only).
    Injected(String),
    /// The plan verifier rejected a compiled expression program
    /// (pass 4: stack balance, jump targets, slot arity).
    Verify(sumtab_qgm::VerifyError),
}

impl ExecError {
    pub(crate) fn malformed(b: BoxId, detail: impl Into<String>) -> ExecError {
        ExecError::MalformedGraph {
            box_id: b.0,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::ScalarSubqueryCardinality(n) => {
                write!(f, "scalar subquery returned {n} rows")
            }
            ExecError::SubsumerRefInGraph => {
                write!(f, "graph contains a matcher-internal SubsumerRef box")
            }
            ExecError::MalformedGraph { box_id, detail } => {
                write!(f, "malformed graph at box {box_id}: {detail}")
            }
            ExecError::Injected(fp) => write!(f, "injected fault at failpoint `{fp}`"),
            ExecError::Verify(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Default morsel granularity: large enough to amortize dispatch, small
/// enough to load-balance skewed filters.
pub const DEFAULT_MORSEL_SIZE: usize = 4096;

/// Default worker count: available parallelism, capped at 8.
pub fn default_pool_size() -> usize {
    hw_parallelism().min(8)
}

/// Cached `available_parallelism()`: the number of workers that can make
/// progress simultaneously. Queried once — the executor consults it on
/// every query, and the value cannot change meaningfully mid-process.
fn hw_parallelism() -> usize {
    static HW: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *HW.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Tuning knobs for the parallel columnar executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecOptions {
    /// Worker threads for morsel fan-out (`1` runs everything inline).
    pub pool_size: usize,
    /// Rows per morsel.
    pub morsel_size: usize,
}

impl Default for ExecOptions {
    fn default() -> ExecOptions {
        ExecOptions {
            pool_size: default_pool_size(),
            morsel_size: DEFAULT_MORSEL_SIZE,
        }
    }
}

/// Execute a QGM graph against a database; returns the root box's rows,
/// with root ORDER BY / LIMIT applied. Uses the morsel-parallel columnar
/// path with default options.
pub fn execute(g: &QgmGraph, db: &Database) -> Result<Vec<Row>, ExecError> {
    execute_with(g, db, &ExecOptions::default())
}

/// [`execute`] with explicit pool/morsel configuration. Results are
/// identical for every configuration.
pub fn execute_with(
    g: &QgmGraph,
    db: &Database,
    opts: &ExecOptions,
) -> Result<Vec<Row>, ExecError> {
    let rows = {
        // The executor state (memo + shared table cache) must drop before
        // the root `Rc` is unwrapped, or a memo-shared root would force a
        // deep clone of the whole result set.
        //
        // `pool_size` is a maximum degree of parallelism, not a mandate:
        // fan-out is clamped to the hardware parallelism actually present,
        // because extra threads on a saturated machine only add scheduling
        // handoffs. Worker count never affects results (the slot-merge
        // discipline is order-deterministic), so this is pure tuning.
        let mut ex = ParExec {
            g,
            db,
            workers: opts.pool_size.clamp(1, hw_parallelism()),
            morsel: opts.morsel_size.max(1),
            memo: HashMap::new(),
            tables: HashMap::new(),
            columnar: HashMap::new(),
        };
        ex.rows_of(g.root)?
    };
    let rows = Rc::try_unwrap(rows).unwrap_or_else(|rc| (*rc).clone());
    Ok(apply_order(g, rows, true))
}

/// The serial row-at-a-time interpreter: the differential-testing oracle
/// and bench baseline for the parallel columnar path.
pub fn execute_serial(g: &QgmGraph, db: &Database) -> Result<Vec<Row>, ExecError> {
    let rows = {
        let mut ex = SerialExec {
            g,
            db,
            memo: HashMap::new(),
            tables: HashMap::new(),
        };
        ex.exec_box(g.root)?
    };
    let rows = Rc::try_unwrap(rows).unwrap_or_else(|rc| (*rc).clone());
    Ok(apply_order(g, rows, false))
}

// ---------------------------------------------------------------------------
// ORDER BY / LIMIT
// ---------------------------------------------------------------------------

fn cmp_by_keys(a: &Row, b: &Row, keys: &[(usize, bool)]) -> Ordering {
    for &(ord, desc) in keys {
        let c = a[ord].cmp(&b[ord]);
        let c = if desc { c.reverse() } else { c };
        if c != Ordering::Equal {
            return c;
        }
    }
    Ordering::Equal
}

/// Apply root ORDER BY and LIMIT. With `topk` set and a limit smaller than
/// the input, bounded-heap selection replaces the full sort; the result is
/// byte-identical to stable `sort_by` + `truncate` because the selection
/// order is total (sort keys, then original row index).
fn apply_order(g: &QgmGraph, mut rows: Vec<Row>, topk: bool) -> Vec<Row> {
    let keys = &g.order.keys;
    let limit = g.order.limit.map(|n| n as usize);
    if !keys.is_empty() {
        if let Some(k) = limit {
            if topk && k < rows.len() {
                return top_k(rows, k, keys);
            }
        }
        rows.sort_by(|a, b| cmp_by_keys(a, b, keys));
    }
    if let Some(k) = limit {
        rows.truncate(k);
    }
    rows
}

/// The `k` first rows of a stable sort by `keys`, selected with a bounded
/// max-heap in O(n log k) instead of sorting all n rows.
fn top_k(rows: Vec<Row>, k: usize, keys: &[(usize, bool)]) -> Vec<Row> {
    if k == 0 {
        return Vec::new();
    }
    let cmp =
        |a: &(usize, Row), b: &(usize, Row)| cmp_by_keys(&a.1, &b.1, keys).then(a.0.cmp(&b.0));
    // Max-heap (under the total order) of the k smallest seen so far.
    let mut heap: Vec<(usize, Row)> = Vec::with_capacity(k);
    for (i, row) in rows.into_iter().enumerate() {
        let item = (i, row);
        if heap.len() < k {
            heap.push(item);
            sift_up(&mut heap, &cmp);
        } else if heap
            .first()
            .is_some_and(|top| cmp(&item, top) == Ordering::Less)
        {
            heap[0] = item;
            sift_down(&mut heap, &cmp);
        }
    }
    heap.sort_by(cmp);
    heap.into_iter().map(|(_, r)| r).collect()
}

fn sift_up<T>(h: &mut [T], cmp: &impl Fn(&T, &T) -> Ordering) {
    let mut i = h.len().saturating_sub(1);
    while i > 0 {
        let p = (i - 1) / 2;
        if cmp(&h[i], &h[p]) == Ordering::Greater {
            h.swap(i, p);
            i = p;
        } else {
            break;
        }
    }
}

fn sift_down<T>(h: &mut [T], cmp: &impl Fn(&T, &T) -> Ordering) {
    let mut i = 0usize;
    loop {
        let l = 2 * i + 1;
        if l >= h.len() {
            break;
        }
        let r = l + 1;
        let m = if r < h.len() && cmp(&h[r], &h[l]) == Ordering::Greater {
            r
        } else {
            l
        };
        if cmp(&h[m], &h[i]) == Ordering::Greater {
            h.swap(i, m);
            i = m;
        } else {
            break;
        }
    }
}

// ---------------------------------------------------------------------------
// Morsel scheduling
// ---------------------------------------------------------------------------

/// Below this many rows per worker, fanning out costs more than it saves:
/// [`row_workers`] shrinks the pool so tiny inputs take the serial path
/// outright instead of paying thread-spawn cost to idle at the join.
pub(crate) const MIN_PAR_ROWS: usize = 256;

/// The adaptive worker count for a row-granular stage over `n` rows: never
/// more than one worker per [`MIN_PAR_ROWS`] rows, never zero. `1` means
/// the stage runs inline on the calling thread.
#[inline]
pub(crate) fn row_workers(workers: usize, n: usize) -> usize {
    workers.min(n / MIN_PAR_ROWS).max(1)
}

/// Run `f` over contiguous fixed-size morsels of `0..n`, fanned across
/// `workers` scoped threads, and return the per-morsel results **in morsel
/// order** — the slot-merge discipline that keeps every downstream
/// concatenation deterministic regardless of scheduling.
pub(crate) fn par_map<T, F>(workers: usize, morsel: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, std::ops::Range<usize>) -> T + Sync,
{
    let morsel = morsel.max(1);
    let nm = n.div_ceil(morsel);
    // Never spawn more workers than there are morsels: the surplus would
    // only idle at the scope join.
    let workers = workers.min(nm);
    if workers <= 1 {
        return (0..nm)
            .map(|m| f(m, m * morsel..((m + 1) * morsel).min(n)))
            .collect();
    }
    let mut slots: Vec<Option<T>> = Vec::with_capacity(nm);
    slots.resize_with(nm, || None);
    let per = nm.div_ceil(workers);
    std::thread::scope(|s| {
        let mut chunks = slots.chunks_mut(per).enumerate();
        // The calling thread takes the first chunk itself instead of
        // spawning and then idling at the join.
        let first = chunks.next();
        for (w, chunk) in chunks {
            let f = &f;
            s.spawn(move || {
                for (j, slot) in chunk.iter_mut().enumerate() {
                    let m = w * per + j;
                    *slot = Some(f(m, m * morsel..((m + 1) * morsel).min(n)));
                }
            });
        }
        if let Some((_, chunk)) = first {
            for (m, slot) in chunk.iter_mut().enumerate() {
                *slot = Some(f(m, m * morsel..((m + 1) * morsel).min(n)));
            }
        }
    });
    slots.into_iter().flatten().collect()
}

/// Consuming parallel map: each item of `items` is **moved** into `f`
/// (which `par_map`'s shared-reference closures cannot do), results come
/// back in item order. This is how partition-major work — private hash
/// partitions, bucketed group folds — is handed to one worker per
/// partition without cloning the partition's data.
pub(crate) fn par_map_vec<T, U, F>(workers: usize, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
{
    let n = items.len();
    let workers = workers.min(n).max(1);
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    let per = n.div_ceil(workers);
    let mut slots: Vec<Option<U>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    std::thread::scope(|s| {
        let mut item_chunks: Vec<Vec<T>> = Vec::new();
        let mut it = items.into_iter();
        loop {
            let chunk: Vec<T> = it.by_ref().take(per).collect();
            if chunk.is_empty() {
                break;
            }
            item_chunks.push(chunk);
        }
        let mut slot_chunks = slots.chunks_mut(per);
        let mut chunks = item_chunks.into_iter();
        // The calling thread takes the first chunk itself.
        let first = chunks.next().zip(slot_chunks.next());
        for (w, (chunk, slot_chunk)) in (1..).zip(chunks.zip(slot_chunks)) {
            let f = &f;
            s.spawn(move || {
                for (j, (item, slot)) in chunk.into_iter().zip(slot_chunk.iter_mut()).enumerate() {
                    *slot = Some(f(w * per + j, item));
                }
            });
        }
        if let Some((chunk, slot_chunk)) = first {
            for (j, (item, slot)) in chunk.into_iter().zip(slot_chunk.iter_mut()).enumerate() {
                *slot = Some(f(j, item));
            }
        }
    });
    slots.into_iter().flatten().collect()
}

// ---------------------------------------------------------------------------
// Shared join-planning helpers
// ---------------------------------------------------------------------------

/// For each predicate, the set of **foreach** quantifiers it references.
fn pred_quant_refs(preds: &[ScalarExpr], quant_set: &HashSet<u32>) -> Vec<HashSet<u32>> {
    preds
        .iter()
        .map(|p| {
            p.col_refs()
                .into_iter()
                .map(|c| c.qid.idx)
                .filter(|i| quant_set.contains(i))
                .collect()
        })
        .collect()
}

/// Is `p` an equality conjunct linking the bound set to quantifier `q`?
fn is_equi_join(
    p: &ScalarExpr,
    offsets: &FxHashMap<u32, usize>,
    q: u32,
    refs: &HashSet<u32>,
) -> bool {
    if !refs.contains(&q) {
        return false;
    }
    let bound_ok = refs.iter().all(|r| *r == q || offsets.contains_key(r));
    bound_ok && refs.len() >= 2 && matches!(p, ScalarExpr::Bin(BinOp::Eq, _, _))
}

/// Split an equality conjunct into (bound-side, q-side) expressions if one
/// side references only bound quantifiers and the other only `q`.
fn split_equi_join(
    p: &ScalarExpr,
    offsets: &FxHashMap<u32, usize>,
    q: u32,
    refs: &HashSet<u32>,
) -> Option<(ScalarExpr, ScalarExpr)> {
    if !refs.contains(&q) || refs.len() < 2 {
        return None;
    }
    if !refs.iter().all(|r| *r == q || offsets.contains_key(r)) {
        return None;
    }
    let ScalarExpr::Bin(BinOp::Eq, l, r) = p else {
        return None;
    };
    let side_refs = |e: &ScalarExpr| -> (bool, bool) {
        let mut has_q = false;
        let mut has_bound = false;
        for c in e.col_refs() {
            if c.qid.idx == q {
                has_q = true;
            } else if offsets.contains_key(&c.qid.idx) {
                has_bound = true;
            }
        }
        (has_q, has_bound)
    };
    let (lq, lb) = side_refs(l);
    let (rq, rb) = side_refs(r);
    match ((lq, lb), (rq, rb)) {
        ((false, true), (true, false)) => Some(((**l).clone(), (**r).clone())),
        ((true, false), (false, true)) => Some(((**r).clone(), (**l).clone())),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Compiled-program helpers (parallel path)
// ---------------------------------------------------------------------------

/// Compile `e` against a fully bound tuple: bound quantifiers resolve to
/// flat tuple offsets, scalar quantifiers to inlined constants.
fn compile_bound(
    e: &ScalarExpr,
    b: BoxId,
    offsets: &FxHashMap<u32, usize>,
    scalars: &FxHashMap<u32, Value>,
    arity: usize,
) -> Result<Program, ExecError> {
    let prog = Program::compile(e, &mut |c: ColRef| {
        if let Some(v) = scalars.get(&c.qid.idx) {
            return Ok(Resolved::Const(v.clone()));
        }
        match offsets.get(&c.qid.idx) {
            Some(&off) => Ok(Resolved::Slot(off + c.ordinal)),
            None => Err(format!("unbound quantifier q{}", c.qid.idx)),
        }
    })
    .map_err(|d| ExecError::malformed(b, d))?;
    verify_program(&prog, b, arity)?;
    Ok(prog)
}

/// Compile `e` against a single child relation: quantifier `q` resolves to
/// the child's own column ordinals, scalar quantifiers to constants.
fn compile_local(
    e: &ScalarExpr,
    b: BoxId,
    q: u32,
    scalars: &FxHashMap<u32, Value>,
    arity: usize,
) -> Result<Program, ExecError> {
    let prog = Program::compile(e, &mut |c: ColRef| {
        if let Some(v) = scalars.get(&c.qid.idx) {
            return Ok(Resolved::Const(v.clone()));
        }
        if c.qid.idx == q {
            Ok(Resolved::Slot(c.ordinal))
        } else {
            Err(format!("unbound quantifier q{}", c.qid.idx))
        }
    })
    .map_err(|d| ExecError::malformed(b, d))?;
    verify_program(&prog, b, arity)?;
    Ok(prog)
}

/// Pass 4 gate: statically verify a freshly compiled program against the
/// input arity it will be evaluated with. Zero-cost when the gates are off.
fn verify_program(prog: &Program, b: BoxId, arity: usize) -> Result<(), ExecError> {
    if sumtab_qgm::verify::runtime_checks_enabled() {
        prog.verify(arity)
            .map_err(|r| ExecError::Verify(sumtab_qgm::VerifyError::program(b.0, r)))?;
    }
    Ok(())
}

/// A scan source for one join input: either a zero-copy columnar base
/// table or the materialized rows of a derived box.
#[derive(Clone, Copy)]
enum Source<'c> {
    Col(&'c ColumnarTable),
    Rows(&'c [Row]),
}

impl<'c> Source<'c> {
    fn len(&self) -> usize {
        match self {
            Source::Col(t) => t.len(),
            Source::Rows(r) => r.len(),
        }
    }

    #[inline]
    fn cell(&self, row: usize, col: usize) -> Cell<'c> {
        match self {
            Source::Col(t) => t.cell(row, col),
            Source::Rows(r) => Cell::of(&r[row][col]),
        }
    }

    fn append_row(&self, row: usize, out: &mut Row) {
        match self {
            Source::Col(t) => t.append_row(row, out),
            Source::Rows(r) => out.extend_from_slice(&r[row]),
        }
    }
}

/// Owns the storage a [`Source`] borrows from.
enum Child {
    Col(Arc<ColumnarTable>),
    Rows(Rc<Vec<Row>>),
}

impl Child {
    fn source(&self) -> Source<'_> {
        match self {
            Child::Col(t) => Source::Col(t),
            Child::Rows(r) => Source::Rows(r.as_slice()),
        }
    }

    /// The columnar table behind this child, if it is a base-table scan.
    fn columnar(&self) -> Option<&ColumnarTable> {
        match self {
            Child::Col(t) => Some(t),
            Child::Rows(_) => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Vectorized predicate kernels (columnar scan path)
// ---------------------------------------------------------------------------

/// A typed filter kernel for a `col <cmp> literal` (or `col IS [NOT] NULL`)
/// predicate over a columnar scan: the comparison runs directly on the
/// typed column slice, with no evaluation stack, no `Cell` boxing, and no
/// per-row dispatch beyond one enum match. Semantics are bit-for-bit those
/// of the compiled [`Program`] the kernel replaces (a NULL operand makes
/// every comparison non-true, doubles compare `Eq` by total order but
/// range-compare by partial order, mixed int/double compares by IEEE
/// value) — the differential tests hold both routes to identical output.
enum Kernel<'c> {
    /// Int column vs int literal.
    IntInt {
        data: &'c [i64],
        nulls: Option<&'c [u64]>,
        op: BinOp,
        rhs: i64,
    },
    /// Int column vs double literal (compared as f64, like `cell_ord`).
    IntF64 {
        data: &'c [i64],
        nulls: Option<&'c [u64]>,
        op: BinOp,
        rhs: f64,
    },
    /// Double column vs numeric literal. `total_eq` selects total-order
    /// equality (double vs double) over IEEE equality (double vs int).
    F64 {
        data: &'c [f64],
        nulls: Option<&'c [u64]>,
        op: BinOp,
        rhs: f64,
        total_eq: bool,
    },
    /// Date column vs date literal (date columns with NULLs fall back to
    /// `Mixed` storage, so no bitmap here).
    DateCmp {
        data: &'c [Date],
        op: BinOp,
        rhs: Date,
    },
    /// String column: the verdict is precomputed per dictionary code.
    StrCode {
        codes: &'c [u32],
        nulls: Option<&'c [u64]>,
        pass: Vec<bool>,
    },
    /// `col IS [NOT] NULL` straight off the bitmap.
    NullTest {
        nulls: Option<&'c [u64]>,
        negated: bool,
    },
}

#[inline]
fn bit(nulls: Option<&[u64]>, i: usize) -> bool {
    match nulls {
        Some(words) => words[i / 64] & (1 << (i % 64)) != 0,
        None => false,
    }
}

#[inline]
fn ord_passes(op: BinOp, ord: Ordering) -> bool {
    match op {
        BinOp::Eq => ord.is_eq(),
        BinOp::NotEq => !ord.is_eq(),
        BinOp::Lt => ord.is_lt(),
        BinOp::LtEq => ord.is_le(),
        BinOp::Gt => ord.is_gt(),
        BinOp::GtEq => ord.is_ge(),
        _ => false,
    }
}

impl Kernel<'_> {
    /// Does row `i` pass this predicate?
    #[inline]
    fn passes(&self, i: usize) -> bool {
        match self {
            Kernel::IntInt {
                data,
                nulls,
                op,
                rhs,
            } => !bit(*nulls, i) && ord_passes(*op, data[i].cmp(rhs)),
            Kernel::IntF64 {
                data,
                nulls,
                op,
                rhs,
            } => {
                if bit(*nulls, i) {
                    return false;
                }
                let a = data[i] as f64;
                match op {
                    BinOp::Eq => a == *rhs,
                    BinOp::NotEq => a != *rhs,
                    _ => a.partial_cmp(rhs).is_some_and(|o| ord_passes(*op, o)),
                }
            }
            Kernel::F64 {
                data,
                nulls,
                op,
                rhs,
                total_eq,
            } => {
                if bit(*nulls, i) {
                    return false;
                }
                let a = data[i];
                match op {
                    BinOp::Eq if *total_eq => a.total_cmp(rhs).is_eq(),
                    BinOp::NotEq if *total_eq => !a.total_cmp(rhs).is_eq(),
                    BinOp::Eq => a == *rhs,
                    BinOp::NotEq => a != *rhs,
                    _ => a.partial_cmp(rhs).is_some_and(|o| ord_passes(*op, o)),
                }
            }
            Kernel::DateCmp { data, op, rhs } => ord_passes(*op, data[i].cmp(rhs)),
            Kernel::StrCode { codes, nulls, pass } => !bit(*nulls, i) && pass[codes[i] as usize],
            Kernel::NullTest { nulls, negated } => bit(*nulls, i) != *negated,
        }
    }
}

/// Try to lower a compiled single-column predicate to a typed kernel over
/// columnar table `t`; `None` keeps the program-interpreter route.
fn build_kernel<'c>(prog: &Program, t: &'c ColumnarTable) -> Option<Kernel<'c>> {
    if let Some((slot, negated)) = prog.as_col_is_null() {
        let cv = t.columns().get(slot as usize)?;
        // Mixed storage tracks NULLs in the values, not the bitmap.
        if matches!(cv.slice(), ColSlice::Mixed(_)) {
            return None;
        }
        return Some(Kernel::NullTest {
            nulls: cv.null_words(),
            negated,
        });
    }
    let (slot, op, rhs) = prog.as_col_cmp_const()?;
    let cv = t.columns().get(slot as usize)?;
    let nulls = cv.null_words();
    match (cv.slice(), rhs) {
        (ColSlice::Int(data), Value::Int(b)) => Some(Kernel::IntInt {
            data,
            nulls,
            op,
            rhs: *b,
        }),
        (ColSlice::Int(data), Value::Double(b)) => Some(Kernel::IntF64 {
            data,
            nulls,
            op,
            rhs: *b,
        }),
        (ColSlice::Double(data), Value::Int(b)) => Some(Kernel::F64 {
            data,
            nulls,
            op,
            rhs: *b as f64,
            total_eq: false,
        }),
        (ColSlice::Double(data), Value::Double(b)) => Some(Kernel::F64 {
            data,
            nulls,
            op,
            rhs: *b,
            total_eq: true,
        }),
        (ColSlice::Date(data), Value::Date(b)) => Some(Kernel::DateCmp { data, op, rhs: *b }),
        (ColSlice::Str { codes, dict }, rhs) => {
            let rc = Cell::of(rhs);
            let pass = dict
                .iter()
                .map(|s| compare(op, &Cell::Str(s), &rc) == Some(true))
                .collect();
            Some(Kernel::StrCode { codes, nulls, pass })
        }
        _ => None,
    }
}

/// Lower single-quantifier predicates into typed kernels where the input is
/// columnar; the rest stay on the program interpreter as residuals.
fn lower_singles<'c>(
    singles: &'c [Program],
    col: Option<&'c ColumnarTable>,
) -> (Vec<Kernel<'c>>, Vec<&'c Program>) {
    let mut kernels: Vec<Kernel> = Vec::new();
    let mut resid: Vec<&Program> = Vec::new();
    for p in singles {
        match col.and_then(|t| build_kernel(p, t)) {
            Some(k) => kernels.push(k),
            None => resid.push(p),
        }
    }
    (kernels, resid)
}

/// Morsel-parallel prefilter: the indices of `src` rows that pass every
/// kernel and residual predicate, in scan order.
fn filter_indices(
    workers: usize,
    morsel: usize,
    src: Source<'_>,
    kernels: &[Kernel<'_>],
    resid: &[&Program],
) -> Vec<u32> {
    let n = src.len();
    if kernels.is_empty() && resid.is_empty() {
        return (0..n as u32).collect();
    }
    par_map(row_workers(workers, n), morsel, n, |_, range| {
        let mut scratch = Scratch::new();
        let mut keep: Vec<u32> = Vec::new();
        'rows: for i in range {
            for k in kernels {
                if !k.passes(i) {
                    continue 'rows;
                }
            }
            let col = |c: u32| src.cell(i, c as usize);
            for p in resid {
                if p.eval_truth(&col, &mut scratch) != Some(true) {
                    continue 'rows;
                }
            }
            keep.push(i as u32);
        }
        keep
    })
    .into_iter()
    .flatten()
    .collect()
}

// ---------------------------------------------------------------------------
// Partitioned hash-join build
// ---------------------------------------------------------------------------

/// The partition-selection hash of a join key (independent of the
/// per-partition map's own hashing).
#[inline]
fn hash_key(key: &[Value]) -> u64 {
    let mut h = FxHasher::default();
    for v in key {
        v.hash(&mut h);
    }
    h.finish()
}

/// A partitioned (radix-style) hash-join build: partition `h & mask` owns
/// every build row whose key hashes to it, so workers build private maps
/// with no cross-worker contention and no single-threaded merge into a
/// shared table. Probes hash the key once to select the partition. Each
/// key's match list preserves build scan order, exactly like the serial
/// single-map build.
struct JoinTable {
    mask: u64,
    parts: Vec<FxHashMap<Vec<Value>, Vec<u32>>>,
}

/// One morsel's `(key, row)` pairs destined for one partition.
type KeyedChunk = Vec<(Vec<Value>, u32)>;

impl JoinTable {
    #[inline]
    fn get(&self, key: &[Value]) -> Option<&Vec<u32>> {
        self.parts[(hash_key(key) & self.mask) as usize].get(key)
    }
}

/// Build a [`JoinTable`] over the filtered rows of `src`, keyed by the
/// child-side equi-join programs. Phase 1 evaluates keys and scatters
/// `(key, row)` pairs into per-morsel partition buckets (NULL keys never
/// join and are dropped, as in the serial build); phase 2 transposes the
/// buckets partition-major with `Vec` moves only, keeping chunks in morsel
/// order; phase 3 folds whole partitions into private maps, one worker
/// each — draining chunks in morsel order preserves scan order per key.
fn build_join_table(
    workers: usize,
    morsel: usize,
    src: Source<'_>,
    filtered: &[u32],
    key_progs: &[Program],
) -> JoinTable {
    let w = row_workers(workers, filtered.len());
    let nparts = w.next_power_of_two();
    let mask = (nparts - 1) as u64;

    let scattered: Vec<Vec<KeyedChunk>> = par_map(w, morsel, filtered.len(), |_, range| {
        let mut scratch = Scratch::new();
        let mut parts: Vec<KeyedChunk> = vec![Vec::new(); nparts];
        'rows: for fi in range {
            let row = filtered[fi] as usize;
            let col = |c: u32| src.cell(row, c as usize);
            let mut key = Vec::with_capacity(key_progs.len());
            for p in key_progs {
                let v = p.eval_value(&col, &mut scratch);
                if v.is_null() {
                    continue 'rows; // NULL never joins
                }
                key.push(v);
            }
            parts[(hash_key(&key) & mask) as usize].push((key, filtered[fi]));
        }
        parts
    });

    let mut by_part: Vec<Vec<KeyedChunk>> = (0..nparts).map(|_| Vec::new()).collect();
    for morsel_parts in scattered {
        for (p, chunk) in morsel_parts.into_iter().enumerate() {
            if !chunk.is_empty() {
                by_part[p].push(chunk);
            }
        }
    }

    let parts = par_map_vec(w, by_part, |_, chunks| {
        let mut m: FxHashMap<Vec<Value>, Vec<u32>> = FxHashMap::default();
        for chunk in chunks {
            for (key, row) in chunk {
                m.entry(key).or_default().push(row);
            }
        }
        m
    });
    JoinTable { mask, parts }
}

// ---------------------------------------------------------------------------
// Fused multi-level join pipeline
// ---------------------------------------------------------------------------

/// One level of a fused left-deep join: the driver level (index 0) has no
/// probe/build programs; every deeper level is entered through a hash
/// lookup. `probe` programs are compiled against global tuple slots of the
/// levels bound so far, `build` programs against the child's own ordinals,
/// `resid` holds the predicates that become fully bound at this level
/// (global slots).
struct FusedLevel {
    child_box: BoxId,
    child_width: usize,
    singles: Vec<Program>,
    probe: Vec<Program>,
    build: Vec<Program>,
    resid: Vec<Program>,
}

/// A fully planned fused join pipeline: per-level programs plus the global
/// slot layout (`offsets`/`width`) the outputs compile against.
struct FusedPlan {
    levels: Vec<FusedLevel>,
    offsets: FxHashMap<u32, usize>,
    width: usize,
}

/// Plan a fused join pipeline for a multi-quantifier SELECT, replicating
/// the materializing path's join-order and predicate-placement decisions
/// exactly (same pick rule, same done-marking order) so the row stream —
/// and therefore every downstream fold — is identical. Returns `None` when
/// any non-driver level has no equi-join conjunct (cross products keep the
/// materializing path, which handles them without combinatorial recursion
/// cost per driver row).
fn plan_fused(
    g: &QgmGraph,
    b: BoxId,
    predicates: &[ScalarExpr],
    foreach: &[QuantId],
    scalars: &FxHashMap<u32, Value>,
    pred_refs: &[HashSet<u32>],
    pred_done_in: &[bool],
) -> Result<Option<FusedPlan>, ExecError> {
    let mut pred_done = pred_done_in.to_vec();
    let mut offsets: FxHashMap<u32, usize> = FxHashMap::default();
    let mut width = 0usize;
    let mut remaining: Vec<QuantId> = foreach.to_vec();
    let mut levels: Vec<FusedLevel> = Vec::new();

    while !remaining.is_empty() {
        let pick = remaining
            .iter()
            .position(|q| {
                !offsets.is_empty()
                    && predicates.iter().enumerate().any(|(i, p)| {
                        !pred_done[i] && is_equi_join(p, &offsets, q.idx, &pred_refs[i])
                    })
            })
            .unwrap_or(0);
        let q = remaining.remove(pick);
        let child_box = g.input_of(q);
        let child_width = g.boxed(child_box).outputs.len();

        let mut singles: Vec<Program> = Vec::new();
        for (i, refs) in pred_refs.iter().enumerate() {
            if !pred_done[i] && refs.len() == 1 && refs.contains(&q.idx) {
                pred_done[i] = true;
                singles.push(compile_local(
                    &predicates[i],
                    b,
                    q.idx,
                    scalars,
                    child_width,
                )?);
            }
        }
        let mut probe: Vec<Program> = Vec::new();
        let mut build: Vec<Program> = Vec::new();
        for (i, p) in predicates.iter().enumerate() {
            if pred_done[i] {
                continue;
            }
            if let Some((bs, qs)) = split_equi_join(p, &offsets, q.idx, &pred_refs[i]) {
                pred_done[i] = true;
                probe.push(compile_bound(&bs, b, &offsets, scalars, width)?);
                build.push(compile_local(&qs, b, q.idx, scalars, child_width)?);
            }
        }
        if !levels.is_empty() && build.is_empty() {
            return Ok(None);
        }
        offsets.insert(q.idx, width);
        width += child_width;

        let mut resid: Vec<Program> = Vec::new();
        let bound: HashSet<u32> = offsets.keys().copied().collect();
        for (i, p) in predicates.iter().enumerate() {
            if pred_done[i] || !pred_refs[i].is_subset(&bound) {
                continue;
            }
            pred_done[i] = true;
            resid.push(compile_bound(p, b, &offsets, scalars, width)?);
        }
        levels.push(FusedLevel {
            child_box,
            child_width,
            singles,
            probe,
            build,
            resid,
        });
    }
    debug_assert!(pred_done.iter().all(|&d| d), "all predicates placed");
    Ok(Some(FusedPlan {
        levels,
        offsets,
        width,
    }))
}

/// Depth-first walk of the fused join levels for one driver row: evaluate
/// the level's probe key over the bound prefix, iterate matches in build
/// (scan) order — the serial left-deep enumeration order — filter with the
/// predicates that became fully bound at this level, and emit one output
/// row per full match. No intermediate tuple is ever materialized; the
/// bound prefix lives as per-level row cursors (`cur`).
#[allow(clippy::too_many_arguments)]
fn fused_walk<'c>(
    lvl: usize,
    levels: &'c [FusedLevel],
    sources: &[Source<'c>],
    tables: &[JoinTable],
    slot_map: &[(u32, u32)],
    cur: &[std::cell::Cell<u32>],
    scratch: &mut Scratch<'c>,
    out_progs: &'c [Program],
    out_cols: &[Option<(u32, u32)>],
    out: &mut Vec<Row>,
) {
    let col = |slot: u32| {
        let (lv, ord) = slot_map[slot as usize];
        sources[lv as usize].cell(cur[lv as usize].get() as usize, ord as usize)
    };
    if lvl == levels.len() {
        let mut row = Vec::with_capacity(out_progs.len());
        for (p, fast) in out_progs.iter().zip(out_cols) {
            row.push(match fast {
                Some((lv, ord)) => sources[*lv as usize]
                    .cell(cur[*lv as usize].get() as usize, *ord as usize)
                    .into_value(),
                None => p.eval_value(&col, scratch),
            });
        }
        out.push(row);
        return;
    }
    let level = &levels[lvl];
    let mut key: Vec<Value> = Vec::with_capacity(level.probe.len());
    for p in &level.probe {
        let v = p.eval_value(&col, scratch);
        if v.is_null() {
            return; // NULL never joins
        }
        key.push(v);
    }
    let Some(matches) = tables[lvl - 1].get(&key) else {
        return;
    };
    'matches: for &m in matches {
        cur[lvl].set(m);
        for p in &level.resid {
            if p.eval_truth(&col, scratch) != Some(true) {
                continue 'matches;
            }
        }
        fused_walk(
            lvl + 1,
            levels,
            sources,
            tables,
            slot_map,
            cur,
            scratch,
            out_progs,
            out_cols,
            out,
        );
    }
}

/// A fusable scan: a SELECT box that is a pure single-table columnar scan
/// (one foreach quantifier over a base table, plus any scalar subqueries),
/// described by compiled programs instead of materialized rows so a
/// consumer can stream it.
pub(crate) struct ScanPlan {
    pub(crate) table: Arc<ColumnarTable>,
    pub(crate) out_progs: Vec<Program>,
    pub(crate) singles: Vec<Program>,
    pub(crate) const_false: bool,
}

// ---------------------------------------------------------------------------
// The morsel-parallel columnar executor
// ---------------------------------------------------------------------------

struct ParExec<'a> {
    g: &'a QgmGraph,
    db: &'a Database,
    workers: usize,
    morsel: usize,
    memo: HashMap<BoxId, Rc<Vec<Row>>>,
    /// One shared row snapshot per base table per execution (serial-path
    /// children and group-by inputs).
    tables: HashMap<String, Rc<Vec<Row>>>,
    /// Zero-copy columnar snapshots per base table per execution.
    columnar: HashMap<String, Arc<ColumnarTable>>,
}

impl ParExec<'_> {
    fn rows_of(&mut self, b: BoxId) -> Result<Rc<Vec<Row>>, ExecError> {
        if let Some(r) = self.memo.get(&b) {
            return Ok(Rc::clone(r));
        }
        let rows = match &self.g.boxed(b).kind {
            BoxKind::BaseTable { table } => self.table_rows(table),
            BoxKind::SubsumerRef { .. } => return Err(ExecError::SubsumerRefInGraph),
            BoxKind::Select(_) => Rc::new(self.exec_select(b)?),
            BoxKind::GroupBy(_) => Rc::new(self.exec_group_by(b)?),
        };
        self.memo.insert(b, Rc::clone(&rows));
        Ok(rows)
    }

    fn table_rows(&mut self, table: &str) -> Rc<Vec<Row>> {
        let key = table.to_ascii_lowercase();
        if let Some(rc) = self.tables.get(&key) {
            return Rc::clone(rc);
        }
        let rc = Rc::new(self.db.rows(&key).to_vec());
        self.tables.insert(key, Rc::clone(&rc));
        rc
    }

    /// A join input: base tables scan their columnar snapshot in place;
    /// derived boxes are materialized (and memo-shared) as rows.
    fn child_of(&mut self, b: BoxId) -> Result<Child, ExecError> {
        match &self.g.boxed(b).kind {
            BoxKind::BaseTable { table } => {
                let key = table.to_ascii_lowercase();
                let t = match self.columnar.get(&key) {
                    Some(t) => Arc::clone(t),
                    None => {
                        let t = self.db.columnar(&key);
                        self.columnar.insert(key, Arc::clone(&t));
                        t
                    }
                };
                Ok(Child::Col(t))
            }
            _ => Ok(Child::Rows(self.rows_of(b)?)),
        }
    }

    fn exec_select(&mut self, b: BoxId) -> Result<Vec<Row>, ExecError> {
        let bx = self.g.boxed(b);
        let sel = bx
            .as_select()
            .ok_or_else(|| ExecError::malformed(b, "exec_select on a non-SELECT box"))?;

        // 1. Pre-compute scalar subquery values.
        let mut scalars: FxHashMap<u32, Value> = FxHashMap::default();
        let mut foreach: Vec<QuantId> = Vec::new();
        for &q in &bx.quants {
            match self.g.quant(q).kind {
                QuantKind::Scalar => {
                    let rows = self.rows_of(self.g.input_of(q))?;
                    let v = match rows.len() {
                        0 => Value::Null,
                        1 => rows[0][0].clone(),
                        n => return Err(ExecError::ScalarSubqueryCardinality(n)),
                    };
                    scalars.insert(q.idx, v);
                }
                QuantKind::Foreach => foreach.push(q),
            }
        }

        // 2. Classify predicates by the foreach quantifiers they reference.
        let quant_set: HashSet<u32> = foreach.iter().map(|q| q.idx).collect();
        let pred_refs = pred_quant_refs(&sel.predicates, &quant_set);
        let mut pred_done = vec![false; sel.predicates.len()];

        // Constant predicates (no foreach references): evaluate once.
        let no_offsets: FxHashMap<u32, usize> = FxHashMap::default();
        for (i, p) in sel.predicates.iter().enumerate() {
            if pred_refs[i].is_empty() {
                pred_done[i] = true;
                let prog = compile_bound(p, b, &no_offsets, &scalars, 0)?;
                let mut scratch = Scratch::new();
                if prog.eval_truth(&|_| Cell::Null, &mut scratch) != Some(true) {
                    return Ok(Vec::new());
                }
            }
        }

        // 3. Multi-quantifier joins: try the fused pipeline first — driver
        // morsels stream through per-level hash lookups straight into
        // output rows, with no intermediate tuple materialization.
        if foreach.len() >= 2 {
            if let Some(plan) = plan_fused(
                self.g,
                b,
                &sel.predicates,
                &foreach,
                &scalars,
                &pred_refs,
                &pred_done,
            )? {
                return self.exec_fused(b, &plan, &scalars);
            }
        }

        // 4. Materializing left-deep join (single scans and cross products).
        // `offsets` maps bound quantifier → start offset in the
        // concatenated tuple.
        let mut offsets: FxHashMap<u32, usize> = FxHashMap::default();
        let mut tuples: Vec<Row> = vec![Vec::new()];
        let mut width = 0usize;
        let mut remaining: Vec<QuantId> = foreach;

        while !remaining.is_empty() {
            // Pick the next quantifier: prefer one linked to the bound set
            // by an equi-join conjunct; fall back to the first remaining.
            let pick = remaining
                .iter()
                .position(|q| {
                    !offsets.is_empty()
                        && sel.predicates.iter().enumerate().any(|(i, p)| {
                            !pred_done[i] && is_equi_join(p, &offsets, q.idx, &pred_refs[i])
                        })
                })
                .unwrap_or(0);
            let q = remaining.remove(pick);
            let child_box = self.g.input_of(q);
            let child_width = self.g.boxed(child_box).outputs.len();
            let child = self.child_of(child_box)?;
            let src = child.source();
            let n = src.len();

            // Single-quantifier predicates, compiled against child columns.
            let mut singles: Vec<Program> = Vec::new();
            for (i, refs) in pred_refs.iter().enumerate() {
                if !pred_done[i] && refs.len() == 1 && refs.contains(&q.idx) {
                    pred_done[i] = true;
                    singles.push(compile_local(
                        &sel.predicates[i],
                        b,
                        q.idx,
                        &scalars,
                        child_width,
                    )?);
                }
            }
            // Lower what we can to typed vectorized kernels (columnar scans
            // only); the rest stays on the program interpreter.
            let (kernels, resid) = lower_singles(&singles, child.columnar());

            // Equi-join conjuncts usable for hashing, split and compiled:
            // bound side against the current tuple, child side against `q`.
            let mut hash_bound: Vec<Program> = Vec::new();
            let mut hash_child: Vec<Program> = Vec::new();
            for (i, p) in sel.predicates.iter().enumerate() {
                if pred_done[i] {
                    continue;
                }
                if let Some((bs, qs)) = split_equi_join(p, &offsets, q.idx, &pred_refs[i]) {
                    pred_done[i] = true;
                    hash_bound.push(compile_bound(&bs, b, &offsets, &scalars, width)?);
                    hash_child.push(compile_local(&qs, b, q.idx, &scalars, child_width)?);
                }
            }

            if offsets.is_empty() && remaining.is_empty() {
                // Fused scan→filter→project: the whole query is a single
                // scan, so skip tuple materialization entirely and emit
                // output rows straight from the (columnar) child. This is
                // the bench-critical hot path.
                debug_assert!(hash_bound.is_empty());
                let out_progs = bx
                    .outputs
                    .iter()
                    .map(|oc| compile_local(&oc.expr, b, q.idx, &scalars, child_width))
                    .collect::<Result<Vec<Program>, ExecError>>()?;
                debug_assert!(pred_done.iter().all(|&d| d), "all predicates applied");
                // Bare-column outputs copy straight from the source; only
                // computed outputs run the interpreter.
                let out_cols: Vec<Option<u32>> = out_progs.iter().map(Program::as_col).collect();
                let parts = par_map(row_workers(self.workers, n), self.morsel, n, |_, range| {
                    let mut scratch = Scratch::new();
                    let mut out: Vec<Row> = Vec::with_capacity(range.len());
                    'rows: for i in range {
                        for k in &kernels {
                            if !k.passes(i) {
                                continue 'rows;
                            }
                        }
                        let col = |c: u32| src.cell(i, c as usize);
                        for p in &resid {
                            if p.eval_truth(&col, &mut scratch) != Some(true) {
                                continue 'rows;
                            }
                        }
                        let mut row = Vec::with_capacity(out_progs.len());
                        for (p, fast) in out_progs.iter().zip(&out_cols) {
                            row.push(match fast {
                                Some(c) => src.cell(i, *c as usize).into_value(),
                                None => p.eval_value(&col, &mut scratch),
                            });
                        }
                        out.push(row);
                    }
                    out
                });
                return Ok(parts.into_iter().flatten().collect());
            }

            // Prefilter: indices of child rows passing the single-quant
            // predicates, in scan order.
            let filtered = filter_indices(self.workers, self.morsel, src, &kernels, &resid);

            let next: Vec<Row> = if !hash_child.is_empty() && !offsets.is_empty() {
                // Hash join against a partitioned build.
                let table =
                    build_join_table(self.workers, self.morsel, src, &filtered, &hash_child);
                // Probe is morsel-parallel over the bound tuples.
                let pw = row_workers(self.workers, tuples.len());
                par_map(pw, self.morsel, tuples.len(), |_, range| {
                    let mut scratch = Scratch::new();
                    let mut out: Vec<Row> = Vec::new();
                    'probe: for ti in range {
                        let t = &tuples[ti];
                        let col = |off: u32| Cell::of(&t[off as usize]);
                        let mut key = Vec::with_capacity(hash_bound.len());
                        for p in &hash_bound {
                            let v = p.eval_value(&col, &mut scratch);
                            if v.is_null() {
                                continue 'probe;
                            }
                            key.push(v);
                        }
                        if let Some(matches) = table.get(&key) {
                            for &m in matches {
                                let mut nt = Vec::with_capacity(width + child_width);
                                nt.extend_from_slice(t);
                                src.append_row(m as usize, &mut nt);
                                out.push(nt);
                            }
                        }
                    }
                    out
                })
                .into_iter()
                .flatten()
                .collect()
            } else {
                // Cross product (remaining predicates applied below).
                let pw = row_workers(self.workers, tuples.len());
                par_map(pw, self.morsel, tuples.len(), |_, range| {
                    let mut out: Vec<Row> = Vec::new();
                    for ti in range {
                        let t = &tuples[ti];
                        for &fi in &filtered {
                            let mut nt = Vec::with_capacity(width + child_width);
                            nt.extend_from_slice(t);
                            src.append_row(fi as usize, &mut nt);
                            out.push(nt);
                        }
                    }
                    out
                })
                .into_iter()
                .flatten()
                .collect()
            };
            offsets.insert(q.idx, width);
            width += child_width;
            tuples = next;

            // Apply any other predicate now fully bound.
            let bound: HashSet<u32> = offsets.keys().copied().collect();
            for (i, p) in sel.predicates.iter().enumerate() {
                if pred_done[i] || !pred_refs[i].is_subset(&bound) {
                    continue;
                }
                pred_done[i] = true;
                let prog = compile_bound(p, b, &offsets, &scalars, width)?;
                let pw = row_workers(self.workers, tuples.len());
                let keep: Vec<bool> = par_map(pw, self.morsel, tuples.len(), |_, range| {
                    let mut scratch = Scratch::new();
                    range
                        .map(|ti| {
                            let t = &tuples[ti];
                            prog.eval_truth(&|off: u32| Cell::of(&t[off as usize]), &mut scratch)
                                == Some(true)
                        })
                        .collect::<Vec<bool>>()
                })
                .into_iter()
                .flatten()
                .collect();
                let mut it = keep.into_iter();
                tuples.retain(|_| it.next().unwrap_or(false));
            }
        }
        debug_assert!(pred_done.iter().all(|&d| d), "all predicates applied");

        // 5. Project the outputs, morsel-parallel.
        let out_progs = bx
            .outputs
            .iter()
            .map(|oc| compile_bound(&oc.expr, b, &offsets, &scalars, width))
            .collect::<Result<Vec<Program>, ExecError>>()?;
        let pw = row_workers(self.workers, tuples.len());
        let parts = par_map(pw, self.morsel, tuples.len(), |_, range| {
            let mut scratch = Scratch::new();
            let mut out: Vec<Row> = Vec::with_capacity(range.len());
            for ti in range {
                let t = &tuples[ti];
                let col = |off: u32| Cell::of(&t[off as usize]);
                out.push(
                    out_progs
                        .iter()
                        .map(|p| p.eval_value(&col, &mut scratch))
                        .collect(),
                );
            }
            out
        });
        Ok(parts.into_iter().flatten().collect())
    }

    /// Execute a planned fused join pipeline: build one partitioned hash
    /// table per non-driver level, then stream driver morsels depth-first
    /// through the levels straight into output rows.
    fn exec_fused(
        &mut self,
        b: BoxId,
        plan: &FusedPlan,
        scalars: &FxHashMap<u32, Value>,
    ) -> Result<Vec<Row>, ExecError> {
        let bx = self.g.boxed(b);
        let out_progs = bx
            .outputs
            .iter()
            .map(|oc| compile_bound(&oc.expr, b, &plan.offsets, scalars, plan.width))
            .collect::<Result<Vec<Program>, ExecError>>()?;
        // Global tuple slot → (level, child ordinal); levels were assigned
        // offsets in order, so the map is a simple concatenation.
        let mut slot_map: Vec<(u32, u32)> = Vec::with_capacity(plan.width);
        for (lvl, level) in plan.levels.iter().enumerate() {
            for ord in 0..level.child_width {
                slot_map.push((lvl as u32, ord as u32));
            }
        }
        // Bare-column outputs copy straight from the backing source.
        let out_cols: Vec<Option<(u32, u32)>> = out_progs
            .iter()
            .map(|p| p.as_col().map(|s| slot_map[s as usize]))
            .collect();

        let children = plan
            .levels
            .iter()
            .map(|l| self.child_of(l.child_box))
            .collect::<Result<Vec<Child>, ExecError>>()?;
        let sources: Vec<Source> = children.iter().map(Child::source).collect();

        // Build one partitioned hash table per non-driver level.
        let mut tables: Vec<JoinTable> = Vec::new();
        for (li, lvl) in plan.levels.iter().enumerate().skip(1) {
            let (kernels, resid) = lower_singles(&lvl.singles, children[li].columnar());
            let filtered = filter_indices(self.workers, self.morsel, sources[li], &kernels, &resid);
            tables.push(build_join_table(
                self.workers,
                self.morsel,
                sources[li],
                &filtered,
                &lvl.build,
            ));
        }

        // Stream the driver: filter → walk the join levels → emit, all in
        // one morsel pass.
        let src0 = sources[0];
        let n = src0.len();
        let (kernels0, resid0) = lower_singles(&plan.levels[0].singles, children[0].columnar());
        let levels = &plan.levels;
        let slot_map = &slot_map;
        let w = row_workers(self.workers, n);
        let parts = par_map(w, self.morsel, n, |_, range| {
            let mut scratch = Scratch::new();
            let cur: Vec<std::cell::Cell<u32>> =
                (0..levels.len()).map(|_| std::cell::Cell::new(0)).collect();
            let mut out: Vec<Row> = Vec::new();
            'rows: for i in range {
                for k in &kernels0 {
                    if !k.passes(i) {
                        continue 'rows;
                    }
                }
                {
                    let col = |c: u32| src0.cell(i, c as usize);
                    for p in &resid0 {
                        if p.eval_truth(&col, &mut scratch) != Some(true) {
                            continue 'rows;
                        }
                    }
                }
                cur[0].set(i as u32);
                // Driver-level residuals (rare: predicates over the driver
                // alone that were not single-quantifier shaped).
                {
                    let col = |slot: u32| {
                        let (lv, ord) = slot_map[slot as usize];
                        sources[lv as usize].cell(cur[lv as usize].get() as usize, ord as usize)
                    };
                    for p in &levels[0].resid {
                        if p.eval_truth(&col, &mut scratch) != Some(true) {
                            continue 'rows;
                        }
                    }
                }
                fused_walk(
                    1,
                    levels,
                    &sources,
                    &tables,
                    slot_map,
                    &cur,
                    &mut scratch,
                    &out_progs,
                    &out_cols,
                    &mut out,
                );
            }
            out
        });
        Ok(parts.into_iter().flatten().collect())
    }

    /// Describe box `b` as a fusable single-table scan, if it is one.
    fn scan_plan(&mut self, b: BoxId) -> Result<Option<ScanPlan>, ExecError> {
        let bx = self.g.boxed(b);
        let Some(sel) = bx.as_select() else {
            return Ok(None);
        };
        let mut scalars: FxHashMap<u32, Value> = FxHashMap::default();
        let mut foreach: Vec<QuantId> = Vec::new();
        for &q in &bx.quants {
            match self.g.quant(q).kind {
                QuantKind::Scalar => {
                    let rows = self.rows_of(self.g.input_of(q))?;
                    let v = match rows.len() {
                        0 => Value::Null,
                        1 => rows[0][0].clone(),
                        n => return Err(ExecError::ScalarSubqueryCardinality(n)),
                    };
                    scalars.insert(q.idx, v);
                }
                QuantKind::Foreach => foreach.push(q),
            }
        }
        if foreach.len() != 1 {
            return Ok(None);
        }
        let q = foreach[0];
        let child_box = self.g.input_of(q);
        let Child::Col(table) = self.child_of(child_box)? else {
            return Ok(None);
        };
        let child_width = self.g.boxed(child_box).outputs.len();

        let quant_set: HashSet<u32> = [q.idx].into_iter().collect();
        let pred_refs = pred_quant_refs(&sel.predicates, &quant_set);
        let no_offsets: FxHashMap<u32, usize> = FxHashMap::default();
        let mut const_false = false;
        let mut singles: Vec<Program> = Vec::new();
        for (i, p) in sel.predicates.iter().enumerate() {
            if pred_refs[i].is_empty() {
                let prog = compile_bound(p, b, &no_offsets, &scalars, 0)?;
                let mut scratch = Scratch::new();
                if prog.eval_truth(&|_| Cell::Null, &mut scratch) != Some(true) {
                    const_false = true;
                }
            } else {
                singles.push(compile_local(p, b, q.idx, &scalars, child_width)?);
            }
        }
        let out_progs = bx
            .outputs
            .iter()
            .map(|oc| compile_local(&oc.expr, b, q.idx, &scalars, child_width))
            .collect::<Result<Vec<Program>, ExecError>>()?;
        Ok(Some(ScanPlan {
            table,
            out_progs,
            singles,
            const_false,
        }))
    }

    /// Fused scan→aggregate over a columnar base table: grouping keys must
    /// be bare typed columns of the scan; aggregate arguments read typed
    /// cells (bare columns) or run their compiled program per row. Returns
    /// `None` when the shape doesn't qualify, leaving the materializing
    /// path to handle it.
    fn group_by_scan(
        &self,
        sets: &[Vec<usize>],
        plan: &GroupPlan,
        sp: &ScanPlan,
    ) -> Option<Vec<Row>> {
        let t: &ColumnarTable = &sp.table;
        let mut key_cols: Vec<usize> = Vec::with_capacity(plan.item_ords.len());
        for &ord in &plan.item_ords {
            let slot = sp.out_progs.get(ord)?.as_col()? as usize;
            if slot >= t.width() || matches!(t.columns()[slot].slice(), ColSlice::Mixed(_)) {
                return None;
            }
            key_cols.push(slot);
        }
        let mut args: Vec<Option<ArgSrc>> = Vec::with_capacity(plan.agg_calls.len());
        for call in &plan.agg_calls {
            args.push(match call.arg {
                None => None,
                Some(cr) => {
                    let p = sp.out_progs.get(cr.ordinal)?;
                    Some(match p.as_col() {
                        Some(s) if (s as usize) < t.width() => {
                            ArgSrc::Col(&t.columns()[s as usize])
                        }
                        _ => ArgSrc::Prog(p),
                    })
                }
            });
        }
        let filtered: Vec<u32> = if sp.const_false {
            Vec::new()
        } else {
            let (kernels, resid) = lower_singles(&sp.singles, Some(t));
            filter_indices(self.workers, self.morsel, Source::Col(t), &kernels, &resid)
        };
        let mut out: Vec<Row> = Vec::new();
        for set in sets {
            let mut entries = grouped_columnar(
                t,
                &filtered,
                set,
                &key_cols,
                &args,
                plan,
                self.workers,
                self.morsel,
            )?;
            if entries.is_empty() && set.is_empty() {
                entries.push((Vec::new(), plan.agg_calls.iter().map(Acc::new).collect()));
            }
            emit_group_rows(entries, set, plan, &mut out);
        }
        Some(out)
    }

    fn exec_group_by(&mut self, b: BoxId) -> Result<Vec<Row>, ExecError> {
        let bx = self.g.boxed(b);
        let gb = bx
            .as_group_by()
            .ok_or_else(|| ExecError::malformed(b, "exec_group_by on a non-GROUP-BY box"))?;
        let child_q = *bx
            .quants
            .first()
            .ok_or_else(|| ExecError::malformed(b, "group-by box has no input quantifier"))?;
        let input_box = self.g.input_of(child_q);
        let plan = plan_group_by(self.g, b)?;

        // Fused scan→aggregate: when the input is a pure single-table scan
        // consumed only by this box, aggregate straight off the columnar
        // snapshot — no input row is ever materialized. All grouping
        // columns must be typed (checked in `group_by_scan`); otherwise
        // fall through to the materializing path.
        if self.g.consumer_count(input_box) == 1 {
            if let Some(sp) = self.scan_plan(input_box)? {
                if let Some(rows) = self.group_by_scan(&gb.sets, &plan, &sp) {
                    return Ok(rows);
                }
            }
        }

        let input = self.rows_of(input_box)?;
        let mut out: Vec<Row> = Vec::new();
        // One aggregation pass per cuboid (Section 5: a cube query is the
        // union of its cuboids, NULL-padding the grouped-out columns).
        for set in &gb.sets {
            let w = row_workers(self.workers, input.len());
            let mut entries = if w > 1 && !set.is_empty() {
                grouped_partitioned(&input, set, &plan, w, self.morsel)
            } else {
                grouped_serial(&input, set, &plan)
            };
            // Aggregation over an empty input still produces one grand-total
            // row.
            if entries.is_empty() && set.is_empty() {
                entries.push((Vec::new(), plan.agg_calls.iter().map(Acc::new).collect()));
            }
            emit_group_rows(entries, set, &plan, &mut out);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// The serial row-at-a-time interpreter (oracle / fallback)
// ---------------------------------------------------------------------------

/// The environment for evaluating expressions of a SELECT box mid-join:
/// bound quantifiers are offsets into a concatenated tuple; scalar
/// quantifiers resolve to pre-computed constants. One env is built per
/// evaluation phase; the current tuple is swapped in through a `Cell`.
struct SelectEnv<'a> {
    offsets: &'a FxHashMap<u32, usize>,
    scalars: &'a FxHashMap<u32, Value>,
    tuple: std::cell::Cell<&'a [Value]>,
}

impl<'a> SelectEnv<'a> {
    fn new(
        offsets: &'a FxHashMap<u32, usize>,
        scalars: &'a FxHashMap<u32, Value>,
    ) -> SelectEnv<'a> {
        SelectEnv {
            offsets,
            scalars,
            tuple: std::cell::Cell::new(&[]),
        }
    }

    fn set(&self, tuple: &'a [Value]) {
        self.tuple.set(tuple);
    }
}

impl Env for SelectEnv<'_> {
    fn col(&self, c: ColRef) -> Value {
        if let Some(v) = self.scalars.get(&c.qid.idx) {
            debug_assert_eq!(c.ordinal, 0);
            return v.clone();
        }
        let off = self.offsets[&c.qid.idx];
        self.tuple.get()[off + c.ordinal].clone()
    }
}

struct SerialExec<'a> {
    g: &'a QgmGraph,
    db: &'a Database,
    memo: HashMap<BoxId, Rc<Vec<Row>>>,
    /// One shared row snapshot per base table per execution.
    tables: HashMap<String, Rc<Vec<Row>>>,
}

impl SerialExec<'_> {
    fn exec_box(&mut self, b: BoxId) -> Result<Rc<Vec<Row>>, ExecError> {
        if let Some(r) = self.memo.get(&b) {
            return Ok(Rc::clone(r));
        }
        let rows = match &self.g.boxed(b).kind {
            BoxKind::BaseTable { table } => {
                let key = table.to_ascii_lowercase();
                match self.tables.get(&key) {
                    Some(rc) => Rc::clone(rc),
                    None => {
                        let rc = Rc::new(self.db.rows(&key).to_vec());
                        self.tables.insert(key, Rc::clone(&rc));
                        rc
                    }
                }
            }
            BoxKind::SubsumerRef { .. } => return Err(ExecError::SubsumerRefInGraph),
            BoxKind::Select(_) => Rc::new(self.exec_select(b)?),
            BoxKind::GroupBy(_) => Rc::new(self.exec_group_by(b)?),
        };
        self.memo.insert(b, Rc::clone(&rows));
        Ok(rows)
    }

    fn exec_select(&mut self, b: BoxId) -> Result<Vec<Row>, ExecError> {
        let bx = self.g.boxed(b);
        let sel = bx
            .as_select()
            .ok_or_else(|| ExecError::malformed(b, "exec_select on a non-SELECT box"))?;

        // 1. Pre-compute scalar subquery values.
        let mut scalars: FxHashMap<u32, Value> = FxHashMap::default();
        let mut foreach: Vec<QuantId> = Vec::new();
        for &q in &bx.quants {
            match self.g.quant(q).kind {
                QuantKind::Scalar => {
                    let rows = self.exec_box(self.g.input_of(q))?;
                    let v = match rows.len() {
                        0 => Value::Null,
                        1 => rows[0][0].clone(),
                        n => return Err(ExecError::ScalarSubqueryCardinality(n)),
                    };
                    scalars.insert(q.idx, v);
                }
                QuantKind::Foreach => foreach.push(q),
            }
        }

        // 2. Classify predicates by the foreach quantifiers they reference.
        let quant_set: HashSet<u32> = foreach.iter().map(|q| q.idx).collect();
        let pred_refs = pred_quant_refs(&sel.predicates, &quant_set);
        let mut pred_done = vec![false; sel.predicates.len()];

        // Constant predicates (no foreach references): evaluate once.
        {
            let offsets = FxHashMap::default();
            let env = SelectEnv::new(&offsets, &scalars);
            for (i, p) in sel.predicates.iter().enumerate() {
                if pred_refs[i].is_empty() {
                    pred_done[i] = true;
                    if truth(&eval_expr(p, &env)) != Some(true) {
                        return Ok(Vec::new());
                    }
                }
            }
        }

        // 3. Left-deep join. `offsets` maps bound quantifier → start offset
        // in the concatenated tuple.
        let mut offsets: FxHashMap<u32, usize> = FxHashMap::default();
        let mut tuples: Vec<Row> = vec![Vec::new()];
        let mut width = 0usize;
        let mut remaining: Vec<QuantId> = foreach;

        while !remaining.is_empty() {
            // Pick the next quantifier: prefer one linked to the bound set
            // by an equi-join conjunct; fall back to the first remaining.
            let pick = remaining
                .iter()
                .position(|q| {
                    !offsets.is_empty()
                        && sel.predicates.iter().enumerate().any(|(i, p)| {
                            !pred_done[i] && is_equi_join(p, &offsets, q.idx, &pred_refs[i])
                        })
                })
                .unwrap_or(0);
            let q = remaining.remove(pick);
            let child_rows = self.exec_box(self.g.input_of(q))?;
            let child_width = self.g.boxed(self.g.input_of(q)).outputs.len();

            // Prefilter rows with single-quantifier predicates.
            let mut single_idx = Vec::new();
            for (i, refs) in pred_refs.iter().enumerate() {
                if !pred_done[i] && refs.len() == 1 && refs.contains(&q.idx) {
                    pred_done[i] = true;
                    single_idx.push(i);
                }
            }
            let single: Vec<&ScalarExpr> = single_idx.iter().map(|&i| &sel.predicates[i]).collect();
            let mut local_off = FxHashMap::default();
            local_off.insert(q.idx, 0usize);
            let fenv = SelectEnv::new(&local_off, &scalars);
            let filtered: Vec<&Row> = child_rows
                .iter()
                .filter(|row| {
                    fenv.set(row);
                    single
                        .iter()
                        .all(|p| truth(&eval_expr(p, &fenv)) == Some(true))
                })
                .collect();

            // Equi-join conjuncts usable for hashing.
            let mut hash_preds: Vec<(ScalarExpr, ScalarExpr)> = Vec::new(); // (bound, q side)
            for (i, p) in sel.predicates.iter().enumerate() {
                if pred_done[i] {
                    continue;
                }
                if let Some((bound_side, q_side)) =
                    split_equi_join(p, &offsets, q.idx, &pred_refs[i])
                {
                    hash_preds.push((bound_side, q_side));
                    pred_done[i] = true;
                }
            }

            let mut next: Vec<Row> = Vec::new();
            if !hash_preds.is_empty() && !offsets.is_empty() {
                // Hash join: build on the (filtered) child rows.
                let mut table: FxHashMap<Vec<Value>, Vec<&Row>> = FxHashMap::default();
                let benv = SelectEnv::new(&local_off, &scalars);
                'rows: for row in &filtered {
                    benv.set(row);
                    let mut key = Vec::with_capacity(hash_preds.len());
                    for (_, qs) in &hash_preds {
                        let v = eval_expr(qs, &benv);
                        if v.is_null() {
                            continue 'rows; // NULL never joins
                        }
                        key.push(v);
                    }
                    table.entry(key).or_default().push(row);
                }
                let penv = SelectEnv::new(&offsets, &scalars);
                for t in &tuples {
                    penv.set(t);
                    let mut key = Vec::with_capacity(hash_preds.len());
                    let mut null_key = false;
                    for (bs, _) in &hash_preds {
                        let v = eval_expr(bs, &penv);
                        if v.is_null() {
                            null_key = true;
                            break;
                        }
                        key.push(v);
                    }
                    if null_key {
                        continue;
                    }
                    if let Some(matches) = table.get(&key) {
                        for m in matches {
                            let mut nt = Vec::with_capacity(width + child_width);
                            nt.extend_from_slice(t);
                            nt.extend_from_slice(m);
                            next.push(nt);
                        }
                    }
                }
            } else {
                // Cross product (with any remaining predicates applied below).
                for t in &tuples {
                    for m in &filtered {
                        let mut nt = Vec::with_capacity(width + child_width);
                        nt.extend_from_slice(t);
                        nt.extend_from_slice(m);
                        next.push(nt);
                    }
                }
            }
            offsets.insert(q.idx, width);
            width += child_width;
            tuples = next;

            // Apply any other predicate now fully bound.
            let bound: HashSet<u32> = offsets.keys().copied().collect();
            for (i, p) in sel.predicates.iter().enumerate() {
                if pred_done[i] || !pred_refs[i].is_subset(&bound) {
                    continue;
                }
                pred_done[i] = true;
                let renv = SelectEnv::new(&offsets, &scalars);
                let keep: Vec<bool> = tuples
                    .iter()
                    .map(|t| {
                        renv.set(t);
                        truth(&eval_expr(p, &renv)) == Some(true)
                    })
                    .collect();
                let mut it = keep.into_iter();
                tuples.retain(|_| it.next().unwrap_or(false));
            }
        }
        debug_assert!(pred_done.iter().all(|&d| d), "all predicates applied");

        // 4. Project the outputs.
        let env = SelectEnv::new(&offsets, &scalars);
        let out = tuples
            .iter()
            .map(|t| {
                env.set(t);
                bx.outputs
                    .iter()
                    .map(|oc| eval_expr(&oc.expr, &env))
                    .collect()
            })
            .collect();
        Ok(out)
    }

    fn exec_group_by(&mut self, b: BoxId) -> Result<Vec<Row>, ExecError> {
        let bx = self.g.boxed(b);
        let gb = bx
            .as_group_by()
            .ok_or_else(|| ExecError::malformed(b, "exec_group_by on a non-GROUP-BY box"))?;
        let child_q = *bx
            .quants
            .first()
            .ok_or_else(|| ExecError::malformed(b, "group-by box has no input quantifier"))?;
        let input = self.exec_box(self.g.input_of(child_q))?;
        let plan = plan_group_by(self.g, b)?;

        let mut out: Vec<Row> = Vec::new();
        for set in &gb.sets {
            let mut entries = grouped_serial(&input, set, &plan);
            if entries.is_empty() && set.is_empty() {
                entries.push((Vec::new(), plan.agg_calls.iter().map(Acc::new).collect()));
            }
            emit_group_rows(entries, set, &plan, &mut out);
        }
        Ok(out)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod tests {
    use super::*;
    use crate::db::Database;
    use sumtab_catalog::{Catalog, Date};
    use sumtab_parser::parse_query;
    use sumtab_qgm::build_query;

    fn setup() -> (Catalog, Database) {
        let cat = Catalog::credit_card_sample();
        let mut db = Database::new();
        let d = |s: &str| Value::Date(Date::parse(s).unwrap());
        // trans(tid, faid, flid, fpgid, date, qty, price, disc)
        db.insert(
            &cat,
            "trans",
            vec![
                vec![
                    1.into(),
                    100.into(),
                    1.into(),
                    10.into(),
                    d("1990-01-03"),
                    2.into(),
                    Value::Double(50.0),
                    Value::Double(0.0),
                ],
                vec![
                    2.into(),
                    100.into(),
                    1.into(),
                    10.into(),
                    d("1990-02-10"),
                    1.into(),
                    Value::Double(30.0),
                    Value::Double(0.1),
                ],
                vec![
                    3.into(),
                    100.into(),
                    1.into(),
                    11.into(),
                    d("1990-04-12"),
                    3.into(),
                    Value::Double(20.0),
                    Value::Double(0.2),
                ],
                vec![
                    4.into(),
                    200.into(),
                    2.into(),
                    11.into(),
                    d("1991-10-20"),
                    1.into(),
                    Value::Double(80.0),
                    Value::Double(0.0),
                ],
                vec![
                    5.into(),
                    200.into(),
                    2.into(),
                    10.into(),
                    d("1991-11-21"),
                    2.into(),
                    Value::Double(10.0),
                    Value::Double(0.5),
                ],
            ],
        )
        .unwrap();
        db.insert(
            &cat,
            "loc",
            vec![
                vec![1.into(), "san jose".into(), "CA".into(), "USA".into()],
                vec![2.into(), "paris".into(), "IDF".into(), "France".into()],
            ],
        )
        .unwrap();
        db.insert(
            &cat,
            "pgroup",
            vec![
                vec![10.into(), "TV".into()],
                vec![11.into(), "Radio".into()],
            ],
        )
        .unwrap();
        db.insert(
            &cat,
            "acct",
            vec![
                vec![100.into(), 1000.into(), "gold".into()],
                vec![200.into(), 2000.into(), "basic".into()],
            ],
        )
        .unwrap();
        db.insert(
            &cat,
            "cust",
            vec![
                vec![1000.into(), "alice".into(), 30.into()],
                vec![2000.into(), "bob".into(), 40.into()],
            ],
        )
        .unwrap();
        (cat, db)
    }

    fn run(sql: &str) -> Vec<Row> {
        let (cat, db) = setup();
        let q = parse_query(sql).unwrap();
        let g = build_query(&q, &cat).unwrap();
        execute(&g, &db).unwrap()
    }

    fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
        rows.sort();
        rows
    }

    #[test]
    fn scan_and_filter() {
        let rows = run("select tid from trans where qty >= 2");
        assert_eq!(
            sorted(rows),
            vec![
                vec![Value::Int(1)],
                vec![Value::Int(3)],
                vec![Value::Int(5)]
            ]
        );
    }

    #[test]
    fn projection_expressions() {
        let rows = run("select tid, qty * price as amt from trans where tid = 1");
        assert_eq!(rows, vec![vec![Value::Int(1), Value::Double(100.0)]]);
    }

    #[test]
    fn hash_join_matches_nested_loop_semantics() {
        let rows = run("select tid, country from trans, loc where flid = lid and country = 'USA'");
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r[1] == Value::from("USA")));
    }

    #[test]
    fn three_way_join() {
        let rows = run("select tid, pgname, status from trans, pgroup, acct \
             where fpgid = pgid and faid = aid and pgname = 'TV'");
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn cross_join_without_predicate() {
        let rows = run("select tid, lid from trans, loc");
        assert_eq!(rows.len(), 10);
    }

    #[test]
    fn group_by_count_and_sum() {
        let rows = run("select faid, count(*) as cnt, sum(qty) as q from trans group by faid");
        assert_eq!(
            sorted(rows),
            vec![
                vec![Value::Int(100), Value::Int(3), Value::Int(6)],
                vec![Value::Int(200), Value::Int(2), Value::Int(3)],
            ]
        );
    }

    #[test]
    fn group_by_expression_and_having() {
        let rows = run("select year(date) as y, count(*) as cnt from trans \
             group by year(date) having count(*) > 2");
        assert_eq!(rows, vec![vec![Value::Int(1990), Value::Int(3)]]);
    }

    #[test]
    fn scalar_aggregation_over_empty_input() {
        let rows = run("select count(*) as c, sum(qty) as s from trans where qty > 100");
        assert_eq!(rows, vec![vec![Value::Int(0), Value::Null]]);
    }

    #[test]
    fn min_max_avg() {
        let rows = run("select min(price) as lo, max(price) as hi, avg(qty) as aq from trans");
        assert_eq!(
            rows,
            vec![vec![
                Value::Double(10.0),
                Value::Double(80.0),
                Value::Int(1) // avg = sum/count = 9/5 with integer division
            ]]
        );
    }

    #[test]
    fn count_distinct() {
        let rows = run("select count(distinct faid) as n from trans");
        assert_eq!(rows, vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn grouping_sets_union_with_null_padding() {
        let rows = run("select flid, year(date) as y, count(*) as cnt from trans \
             group by grouping sets ((flid, year(date)), (flid), ())");
        // cuboids: (flid,year): (1,1990,3),(2,1991,2); (flid): (1,3),(2,2); (): (5)
        let expect = vec![
            vec![Value::Null, Value::Null, Value::Int(5)],
            vec![Value::Int(1), Value::Null, Value::Int(3)],
            vec![Value::Int(1), Value::Int(1990), Value::Int(3)],
            vec![Value::Int(2), Value::Null, Value::Int(2)],
            vec![Value::Int(2), Value::Int(1991), Value::Int(2)],
        ];
        assert_eq!(sorted(rows), expect);
    }

    #[test]
    fn distinct_normalizes_to_group_by() {
        let rows = run("select distinct faid from trans");
        assert_eq!(
            sorted(rows),
            vec![vec![Value::Int(100)], vec![Value::Int(200)]]
        );
    }

    #[test]
    fn scalar_subquery_value() {
        let rows = run("select tid, (select count(*) from loc) as n from trans where tid = 1");
        assert_eq!(rows, vec![vec![Value::Int(1), Value::Int(2)]]);
    }

    #[test]
    fn scalar_subquery_empty_is_null() {
        let rows = run(
            "select tid, (select min(lid) from loc where lid > 99) as n from trans where tid = 1",
        );
        assert_eq!(rows, vec![vec![Value::Int(1), Value::Null]]);
    }

    #[test]
    fn derived_table_pipeline() {
        let rows = run(
            "select y, cnt from (select year(date) as y, count(*) as cnt from trans group by year(date)) as v \
             where cnt >= 2 order by y",
        );
        assert_eq!(
            rows,
            vec![
                vec![Value::Int(1990), Value::Int(3)],
                vec![Value::Int(1991), Value::Int(2)],
            ]
        );
    }

    #[test]
    fn order_by_and_limit() {
        let rows = run("select tid from trans order by tid desc limit 2");
        assert_eq!(rows, vec![vec![Value::Int(5)], vec![Value::Int(4)]]);
    }

    #[test]
    fn histogram_of_counts_two_level_aggregation() {
        // Q8-flavored query: counts of yearly counts.
        let rows = run("select tcnt, count(*) as ycnt from \
             (select year(date) as y, count(*) as tcnt from trans group by year(date)) as v \
             group by tcnt");
        assert_eq!(
            sorted(rows),
            vec![
                vec![Value::Int(2), Value::Int(1)],
                vec![Value::Int(3), Value::Int(1)],
            ]
        );
    }

    #[test]
    fn null_join_keys_do_not_match() {
        let cat = Catalog::credit_card_sample();
        let mut db = Database::new();
        // Two custs, one acct with NULL fcid — wait, fcid is non-nullable in
        // the sample schema; use a bespoke catalog instead.
        use sumtab_catalog::{Column, SqlType, Table};
        let mut cat2 = Catalog::new();
        cat2.add_table(Table::new("l", vec![Column::nullable("k", SqlType::Int)]))
            .unwrap();
        cat2.add_table(Table::new("r", vec![Column::nullable("k", SqlType::Int)]))
            .unwrap();
        db.insert(&cat2, "l", vec![vec![Value::Null], vec![Value::Int(1)]])
            .unwrap();
        db.insert(&cat2, "r", vec![vec![Value::Null], vec![Value::Int(1)]])
            .unwrap();
        let q = parse_query("select l.k from l, r where l.k = r.k").unwrap();
        let g = build_query(&q, &cat2).unwrap();
        let rows = execute(&g, &db).unwrap();
        assert_eq!(rows, vec![vec![Value::Int(1)]], "NULL keys never join");
        let _ = cat;
    }

    #[test]
    fn cube_rollup_shorthand() {
        let rows = run(
            "select flid, year(date) as y, count(*) as cnt from trans group by rollup(flid, year(date))",
        );
        // sets: (flid,y), (flid), ()
        assert_eq!(rows.len(), 2 + 2 + 1);
    }

    /// Every pool/morsel configuration must produce exactly the serial
    /// result — same rows, same order.
    #[test]
    fn parallel_is_byte_identical_to_serial() {
        let (cat, db) = setup();
        let queries = [
            "select tid from trans where qty >= 2",
            "select tid, qty * price * (1 - disc) as amt from trans",
            "select tid, country from trans, loc where flid = lid",
            "select tid, pgname, status from trans, pgroup, acct \
             where fpgid = pgid and faid = aid",
            "select faid, count(*) as cnt, sum(price) as p from trans group by faid",
            "select flid, year(date) as y, count(*) as cnt from trans \
             group by grouping sets ((flid, year(date)), (flid), ())",
            "select count(distinct price) as n, sum(distinct qty) as s from trans",
            "select tid, lid from trans, loc",
            "select tid, price from trans order by price desc, tid limit 3",
        ];
        for sql in queries {
            let q = parse_query(sql).unwrap();
            let g = build_query(&q, &cat).unwrap();
            let serial = execute_serial(&g, &db).unwrap();
            for pool in [1, 2, 4] {
                for morsel in [1, 3, 1024] {
                    let opts = ExecOptions {
                        pool_size: pool,
                        morsel_size: morsel,
                    };
                    let par = execute_with(&g, &db, &opts).unwrap();
                    assert_eq!(par, serial, "{sql} (pool {pool}, morsel {morsel})");
                }
            }
        }
    }

    /// Group output follows first-occurrence order of the group key in both
    /// executors (no ORDER BY needed for a deterministic result).
    #[test]
    fn group_by_output_is_first_occurrence_ordered() {
        let (cat, db) = setup();
        let q = parse_query("select fpgid, count(*) as c from trans group by fpgid").unwrap();
        let g = build_query(&q, &cat).unwrap();
        // trans rows reference fpgid 10, 10, 11, 11, 10 → first-occurrence
        // order is 10 then 11.
        let expect = vec![
            vec![Value::Int(10), Value::Int(3)],
            vec![Value::Int(11), Value::Int(2)],
        ];
        assert_eq!(execute_serial(&g, &db).unwrap(), expect);
        assert_eq!(execute(&g, &db).unwrap(), expect);
    }

    /// Bounded-heap top-k selection must be byte-identical to a stable full
    /// sort + truncate, including ties on the sort key.
    #[test]
    fn top_k_matches_stable_sort_truncate() {
        // Deterministic pseudo-random rows with plenty of duplicate keys.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let rows: Vec<Row> = (0..500)
            .map(|i| {
                vec![
                    Value::Int((next() % 7) as i64),
                    Value::Int((next() % 13) as i64),
                    Value::Int(i),
                ]
            })
            .collect();
        for keys in [
            vec![(0usize, false)],
            vec![(0, true)],
            vec![(0, false), (1, true)],
        ] {
            for k in [0usize, 1, 7, 250, 499, 500] {
                let mut full = rows.clone();
                full.sort_by(|a, b| cmp_by_keys(a, b, &keys));
                full.truncate(k);
                assert_eq!(top_k(rows.clone(), k, &keys), full, "k={k} keys={keys:?}");
            }
        }
    }

    /// `par_map` merges morsel results in morsel order for any worker
    /// count.
    #[test]
    fn par_map_is_deterministic() {
        let expect: Vec<usize> = (0..1000).collect();
        for workers in [1, 2, 3, 8] {
            for morsel in [1, 7, 64, 2048] {
                let got: Vec<usize> = par_map(workers, morsel, 1000, |_, r| r.collect::<Vec<_>>())
                    .into_iter()
                    .flatten()
                    .collect();
                assert_eq!(got, expect, "workers={workers} morsel={morsel}");
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod error_tests {
    use super::*;
    use crate::db::Database;
    use sumtab_catalog::{Catalog, Column, SqlType, Table, Value};
    use sumtab_parser::parse_query;
    use sumtab_qgm::build_query;

    #[test]
    fn scalar_subquery_cardinality_error() {
        let mut cat = Catalog::new();
        cat.add_table(Table::new("t", vec![Column::new("a", SqlType::Int)]))
            .unwrap();
        let mut db = Database::new();
        db.insert(&cat, "t", vec![vec![Value::Int(1)], vec![Value::Int(2)]])
            .unwrap();
        let q = parse_query("select a, (select a from t) as s from t").unwrap();
        let g = build_query(&q, &cat).unwrap();
        assert_eq!(
            execute(&g, &db),
            Err(ExecError::ScalarSubqueryCardinality(2))
        );
        assert_eq!(
            execute_serial(&g, &db),
            Err(ExecError::ScalarSubqueryCardinality(2))
        );
    }

    #[test]
    fn subsumer_ref_graph_is_rejected() {
        use sumtab_qgm::{BoxKind, GraphId, OutputCol, QgmGraph, ScalarExpr};
        let mut g = QgmGraph::new();
        let sr = g.add_box(BoxKind::SubsumerRef {
            graph: GraphId(0),
            target: sumtab_qgm::BoxId(0),
        });
        g.boxed_mut(sr).outputs = vec![OutputCol {
            name: "x".into(),
            expr: ScalarExpr::BaseCol(0),
        }];
        g.root = sr;
        let db = Database::new();
        assert_eq!(execute(&g, &db), Err(ExecError::SubsumerRefInGraph));
        assert_eq!(execute_serial(&g, &db), Err(ExecError::SubsumerRefInGraph));
    }

    #[test]
    fn cloned_subgraph_executes_identically() {
        let cat = Catalog::credit_card_sample();
        let mut db = Database::new();
        db.insert(
            &cat,
            "pgroup",
            vec![
                vec![Value::Int(1), Value::from("a")],
                vec![Value::Int(2), Value::from("b")],
            ],
        )
        .unwrap();
        let q = parse_query("select pgname, count(*) as c from pgroup group by pgname").unwrap();
        let g = build_query(&q, &cat).unwrap();
        let mut g2 = sumtab_qgm::QgmGraph::new();
        let root = g2.clone_subgraph(&g, g.root);
        g2.root = root;
        let mut a = execute(&g, &db).unwrap();
        let mut b = execute(&g2, &db).unwrap();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }
}
