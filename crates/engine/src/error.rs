//! The workspace-level error taxonomy.
//!
//! [`SumtabError`] classifies every failure the query pipeline can produce —
//! parse, plan (QGM build), AST matching, execution, catalog/DDL, and
//! storage — while carrying enough context (statement text, AST name) to
//! diagnose the failure without a debugger. The facade crate and [`crate::Session`]
//! return it everywhere a stringly-typed error used to appear.

use crate::db::DbError;
use crate::exec::ExecError;
use crate::materialize::MaterializeError;
use sumtab_catalog::CatalogError;
use sumtab_parser::ParseError;
use sumtab_qgm::BuildError;

/// Any error the `sumtab` query pipeline can surface.
#[derive(Debug, Clone, PartialEq)]
pub enum SumtabError {
    /// SQL text failed to parse.
    Parse {
        /// The offending statement text, when known.
        statement: Option<String>,
        /// The underlying parser error (carries kind and byte offset).
        source: ParseError,
    },
    /// Semantic analysis / QGM construction failed.
    Plan {
        /// The offending statement text, when known.
        statement: Option<String>,
        /// The underlying builder error (carries kind).
        source: BuildError,
    },
    /// The AST matcher failed internally (distinct from "no match", which is
    /// not an error).
    Match {
        /// The AST whose match attempt failed.
        ast: String,
        /// What went wrong.
        detail: String,
    },
    /// Query execution failed.
    Exec {
        /// What was being executed (statement text or AST name), when known.
        context: Option<String>,
        /// The underlying executor error.
        source: ExecError,
    },
    /// A catalog/DDL operation failed.
    Catalog(CatalogError),
    /// A storage operation failed.
    Db(DbError),
    /// Incremental maintenance of a summary table failed.
    Maintain {
        /// The summary table being maintained.
        ast: String,
        /// What went wrong.
        detail: String,
    },
    /// The statement is recognized but not supported in this position.
    Unsupported {
        /// What was attempted.
        detail: String,
    },
    /// The plan verifier rejected a graph at a transformation boundary
    /// (see `sumtab-qgm::verify`): the typed pass/box/reason triple.
    Verify(sumtab_qgm::VerifyError),
}

impl SumtabError {
    /// A parse error annotated with the statement that produced it.
    pub fn parse(statement: impl Into<String>, source: ParseError) -> SumtabError {
        SumtabError::Parse {
            statement: Some(statement.into()),
            source,
        }
    }

    /// A plan error annotated with the statement that produced it.
    pub fn plan(statement: impl Into<String>, source: BuildError) -> SumtabError {
        SumtabError::Plan {
            statement: Some(statement.into()),
            source,
        }
    }

    /// An execution error annotated with what was running.
    pub fn exec(context: impl Into<String>, source: ExecError) -> SumtabError {
        SumtabError::Exec {
            context: Some(context.into()),
            source,
        }
    }
}

impl std::fmt::Display for SumtabError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let in_ctx = |f: &mut std::fmt::Formatter<'_>, ctx: &Option<String>| match ctx {
            Some(c) => write!(f, " in `{c}`"),
            None => Ok(()),
        };
        match self {
            SumtabError::Parse { statement, source } => {
                write!(f, "{source}")?;
                in_ctx(f, statement)
            }
            SumtabError::Plan { statement, source } => {
                write!(f, "{source}")?;
                in_ctx(f, statement)
            }
            SumtabError::Match { ast, detail } => {
                write!(f, "matcher error against AST `{ast}`: {detail}")
            }
            SumtabError::Exec { context, source } => {
                write!(f, "execution error: {source}")?;
                in_ctx(f, context)
            }
            SumtabError::Catalog(e) => write!(f, "catalog error: {e}"),
            SumtabError::Db(e) => write!(f, "storage error: {e}"),
            SumtabError::Maintain { ast, detail } => {
                write!(f, "maintenance of `{ast}` failed: {detail}")
            }
            SumtabError::Unsupported { detail } => write!(f, "unsupported: {detail}"),
            SumtabError::Verify(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SumtabError {}

impl From<ParseError> for SumtabError {
    fn from(source: ParseError) -> SumtabError {
        SumtabError::Parse {
            statement: None,
            source,
        }
    }
}

impl From<BuildError> for SumtabError {
    fn from(source: BuildError) -> SumtabError {
        SumtabError::Plan {
            statement: None,
            source,
        }
    }
}

impl From<ExecError> for SumtabError {
    fn from(source: ExecError) -> SumtabError {
        SumtabError::Exec {
            context: None,
            source,
        }
    }
}

impl From<sumtab_qgm::VerifyError> for SumtabError {
    fn from(e: sumtab_qgm::VerifyError) -> SumtabError {
        SumtabError::Verify(e)
    }
}

impl From<CatalogError> for SumtabError {
    fn from(e: CatalogError) -> SumtabError {
        SumtabError::Catalog(e)
    }
}

impl From<DbError> for SumtabError {
    fn from(e: DbError) -> SumtabError {
        SumtabError::Db(e)
    }
}

impl From<MaterializeError> for SumtabError {
    fn from(e: MaterializeError) -> SumtabError {
        match e {
            MaterializeError::Exec(source) => SumtabError::Exec {
                context: Some("summary table materialization".into()),
                source,
            },
            other => SumtabError::Unsupported {
                detail: other.to_string(),
            },
        }
    }
}
