//! A convenience session: catalog + database + SQL entry points.
//!
//! `Session` executes DDL (`CREATE TABLE`, `CREATE SUMMARY TABLE`,
//! `ALTER TABLE ... ADD FOREIGN KEY`), `INSERT ... VALUES`, and queries. It
//! does **not** perform AST rewriting — that is the matcher's job; the
//! `sumtab` facade crate combines both.

use crate::db::{Database, Row};
use crate::error::SumtabError;
use crate::exec::{execute_with, ExecOptions};
use crate::materialize::materialize_with;
use sumtab_catalog::{Catalog, Column, SummaryTableDef, Table, Value};
use sumtab_parser::{
    parse_statements, render::render_query, Expr, Query, SelectItem, Statement, TableRef,
};
use sumtab_qgm::build_query;

/// Result of running one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum StatementResult {
    /// Query output: header names and rows.
    Rows(Vec<String>, Vec<Row>),
    /// Rows affected (INSERT).
    Count(usize),
    /// DDL success.
    Done,
}

fn err(e: impl Into<SumtabError>) -> SumtabError {
    e.into()
}

/// Catalog + data + SQL front end.
#[derive(Debug, Clone, Default)]
pub struct Session {
    /// Schema and constraints.
    pub catalog: Catalog,
    /// Table data.
    pub db: Database,
    /// Executor pool/morsel configuration used for queries and
    /// summary-table materialization.
    pub exec: ExecOptions,
}

impl Session {
    /// An empty session.
    pub fn new() -> Session {
        Session::default()
    }

    /// A session over an existing catalog.
    pub fn with_catalog(catalog: Catalog) -> Session {
        Session {
            catalog,
            db: Database::new(),
            exec: ExecOptions::default(),
        }
    }

    /// Run a semicolon-separated SQL script; returns one result per
    /// statement.
    pub fn run_script(&mut self, sql: &str) -> Result<Vec<StatementResult>, SumtabError> {
        let stmts = parse_statements(sql).map_err(err)?;
        stmts.iter().map(|s| self.run_statement(s)).collect()
    }

    /// Run a single parsed statement.
    pub fn run_statement(&mut self, stmt: &Statement) -> Result<StatementResult, SumtabError> {
        match stmt {
            Statement::Query(q) => {
                let g = build_query(q, &self.catalog).map_err(err)?;
                let header = g
                    .boxed(g.root)
                    .outputs
                    .iter()
                    .map(|c| c.name.clone())
                    .collect();
                let rows = execute_with(&g, &self.db, &self.exec).map_err(err)?;
                Ok(StatementResult::Rows(header, rows))
            }
            Statement::CreateTable(ct) => {
                let cols = ct
                    .columns
                    .iter()
                    .map(|c| {
                        if c.nullable {
                            Column::nullable(&c.name, c.ty)
                        } else {
                            Column::new(&c.name, c.ty)
                        }
                    })
                    .collect();
                let mut table = Table::new(&ct.name, cols);
                if !ct.primary_key.is_empty() {
                    let keys: Vec<&str> = ct.primary_key.iter().map(String::as_str).collect();
                    table = table.with_primary_key(&keys).map_err(err)?;
                }
                self.catalog.add_table(table).map_err(err)?;
                Ok(StatementResult::Done)
            }
            Statement::CreateSummaryTable { name, query } => {
                let g = build_query(query, &self.catalog).map_err(err)?;
                let backing = materialize_with(name, &g, &self.catalog, &mut self.db, &self.exec)
                    .map_err(err)?;
                self.catalog
                    .add_summary_table(
                        SummaryTableDef {
                            name: name.clone(),
                            query_sql: render_query(query),
                        },
                        backing,
                    )
                    .map_err(err)?;
                Ok(StatementResult::Done)
            }
            Statement::AddForeignKey {
                child_table,
                columns,
                parent_table,
            } => {
                let cols: Vec<&str> = columns.iter().map(String::as_str).collect();
                self.catalog
                    .add_foreign_key(child_table, &cols, parent_table)
                    .map_err(err)?;
                Ok(StatementResult::Done)
            }
            Statement::Insert { table, rows } => {
                let values = literal_rows(rows)?;
                let n = self.db.insert(&self.catalog, table, values).map_err(err)?;
                Ok(StatementResult::Count(n))
            }
            Statement::Delete {
                table,
                where_clause,
            } => {
                let victims = matched_rows(
                    &self.catalog,
                    &self.db,
                    &self.exec,
                    table,
                    where_clause.as_ref(),
                )?;
                if victims.is_empty() {
                    return Ok(StatementResult::Count(0));
                }
                let n = self.db.remove_rows(table, &victims);
                Ok(StatementResult::Count(n))
            }
            Statement::Update {
                table,
                sets,
                where_clause,
            } => {
                let (old, new) = update_deltas(
                    &self.catalog,
                    &self.db,
                    &self.exec,
                    table,
                    sets,
                    where_clause.as_ref(),
                )?;
                if old.is_empty() {
                    return Ok(StatementResult::Count(0));
                }
                let n = self
                    .db
                    .replace_rows(&self.catalog, table, &old, new)
                    .map_err(err)?;
                Ok(StatementResult::Count(n))
            }
        }
    }

    /// Run a single SELECT and return `(header, rows)`.
    pub fn query(&mut self, sql: &str) -> Result<(Vec<String>, Vec<Row>), SumtabError> {
        let q = sumtab_parser::parse_query(sql).map_err(|e| SumtabError::parse(sql, e))?;
        match self.run_statement(&Statement::Query(Box::new(q)))? {
            StatementResult::Rows(h, r) => Ok((h, r)),
            other => Err(SumtabError::Unsupported {
                detail: format!("query statement produced a non-row result: {other:?}"),
            }),
        }
    }
}

/// The multiset of rows in `table` matched by `where_clause`, computed by
/// executing `SELECT * FROM table [WHERE ..]` through the query pipeline so
/// the predicate gets full three-valued-logic semantics (partitioning the
/// table with `NOT p` would misclassify NULL verdicts). Public so front ends
/// that route DELETEs through summary maintenance evaluate the predicate
/// exactly once against a consistent snapshot.
pub fn matched_rows(
    catalog: &Catalog,
    db: &Database,
    exec: &ExecOptions,
    table: &str,
    where_clause: Option<&Expr>,
) -> Result<Vec<Row>, SumtabError> {
    let q = Query {
        distinct: false,
        select: vec![SelectItem::Wildcard],
        from: vec![TableRef::Named {
            name: table.to_string(),
            alias: None,
        }],
        where_clause: where_clause.cloned(),
        group_by: Vec::new(),
        having: None,
        order_by: Vec::new(),
        limit: None,
    };
    let g = build_query(&q, catalog).map_err(err)?;
    execute_with(&g, db, exec).map_err(err)
}

/// The `(old rows, new rows)` delta of an UPDATE, computed in one pass:
/// `SELECT *, set-expr.. FROM table [WHERE ..]` yields each matched row
/// alongside its replacement values (SET expressions read the old row), so
/// the mapping is well-defined even for duplicate rows. Replacement rows are
/// validated against the schema by the caller's apply step.
pub fn update_deltas(
    catalog: &Catalog,
    db: &Database,
    exec: &ExecOptions,
    table: &str,
    sets: &[(String, Expr)],
    where_clause: Option<&Expr>,
) -> Result<(Vec<Row>, Vec<Row>), SumtabError> {
    let t = catalog
        .table(table)
        .ok_or_else(|| SumtabError::Unsupported {
            detail: format!("UPDATE target `{table}` is not a known table"),
        })?;
    let ncols = t.columns.len();
    let mut ords = Vec::with_capacity(sets.len());
    for (name, _) in sets {
        let i = t
            .column_index(name)
            .ok_or_else(|| SumtabError::Unsupported {
                detail: format!("UPDATE {table}: unknown column `{name}`"),
            })?;
        if ords.contains(&i) {
            return Err(SumtabError::Unsupported {
                detail: format!("UPDATE {table}: column `{name}` assigned twice"),
            });
        }
        ords.push(i);
    }
    let mut select = vec![SelectItem::Wildcard];
    for (i, (_, e)) in sets.iter().enumerate() {
        select.push(SelectItem::Expr {
            expr: e.clone(),
            alias: Some(format!("__set{i}")),
        });
    }
    let q = Query {
        distinct: false,
        select,
        from: vec![TableRef::Named {
            name: table.to_string(),
            alias: None,
        }],
        where_clause: where_clause.cloned(),
        group_by: Vec::new(),
        having: None,
        order_by: Vec::new(),
        limit: None,
    };
    let g = build_query(&q, catalog).map_err(err)?;
    let rows = execute_with(&g, db, exec).map_err(err)?;
    let mut old = Vec::with_capacity(rows.len());
    let mut new = Vec::with_capacity(rows.len());
    for mut r in rows {
        let extras = r.split_off(ncols);
        let mut n = r.clone();
        for (slot, v) in ords.iter().zip(extras) {
            n[*slot] = v;
        }
        old.push(r);
        new.push(n);
    }
    Ok((old, new))
}

/// Convert parsed `INSERT ... VALUES` rows into concrete values. Public so
/// front ends that route inserts through summary-table maintenance share
/// the same literal handling as [`Session::run_statement`].
pub fn literal_rows(rows: &[Vec<sumtab_parser::Expr>]) -> Result<Vec<Row>, SumtabError> {
    rows.iter()
        .map(|row| row.iter().map(literal_value).collect())
        .collect()
}

/// Evaluate a literal (possibly negated) INSERT value.
fn literal_value(e: &sumtab_parser::Expr) -> Result<Value, SumtabError> {
    match e {
        sumtab_parser::Expr::Lit(v) => Ok(v.clone()),
        other => Err(SumtabError::Unsupported {
            detail: format!("INSERT values must be literals, got {other:?}"),
        }),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod tests {
    use super::*;

    #[test]
    fn end_to_end_script() {
        let mut s = Session::new();
        let results = s
            .run_script(
                "create table t (a int not null, b varchar, primary key (a));\
                 insert into t values (1, 'x'), (2, 'y'), (3, 'x');\
                 select b, count(*) as n from t group by b;",
            )
            .unwrap();
        assert_eq!(results[0], StatementResult::Done);
        assert_eq!(results[1], StatementResult::Count(3));
        match &results[2] {
            StatementResult::Rows(header, rows) => {
                assert_eq!(header, &["b", "n"]);
                let mut rows = rows.clone();
                rows.sort();
                assert_eq!(
                    rows,
                    vec![
                        vec![Value::from("x"), Value::Int(2)],
                        vec![Value::from("y"), Value::Int(1)],
                    ]
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn summary_table_ddl_materializes() {
        let mut s = Session::new();
        s.run_script(
            "create table t (a int not null, v int not null);\
             insert into t values (1, 10), (1, 20), (2, 5);\
             create summary table st as (select a, sum(v) as sv from t group by a);",
        )
        .unwrap();
        assert!(s.catalog.is_summary_table("st"));
        assert_eq!(s.db.row_count("st"), 2);
        // The backing table is queryable like any base table.
        let (_, rows) = s.query("select sv from st where a = 1").unwrap();
        assert_eq!(rows, vec![vec![Value::Int(30)]]);
    }

    #[test]
    fn fk_ddl() {
        let mut s = Session::new();
        s.run_script(
            "create table p (id int not null, primary key (id));\
             create table c (fid int not null);\
             alter table c add foreign key (fid) references p;",
        )
        .unwrap();
        assert_eq!(s.catalog.foreign_keys().len(), 1);
    }

    #[test]
    fn errors_are_reported() {
        let mut s = Session::new();
        assert!(s.run_script("select a from nope").is_err());
        assert!(s
            .run_script("create table t (a int); insert into t values (1, 2)")
            .is_err());
    }
}
