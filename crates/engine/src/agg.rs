//! Hash aggregation for the QGM executor: accumulator semantics shared by
//! both execution paths, plus the parallel group folds.
//!
//! Three folds produce identical entries for one cuboid:
//!
//! * [`grouped_serial`] — the row-at-a-time reference used by the serial
//!   oracle (and by the parallel path on tiny inputs).
//! * [`grouped_partitioned`] — key-hash-partitioned parallelism over
//!   materialized rows: each worker owns the groups whose key hash lands in
//!   its partition and folds their rows **in global row order** (float
//!   addition is non-associative, so merging per-morsel partials would
//!   drift from the serial result in the low bits). Partition scatter is
//!   itself morsel-parallel; group lookup is hash-first so the fold never
//!   clones a key `Vec<Value>` except on first occurrence.
//! * [`grouped_columnar`] — the fused scan→aggregate path: no input rows
//!   exist at all. Group keys are encoded straight off typed column slices
//!   (dictionary codes for strings, `to_bits` for doubles) into flat `u64`
//!   words, and accumulators fold [`Cell`] views via [`Acc::update_cell`]
//!   without materializing a single `Value` until a group first occurs.
//!
//! All three emit entries in first-occurrence order of the group key, which
//! is the executor's deterministic output order.

use crate::db::{null_bit, ColSlice, ColumnVec, ColumnarTable, Row};
use crate::exec::{par_map, par_map_vec, row_workers};
use crate::program::{Cell, Program, Scratch};
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};
use sumtab_catalog::fx::{FxHashMap, FxHasher};
use sumtab_catalog::{Date, Value};
use sumtab_qgm::{AggCall, AggFunc, BoxId, QgmGraph, ScalarExpr};

use crate::exec::ExecError;

// ---------------------------------------------------------------------------
// Accumulators
// ---------------------------------------------------------------------------

/// A running aggregate accumulator.
pub(crate) enum Acc {
    CountStar(i64),
    Count(i64),
    Sum {
        int: i64,
        fl: f64,
        any_float: bool,
        seen: bool,
    },
    Min(Option<Value>),
    Max(Option<Value>),
    /// DISTINCT values in a `BTreeSet` so finishing folds them in the
    /// deterministic `Value` total order — SUM(DISTINCT double) must not
    /// depend on hash iteration order.
    Distinct(BTreeSet<Value>, AggFunc),
}

impl Acc {
    pub(crate) fn new(call: &AggCall) -> Acc {
        if call.distinct {
            return Acc::Distinct(BTreeSet::new(), call.func);
        }
        match call.func {
            AggFunc::Count if call.arg.is_none() => Acc::CountStar(0),
            AggFunc::Count => Acc::Count(0),
            AggFunc::Sum => Acc::Sum {
                int: 0,
                fl: 0.0,
                any_float: false,
                seen: false,
            },
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
            // AVG is normalized to SUM/COUNT during QGM build; exec_group_by
            // rejects graphs carrying a raw AVG before any Acc is built, so
            // this arm is never reached with a meaningful call.
            AggFunc::Avg => Acc::Count(0),
        }
    }

    /// Fold one row's argument given as an owned [`Value`] reference.
    pub(crate) fn update(&mut self, arg: Option<&Value>) {
        self.update_cell(arg.map(Cell::of));
    }

    /// Fold one row's argument given as a borrowed [`Cell`] — the
    /// vectorized-aggregation entry point: SUM/COUNT/MIN/MAX fold typed
    /// column cells with no `Value` allocation (MIN/MAX clone only when the
    /// extremum actually changes). Semantics are exactly [`Acc::update`]'s
    /// (which delegates here): `None` means "no argument" (COUNT(*)),
    /// `Some(Cell::Null)` is a NULL argument.
    #[inline]
    pub(crate) fn update_cell(&mut self, arg: Option<Cell<'_>>) {
        match self {
            Acc::CountStar(n) => *n += 1,
            Acc::Count(n) => {
                if arg.is_some_and(|c| !c.is_null()) {
                    *n += 1;
                }
            }
            Acc::Sum {
                int,
                fl,
                any_float,
                seen,
            } => match arg {
                Some(Cell::Int(i)) => {
                    *int = int.wrapping_add(i);
                    *fl += i as f64;
                    *seen = true;
                }
                Some(Cell::Double(d)) => {
                    *fl += d;
                    *any_float = true;
                    *seen = true;
                }
                _ => {}
            },
            Acc::Min(cur) => {
                if let Some(c) = arg {
                    if !c.is_null()
                        && cur
                            .as_ref()
                            .is_none_or(|m| c.grouping_cmp(m) == std::cmp::Ordering::Less)
                    {
                        *cur = Some(c.into_value());
                    }
                }
            }
            Acc::Max(cur) => {
                if let Some(c) = arg {
                    if !c.is_null()
                        && cur
                            .as_ref()
                            .is_none_or(|m| c.grouping_cmp(m) == std::cmp::Ordering::Greater)
                    {
                        *cur = Some(c.into_value());
                    }
                }
            }
            Acc::Distinct(set, _) => {
                if let Some(c) = arg {
                    if !c.is_null() {
                        set.insert(c.into_value());
                    }
                }
            }
        }
    }

    pub(crate) fn finish(self) -> Value {
        match self {
            Acc::CountStar(n) | Acc::Count(n) => Value::Int(n),
            Acc::Sum {
                int,
                fl,
                any_float,
                seen,
            } => {
                if !seen {
                    Value::Null
                } else if any_float {
                    Value::Double(fl)
                } else {
                    Value::Int(int)
                }
            }
            Acc::Min(v) | Acc::Max(v) => v.unwrap_or(Value::Null),
            Acc::Distinct(set, func) => match func {
                AggFunc::Count => Value::Int(set.len() as i64),
                AggFunc::Sum => {
                    let mut acc = Acc::Sum {
                        int: 0,
                        fl: 0.0,
                        any_float: false,
                        seen: false,
                    };
                    for v in &set {
                        acc.update(Some(v));
                    }
                    acc.finish()
                }
                AggFunc::Min => set.iter().min().cloned().unwrap_or(Value::Null),
                AggFunc::Max => set.iter().max().cloned().unwrap_or(Value::Null),
                // Unreachable after exec_group_by's up-front AVG rejection.
                AggFunc::Avg => Value::Null,
            },
        }
    }
}

// ---------------------------------------------------------------------------
// The shared aggregation plan
// ---------------------------------------------------------------------------

/// Outputs reference grouping items or carry aggregates, in any order.
pub(crate) enum OutPlan {
    Item(usize),
    Agg(usize),
}

/// The shared aggregation plan for a GROUP BY box.
pub(crate) struct GroupPlan {
    pub(crate) item_ords: Vec<usize>,
    pub(crate) agg_calls: Vec<AggCall>,
    pub(crate) out_plan: Vec<OutPlan>,
}

pub(crate) fn plan_group_by(g: &QgmGraph, b: BoxId) -> Result<GroupPlan, ExecError> {
    let bx = g.boxed(b);
    let gb = bx
        .as_group_by()
        .ok_or_else(|| ExecError::malformed(b, "exec_group_by on a non-GROUP-BY box"))?;
    let item_ords: Vec<usize> = gb.items.iter().map(|c| c.ordinal).collect();
    let mut agg_calls: Vec<AggCall> = Vec::new();
    let mut out_plan: Vec<OutPlan> = Vec::with_capacity(bx.outputs.len());
    for oc in &bx.outputs {
        match &oc.expr {
            ScalarExpr::Col(c) => {
                let i = gb.items.iter().position(|it| it == c).ok_or_else(|| {
                    ExecError::malformed(b, "group-by output must reference a grouping item")
                })?;
                out_plan.push(OutPlan::Item(i));
            }
            ScalarExpr::Agg(a) => {
                // AVG must have been normalized to SUM/COUNT by the builder;
                // reject it here (before any accumulator exists) so `Acc`
                // never observes it.
                if a.func == AggFunc::Avg {
                    return Err(ExecError::malformed(
                        b,
                        "raw AVG aggregate (not normalized to SUM/COUNT)",
                    ));
                }
                agg_calls.push(*a);
                out_plan.push(OutPlan::Agg(agg_calls.len() - 1));
            }
            other => {
                return Err(ExecError::malformed(
                    b,
                    format!("group-by output must be item or aggregate, got {other:?}"),
                ))
            }
        }
    }
    Ok(GroupPlan {
        item_ords,
        agg_calls,
        out_plan,
    })
}

// ---------------------------------------------------------------------------
// Row-input folds
// ---------------------------------------------------------------------------

/// One group's state while folding: first-occurrence tag, key, accumulators.
type PartEntry = (u32, Vec<Value>, Vec<Acc>);

/// Hash-aggregate one cuboid serially; entries come out in first-occurrence
/// order of their group key.
pub(crate) fn grouped_serial(
    input: &[Row],
    set: &[usize],
    plan: &GroupPlan,
) -> Vec<(Vec<Value>, Vec<Acc>)> {
    let mut index: FxHashMap<Vec<Value>, usize> = FxHashMap::default();
    let mut entries: Vec<(Vec<Value>, Vec<Acc>)> = Vec::new();
    for row in input {
        let key: Vec<Value> = set
            .iter()
            .map(|&i| row[plan.item_ords[i]].clone())
            .collect();
        let idx = match index.get(&key) {
            Some(&i) => i,
            None => {
                let i = entries.len();
                index.insert(key.clone(), i);
                entries.push((key, plan.agg_calls.iter().map(Acc::new).collect()));
                i
            }
        };
        for (acc, call) in entries[idx].1.iter_mut().zip(&plan.agg_calls) {
            acc.update(call.arg.map(|c| &row[c.ordinal]));
        }
    }
    entries
}

/// Hash-aggregate one cuboid with key-hash-partitioned parallelism over
/// materialized rows. Phase 1 hashes keys and scatters row indices into
/// per-morsel partition buckets (morsel-parallel); phase 2 transposes the
/// buckets partition-major with `Vec` moves only; phase 3 gives each worker
/// whole partitions to fold — a partition owns every row of its groups, in
/// global row order, so float accumulation matches the serial fold exactly.
/// Group lookup inside a partition is hash-first (the phase-1 hash rides
/// along with the row index): candidate entries are confirmed element-wise,
/// and a key `Vec<Value>` is only cloned when a group first occurs. Phase 4
/// merges partitions by first-occurrence row index — the serial entry order.
pub(crate) fn grouped_partitioned(
    input: &[Row],
    set: &[usize],
    plan: &GroupPlan,
    workers: usize,
    morsel: usize,
) -> Vec<(Vec<Value>, Vec<Acc>)> {
    let nparts = workers.max(1).next_power_of_two();
    let mask = (nparts - 1) as u64;

    // Phase 1: hash + scatter, morsel-parallel.
    let scattered: Vec<Vec<Vec<(u32, u64)>>> = par_map(workers, morsel, input.len(), |_, range| {
        let mut parts: Vec<Vec<(u32, u64)>> = vec![Vec::new(); nparts];
        for i in range {
            let mut h = FxHasher::default();
            for &s in set {
                input[i][plan.item_ords[s]].hash(&mut h);
            }
            let h = h.finish();
            parts[(h & mask) as usize].push((i as u32, h));
        }
        parts
    });

    // Phase 2: transpose morsel-major → partition-major. Chunks stay in
    // morsel order, so each partition sees its rows in global row order.
    let mut by_part: Vec<Vec<Vec<(u32, u64)>>> = (0..nparts).map(|_| Vec::new()).collect();
    for morsel_parts in scattered {
        for (p, chunk) in morsel_parts.into_iter().enumerate() {
            if !chunk.is_empty() {
                by_part[p].push(chunk);
            }
        }
    }

    // Phase 3: one partition per worker.
    let parts: Vec<Vec<PartEntry>> = par_map_vec(workers, by_part, |_, chunks| {
        let mut out: Vec<PartEntry> = Vec::new();
        let mut index: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        for chunk in chunks {
            for (ri, h) in chunk {
                let row = &input[ri as usize];
                let found = index.get(&h).and_then(|cands| {
                    cands.iter().copied().find(|&e| {
                        let key = &out[e as usize].1;
                        set.iter()
                            .enumerate()
                            .all(|(k, &s)| row[plan.item_ords[s]] == key[k])
                    })
                });
                let idx = match found {
                    Some(e) => e as usize,
                    None => {
                        let e = out.len();
                        let key: Vec<Value> = set
                            .iter()
                            .map(|&s| row[plan.item_ords[s]].clone())
                            .collect();
                        out.push((ri, key, plan.agg_calls.iter().map(Acc::new).collect()));
                        index.entry(h).or_default().push(e as u32);
                        e
                    }
                };
                for (acc, call) in out[idx].2.iter_mut().zip(&plan.agg_calls) {
                    acc.update(call.arg.map(|c| &row[c.ordinal]));
                }
            }
        }
        out
    });

    // Phase 4: merge partitions into global first-occurrence order.
    let mut all: Vec<PartEntry> = parts.into_iter().flatten().collect();
    all.sort_by_key(|e| e.0);
    all.into_iter().map(|(_, k, a)| (k, a)).collect()
}

// ---------------------------------------------------------------------------
// Columnar (fused scan→aggregate) fold
// ---------------------------------------------------------------------------

/// An aggregate argument read without materializing input rows: a bare
/// column (typed cells straight off the column vector) or a compiled
/// program over the scan's columns.
pub(crate) enum ArgSrc<'c> {
    Col(&'c ColumnVec),
    Prog(&'c Program),
}

/// A group-key encoding kernel over one typed column slice: encodes row `i`
/// as a `(null flag, bits)` pair of `u64` words that is **injective with
/// respect to `Value` grouping equality within the column** — doubles via
/// `to_bits` (grouping equality on doubles is total-order, i.e. bit,
/// equality), strings via their dictionary code, dates via the day number.
/// Mixed storage has no such encoding; callers must fall back to the
/// row-materializing path for it.
enum KeyEnc<'c> {
    Int(&'c [i64], Option<&'c [u64]>),
    F64(&'c [f64], Option<&'c [u64]>),
    Bool(&'c [bool], Option<&'c [u64]>),
    Date(&'c [Date], Option<&'c [u64]>),
    Str(&'c [u32], Option<&'c [u64]>),
}

impl<'c> KeyEnc<'c> {
    /// The encoder for a column, or `None` for Mixed storage.
    fn of(cv: &'c ColumnVec) -> Option<KeyEnc<'c>> {
        let nulls = cv.null_words();
        match cv.slice() {
            ColSlice::Int(d) => Some(KeyEnc::Int(d, nulls)),
            ColSlice::Double(d) => Some(KeyEnc::F64(d, nulls)),
            ColSlice::Bool(d) => Some(KeyEnc::Bool(d, nulls)),
            ColSlice::Date(d) => Some(KeyEnc::Date(d, nulls)),
            ColSlice::Str { codes, .. } => Some(KeyEnc::Str(codes, nulls)),
            ColSlice::Mixed(_) => None,
        }
    }

    #[inline]
    fn push(&self, i: usize, buf: &mut Vec<u64>) {
        let (flag, bits) = match self {
            KeyEnc::Int(d, n) => (!null_bit(*n, i), d[i] as u64),
            KeyEnc::F64(d, n) => (!null_bit(*n, i), d[i].to_bits()),
            KeyEnc::Bool(d, n) => (!null_bit(*n, i), d[i] as u64),
            KeyEnc::Date(d, n) => (!null_bit(*n, i), d[i].to_day_number() as u64),
            KeyEnc::Str(codes, n) => (!null_bit(*n, i), codes[i] as u64),
        };
        buf.push(flag as u64);
        buf.push(if flag { bits } else { 0 });
    }
}

/// Hash-aggregate one cuboid directly over a columnar scan: `filtered`
/// holds the surviving row indices in scan order, `key_cols[s]` the table
/// column backing grouping item `s`, and `args[j]` the source of aggregate
/// `j`'s argument. Requires every grouping column of `set` to be typed
/// (non-Mixed); returns `None` otherwise so the caller can fall back to
/// the row-materializing path.
///
/// Same partition discipline as [`grouped_partitioned`] — whole groups per
/// worker, rows in global (scan) order, first-occurrence merge — but keys
/// live as flat `u64` encodings until a group first occurs, and
/// accumulators fold typed [`Cell`]s via [`Acc::update_cell`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn grouped_columnar(
    t: &ColumnarTable,
    filtered: &[u32],
    set: &[usize],
    key_cols: &[usize],
    args: &[Option<ArgSrc<'_>>],
    plan: &GroupPlan,
    workers: usize,
    morsel: usize,
) -> Option<Vec<(Vec<Value>, Vec<Acc>)>> {
    // Grand total (empty grouping set): exactly one group, so the scatter /
    // partition / hash machinery is pure overhead — and the single group's
    // accumulators must fold in global scan order anyway (float addition is
    // non-associative), which only a serial pass guarantees.
    if set.is_empty() {
        if filtered.is_empty() {
            return Some(Vec::new());
        }
        let mut accs: Vec<Acc> = plan.agg_calls.iter().map(Acc::new).collect();
        let mut scratch = Scratch::new();
        for &r in filtered {
            let row = r as usize;
            let col = |c: u32| t.cell(row, c as usize);
            for (acc, arg) in accs.iter_mut().zip(args) {
                match arg {
                    None => acc.update_cell(None),
                    Some(ArgSrc::Col(cv)) => acc.update_cell(Some(cv.cell(row))),
                    Some(ArgSrc::Prog(p)) => {
                        acc.update_cell(Some(p.eval_with(&col, &mut scratch)));
                    }
                }
            }
        }
        return Some(vec![(Vec::new(), accs)]);
    }

    let encs: Vec<KeyEnc> = set
        .iter()
        .map(|&s| KeyEnc::of(&t.columns()[key_cols[s]]))
        .collect::<Option<Vec<_>>>()?;

    let w = row_workers(workers, filtered.len());
    let nparts = w.next_power_of_two();
    let mask = (nparts - 1) as u64;

    let encode = |row: usize, buf: &mut Vec<u64>| {
        buf.clear();
        for e in &encs {
            e.push(row, buf);
        }
    };

    // Phase 1: encode + hash + scatter, morsel-parallel over the filtered
    // index list (whose order is the global row order).
    let scattered: Vec<Vec<Vec<u32>>> = par_map(w, morsel, filtered.len(), |_, range| {
        let mut parts: Vec<Vec<u32>> = vec![Vec::new(); nparts];
        let mut buf: Vec<u64> = Vec::with_capacity(encs.len() * 2);
        for fi in range {
            encode(filtered[fi] as usize, &mut buf);
            let mut h = FxHasher::default();
            buf.hash(&mut h);
            parts[(h.finish() & mask) as usize].push(fi as u32);
        }
        parts
    });

    // Phase 2: transpose morsel-major → partition-major.
    let mut by_part: Vec<Vec<Vec<u32>>> = (0..nparts).map(|_| Vec::new()).collect();
    for morsel_parts in scattered {
        for (p, chunk) in morsel_parts.into_iter().enumerate() {
            if !chunk.is_empty() {
                by_part[p].push(chunk);
            }
        }
    }

    // Phase 3: one partition per worker; encoded-key group lookup, typed
    // cell accumulation.
    let parts: Vec<Vec<PartEntry>> = par_map_vec(w, by_part, |_, chunks| {
        let mut out: Vec<PartEntry> = Vec::new();
        let mut index: FxHashMap<Vec<u64>, u32> = FxHashMap::default();
        let mut buf: Vec<u64> = Vec::with_capacity(encs.len() * 2);
        let mut scratch = Scratch::new();
        for chunk in chunks {
            for fi in chunk {
                let row = filtered[fi as usize] as usize;
                encode(row, &mut buf);
                let idx = match index.get(buf.as_slice()) {
                    Some(&e) => e as usize,
                    None => {
                        let e = out.len();
                        index.insert(buf.clone(), e as u32);
                        let key: Vec<Value> = set
                            .iter()
                            .map(|&s| t.columns()[key_cols[s]].value(row))
                            .collect();
                        out.push((fi, key, plan.agg_calls.iter().map(Acc::new).collect()));
                        e
                    }
                };
                let col = |c: u32| t.cell(row, c as usize);
                for (acc, arg) in out[idx].2.iter_mut().zip(args) {
                    match arg {
                        None => acc.update_cell(None),
                        Some(ArgSrc::Col(cv)) => acc.update_cell(Some(cv.cell(row))),
                        Some(ArgSrc::Prog(p)) => {
                            acc.update_cell(Some(p.eval_with(&col, &mut scratch)));
                        }
                    }
                }
            }
        }
        out
    });

    // Phase 4: merge partitions into global first-occurrence order.
    let mut all: Vec<PartEntry> = parts.into_iter().flatten().collect();
    all.sort_by_key(|e| e.0);
    Some(all.into_iter().map(|(_, k, a)| (k, a)).collect())
}

/// Render finished group entries through the output plan.
pub(crate) fn emit_group_rows(
    entries: Vec<(Vec<Value>, Vec<Acc>)>,
    set: &[usize],
    plan: &GroupPlan,
    out: &mut Vec<Row>,
) {
    for (key, accs) in entries {
        let finished: Vec<Value> = accs.into_iter().map(Acc::finish).collect();
        let row = plan
            .out_plan
            .iter()
            .map(|p| match p {
                OutPlan::Item(i) => match set.iter().position(|&s| s == *i) {
                    Some(k) => key[k].clone(),
                    None => Value::Null,
                },
                OutPlan::Agg(k) => finished[*k].clone(),
            })
            .collect();
        out.push(row);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod tests {
    use super::*;

    /// `Cell::grouping_cmp` must agree with `Value::cmp` for every pair of
    /// sample values — MIN/MAX folded through cells must pick exactly the
    /// extrema the serial `Value` fold picks.
    #[test]
    fn cell_grouping_cmp_matches_value_cmp() {
        let samples = vec![
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(-3),
            Value::Int(0),
            Value::Int(3),
            Value::Double(-0.0),
            Value::Double(0.0),
            Value::Double(2.5),
            Value::Double(3.0),
            Value::Double(f64::NAN),
            Value::from("a"),
            Value::from("b"),
            Value::Date(Date::parse("1990-01-03").unwrap()),
            Value::Date(Date::parse("1991-10-20").unwrap()),
        ];
        for a in &samples {
            for b in &samples {
                assert_eq!(
                    Cell::of(a).grouping_cmp(b),
                    a.cmp(b),
                    "grouping_cmp({a:?}, {b:?})"
                );
            }
        }
    }

    /// `update_cell` over typed cells must produce the same finished values
    /// as `update` over the equivalent owned values.
    #[test]
    fn update_cell_matches_update() {
        use sumtab_qgm::{ColRef, GraphId, QuantId};
        let arg = Some(ColRef {
            qid: QuantId {
                graph: GraphId(0),
                idx: 0,
            },
            ordinal: 0,
        });
        let calls = [
            AggCall {
                func: AggFunc::Count,
                arg: None,
                distinct: false,
            },
            AggCall {
                func: AggFunc::Count,
                arg,
                distinct: false,
            },
            AggCall {
                func: AggFunc::Sum,
                arg,
                distinct: false,
            },
            AggCall {
                func: AggFunc::Min,
                arg,
                distinct: false,
            },
            AggCall {
                func: AggFunc::Max,
                arg,
                distinct: false,
            },
            AggCall {
                func: AggFunc::Sum,
                arg,
                distinct: true,
            },
        ];
        let stream = vec![
            Value::Int(2),
            Value::Double(0.5),
            Value::Null,
            Value::Int(-7),
            Value::Double(0.5),
            Value::from("x"),
        ];
        for call in &calls {
            let mut via_value = Acc::new(call);
            let mut via_cell = Acc::new(call);
            for v in &stream {
                via_value.update(call.arg.map(|_| v));
                via_cell.update_cell(call.arg.map(|_| Cell::of(v)));
            }
            assert_eq!(via_value.finish(), via_cell.finish());
        }
    }
}
