//! Epoch-keyed plan cache.
//!
//! Matching a query against every registered AST is the expensive part of
//! the paper's compile path; once a query has been planned, re-planning the
//! same query is pure waste *as long as nothing it depends on changed*. The
//! cache maps a canonical query fingerprint (`sumtab-qgm::graph_fingerprint`)
//! to an arbitrary planning result, validated on every lookup against
//!
//! * an **epoch snapshot**: the [`Database`](crate::Database) modification
//!   epoch of every table the plan depends on (the query's base tables, the
//!   candidate ASTs' base tables, and the AST backing tables), captured when
//!   the plan was stored. Any table mutation bumps its epoch, so a stale
//!   entry can never be returned; and
//! * a **generation** counter supplied by the owner, bumped whenever the
//!   *set* of candidate ASTs or the match-relevant catalog metadata changes
//!   (a new AST registration, a new table, a new RI constraint) — events
//!   that can change the planning outcome without touching any table data.
//!
//! Stale entries are removed on discovery (counted as invalidations).
//! Capacity is bounded with FIFO eviction: plan values are small and the
//! workload is "same dashboard queries repeated", where FIFO ≈ LRU without
//! the bookkeeping.
//!
//! ## Runtime routing feedback
//!
//! The cache also keeps a *feedback* sidecar per fingerprint: observed
//! execution latencies for each [`RouteChoice`] the owner's cost-based
//! router could have made, plus an optional forced choice (a probe of the
//! unmeasured alternative when the estimate proved badly wrong). Feedback
//! is validated by **generation only** — deliberately *not* by epoch
//! snapshot — so a measured routing decision survives data mutations: new
//! rows change cardinalities gradually, while a generation bump (AST set
//! or match-relevant DDL changed) genuinely invalidates what was measured.

use std::collections::{BTreeMap, HashMap, VecDeque};

/// A plan the owner's router can choose between for one cached query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteChoice {
    /// The un-rewritten plan over base tables.
    Base,
    /// The AST-backed rewritten plan.
    Rewrite,
}

impl RouteChoice {
    /// The alternative choice.
    pub fn other(self) -> RouteChoice {
        match self {
            RouteChoice::Base => RouteChoice::Rewrite,
            RouteChoice::Rewrite => RouteChoice::Base,
        }
    }

    fn idx(self) -> usize {
        match self {
            RouteChoice::Base => 0,
            RouteChoice::Rewrite => 1,
        }
    }
}

/// Smoothing factor for the observed-latency moving average: recent runs
/// dominate (the data the plan runs over keeps growing) without letting a
/// single noisy measurement flip a routing decision.
const LATENCY_EMA_WEIGHT: f64 = 0.5;

/// Per-fingerprint runtime measurements for routing.
#[derive(Debug, Clone, Default)]
pub struct FeedbackEntry {
    generation: u64,
    observed_ns: [Option<f64>; 2],
    forced: Option<RouteChoice>,
}

impl FeedbackEntry {
    /// The latency moving average observed for `choice`, if any.
    pub fn observed(&self, choice: RouteChoice) -> Option<f64> {
        self.observed_ns[choice.idx()]
    }

    /// A choice forced by the owner (a probe of the unmeasured
    /// alternative); cleared implicitly once both choices are measured —
    /// measurements outrank probes.
    pub fn forced(&self) -> Option<RouteChoice> {
        self.forced
    }

    /// The measured-fastest choice, once **both** alternatives have been
    /// observed; `None` while either is unmeasured.
    pub fn measured_best(&self) -> Option<RouteChoice> {
        match (self.observed_ns[0], self.observed_ns[1]) {
            (Some(b), Some(r)) => Some(if r < b {
                RouteChoice::Rewrite
            } else {
                RouteChoice::Base
            }),
            _ => None,
        }
    }

    fn observe(&mut self, choice: RouteChoice, ns: f64) {
        let slot = &mut self.observed_ns[choice.idx()];
        *slot = Some(match *slot {
            Some(old) => old * (1.0 - LATENCY_EMA_WEIGHT) + ns * LATENCY_EMA_WEIGHT,
            None => ns,
        });
    }
}

/// Observable cache behaviour, for benches and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a validated entry.
    pub hits: u64,
    /// Lookups that found nothing usable (includes invalidations).
    pub misses: u64,
    /// Entries dropped because their epoch snapshot or generation no longer
    /// matched at lookup time.
    pub invalidations: u64,
    /// Entries dropped to make room for new ones.
    pub evictions: u64,
    /// Lookups whose served plan was re-routed by runtime feedback —
    /// counted by the owner via [`PlanCache::count_reroute`].
    pub reroutes: u64,
}

struct CachedPlan<V> {
    epochs: BTreeMap<String, u64>,
    generation: u64,
    value: V,
}

/// A bounded fingerprint → plan map with epoch/generation validation.
pub struct PlanCache<V> {
    capacity: usize,
    entries: HashMap<String, CachedPlan<V>>,
    order: VecDeque<String>,
    feedback: HashMap<String, FeedbackEntry>,
    feedback_order: VecDeque<String>,
    stats: CacheStats,
}

impl<V> PlanCache<V> {
    /// A cache holding at most `capacity` plans (minimum 1).
    pub fn new(capacity: usize) -> PlanCache<V> {
        PlanCache {
            capacity: capacity.max(1),
            entries: HashMap::new(),
            order: VecDeque::new(),
            feedback: HashMap::new(),
            feedback_order: VecDeque::new(),
            stats: CacheStats::default(),
        }
    }

    /// Look up `key`, returning the cached value only if it was stored under
    /// the same generation and an epoch snapshot identical to `epochs`. A
    /// mismatched entry is removed (invalidation) and the lookup misses.
    pub fn lookup(
        &mut self,
        key: &str,
        epochs: &BTreeMap<String, u64>,
        generation: u64,
    ) -> Option<&V> {
        let valid = match self.entries.get(key) {
            Some(e) => e.generation == generation && e.epochs == *epochs,
            None => {
                self.stats.misses += 1;
                return None;
            }
        };
        if !valid {
            self.entries.remove(key);
            self.order.retain(|k| k != key);
            self.stats.invalidations += 1;
            self.stats.misses += 1;
            return None;
        }
        self.stats.hits += 1;
        self.entries.get(key).map(|e| &e.value)
    }

    /// Store a plan under `key` with its validation snapshot, evicting the
    /// oldest entry if the cache is full.
    pub fn store(&mut self, key: String, epochs: BTreeMap<String, u64>, generation: u64, value: V) {
        if self.entries.remove(&key).is_some() {
            self.order.retain(|k| k != &key);
        }
        while self.entries.len() >= self.capacity {
            match self.order.pop_front() {
                Some(old) => {
                    if self.entries.remove(&old).is_some() {
                        self.stats.evictions += 1;
                    }
                }
                None => break,
            }
        }
        self.order.push_back(key.clone());
        self.entries.insert(
            key,
            CachedPlan {
                epochs,
                generation,
                value,
            },
        );
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no plans are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The feedback entry for `key`, if one exists at this `generation`.
    /// Feedback from an older generation is dropped on discovery (the AST
    /// set or catalog changed; its measurements describe dead plans), but
    /// an epoch bump alone leaves feedback intact by design.
    pub fn feedback(&mut self, key: &str, generation: u64) -> Option<&FeedbackEntry> {
        if let Some(e) = self.feedback.get(key) {
            if e.generation != generation {
                self.feedback.remove(key);
                self.feedback_order.retain(|k| k != key);
                return None;
            }
        }
        self.feedback.get(key)
    }

    /// Record one observed execution latency for `(key, choice)`, folding
    /// it into the choice's moving average. Creates (or, on a generation
    /// change, resets) the feedback entry.
    pub fn observe_latency(&mut self, key: &str, generation: u64, choice: RouteChoice, ns: f64) {
        self.feedback_entry(key, generation).observe(choice, ns);
    }

    /// Force the next routing decisions for `key` to `choice` until both
    /// alternatives carry measurements — the owner calls this to probe the
    /// unmeasured plan when the estimate proved badly wrong.
    pub fn force_route(&mut self, key: &str, generation: u64, choice: RouteChoice) {
        self.feedback_entry(key, generation).forced = Some(choice);
    }

    /// Count one feedback-driven re-route served by the owner.
    pub fn count_reroute(&mut self) {
        self.stats.reroutes += 1;
    }

    fn feedback_entry(&mut self, key: &str, generation: u64) -> &mut FeedbackEntry {
        let stale = self
            .feedback
            .get(key)
            .is_some_and(|e| e.generation != generation);
        if stale {
            self.feedback.remove(key);
            self.feedback_order.retain(|k| k != key);
        }
        if !self.feedback.contains_key(key) {
            while self.feedback.len() >= self.capacity {
                match self.feedback_order.pop_front() {
                    Some(old) => {
                        self.feedback.remove(&old);
                    }
                    None => break,
                }
            }
            self.feedback_order.push_back(key.to_string());
            self.feedback.insert(
                key.to_string(),
                FeedbackEntry {
                    generation,
                    ..FeedbackEntry::default()
                },
            );
        }
        // The entry was just inserted (or already valid); a miss here would
        // be a bookkeeping bug, and an empty default keeps this total.
        self.feedback.entry(key.to_string()).or_default()
    }

    /// Drop every entry, including routing feedback (counters are
    /// preserved).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
        self.feedback.clear();
        self.feedback_order.clear();
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod tests {
    use super::*;

    fn snap(pairs: &[(&str, u64)]) -> BTreeMap<String, u64> {
        pairs.iter().map(|(t, e)| (t.to_string(), *e)).collect()
    }

    #[test]
    fn hit_requires_matching_epochs_and_generation() {
        let mut c: PlanCache<&str> = PlanCache::new(4);
        let e = snap(&[("trans", 3)]);
        assert!(c.lookup("q", &e, 0).is_none());
        c.store("q".into(), e.clone(), 0, "plan");
        assert_eq!(c.lookup("q", &e, 0), Some(&"plan"));
        // Epoch moved: entry is invalidated, not returned.
        assert!(c.lookup("q", &snap(&[("trans", 4)]), 0).is_none());
        assert!(c.is_empty());
        // Generation moved: same story.
        c.store("q".into(), e.clone(), 0, "plan");
        assert!(c.lookup("q", &e, 1).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.invalidations), (1, 2));
    }

    #[test]
    fn fifo_eviction_bounds_size() {
        let mut c: PlanCache<u32> = PlanCache::new(2);
        let e = BTreeMap::new();
        c.store("a".into(), e.clone(), 0, 1);
        c.store("b".into(), e.clone(), 0, 2);
        c.store("c".into(), e.clone(), 0, 3);
        assert_eq!(c.len(), 2);
        assert!(c.lookup("a", &e, 0).is_none(), "oldest evicted");
        assert_eq!(c.lookup("c", &e, 0), Some(&3));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn feedback_survives_epoch_bumps_not_generation_bumps() {
        let mut c: PlanCache<u32> = PlanCache::new(4);
        c.observe_latency("q", 7, RouteChoice::Rewrite, 1000.0);
        // Feedback carries no epoch snapshot at all: whatever the data
        // does, the measurement stays.
        let e = c.feedback("q", 7).unwrap();
        assert_eq!(e.observed(RouteChoice::Rewrite), Some(1000.0));
        assert_eq!(e.observed(RouteChoice::Base), None);
        assert_eq!(
            e.measured_best(),
            None,
            "one-sided measurement decides nothing"
        );
        // A generation bump drops it.
        assert!(c.feedback("q", 8).is_none());
        assert!(
            c.feedback("q", 7).is_none(),
            "dropped on discovery, not hidden"
        );
    }

    #[test]
    fn measured_best_needs_both_sides_and_smooths() {
        let mut c: PlanCache<u32> = PlanCache::new(4);
        c.observe_latency("q", 0, RouteChoice::Rewrite, 4000.0);
        c.observe_latency("q", 0, RouteChoice::Rewrite, 2000.0);
        c.observe_latency("q", 0, RouteChoice::Base, 1000.0);
        let e = c.feedback("q", 0).unwrap();
        assert_eq!(e.observed(RouteChoice::Rewrite), Some(3000.0), "EMA");
        assert_eq!(e.measured_best(), Some(RouteChoice::Base));
    }

    #[test]
    fn forced_probe_is_reported_until_measured() {
        let mut c: PlanCache<u32> = PlanCache::new(4);
        c.observe_latency("q", 0, RouteChoice::Rewrite, 9000.0);
        c.force_route("q", 0, RouteChoice::Base);
        let e = c.feedback("q", 0).unwrap();
        assert_eq!(e.forced(), Some(RouteChoice::Base));
        assert_eq!(e.measured_best(), None);
    }

    #[test]
    fn feedback_is_bounded_fifo() {
        let mut c: PlanCache<u32> = PlanCache::new(2);
        c.observe_latency("a", 0, RouteChoice::Base, 1.0);
        c.observe_latency("b", 0, RouteChoice::Base, 1.0);
        c.observe_latency("c", 0, RouteChoice::Base, 1.0);
        assert!(c.feedback("a", 0).is_none(), "oldest evicted");
        assert!(c.feedback("b", 0).is_some());
        assert!(c.feedback("c", 0).is_some());
    }

    #[test]
    fn restore_replaces_in_place() {
        let mut c: PlanCache<u32> = PlanCache::new(2);
        let e = BTreeMap::new();
        c.store("a".into(), e.clone(), 0, 1);
        c.store("a".into(), e.clone(), 0, 2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup("a", &e, 0), Some(&2));
        assert_eq!(c.stats().evictions, 0);
    }
}
