//! Epoch-keyed plan cache.
//!
//! Matching a query against every registered AST is the expensive part of
//! the paper's compile path; once a query has been planned, re-planning the
//! same query is pure waste *as long as nothing it depends on changed*. The
//! cache maps a canonical query fingerprint (`sumtab-qgm::graph_fingerprint`)
//! to an arbitrary planning result, validated on every lookup against
//!
//! * an **epoch snapshot**: the [`Database`](crate::Database) modification
//!   epoch of every table the plan depends on (the query's base tables, the
//!   candidate ASTs' base tables, and the AST backing tables), captured when
//!   the plan was stored. Any table mutation bumps its epoch, so a stale
//!   entry can never be returned; and
//! * a **generation** counter supplied by the owner, bumped whenever the
//!   *set* of candidate ASTs or the match-relevant catalog metadata changes
//!   (a new AST registration, a new table, a new RI constraint) — events
//!   that can change the planning outcome without touching any table data.
//!
//! Stale entries are removed on discovery (counted as invalidations).
//! Capacity is bounded with FIFO eviction: plan values are small and the
//! workload is "same dashboard queries repeated", where FIFO ≈ LRU without
//! the bookkeeping.

use std::collections::{BTreeMap, HashMap, VecDeque};

/// Observable cache behaviour, for benches and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a validated entry.
    pub hits: u64,
    /// Lookups that found nothing usable (includes invalidations).
    pub misses: u64,
    /// Entries dropped because their epoch snapshot or generation no longer
    /// matched at lookup time.
    pub invalidations: u64,
    /// Entries dropped to make room for new ones.
    pub evictions: u64,
}

struct CachedPlan<V> {
    epochs: BTreeMap<String, u64>,
    generation: u64,
    value: V,
}

/// A bounded fingerprint → plan map with epoch/generation validation.
pub struct PlanCache<V> {
    capacity: usize,
    entries: HashMap<String, CachedPlan<V>>,
    order: VecDeque<String>,
    stats: CacheStats,
}

impl<V> PlanCache<V> {
    /// A cache holding at most `capacity` plans (minimum 1).
    pub fn new(capacity: usize) -> PlanCache<V> {
        PlanCache {
            capacity: capacity.max(1),
            entries: HashMap::new(),
            order: VecDeque::new(),
            stats: CacheStats::default(),
        }
    }

    /// Look up `key`, returning the cached value only if it was stored under
    /// the same generation and an epoch snapshot identical to `epochs`. A
    /// mismatched entry is removed (invalidation) and the lookup misses.
    pub fn lookup(
        &mut self,
        key: &str,
        epochs: &BTreeMap<String, u64>,
        generation: u64,
    ) -> Option<&V> {
        let valid = match self.entries.get(key) {
            Some(e) => e.generation == generation && e.epochs == *epochs,
            None => {
                self.stats.misses += 1;
                return None;
            }
        };
        if !valid {
            self.entries.remove(key);
            self.order.retain(|k| k != key);
            self.stats.invalidations += 1;
            self.stats.misses += 1;
            return None;
        }
        self.stats.hits += 1;
        self.entries.get(key).map(|e| &e.value)
    }

    /// Store a plan under `key` with its validation snapshot, evicting the
    /// oldest entry if the cache is full.
    pub fn store(&mut self, key: String, epochs: BTreeMap<String, u64>, generation: u64, value: V) {
        if self.entries.remove(&key).is_some() {
            self.order.retain(|k| k != &key);
        }
        while self.entries.len() >= self.capacity {
            match self.order.pop_front() {
                Some(old) => {
                    if self.entries.remove(&old).is_some() {
                        self.stats.evictions += 1;
                    }
                }
                None => break,
            }
        }
        self.order.push_back(key.clone());
        self.entries.insert(
            key,
            CachedPlan {
                epochs,
                generation,
                value,
            },
        );
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no plans are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop every entry (counters are preserved).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod tests {
    use super::*;

    fn snap(pairs: &[(&str, u64)]) -> BTreeMap<String, u64> {
        pairs.iter().map(|(t, e)| (t.to_string(), *e)).collect()
    }

    #[test]
    fn hit_requires_matching_epochs_and_generation() {
        let mut c: PlanCache<&str> = PlanCache::new(4);
        let e = snap(&[("trans", 3)]);
        assert!(c.lookup("q", &e, 0).is_none());
        c.store("q".into(), e.clone(), 0, "plan");
        assert_eq!(c.lookup("q", &e, 0), Some(&"plan"));
        // Epoch moved: entry is invalidated, not returned.
        assert!(c.lookup("q", &snap(&[("trans", 4)]), 0).is_none());
        assert!(c.is_empty());
        // Generation moved: same story.
        c.store("q".into(), e.clone(), 0, "plan");
        assert!(c.lookup("q", &e, 1).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.invalidations), (1, 2));
    }

    #[test]
    fn fifo_eviction_bounds_size() {
        let mut c: PlanCache<u32> = PlanCache::new(2);
        let e = BTreeMap::new();
        c.store("a".into(), e.clone(), 0, 1);
        c.store("b".into(), e.clone(), 0, 2);
        c.store("c".into(), e.clone(), 0, 3);
        assert_eq!(c.len(), 2);
        assert!(c.lookup("a", &e, 0).is_none(), "oldest evicted");
        assert_eq!(c.lookup("c", &e, 0), Some(&3));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn restore_replaces_in_place() {
        let mut c: PlanCache<u32> = PlanCache::new(2);
        let e = BTreeMap::new();
        c.store("a".into(), e.clone(), 0, 1);
        c.store("a".into(), e.clone(), 0, 2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup("a", &e, 0), Some(&2));
        assert_eq!(c.stats().evictions, 0);
    }
}
