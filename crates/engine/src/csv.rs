//! Minimal CSV import/export for loading external datasets into a session.
//!
//! Values are parsed according to the catalog schema of the target table:
//! empty fields become NULL (when the column is nullable), integers/doubles/
//! dates parse by type, everything else is taken as a string. Quoting
//! follows RFC 4180 (double quotes, `""` escapes).

use crate::db::{Database, Row};
use sumtab_catalog::{Catalog, Date, SqlType, Value};

/// CSV loading errors.
#[derive(Debug, Clone, PartialEq)]
pub struct CsvError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CSV error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CsvError {}

/// Split one CSV record into fields (RFC 4180 quoting).
pub fn split_record(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' if cur.is_empty() => in_quotes = true,
            ',' if !in_quotes => fields.push(std::mem::take(&mut cur)),
            c => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

/// Parse CSV text (optionally with a header row naming a column permutation)
/// into rows conforming to `table`'s schema, and insert them.
/// Returns the number of rows loaded.
pub fn load_csv(
    catalog: &Catalog,
    db: &mut Database,
    table: &str,
    csv: &str,
    has_header: bool,
) -> Result<usize, CsvError> {
    let schema = catalog.table(table).ok_or_else(|| CsvError {
        line: 0,
        message: format!("unknown table `{table}`"),
    })?;
    let mut lines = csv
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    // Column permutation from the header, or identity.
    let perm: Vec<usize> = if has_header {
        let (lno, header) = lines.next().ok_or(CsvError {
            line: 1,
            message: "missing header".into(),
        })?;
        split_record(header)
            .iter()
            .map(|name| {
                schema.column_index(name.trim()).ok_or(CsvError {
                    line: lno + 1,
                    message: format!("unknown column `{}` in header", name.trim()),
                })
            })
            .collect::<Result<_, _>>()?
    } else {
        (0..schema.columns.len()).collect()
    };

    let mut rows: Vec<Row> = Vec::new();
    for (lno, line) in lines {
        let fields = split_record(line);
        if fields.len() != perm.len() {
            return Err(CsvError {
                line: lno + 1,
                message: format!("expected {} fields, got {}", perm.len(), fields.len()),
            });
        }
        let mut row = vec![Value::Null; schema.columns.len()];
        for (f, &col_idx) in fields.iter().zip(&perm) {
            let col = &schema.columns[col_idx];
            row[col_idx] = parse_field(f, col.ty).map_err(|m| CsvError {
                line: lno + 1,
                message: format!("column `{}`: {m}", col.name),
            })?;
        }
        rows.push(row);
    }
    let n = rows.len();
    db.insert(catalog, table, rows).map_err(|e| CsvError {
        line: 0,
        message: e.to_string(),
    })?;
    Ok(n)
}

fn parse_field(raw: &str, ty: SqlType) -> Result<Value, String> {
    let s = raw.trim();
    if s.is_empty() {
        return Ok(Value::Null);
    }
    match ty {
        SqlType::Int => s
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| format!("`{s}` is not an integer")),
        SqlType::Double => s
            .parse::<f64>()
            .map(Value::Double)
            .map_err(|_| format!("`{s}` is not a number")),
        SqlType::Date => Date::parse(s)
            .map(Value::Date)
            .ok_or(format!("`{s}` is not a date (yyyy-mm-dd)")),
        SqlType::Bool => match s.to_ascii_lowercase().as_str() {
            "true" | "t" | "1" => Ok(Value::Bool(true)),
            "false" | "f" | "0" => Ok(Value::Bool(false)),
            _ => Err(format!("`{s}` is not a boolean")),
        },
        SqlType::Varchar => Ok(Value::Str(s.to_string())),
    }
}

/// Render rows as CSV with a header.
pub fn to_csv(header: &[String], rows: &[Row]) -> String {
    let quote = |s: &str| {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    };
    let mut out = header
        .iter()
        .map(|h| quote(h))
        .collect::<Vec<_>>()
        .join(",");
    out.push('\n');
    for row in rows {
        let cells: Vec<String> = row
            .iter()
            .map(|v| match v {
                Value::Null => String::new(),
                Value::Str(s) => quote(s),
                Value::Date(d) => d.to_string(),
                other => other.to_string(),
            })
            .collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod tests {
    use super::*;
    use sumtab_catalog::{Column, Table};

    fn cat() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(Table::new(
            "m",
            vec![
                Column::new("id", SqlType::Int),
                Column::nullable("note", SqlType::Varchar),
                Column::new("amount", SqlType::Double),
                Column::new("day", SqlType::Date),
            ],
        ))
        .unwrap();
        c
    }

    #[test]
    fn load_without_header() {
        let c = cat();
        let mut db = Database::new();
        let n = load_csv(
            &c,
            &mut db,
            "m",
            "1,hello,2.5,1999-01-02\n2,,3.0,1999-02-03\n",
            false,
        )
        .unwrap();
        assert_eq!(n, 2);
        assert_eq!(db.rows("m")[1][1], Value::Null, "empty nullable → NULL");
        assert_eq!(
            db.rows("m")[0][3],
            Value::Date(Date::parse("1999-01-02").unwrap())
        );
    }

    #[test]
    fn header_permutes_columns() {
        let c = cat();
        let mut db = Database::new();
        load_csv(
            &c,
            &mut db,
            "m",
            "amount,id,day,note\n9.5,7,2000-12-31,xyz\n",
            true,
        )
        .unwrap();
        let row = &db.rows("m")[0];
        assert_eq!(row[0], Value::Int(7));
        assert_eq!(row[2], Value::Double(9.5));
        assert_eq!(row[1], Value::from("xyz"));
    }

    #[test]
    fn quoting_rules() {
        assert_eq!(
            split_record(r#"a,"b,c","d""e",f"#),
            vec!["a", "b,c", "d\"e", "f"]
        );
        assert_eq!(split_record(""), vec![""]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let c = cat();
        let mut db = Database::new();
        let err = load_csv(
            &c,
            &mut db,
            "m",
            "1,x,2.5,1999-01-02\nbad,y,1,2000-01-01\n",
            false,
        )
        .unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("not an integer"), "{err}");
        let err = load_csv(&c, &mut db, "m", "1,x\n", false).unwrap_err();
        assert!(err.message.contains("expected 4 fields"), "{err}");
        let err = load_csv(&c, &mut db, "nope", "", false).unwrap_err();
        assert!(err.message.contains("unknown table"), "{err}");
    }

    #[test]
    fn round_trip_through_to_csv() {
        let c = cat();
        let mut db = Database::new();
        load_csv(
            &c,
            &mut db,
            "m",
            "1,\"a,b\",2.5,1999-01-02\n2,,3.0,1999-02-03\n",
            false,
        )
        .unwrap();
        let header: Vec<String> = ["id", "note", "amount", "day"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let text = to_csv(&header, db.rows("m"));
        let mut db2 = Database::new();
        let n = load_csv(&c, &mut db2, "m", &text, true).unwrap();
        assert_eq!(n, 2);
        assert_eq!(db.rows("m"), db2.rows("m"));
    }
}
