//! In-memory table storage.

use std::collections::HashMap;
use sumtab_catalog::{Catalog, CatalogError, SqlType, Value};

/// A row of values.
pub type Row = Vec<Value>;

/// In-memory storage: table name → rows. Schemas live in the
/// [`Catalog`]; the database holds only data.
///
/// Every mutation bumps the table's *modification epoch*, a per-table
/// counter starting at 0. Consumers snapshot epochs to detect staleness: a
/// summary table materialized at epoch `e` of its base table is stale once
/// [`Database::epoch`] for that table returns anything other than `e`.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: HashMap<String, Vec<Row>>,
    epochs: HashMap<String, u64>,
}

/// Errors raised while loading data.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// The table is not declared in the catalog.
    UnknownTable(String),
    /// A row's arity or a value's type does not match the schema.
    SchemaMismatch(String),
    /// Underlying catalog error.
    Catalog(CatalogError),
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            DbError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            DbError::Catalog(e) => write!(f, "catalog error: {e}"),
        }
    }
}

impl std::error::Error for DbError {}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Insert rows after validating them against the catalog schema.
    /// Integer values are widened to doubles where the schema requires it.
    pub fn insert(
        &mut self,
        catalog: &Catalog,
        table: &str,
        rows: Vec<Row>,
    ) -> Result<usize, DbError> {
        let t = catalog
            .table(table)
            .ok_or_else(|| DbError::UnknownTable(table.into()))?;
        let mut validated = Vec::with_capacity(rows.len());
        for (ri, mut row) in rows.into_iter().enumerate() {
            if row.len() != t.columns.len() {
                return Err(DbError::SchemaMismatch(format!(
                    "row {ri}: expected {} values, got {}",
                    t.columns.len(),
                    row.len()
                )));
            }
            for (ci, v) in row.iter_mut().enumerate() {
                let col = &t.columns[ci];
                match (v.sql_type(), col.ty) {
                    (None, _) => {
                        if !col.nullable {
                            return Err(DbError::SchemaMismatch(format!(
                                "row {ri}: NULL in non-nullable column `{}`",
                                col.name
                            )));
                        }
                    }
                    (Some(SqlType::Int), SqlType::Double) => {
                        if let Value::Int(i) = *v {
                            *v = Value::Double(i as f64);
                        }
                    }
                    (Some(actual), expected) if actual == expected => {}
                    (Some(actual), expected) => {
                        return Err(DbError::SchemaMismatch(format!(
                            "row {ri}, column `{}`: expected {expected}, got {actual}",
                            col.name
                        )));
                    }
                }
            }
            validated.push(row);
        }
        let n = validated.len();
        let key = t.name.clone();
        self.tables
            .entry(key.clone())
            .or_default()
            .extend(validated);
        self.bump(&key);
        Ok(n)
    }

    /// Replace a table's rows wholesale (no validation; caller guarantees
    /// schema conformance — used by the materializer and generators).
    pub fn put_table(&mut self, table: &str, rows: Vec<Row>) {
        let key = table.to_ascii_lowercase();
        self.tables.insert(key.clone(), rows);
        self.bump(&key);
    }

    /// The rows of a table; empty slice when absent.
    pub fn rows(&self, table: &str) -> &[Row] {
        self.tables
            .get(&table.to_ascii_lowercase())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Row count of a table.
    pub fn row_count(&self, table: &str) -> usize {
        self.rows(table).len()
    }

    /// Drop a table's data.
    pub fn drop_table(&mut self, table: &str) {
        let key = table.to_ascii_lowercase();
        self.tables.remove(&key);
        self.bump(&key);
    }

    /// The table's modification epoch: 0 for a never-touched table, bumped
    /// by every [`Database::insert`], [`Database::put_table`], and
    /// [`Database::drop_table`].
    pub fn epoch(&self, table: &str) -> u64 {
        self.epochs
            .get(&table.to_ascii_lowercase())
            .copied()
            .unwrap_or(0)
    }

    /// Snapshot the epochs of a set of tables (sorted, deduplicated), for
    /// use as a plan-cache validation key. Never-touched tables snapshot at
    /// 0, matching [`Database::epoch`].
    pub fn epoch_snapshot<'t>(
        &self,
        tables: impl IntoIterator<Item = &'t str>,
    ) -> std::collections::BTreeMap<String, u64> {
        tables
            .into_iter()
            .map(|t| {
                let key = t.to_ascii_lowercase();
                let e = self.epoch(&key);
                (key, e)
            })
            .collect()
    }

    fn bump(&mut self, key: &str) {
        *self.epochs.entry(key.to_string()).or_insert(0) += 1;
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod tests {
    use super::*;
    use sumtab_catalog::Date;

    fn cat() -> Catalog {
        Catalog::credit_card_sample()
    }

    #[test]
    fn insert_validates_arity_and_types() {
        let mut db = Database::new();
        let c = cat();
        let row = vec![
            Value::Int(1),
            Value::Int(10),
            Value::Int(20),
            Value::Int(30),
            Value::Date(Date::parse("1995-06-01").unwrap()),
            Value::Int(2),
            Value::Int(100), // Int widened to Double for `price`
            Value::Double(0.1),
        ];
        assert_eq!(db.insert(&c, "trans", vec![row]).unwrap(), 1);
        assert_eq!(db.row_count("trans"), 1);
        assert_eq!(db.rows("TRANS")[0][6], Value::Double(100.0));

        // Arity error.
        assert!(matches!(
            db.insert(&c, "trans", vec![vec![Value::Int(1)]]),
            Err(DbError::SchemaMismatch(_))
        ));
        // Type error.
        let mut bad = db.rows("trans")[0].clone();
        bad[0] = Value::Str("oops".into());
        assert!(matches!(
            db.insert(&c, "trans", vec![bad]),
            Err(DbError::SchemaMismatch(_))
        ));
        // NULL in non-nullable column.
        let mut nullrow = db.rows("trans")[0].clone();
        nullrow[0] = Value::Null;
        assert!(matches!(
            db.insert(&c, "trans", vec![nullrow]),
            Err(DbError::SchemaMismatch(_))
        ));
        // Unknown table.
        assert!(matches!(
            db.insert(&c, "nope", vec![]),
            Err(DbError::UnknownTable(_))
        ));
    }

    #[test]
    fn put_and_drop() {
        let mut db = Database::new();
        db.put_table("X", vec![vec![Value::Int(1)]]);
        assert_eq!(db.row_count("x"), 1);
        db.drop_table("x");
        assert_eq!(db.row_count("x"), 0);
    }

    #[test]
    fn epochs_track_every_mutation() {
        let mut db = Database::new();
        assert_eq!(db.epoch("trans"), 0, "untouched tables sit at epoch 0");
        db.put_table("X", vec![vec![Value::Int(1)]]);
        assert_eq!(db.epoch("x"), 1);
        db.drop_table("x");
        assert_eq!(db.epoch("X"), 2, "epoch lookups are case-insensitive");

        let c = cat();
        let row = vec![
            Value::Int(1),
            Value::Int(10),
            Value::Int(20),
            Value::Int(30),
            Value::Date(Date::parse("1995-06-01").unwrap()),
            Value::Int(2),
            Value::Int(100),
            Value::Double(0.1),
        ];
        db.insert(&c, "trans", vec![row]).unwrap();
        assert_eq!(db.epoch("trans"), 1);
        // A failed insert does not bump the epoch.
        assert!(db.insert(&c, "trans", vec![vec![Value::Int(1)]]).is_err());
        assert_eq!(db.epoch("trans"), 1);
    }
}
