//! In-memory table storage: row store plus a lazy columnar cache.
//!
//! Rows remain the source of truth (`rows()` is still a zero-cost slice
//! borrow), but scans in the columnar executor read a [`ColumnarTable`]:
//! typed per-column vectors with a null bitmap and dictionary-encoded
//! strings. Columnar views are built lazily on first use and cached per
//! *modification epoch*, so any mutation invalidates them automatically.

use crate::program::Cell;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use sumtab_catalog::{Catalog, CatalogError, Date, SqlType, Value};

/// A row of values.
pub type Row = Vec<Value>;

/// Typed storage of one column.
#[derive(Debug, Clone)]
enum ColData {
    Int(Vec<i64>),
    Double(Vec<f64>),
    Bool(Vec<bool>),
    Date(Vec<Date>),
    /// Dictionary-encoded strings: `codes[i]` indexes into `dict`.
    Str {
        codes: Vec<u32>,
        dict: Vec<String>,
    },
    /// Fallback for mixed-type or all-NULL columns.
    Mixed(Vec<Value>),
}

/// One column: typed data plus an optional null bitmap (absent when the
/// column has no NULLs; NULL positions hold an arbitrary placeholder in
/// the typed vector).
#[derive(Debug, Clone)]
pub struct ColumnVec {
    data: ColData,
    nulls: Option<Vec<u64>>,
}

/// A borrowed, typed view of a column's storage — the raw material for
/// vectorized scan kernels. NULL positions (see
/// [`ColumnVec::null_words`]) hold placeholder values in the typed
/// variants.
#[derive(Clone, Copy)]
pub enum ColSlice<'a> {
    /// 64-bit integers.
    Int(&'a [i64]),
    /// 64-bit floats.
    Double(&'a [f64]),
    /// Booleans.
    Bool(&'a [bool]),
    /// Calendar dates.
    Date(&'a [Date]),
    /// Dictionary-encoded strings: `codes[i]` indexes into `dict`.
    Str {
        /// Per-row dictionary codes.
        codes: &'a [u32],
        /// The deduplicated string dictionary.
        dict: &'a [String],
    },
    /// Mixed-type or all-NULL fallback.
    Mixed(&'a [Value]),
}

/// Test bit `i` of an optional null bitmap (64 rows per word, bit set =
/// NULL) — the shared probe for vectorized predicate kernels and group-key
/// encoders working off [`ColumnVec::null_words`] slices.
#[inline]
pub(crate) fn null_bit(nulls: Option<&[u64]>, i: usize) -> bool {
    match nulls {
        Some(words) => words[i / 64] & (1 << (i % 64)) != 0,
        None => false,
    }
}

impl ColumnVec {
    /// Is row `i` NULL?
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        null_bit(self.nulls.as_deref(), i)
    }

    /// Borrowing view of row `i`.
    #[inline]
    pub fn cell(&self, i: usize) -> Cell<'_> {
        if self.is_null(i) {
            return Cell::Null;
        }
        match &self.data {
            ColData::Int(v) => Cell::Int(v[i]),
            ColData::Double(v) => Cell::Double(v[i]),
            ColData::Bool(v) => Cell::Bool(v[i]),
            ColData::Date(v) => Cell::Date(v[i]),
            ColData::Str { codes, dict } => Cell::Str(dict[codes[i] as usize].as_str()),
            ColData::Mixed(v) => Cell::of(&v[i]),
        }
    }

    /// Owned value of row `i`.
    pub fn value(&self, i: usize) -> Value {
        self.cell(i).into_value()
    }

    /// The typed storage view, for vectorized kernels.
    pub fn slice(&self) -> ColSlice<'_> {
        match &self.data {
            ColData::Int(v) => ColSlice::Int(v),
            ColData::Double(v) => ColSlice::Double(v),
            ColData::Bool(v) => ColSlice::Bool(v),
            ColData::Date(v) => ColSlice::Date(v),
            ColData::Str { codes, dict } => ColSlice::Str { codes, dict },
            ColData::Mixed(v) => ColSlice::Mixed(v),
        }
    }

    /// The null bitmap (64 rows per word, bit set = NULL), or `None` when
    /// the column has no NULLs.
    pub fn null_words(&self) -> Option<&[u64]> {
        self.nulls.as_deref()
    }
}

/// A columnar view of one table, rebuilt from the row store per epoch.
#[derive(Debug, Clone)]
pub struct ColumnarTable {
    cols: Vec<ColumnVec>,
    len: usize,
}

impl ColumnarTable {
    /// Transpose a row slice into typed columns.
    pub fn from_rows(rows: &[Row]) -> ColumnarTable {
        let width = rows.first().map(Vec::len).unwrap_or(0);
        let cols = (0..width).map(|c| build_column(rows, c)).collect();
        ColumnarTable {
            cols,
            len: rows.len(),
        }
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Column count.
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// The columns.
    pub fn columns(&self) -> &[ColumnVec] {
        &self.cols
    }

    /// Borrowing view of cell `(row, col)`.
    #[inline]
    pub fn cell(&self, row: usize, col: usize) -> Cell<'_> {
        self.cols[col].cell(row)
    }

    /// Append all of row `row`'s values to `out` (reconstructs the exact
    /// `Value` variants of the source rows).
    pub fn append_row(&self, row: usize, out: &mut Row) {
        out.reserve(self.cols.len());
        for c in &self.cols {
            out.push(c.value(row));
        }
    }
}

/// Pick the typed representation of column `c` and fill it.
fn build_column(rows: &[Row], c: usize) -> ColumnVec {
    let mut nulls: Option<Vec<u64>> = None;
    let mut ty: Option<SqlType> = None;
    let mut mixed = false;
    for row in rows {
        match row[c].sql_type() {
            None => {}
            Some(t) => match ty {
                None => ty = Some(t),
                Some(prev) if prev == t => {}
                Some(_) => {
                    mixed = true;
                    break;
                }
            },
        }
    }
    let set_null = |nulls: &mut Option<Vec<u64>>, i: usize| {
        let words = nulls.get_or_insert_with(|| vec![0u64; rows.len().div_ceil(64)]);
        words[i / 64] |= 1 << (i % 64);
    };
    // Date and Bool have no cheap NULL placeholder; all-NULL and mixed
    // columns have no single type — all fall back to Mixed.
    let data = match ty {
        _ if mixed => ColData::Mixed(rows.iter().map(|r| r[c].clone()).collect()),
        None => ColData::Mixed(rows.iter().map(|r| r[c].clone()).collect()),
        Some(SqlType::Int) => {
            let mut v = Vec::with_capacity(rows.len());
            for (i, row) in rows.iter().enumerate() {
                match row[c] {
                    Value::Int(x) => v.push(x),
                    _ => {
                        set_null(&mut nulls, i);
                        v.push(0);
                    }
                }
            }
            ColData::Int(v)
        }
        Some(SqlType::Double) => {
            let mut v = Vec::with_capacity(rows.len());
            for (i, row) in rows.iter().enumerate() {
                match row[c] {
                    Value::Double(x) => v.push(x),
                    _ => {
                        set_null(&mut nulls, i);
                        v.push(0.0);
                    }
                }
            }
            ColData::Double(v)
        }
        Some(SqlType::Varchar) => {
            let mut codes = Vec::with_capacity(rows.len());
            let mut dict: Vec<String> = Vec::new();
            let mut seen: HashMap<String, u32> = HashMap::new();
            for (i, row) in rows.iter().enumerate() {
                match &row[c] {
                    Value::Str(s) => {
                        let code = match seen.get(s.as_str()) {
                            Some(&k) => k,
                            None => {
                                let k = dict.len() as u32;
                                dict.push(s.clone());
                                seen.insert(s.clone(), k);
                                k
                            }
                        };
                        codes.push(code);
                    }
                    _ => {
                        set_null(&mut nulls, i);
                        codes.push(0);
                    }
                }
            }
            ColData::Str { codes, dict }
        }
        Some(SqlType::Date) | Some(SqlType::Bool) if nulls_present(rows, c) => {
            ColData::Mixed(rows.iter().map(|r| r[c].clone()).collect())
        }
        Some(SqlType::Date) => {
            let mut v = Vec::with_capacity(rows.len());
            for row in rows {
                if let Value::Date(d) = row[c] {
                    v.push(d);
                }
            }
            ColData::Date(v)
        }
        Some(SqlType::Bool) => {
            let mut v = Vec::with_capacity(rows.len());
            for row in rows {
                if let Value::Bool(b) = row[c] {
                    v.push(b);
                }
            }
            ColData::Bool(v)
        }
    };
    ColumnVec { data, nulls }
}

/// Does column `c` contain any NULL?
fn nulls_present(rows: &[Row], c: usize) -> bool {
    rows.iter().any(|r| r[c].is_null())
}

/// In-memory storage: table name → rows. Schemas live in the
/// [`Catalog`]; the database holds only data.
///
/// Every mutation bumps the table's *modification epoch*, a per-table
/// counter starting at 0. Consumers snapshot epochs to detect staleness: a
/// summary table materialized at epoch `e` of its base table is stale once
/// [`Database::epoch`] for that table returns anything other than `e`.
#[derive(Default)]
pub struct Database {
    tables: HashMap<String, Vec<Row>>,
    epochs: HashMap<String, u64>,
    /// Lazy columnar views keyed by table, validated by epoch.
    columnar: Mutex<HashMap<String, (u64, Arc<ColumnarTable>)>>,
}

impl Clone for Database {
    fn clone(&self) -> Database {
        Database {
            tables: self.tables.clone(),
            epochs: self.epochs.clone(),
            // Columnar views are rebuilt on demand in the clone.
            columnar: Mutex::new(HashMap::new()),
        }
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("tables", &self.tables)
            .field("epochs", &self.epochs)
            .finish_non_exhaustive()
    }
}

/// Errors raised while loading data.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// The table is not declared in the catalog.
    UnknownTable(String),
    /// A row's arity or a value's type does not match the schema.
    SchemaMismatch(String),
    /// Underlying catalog error.
    Catalog(CatalogError),
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            DbError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            DbError::Catalog(e) => write!(f, "catalog error: {e}"),
        }
    }
}

impl std::error::Error for DbError {}

/// Exported table contents: `(table name, rows)`, sorted by name.
pub type TableData = Vec<(String, Vec<Row>)>;

/// Exported modification epochs: `(table name, epoch)`, sorted by name.
pub type TableEpochs = Vec<(String, u64)>;

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Validate rows against a table's catalog schema: arity, NULLability,
    /// and types, widening integer values to doubles where the schema
    /// requires it. Shared by [`Database::insert`] and
    /// [`Database::replace_rows`].
    pub fn validate_rows(
        catalog: &Catalog,
        table: &str,
        rows: Vec<Row>,
    ) -> Result<Vec<Row>, DbError> {
        let t = catalog
            .table(table)
            .ok_or_else(|| DbError::UnknownTable(table.into()))?;
        let mut validated = Vec::with_capacity(rows.len());
        for (ri, mut row) in rows.into_iter().enumerate() {
            if row.len() != t.columns.len() {
                return Err(DbError::SchemaMismatch(format!(
                    "row {ri}: expected {} values, got {}",
                    t.columns.len(),
                    row.len()
                )));
            }
            for (ci, v) in row.iter_mut().enumerate() {
                let col = &t.columns[ci];
                match (v.sql_type(), col.ty) {
                    (None, _) => {
                        if !col.nullable {
                            return Err(DbError::SchemaMismatch(format!(
                                "row {ri}: NULL in non-nullable column `{}`",
                                col.name
                            )));
                        }
                    }
                    (Some(SqlType::Int), SqlType::Double) => {
                        if let Value::Int(i) = *v {
                            *v = Value::Double(i as f64);
                        }
                    }
                    (Some(actual), expected) if actual == expected => {}
                    (Some(actual), expected) => {
                        return Err(DbError::SchemaMismatch(format!(
                            "row {ri}, column `{}`: expected {expected}, got {actual}",
                            col.name
                        )));
                    }
                }
            }
            validated.push(row);
        }
        Ok(validated)
    }

    /// Insert rows after validating them against the catalog schema.
    /// Integer values are widened to doubles where the schema requires it.
    pub fn insert(
        &mut self,
        catalog: &Catalog,
        table: &str,
        rows: Vec<Row>,
    ) -> Result<usize, DbError> {
        let t = catalog
            .table(table)
            .ok_or_else(|| DbError::UnknownTable(table.into()))?;
        let validated = Database::validate_rows(catalog, table, rows)?;
        let n = validated.len();
        let key = t.name.clone();
        self.tables
            .entry(key.clone())
            .or_default()
            .extend(validated);
        self.bump(&key);
        Ok(n)
    }

    /// Remove `victims` from a table as a multiset — each victim row
    /// cancels exactly one stored copy. Returns the number of rows actually
    /// removed; the epoch is bumped only when at least one row went away.
    pub fn remove_rows(&mut self, table: &str, victims: &[Row]) -> usize {
        let key = table.to_ascii_lowercase();
        let mut budget: HashMap<&Row, usize> = HashMap::new();
        for v in victims {
            *budget.entry(v).or_insert(0) += 1;
        }
        let removed = match self.tables.get_mut(&key) {
            Some(rows) => {
                let before = rows.len();
                rows.retain(|r| match budget.get_mut(r) {
                    Some(n) if *n > 0 => {
                        *n -= 1;
                        false
                    }
                    _ => true,
                });
                before - rows.len()
            }
            None => 0,
        };
        if removed > 0 {
            self.bump(&key);
        }
        removed
    }

    /// Replace `old` rows (a multiset) with `new` rows in one mutation:
    /// validates the replacements, removes the victims, appends the
    /// validated rows, and bumps the epoch once. Returns the number of rows
    /// removed. Nothing is mutated when validation fails.
    pub fn replace_rows(
        &mut self,
        catalog: &Catalog,
        table: &str,
        old: &[Row],
        new: Vec<Row>,
    ) -> Result<usize, DbError> {
        let t = catalog
            .table(table)
            .ok_or_else(|| DbError::UnknownTable(table.into()))?;
        let validated = Database::validate_rows(catalog, table, new)?;
        let key = t.name.clone();
        let mut budget: HashMap<&Row, usize> = HashMap::new();
        for v in old {
            *budget.entry(v).or_insert(0) += 1;
        }
        let rows = self.tables.entry(key.clone()).or_default();
        let before = rows.len();
        rows.retain(|r| match budget.get_mut(r) {
            Some(n) if *n > 0 => {
                *n -= 1;
                false
            }
            _ => true,
        });
        let removed = before - rows.len();
        rows.extend(validated);
        self.bump(&key);
        Ok(removed)
    }

    /// Replace a table's rows wholesale (no validation; caller guarantees
    /// schema conformance — used by the materializer and generators).
    pub fn put_table(&mut self, table: &str, rows: Vec<Row>) {
        let key = table.to_ascii_lowercase();
        self.tables.insert(key.clone(), rows);
        self.bump(&key);
    }

    /// The rows of a table; empty slice when absent.
    pub fn rows(&self, table: &str) -> &[Row] {
        self.tables
            .get(&table.to_ascii_lowercase())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Row count of a table.
    pub fn row_count(&self, table: &str) -> usize {
        self.rows(table).len()
    }

    /// Drop a table's data.
    pub fn drop_table(&mut self, table: &str) {
        let key = table.to_ascii_lowercase();
        self.tables.remove(&key);
        self.bump(&key);
    }

    /// The table's modification epoch: 0 for a never-touched table, bumped
    /// by every [`Database::insert`], [`Database::put_table`], and
    /// [`Database::drop_table`].
    pub fn epoch(&self, table: &str) -> u64 {
        self.epochs
            .get(&table.to_ascii_lowercase())
            .copied()
            .unwrap_or(0)
    }

    /// Snapshot the epochs of a set of tables (sorted, deduplicated), for
    /// use as a plan-cache validation key. Never-touched tables snapshot at
    /// 0, matching [`Database::epoch`].
    pub fn epoch_snapshot<'t>(
        &self,
        tables: impl IntoIterator<Item = &'t str>,
    ) -> std::collections::BTreeMap<String, u64> {
        tables
            .into_iter()
            .map(|t| {
                let key = t.to_ascii_lowercase();
                let e = self.epoch(&key);
                (key, e)
            })
            .collect()
    }

    /// The columnar view of a table, built on first use and cached until
    /// the table's epoch changes. The `Arc` keeps the view alive across an
    /// executor run even if the cache entry is replaced concurrently.
    pub fn columnar(&self, table: &str) -> Arc<ColumnarTable> {
        let key = table.to_ascii_lowercase();
        let epoch = self.epoch(&key);
        let mut cache = match self.columnar.lock() {
            Ok(g) => g,
            // A panic while holding the lock cannot corrupt the cache (it
            // is validated by epoch on every lookup) — recover.
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some((e, t)) = cache.get(&key) {
            if *e == epoch {
                return Arc::clone(t);
            }
        }
        let t = Arc::new(ColumnarTable::from_rows(self.rows(&key)));
        cache.insert(key, (epoch, Arc::clone(&t)));
        t
    }

    fn bump(&mut self, key: &str) {
        *self.epochs.entry(key.to_string()).or_insert(0) += 1;
    }

    /// Bump a table's modification epoch without touching its data — the
    /// durable-invalidation hook: consumers that snapshotted the old epoch
    /// (summary staleness, cached plans) see the table as modified.
    pub fn bump_epoch(&mut self, table: &str) {
        self.bump(&table.to_ascii_lowercase());
    }

    /// Export the full storage state — every table's rows plus every
    /// modification epoch — sorted by table name for deterministic
    /// serialization. Feed the result to [`Database::restore_state`] to
    /// rebuild an identical database (same data, same epochs).
    pub fn export_state(&self) -> (TableData, TableEpochs) {
        let mut data: TableData = self
            .tables
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        data.sort_by(|a, b| a.0.cmp(&b.0));
        let mut epochs: TableEpochs = self.epochs.iter().map(|(k, &e)| (k.clone(), e)).collect();
        epochs.sort_by(|a, b| a.0.cmp(&b.0));
        (data, epochs)
    }

    /// Replace the whole storage state with a previously exported one.
    /// Unlike [`Database::put_table`], epochs are restored *exactly* — not
    /// bumped — so staleness bookkeeping snapshotted against the exported
    /// state remains valid after recovery.
    pub fn restore_state(&mut self, data: TableData, epochs: TableEpochs) {
        self.tables = data
            .into_iter()
            .map(|(k, v)| (k.to_ascii_lowercase(), v))
            .collect();
        self.epochs = epochs
            .into_iter()
            .map(|(k, e)| (k.to_ascii_lowercase(), e))
            .collect();
        match self.columnar.lock() {
            Ok(mut g) => g.clear(),
            Err(poisoned) => poisoned.into_inner().clear(),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod tests {
    use super::*;
    use sumtab_catalog::Date;

    fn cat() -> Catalog {
        Catalog::credit_card_sample()
    }

    #[test]
    fn insert_validates_arity_and_types() {
        let mut db = Database::new();
        let c = cat();
        let row = vec![
            Value::Int(1),
            Value::Int(10),
            Value::Int(20),
            Value::Int(30),
            Value::Date(Date::parse("1995-06-01").unwrap()),
            Value::Int(2),
            Value::Int(100), // Int widened to Double for `price`
            Value::Double(0.1),
        ];
        assert_eq!(db.insert(&c, "trans", vec![row]).unwrap(), 1);
        assert_eq!(db.row_count("trans"), 1);
        assert_eq!(db.rows("TRANS")[0][6], Value::Double(100.0));

        // Arity error.
        assert!(matches!(
            db.insert(&c, "trans", vec![vec![Value::Int(1)]]),
            Err(DbError::SchemaMismatch(_))
        ));
        // Type error.
        let mut bad = db.rows("trans")[0].clone();
        bad[0] = Value::Str("oops".into());
        assert!(matches!(
            db.insert(&c, "trans", vec![bad]),
            Err(DbError::SchemaMismatch(_))
        ));
        // NULL in non-nullable column.
        let mut nullrow = db.rows("trans")[0].clone();
        nullrow[0] = Value::Null;
        assert!(matches!(
            db.insert(&c, "trans", vec![nullrow]),
            Err(DbError::SchemaMismatch(_))
        ));
        // Unknown table.
        assert!(matches!(
            db.insert(&c, "nope", vec![]),
            Err(DbError::UnknownTable(_))
        ));
    }

    #[test]
    fn put_and_drop() {
        let mut db = Database::new();
        db.put_table("X", vec![vec![Value::Int(1)]]);
        assert_eq!(db.row_count("x"), 1);
        db.drop_table("x");
        assert_eq!(db.row_count("x"), 0);
    }

    #[test]
    fn columnar_round_trips_values_exactly() {
        let mut db = Database::new();
        let rows = vec![
            vec![
                Value::Int(1),
                Value::Double(1.5),
                Value::from("tv"),
                Value::Date(Date::parse("1990-01-03").unwrap()),
                Value::Bool(true),
                Value::Null,
            ],
            vec![
                Value::Int(2),
                Value::Null,
                Value::from("tv"),
                Value::Date(Date::parse("1991-02-04").unwrap()),
                Value::Bool(false),
                Value::from("mixed"),
            ],
            vec![
                Value::Null,
                Value::Double(-0.0),
                Value::Null,
                Value::Date(Date::parse("1992-03-05").unwrap()),
                Value::Bool(true),
                Value::Int(7),
            ],
        ];
        db.put_table("t", rows.clone());
        let col = db.columnar("t");
        assert_eq!(col.len(), 3);
        assert_eq!(col.width(), 6);
        for (i, row) in rows.iter().enumerate() {
            for (c, want) in row.iter().enumerate() {
                assert_eq!(&col.columns()[c].value(i), want, "cell ({i},{c})");
                // Variant identity, not just grouping equality.
                assert_eq!(col.columns()[c].value(i).sql_type(), want.sql_type());
            }
            let mut rebuilt = Vec::new();
            col.append_row(i, &mut rebuilt);
            assert_eq!(&rebuilt, row);
        }
        // The dictionary deduplicates: two "tv" cells, one entry.
        match &col.columns()[2].data {
            ColData::Str { dict, .. } => assert_eq!(dict.len(), 1),
            other => panic!("expected Str column, got {other:?}"),
        }
    }

    #[test]
    fn columnar_cache_invalidates_on_epoch_bump() {
        let mut db = Database::new();
        db.put_table("t", vec![vec![Value::Int(1)]]);
        let c1 = db.columnar("t");
        let c2 = db.columnar("T");
        assert!(Arc::ptr_eq(&c1, &c2), "cache hit at unchanged epoch");
        db.put_table("t", vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
        let c3 = db.columnar("t");
        assert_eq!(c3.len(), 2, "mutation rebuilds the columnar view");
        assert!(!Arc::ptr_eq(&c1, &c3));
        // Clones start with a cold columnar cache but identical data.
        let db2 = db.clone();
        assert_eq!(db2.columnar("t").len(), 2);
    }

    #[test]
    fn export_restore_preserves_data_and_epochs_exactly() {
        let mut db = Database::new();
        db.put_table("b", vec![vec![Value::Int(2)]]);
        db.put_table("a", vec![vec![Value::Int(1)]]);
        db.put_table("a", vec![vec![Value::Int(1)], vec![Value::Int(3)]]);
        db.drop_table("gone");
        let (data, epochs) = db.export_state();
        assert_eq!(
            epochs,
            vec![("a".into(), 2), ("b".into(), 1), ("gone".into(), 1)]
        );
        let mut db2 = Database::new();
        db2.put_table("junk", vec![vec![Value::Null]]);
        db2.restore_state(data, epochs);
        assert_eq!(db2.rows("a"), db.rows("a"));
        assert_eq!(db2.rows("b"), db.rows("b"));
        assert_eq!(db2.row_count("junk"), 0, "restore replaces, not merges");
        assert_eq!(db2.epoch("a"), 2, "epochs restored exactly, not bumped");
        assert_eq!(db2.epoch("gone"), 1, "dropped-table epochs survive");
        // bump_epoch invalidates without data changes.
        db2.bump_epoch("A");
        assert_eq!(db2.epoch("a"), 3);
        assert_eq!(db2.rows("a").len(), 2);
    }

    #[test]
    fn epochs_track_every_mutation() {
        let mut db = Database::new();
        assert_eq!(db.epoch("trans"), 0, "untouched tables sit at epoch 0");
        db.put_table("X", vec![vec![Value::Int(1)]]);
        assert_eq!(db.epoch("x"), 1);
        db.drop_table("x");
        assert_eq!(db.epoch("X"), 2, "epoch lookups are case-insensitive");

        let c = cat();
        let row = vec![
            Value::Int(1),
            Value::Int(10),
            Value::Int(20),
            Value::Int(30),
            Value::Date(Date::parse("1995-06-01").unwrap()),
            Value::Int(2),
            Value::Int(100),
            Value::Double(0.1),
        ];
        db.insert(&c, "trans", vec![row]).unwrap();
        assert_eq!(db.epoch("trans"), 1);
        // A failed insert does not bump the epoch.
        assert!(db.insert(&c, "trans", vec![vec![Value::Int(1)]]).is_err());
        assert_eq!(db.epoch("trans"), 1);
    }
}
