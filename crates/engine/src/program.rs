//! Compiled scalar-expression programs.
//!
//! The row interpreter in [`crate::eval`] walks the `ScalarExpr` tree per
//! row, resolves every `ColRef` through a hash map, and clones a [`Value`]
//! for every column access. On the executor's hot path that overhead
//! dominates. This module compiles an expression once per box into a flat
//! postfix op slice: column references become pre-resolved slot indices,
//! and evaluation runs over borrowed [`Cell`]s (no per-access allocation or
//! `Value::clone`). Three-valued `AND`/`OR` and `CASE` keep their
//! short-circuit behavior through explicit jump ops.
//!
//! The compiled semantics mirror `eval_expr` exactly — the differential
//! test `tests/exec_equivalence.rs` holds the two evaluators to
//! byte-identical results.

use crate::eval::like_match;
use std::cmp::Ordering;
use sumtab_catalog::{Date, Value};
use sumtab_qgm::{BinOp, ColRef, ScalarExpr, ScalarFunc, UnOp};

/// A borrowed evaluation value: like [`Value`] but strings borrow from the
/// backing store (a column dictionary or a materialized row), so pushing a
/// column onto the evaluation stack never allocates.
#[derive(Debug, Clone)]
pub enum Cell<'a> {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Double(f64),
    /// Boolean.
    Bool(bool),
    /// Calendar date.
    Date(Date),
    /// Borrowed string.
    Str(&'a str),
    /// Owned string (produced by `UPPER`/`LOWER`).
    StrOwned(String),
}

impl<'a> Cell<'a> {
    /// Borrowing view of a [`Value`].
    pub fn of(v: &'a Value) -> Cell<'a> {
        match v {
            Value::Null => Cell::Null,
            Value::Int(i) => Cell::Int(*i),
            Value::Double(d) => Cell::Double(*d),
            Value::Str(s) => Cell::Str(s.as_str()),
            Value::Date(d) => Cell::Date(*d),
            Value::Bool(b) => Cell::Bool(*b),
        }
    }

    /// Convert into an owned [`Value`] (clones borrowed strings).
    pub fn into_value(self) -> Value {
        match self {
            Cell::Null => Value::Null,
            Cell::Int(i) => Value::Int(i),
            Cell::Double(d) => Value::Double(d),
            Cell::Bool(b) => Value::Bool(b),
            Cell::Date(d) => Value::Date(d),
            Cell::Str(s) => Value::Str(s.to_owned()),
            Cell::StrOwned(s) => Value::Str(s),
        }
    }

    /// True for `Cell::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Cell::Null)
    }

    /// SQL truth value: `Some(bool)` for booleans, `None` otherwise
    /// (mirrors [`crate::eval::truth`]).
    pub fn truth(&self) -> Option<bool> {
        match self {
            Cell::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Cell::Str(s) => Some(s),
            Cell::StrOwned(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Compare against an owned [`Value`] under the **grouping total
    /// order** — exactly `Value::cmp` semantics (NULLs equal and smallest,
    /// doubles by total order, mixed numerics through the widened double,
    /// cross-type by type rank) without converting the cell to a `Value`.
    /// MIN/MAX accumulators fold typed column cells through this; the
    /// differential tests hold it to the serial `Value` fold.
    pub(crate) fn grouping_cmp(&self, v: &Value) -> Ordering {
        match (self, v) {
            (Cell::Null, Value::Null) => Ordering::Equal,
            (Cell::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Cell::Int(a), Value::Int(b)) => a.cmp(b),
            (Cell::Double(a), Value::Double(b)) => a.total_cmp(b),
            (Cell::Int(a), Value::Double(b)) => (*a as f64).total_cmp(b),
            (Cell::Double(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            (Cell::Date(a), Value::Date(b)) => a.cmp(b),
            _ => match (self.as_str(), v) {
                (Some(a), Value::Str(b)) => a.cmp(b.as_str()),
                _ => self.type_rank().cmp(&value_type_rank(v)),
            },
        }
    }

    /// Mirror of `Value::type_rank` for the cross-type arm of
    /// [`Cell::grouping_cmp`].
    fn type_rank(&self) -> u8 {
        match self {
            Cell::Null => 0,
            Cell::Bool(_) => 1,
            Cell::Int(_) | Cell::Double(_) => 2,
            Cell::Str(_) | Cell::StrOwned(_) => 3,
            Cell::Date(_) => 4,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Cell::Int(i) => Some(*i as f64),
            Cell::Double(d) => Some(*d),
            _ => None,
        }
    }
}

/// Mirror of the private `Value::type_rank` (see `sumtab-catalog`), for the
/// cross-type arm of [`Cell::grouping_cmp`].
fn value_type_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) | Value::Double(_) => 2,
        Value::Str(_) => 3,
        Value::Date(_) => 4,
    }
}

/// Equality with `eval::cmp_eq` semantics (both sides non-NULL): mixed
/// numerics compare by IEEE value, doubles by total order, different
/// non-numeric types are unequal.
fn cell_eq(l: &Cell<'_>, r: &Cell<'_>) -> bool {
    match (l, r) {
        (Cell::Int(a), Cell::Int(b)) => a == b,
        (Cell::Int(a), Cell::Double(b)) | (Cell::Double(b), Cell::Int(a)) => (*a as f64) == *b,
        (Cell::Double(a), Cell::Double(b)) => a.total_cmp(b) == Ordering::Equal,
        (Cell::Date(a), Cell::Date(b)) => a == b,
        (Cell::Bool(a), Cell::Bool(b)) => a == b,
        _ => match (l.as_str(), r.as_str()) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        },
    }
}

/// Ordering with `eval::cmp_order` semantics; `None` for incomparable
/// types.
fn cell_ord(l: &Cell<'_>, r: &Cell<'_>) -> Option<Ordering> {
    match (l, r) {
        (Cell::Int(a), Cell::Int(b)) => Some(a.cmp(b)),
        (Cell::Int(a), Cell::Double(b)) => (*a as f64).partial_cmp(b),
        (Cell::Double(a), Cell::Int(b)) => a.partial_cmp(&(*b as f64)),
        (Cell::Double(a), Cell::Double(b)) => a.partial_cmp(b),
        (Cell::Date(a), Cell::Date(b)) => Some(a.cmp(b)),
        (Cell::Bool(a), Cell::Bool(b)) => Some(a.cmp(b)),
        _ => match (l.as_str(), r.as_str()) {
            (Some(a), Some(b)) => Some(a.cmp(b)),
            _ => None,
        },
    }
}

/// Non-logical binary op with NULL propagation (mirrors
/// [`crate::eval::eval_binary`]).
fn cell_binary<'a>(op: BinOp, l: &Cell<'a>, r: &Cell<'a>) -> Cell<'a> {
    if l.is_null() || r.is_null() {
        return Cell::Null;
    }
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => cell_arith(op, l, r),
        BinOp::Eq => Cell::Bool(cell_eq(l, r)),
        BinOp::NotEq => Cell::Bool(!cell_eq(l, r)),
        BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
            let Some(ord) = cell_ord(l, r) else {
                return Cell::Null;
            };
            Cell::Bool(match op {
                BinOp::Lt => ord.is_lt(),
                BinOp::LtEq => ord.is_le(),
                BinOp::Gt => ord.is_gt(),
                _ => ord.is_ge(),
            })
        }
        BinOp::And | BinOp::Or => Cell::Null, // compiled to jump ops, never reached
    }
}

fn cell_arith<'a>(op: BinOp, l: &Cell<'a>, r: &Cell<'a>) -> Cell<'a> {
    if let (Cell::Int(a), Cell::Int(b)) = (l, r) {
        return match op {
            BinOp::Add => Cell::Int(a.wrapping_add(*b)),
            BinOp::Sub => Cell::Int(a.wrapping_sub(*b)),
            BinOp::Mul => Cell::Int(a.wrapping_mul(*b)),
            BinOp::Div if *b == 0 => Cell::Null,
            BinOp::Div => Cell::Int(a.wrapping_div(*b)),
            BinOp::Mod if *b == 0 => Cell::Null,
            _ => Cell::Int(a.wrapping_rem(*b)),
        };
    }
    let (Some(a), Some(b)) = (l.as_f64(), r.as_f64()) else {
        return Cell::Null;
    };
    match op {
        BinOp::Add => Cell::Double(a + b),
        BinOp::Sub => Cell::Double(a - b),
        BinOp::Mul => Cell::Double(a * b),
        BinOp::Div if b == 0.0 => Cell::Null,
        BinOp::Div => Cell::Double(a / b),
        BinOp::Mod if b == 0.0 => Cell::Null,
        _ => Cell::Double(a % b),
    }
}

fn cell_func<'a>(f: ScalarFunc, a: &Cell<'a>) -> Cell<'a> {
    if a.is_null() {
        return Cell::Null;
    }
    match (f, a) {
        (ScalarFunc::Year, Cell::Date(d)) => Cell::Int(i64::from(d.year())),
        (ScalarFunc::Month, Cell::Date(d)) => Cell::Int(i64::from(d.month())),
        (ScalarFunc::Day, Cell::Date(d)) => Cell::Int(i64::from(d.day())),
        (ScalarFunc::Abs, Cell::Int(i)) => Cell::Int(i.wrapping_abs()),
        (ScalarFunc::Abs, Cell::Double(d)) => Cell::Double(d.abs()),
        (ScalarFunc::Upper, c) => match c.as_str() {
            Some(s) => Cell::StrOwned(s.to_uppercase()),
            None => Cell::Null,
        },
        (ScalarFunc::Lower, c) => match c.as_str() {
            Some(s) => Cell::StrOwned(s.to_lowercase()),
            None => Cell::Null,
        },
        _ => Cell::Null,
    }
}

/// Three-valued truth of `l <op> r` for comparison operators — exactly the
/// `Op::Bin` comparison semantics, exposed so vectorized kernels can
/// precompute per-dictionary-code verdicts.
pub(crate) fn compare(op: BinOp, l: &Cell<'_>, r: &Cell<'_>) -> Option<bool> {
    cell_binary(op, l, r).truth()
}

fn and3(a: Option<bool>, b: Option<bool>) -> Cell<'static> {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Cell::Bool(false),
        (Some(true), Some(true)) => Cell::Bool(true),
        _ => Cell::Null,
    }
}

fn or3(a: Option<bool>, b: Option<bool>) -> Cell<'static> {
    match (a, b) {
        (Some(true), _) | (_, Some(true)) => Cell::Bool(true),
        (Some(false), Some(false)) => Cell::Bool(false),
        _ => Cell::Null,
    }
}

/// How a [`ColRef`] resolves at compile time.
pub enum Resolved {
    /// A slot index passed to the evaluation column source (a flat tuple
    /// offset or a column index).
    Slot(usize),
    /// A constant (e.g. a pre-computed scalar-subquery value).
    Const(Value),
}

/// One postfix op. Jump targets are absolute op indices.
#[derive(Debug, Clone)]
enum Op {
    /// Push the value of input slot `n`.
    Col(u32),
    /// Push constant `n`.
    Const(u32),
    /// Pop two, push the non-logical binary result.
    Bin(BinOp),
    /// If the top is false, pop it, push `FALSE`, and jump (short-circuit
    /// `AND`); otherwise fall through to the right operand.
    AndShort(u32),
    /// Pop right and left truth values, push their three-valued `AND`.
    AndMerge,
    /// If the top is true, pop it, push `TRUE`, and jump.
    OrShort(u32),
    /// Pop right and left truth values, push their three-valued `OR`.
    OrMerge,
    /// Pop, push arithmetic negation.
    Neg,
    /// Pop, push three-valued `NOT`.
    Not,
    /// Pop, push the scalar function result.
    Func(ScalarFunc),
    /// Pop, push `IS [NOT] NULL`.
    IsNull {
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// Pop, push `[NOT] LIKE` pattern `pat`.
    Like {
        /// Pattern index.
        pat: u32,
        /// True for `NOT LIKE`.
        negated: bool,
    },
    /// Unconditional jump.
    Jump(u32),
    /// Pop; jump unless the truth value is `TRUE`.
    JumpIfNotTrue(u32),
    /// Pop into temp slot `n` (simple-`CASE` operand).
    StoreTmp(u32),
    /// Push a copy of temp slot `n`.
    LoadTmp(u32),
    /// Pop the when-value and the operand copy; push whether the arm hits
    /// (`=` semantics, NULL matches nothing).
    CaseEq,
    /// Push NULL.
    PushNull,
}

/// Reusable per-thread evaluation scratch (stack + temp slots), so the hot
/// loop never allocates per row.
#[derive(Default)]
pub struct Scratch<'a> {
    stack: Vec<Cell<'a>>,
    tmps: Vec<Cell<'a>>,
}

impl Scratch<'_> {
    /// Empty scratch.
    pub fn new() -> Self {
        Scratch::default()
    }
}

/// A compiled expression: flat postfix ops plus constant/pattern pools.
#[derive(Debug, Clone)]
pub struct Program {
    ops: Vec<Op>,
    consts: Vec<Value>,
    pats: Vec<String>,
    tmp_slots: usize,
}

fn pop<'a>(stack: &mut Vec<Cell<'a>>) -> Cell<'a> {
    stack.pop().unwrap_or(Cell::Null)
}

impl Program {
    /// Compile `expr`, resolving each column reference through `resolve`.
    /// Fails on aggregate or base-column nodes (those never reach scalar
    /// evaluation) and on unresolvable references.
    pub fn compile(
        expr: &ScalarExpr,
        resolve: &mut dyn FnMut(ColRef) -> Result<Resolved, String>,
    ) -> Result<Program, String> {
        let mut p = Program {
            ops: Vec::new(),
            consts: Vec::new(),
            pats: Vec::new(),
            tmp_slots: 0,
        };
        p.emit(expr, resolve)?;
        Ok(p)
    }

    fn push_const(&mut self, v: Value) -> u32 {
        self.consts.push(v);
        (self.consts.len() - 1) as u32
    }

    fn emit(
        &mut self,
        e: &ScalarExpr,
        resolve: &mut dyn FnMut(ColRef) -> Result<Resolved, String>,
    ) -> Result<(), String> {
        match e {
            ScalarExpr::BaseCol(_) => return Err("BaseCol outside a base-table box".into()),
            ScalarExpr::Agg(_) | ScalarExpr::GeneralAgg { .. } => {
                return Err("aggregate in scalar position".into())
            }
            ScalarExpr::Col(c) => match resolve(*c)? {
                Resolved::Slot(n) => self.ops.push(Op::Col(n as u32)),
                Resolved::Const(v) => {
                    let n = self.push_const(v);
                    self.ops.push(Op::Const(n));
                }
            },
            ScalarExpr::Lit(v) => {
                let n = self.push_const(v.clone());
                self.ops.push(Op::Const(n));
            }
            ScalarExpr::Bin(BinOp::And, l, r) => {
                self.emit(l, resolve)?;
                let probe = self.ops.len();
                self.ops.push(Op::AndShort(0));
                self.emit(r, resolve)?;
                self.ops.push(Op::AndMerge);
                self.ops[probe] = Op::AndShort(self.ops.len() as u32);
            }
            ScalarExpr::Bin(BinOp::Or, l, r) => {
                self.emit(l, resolve)?;
                let probe = self.ops.len();
                self.ops.push(Op::OrShort(0));
                self.emit(r, resolve)?;
                self.ops.push(Op::OrMerge);
                self.ops[probe] = Op::OrShort(self.ops.len() as u32);
            }
            ScalarExpr::Bin(op, l, r) => {
                self.emit(l, resolve)?;
                self.emit(r, resolve)?;
                self.ops.push(Op::Bin(*op));
            }
            ScalarExpr::Un(UnOp::Neg, x) => {
                self.emit(x, resolve)?;
                self.ops.push(Op::Neg);
            }
            ScalarExpr::Un(UnOp::Not, x) => {
                self.emit(x, resolve)?;
                self.ops.push(Op::Not);
            }
            ScalarExpr::Func(f, args) => {
                let a = args.first().ok_or("scalar function without arguments")?;
                self.emit(a, resolve)?;
                self.ops.push(Op::Func(*f));
            }
            ScalarExpr::Case {
                operand,
                arms,
                else_expr,
            } => {
                let slot = operand.as_ref().map(|_| {
                    let s = self.tmp_slots as u32;
                    self.tmp_slots += 1;
                    s
                });
                if let (Some(o), Some(s)) = (operand, slot) {
                    self.emit(o, resolve)?;
                    self.ops.push(Op::StoreTmp(s));
                }
                let mut ends = Vec::with_capacity(arms.len());
                for (w, t) in arms {
                    if let Some(s) = slot {
                        self.ops.push(Op::LoadTmp(s));
                        self.emit(w, resolve)?;
                        self.ops.push(Op::CaseEq);
                    } else {
                        self.emit(w, resolve)?;
                    }
                    let miss = self.ops.len();
                    self.ops.push(Op::JumpIfNotTrue(0));
                    self.emit(t, resolve)?;
                    ends.push(self.ops.len());
                    self.ops.push(Op::Jump(0));
                    self.ops[miss] = Op::JumpIfNotTrue(self.ops.len() as u32);
                }
                match else_expr {
                    Some(el) => self.emit(el, resolve)?,
                    None => self.ops.push(Op::PushNull),
                }
                let end = self.ops.len() as u32;
                for i in ends {
                    self.ops[i] = Op::Jump(end);
                }
            }
            ScalarExpr::IsNull { expr, negated } => {
                self.emit(expr, resolve)?;
                self.ops.push(Op::IsNull { negated: *negated });
            }
            ScalarExpr::Like {
                expr,
                pattern,
                negated,
            } => {
                self.emit(expr, resolve)?;
                self.pats.push(pattern.clone());
                self.ops.push(Op::Like {
                    pat: (self.pats.len() - 1) as u32,
                    negated: *negated,
                });
            }
        }
        Ok(())
    }

    /// Pass 4 of the plan verifier: a bytecode-verifier-style abstract
    /// interpretation of the postfix ops. Checks, in one forward sweep:
    ///
    /// * every jump target is in bounds (`target <= ops.len()`; the op
    ///   count itself is the normal exit) and strictly forward, so
    ///   evaluation provably terminates;
    /// * stack depth is statically known at every op (merge points agree),
    ///   no op pops an empty stack, and exactly one value remains at exit;
    /// * every slot/constant/pattern/temp index is within its pool —
    ///   column slots within `input_arity`, the evaluation-time input width.
    ///
    /// Runs once per compiled box when the verification gates are enabled;
    /// the evaluation hot loop stays check-free.
    pub fn verify(&self, input_arity: usize) -> Result<(), String> {
        let n = self.ops.len();
        if n == 0 {
            return Err("empty program".to_string());
        }
        // depth[pc] = stack depth on entry to op pc (depth[n] = exit).
        let mut depth: Vec<Option<usize>> = vec![None; n + 1];
        depth[0] = Some(0);
        let merge = |depth: &mut Vec<Option<usize>>, pc: usize, d: usize| -> Result<(), String> {
            match depth[pc] {
                Some(prev) if prev != d => Err(format!(
                    "inconsistent stack depth at op {pc}: {prev} vs {d}"
                )),
                _ => {
                    depth[pc] = Some(d);
                    Ok(())
                }
            }
        };
        for pc in 0..n {
            let Some(d) = depth[pc] else {
                return Err(format!("unreachable op at {pc}"));
            };
            let need = |k: usize| -> Result<(), String> {
                if d < k {
                    Err(format!("op {pc} pops {k} values from a stack of {d}"))
                } else {
                    Ok(())
                }
            };
            let jump_target = |t: u32| -> Result<usize, String> {
                let t = t as usize;
                if t > n {
                    Err(format!("op {pc}: jump target {t} out of bounds ({n} ops)"))
                } else if t <= pc {
                    Err(format!("op {pc}: backward jump to {t}"))
                } else {
                    Ok(t)
                }
            };
            match &self.ops[pc] {
                Op::Col(s) => {
                    if (*s as usize) >= input_arity {
                        return Err(format!(
                            "op {pc}: slot {s} outside input arity {input_arity}"
                        ));
                    }
                    merge(&mut depth, pc + 1, d + 1)?;
                }
                Op::Const(k) => {
                    if (*k as usize) >= self.consts.len() {
                        return Err(format!("op {pc}: constant index {k} out of pool"));
                    }
                    merge(&mut depth, pc + 1, d + 1)?;
                }
                Op::Bin(_) | Op::AndMerge | Op::OrMerge | Op::CaseEq => {
                    need(2)?;
                    merge(&mut depth, pc + 1, d - 1)?;
                }
                Op::AndShort(t) | Op::OrShort(t) => {
                    need(1)?;
                    // Pops the tested value and pushes the verdict: depth is
                    // unchanged on both edges.
                    let t = jump_target(*t)?;
                    merge(&mut depth, t, d)?;
                    merge(&mut depth, pc + 1, d)?;
                }
                Op::Neg | Op::Not | Op::Func(_) | Op::IsNull { .. } => {
                    need(1)?;
                    merge(&mut depth, pc + 1, d)?;
                }
                Op::Like { pat, .. } => {
                    if (*pat as usize) >= self.pats.len() {
                        return Err(format!("op {pc}: pattern index {pat} out of pool"));
                    }
                    need(1)?;
                    merge(&mut depth, pc + 1, d)?;
                }
                Op::Jump(t) => {
                    let t = jump_target(*t)?;
                    merge(&mut depth, t, d)?;
                    // No fallthrough.
                }
                Op::JumpIfNotTrue(t) => {
                    need(1)?;
                    let t = jump_target(*t)?;
                    merge(&mut depth, t, d - 1)?;
                    merge(&mut depth, pc + 1, d - 1)?;
                }
                Op::StoreTmp(s) => {
                    if (*s as usize) >= self.tmp_slots {
                        return Err(format!("op {pc}: temp slot {s} out of range"));
                    }
                    need(1)?;
                    merge(&mut depth, pc + 1, d - 1)?;
                }
                Op::LoadTmp(s) => {
                    if (*s as usize) >= self.tmp_slots {
                        return Err(format!("op {pc}: temp slot {s} out of range"));
                    }
                    merge(&mut depth, pc + 1, d + 1)?;
                }
                Op::PushNull => merge(&mut depth, pc + 1, d + 1)?,
            }
        }
        match depth[n] {
            Some(1) => Ok(()),
            Some(d) => Err(format!("program exits with {d} values on the stack")),
            None => Err("program exit is unreachable".to_string()),
        }
    }

    /// Test-only corruption hook: retarget every jump-family op to `target`
    /// (e.g. `0` forges backward jumps, a huge value forges out-of-bounds
    /// ones). Returns how many ops were rewritten. Exists so the
    /// mutation-kill suite can forge op sequences the compiler can never
    /// emit; never call this outside tests.
    #[doc(hidden)]
    pub fn corrupt_retarget_jumps(&mut self, target: u32) -> usize {
        let mut hits = 0;
        for op in &mut self.ops {
            match op {
                Op::AndShort(t) | Op::OrShort(t) | Op::Jump(t) | Op::JumpIfNotTrue(t) => {
                    *t = target;
                    hits += 1;
                }
                _ => {}
            }
        }
        hits
    }

    /// Test-only corruption hook: drop the last op, unbalancing the stack
    /// of any multi-op program. See [`Program::corrupt_retarget_jumps`].
    #[doc(hidden)]
    pub fn corrupt_pop_op(&mut self) -> bool {
        self.ops.pop().is_some()
    }

    /// Test-only corruption hook: append a stray `PushNull`, leaving two
    /// values on the exit stack. See [`Program::corrupt_retarget_jumps`].
    #[doc(hidden)]
    pub fn corrupt_push_extra(&mut self) {
        self.ops.push(Op::PushNull);
    }

    /// `Some(slot)` when the program is a bare column reference — lets
    /// projections copy the column value without running the interpreter.
    pub fn as_col(&self) -> Option<u32> {
        match self.ops.as_slice() {
            [Op::Col(n)] => Some(*n),
            _ => None,
        }
    }

    /// `Some((slot, op, literal))` when the program is a single comparison
    /// between a column and a constant (either operand order; the operator
    /// is flipped so the column is always on the left). These shapes are
    /// evaluated by typed vectorized kernels on the columnar scan path.
    pub fn as_col_cmp_const(&self) -> Option<(u32, BinOp, &Value)> {
        let cmp = |op: &BinOp| {
            matches!(
                op,
                BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
            )
        };
        match self.ops.as_slice() {
            [Op::Col(n), Op::Const(k), Op::Bin(op)] if cmp(op) => {
                Some((*n, *op, &self.consts[*k as usize]))
            }
            [Op::Const(k), Op::Col(n), Op::Bin(op)] if cmp(op) => {
                let flipped = match op {
                    BinOp::Lt => BinOp::Gt,
                    BinOp::LtEq => BinOp::GtEq,
                    BinOp::Gt => BinOp::Lt,
                    BinOp::GtEq => BinOp::LtEq,
                    other => *other,
                };
                Some((*n, flipped, &self.consts[*k as usize]))
            }
            _ => None,
        }
    }

    /// `Some((slot, negated))` when the program is `col IS [NOT] NULL`.
    pub fn as_col_is_null(&self) -> Option<(u32, bool)> {
        match self.ops.as_slice() {
            [Op::Col(n), Op::IsNull { negated }] => Some((*n, *negated)),
            _ => None,
        }
    }

    /// Evaluate over a column source, reusing `scratch` across rows.
    pub fn eval_with<'a, F>(&'a self, col: &F, scratch: &mut Scratch<'a>) -> Cell<'a>
    where
        F: Fn(u32) -> Cell<'a>,
    {
        let stack = &mut scratch.stack;
        stack.clear();
        let tmps = &mut scratch.tmps;
        tmps.clear();
        tmps.resize(self.tmp_slots, Cell::Null);
        let mut pc = 0usize;
        while pc < self.ops.len() {
            match &self.ops[pc] {
                Op::Col(n) => stack.push(col(*n)),
                Op::Const(n) => stack.push(Cell::of(&self.consts[*n as usize])),
                Op::Bin(op) => {
                    let r = pop(stack);
                    let l = pop(stack);
                    stack.push(cell_binary(*op, &l, &r));
                }
                Op::AndShort(target) => {
                    if stack.last().and_then(Cell::truth) == Some(false) {
                        pop(stack);
                        stack.push(Cell::Bool(false));
                        pc = *target as usize;
                        continue;
                    }
                }
                Op::AndMerge => {
                    let r = pop(stack);
                    let l = pop(stack);
                    stack.push(and3(l.truth(), r.truth()));
                }
                Op::OrShort(target) => {
                    if stack.last().and_then(Cell::truth) == Some(true) {
                        pop(stack);
                        stack.push(Cell::Bool(true));
                        pc = *target as usize;
                        continue;
                    }
                }
                Op::OrMerge => {
                    let r = pop(stack);
                    let l = pop(stack);
                    stack.push(or3(l.truth(), r.truth()));
                }
                Op::Neg => {
                    let v = pop(stack);
                    stack.push(match v {
                        Cell::Int(i) => Cell::Int(i.wrapping_neg()),
                        Cell::Double(d) => Cell::Double(-d),
                        _ => Cell::Null,
                    });
                }
                Op::Not => {
                    let v = pop(stack);
                    stack.push(match v.truth() {
                        Some(b) => Cell::Bool(!b),
                        None => Cell::Null,
                    });
                }
                Op::Func(f) => {
                    let v = pop(stack);
                    stack.push(cell_func(*f, &v));
                }
                Op::IsNull { negated } => {
                    let v = pop(stack);
                    stack.push(Cell::Bool(v.is_null() != *negated));
                }
                Op::Like { pat, negated } => {
                    let v = pop(stack);
                    stack.push(match v.as_str() {
                        Some(s) => Cell::Bool(like_match(s, &self.pats[*pat as usize]) != *negated),
                        None => Cell::Null,
                    });
                }
                Op::Jump(target) => {
                    pc = *target as usize;
                    continue;
                }
                Op::JumpIfNotTrue(target) => {
                    let v = pop(stack);
                    if v.truth() != Some(true) {
                        pc = *target as usize;
                        continue;
                    }
                }
                Op::StoreTmp(n) => {
                    let v = pop(stack);
                    tmps[*n as usize] = v;
                }
                Op::LoadTmp(n) => stack.push(tmps[*n as usize].clone()),
                Op::CaseEq => {
                    let w = pop(stack);
                    let o = pop(stack);
                    stack.push(Cell::Bool(!o.is_null() && !w.is_null() && cell_eq(&o, &w)));
                }
                Op::PushNull => stack.push(Cell::Null),
            }
            pc += 1;
        }
        pop(stack)
    }

    /// Evaluate to an owned [`Value`].
    pub fn eval_value<'a, F>(&'a self, col: &F, scratch: &mut Scratch<'a>) -> Value
    where
        F: Fn(u32) -> Cell<'a>,
    {
        self.eval_with(col, scratch).into_value()
    }

    /// Evaluate to a SQL truth value.
    pub fn eval_truth<'a, F>(&'a self, col: &F, scratch: &mut Scratch<'a>) -> Option<bool>
    where
        F: Fn(u32) -> Cell<'a>,
    {
        self.eval_with(col, scratch).truth()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod tests {
    use super::*;
    use crate::eval::{eval_expr, Env};
    use sumtab_qgm::{GraphId, QuantId, ScalarExpr as E};

    fn lit(v: impl Into<Value>) -> E {
        E::Lit(v.into())
    }

    fn qid(i: u32) -> QuantId {
        QuantId {
            graph: GraphId(0),
            idx: i,
        }
    }

    /// Compile against a flat tuple, evaluate, and cross-check the result
    /// against the tree-walking interpreter.
    fn run(e: &E, tuple: &[Value]) -> Value {
        let mut prog = Program::compile(e, &mut |c: ColRef| Ok(Resolved::Slot(c.ordinal))).unwrap();
        // Every compiled shape must pass the static verifier.
        prog.verify(tuple.len()).expect("compiled program verifies");
        // Exercise `Clone` too.
        prog = prog.clone();
        let mut scratch = Scratch::new();
        let got = prog.eval_value(&|n| Cell::of(&tuple[n as usize]), &mut scratch);
        struct TupleEnv<'a>(&'a [Value]);
        impl Env for TupleEnv<'_> {
            fn col(&self, c: ColRef) -> Value {
                self.0[c.ordinal].clone()
            }
        }
        let want = eval_expr(e, &TupleEnv(tuple));
        assert_eq!(got, want, "compiled result diverges from interpreter");
        assert_eq!(
            got.sql_type(),
            want.sql_type(),
            "compiled variant diverges from interpreter"
        );
        got
    }

    fn col(ord: usize) -> E {
        E::col(qid(0), ord)
    }

    #[test]
    fn arithmetic_and_comparisons_match_interpreter() {
        let tuple = vec![Value::Int(7), Value::Double(2.5), Value::Null];
        run(&E::bin(BinOp::Add, col(0), col(1)), &tuple);
        run(&E::bin(BinOp::Div, col(0), lit(0i64)), &tuple);
        run(&E::bin(BinOp::Mod, col(0), lit(3i64)), &tuple);
        run(&E::bin(BinOp::Lt, col(1), col(0)), &tuple);
        run(&E::bin(BinOp::Eq, col(0), lit(7.0f64)), &tuple);
        run(&E::bin(BinOp::Add, col(0), col(2)), &tuple);
        run(&E::bin(BinOp::Lt, col(0), lit("x")), &tuple);
        assert_eq!(
            run(&E::bin(BinOp::Mul, col(0), lit(2i64)), &tuple),
            Value::Int(14)
        );
    }

    #[test]
    fn three_valued_logic_short_circuits() {
        let tuple = vec![Value::Bool(true), Value::Bool(false), Value::Null];
        for l in 0..3 {
            for r in 0..3 {
                run(&E::bin(BinOp::And, col(l), col(r)), &tuple);
                run(&E::bin(BinOp::Or, col(l), col(r)), &tuple);
            }
        }
        // Short circuit must skip the right side: `FALSE AND (1/0 = 1)`
        // stays FALSE without evaluating the division.
        let e = E::bin(
            BinOp::And,
            col(1),
            E::bin(
                BinOp::Eq,
                E::bin(BinOp::Div, lit(1i64), lit(0i64)),
                lit(1i64),
            ),
        );
        assert_eq!(run(&e, &tuple), Value::Bool(false));
        run(&E::Un(UnOp::Not, Box::new(col(2))), &tuple);
        run(&E::Un(UnOp::Neg, Box::new(col(0))), &tuple);
    }

    #[test]
    fn case_like_isnull_func_match_interpreter() {
        let d = Value::Date(Date::parse("1997-06-09").unwrap());
        let tuple = vec![Value::Int(2), Value::from("television"), Value::Null, d];
        // Searched CASE.
        run(
            &E::Case {
                operand: None,
                arms: vec![
                    (E::bin(BinOp::Eq, col(0), lit(1i64)), lit("one")),
                    (E::bin(BinOp::Eq, col(0), lit(2i64)), lit("two")),
                ],
                else_expr: Some(Box::new(lit("many"))),
            },
            &tuple,
        );
        // Simple CASE with NULL operand matches nothing.
        run(
            &E::Case {
                operand: Some(Box::new(col(2))),
                arms: vec![(E::Lit(Value::Null), lit(1i64))],
                else_expr: None,
            },
            &tuple,
        );
        // Simple CASE over an expression operand.
        run(
            &E::Case {
                operand: Some(Box::new(col(0))),
                arms: vec![(lit(2i64), lit("pair")), (lit(3i64), lit("triple"))],
                else_expr: None,
            },
            &tuple,
        );
        run(
            &E::Like {
                expr: Box::new(col(1)),
                pattern: "tele%".into(),
                negated: false,
            },
            &tuple,
        );
        run(
            &E::Like {
                expr: Box::new(col(2)),
                pattern: "%".into(),
                negated: true,
            },
            &tuple,
        );
        run(
            &E::IsNull {
                expr: Box::new(col(2)),
                negated: false,
            },
            &tuple,
        );
        run(&E::Func(ScalarFunc::Year, vec![col(3)]), &tuple);
        run(&E::Func(ScalarFunc::Upper, vec![col(1)]), &tuple);
        run(
            &E::Func(ScalarFunc::Abs, vec![E::Un(UnOp::Neg, Box::new(col(0)))]),
            &tuple,
        );
    }

    #[test]
    fn scalar_refs_compile_to_constants() {
        let e = E::bin(BinOp::Add, E::col(qid(9), 0), lit(1i64));
        let prog = Program::compile(&e, &mut |c: ColRef| {
            if c.qid.idx == 9 {
                Ok(Resolved::Const(Value::Int(41)))
            } else {
                Err("unexpected quantifier".into())
            }
        })
        .unwrap();
        let mut scratch = Scratch::new();
        let got = prog.eval_value(&|_| Cell::Null, &mut scratch);
        assert_eq!(got, Value::Int(42));
    }

    #[test]
    fn verifier_rejects_corrupted_programs() {
        let e = E::bin(
            BinOp::And,
            E::bin(BinOp::Gt, col(0), lit(1i64)),
            E::bin(BinOp::Lt, col(1), lit(9i64)),
        );
        let compile = || Program::compile(&e, &mut |c| Ok(Resolved::Slot(c.ordinal))).unwrap();
        compile().verify(2).unwrap();
        // Slot outside the declared input arity.
        let err = compile().verify(1).unwrap_err();
        assert!(err.contains("slot"), "{err}");
        // Backward jump.
        let mut p = compile();
        assert!(p.corrupt_retarget_jumps(0) > 0);
        assert!(p.verify(2).unwrap_err().contains("backward"));
        // Out-of-bounds jump.
        let mut p = compile();
        p.corrupt_retarget_jumps(10_000);
        assert!(p.verify(2).unwrap_err().contains("out of bounds"));
        // Unbalanced stack: missing final op / extra value.
        let mut p = compile();
        p.corrupt_pop_op();
        assert!(p.verify(2).is_err());
        let mut p = compile();
        p.corrupt_push_extra();
        assert!(p.verify(2).unwrap_err().contains("2 values"));
    }

    #[test]
    fn aggregates_are_rejected() {
        let e = E::GeneralAgg {
            func: sumtab_qgm::AggFunc::Count,
            arg: None,
            distinct: false,
        };
        assert!(Program::compile(&e, &mut |_| Ok(Resolved::Slot(0))).is_err());
        assert!(Program::compile(&E::BaseCol(0), &mut |_| Ok(Resolved::Slot(0))).is_err());
    }
}
