//! Scalar expression evaluation with SQL NULL semantics.
//!
//! Comparisons and arithmetic over NULL yield NULL; `AND`/`OR` follow
//! three-valued logic; a predicate holds only when it evaluates to `TRUE`.
//! Integer division truncates (DB2 semantics); a zero divisor yields NULL
//! (the engine is total — it never aborts a query mid-flight).

use sumtab_catalog::Value;
use sumtab_qgm::{BinOp, ColRef, ScalarExpr, ScalarFunc, UnOp};

/// Evaluation errors (kept for API completeness; evaluation is total except
/// for structural misuse).
#[derive(Debug, Clone, PartialEq)]
pub struct EvalError {
    /// Human-readable message.
    pub message: String,
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "evaluation error: {}", self.message)
    }
}

impl std::error::Error for EvalError {}

/// The evaluation environment: resolves a [`ColRef`] to a value. The
/// executor implements it over its current partial join tuple plus the
/// pre-computed scalar-subquery values.
pub trait Env {
    /// The current value of the referenced column.
    fn col(&self, c: ColRef) -> Value;
}

impl<F: Fn(ColRef) -> Value> Env for F {
    fn col(&self, c: ColRef) -> Value {
        self(c)
    }
}

/// Evaluate an expression. Aggregate nodes must not appear (the executor
/// evaluates them via accumulators); hitting one is a programming error.
pub fn eval_expr(e: &ScalarExpr, env: &dyn Env) -> Value {
    match e {
        ScalarExpr::BaseCol(_) => {
            unreachable!("BaseCol evaluated outside a base-table box")
        }
        ScalarExpr::Col(c) => env.col(*c),
        ScalarExpr::Lit(v) => v.clone(),
        ScalarExpr::Bin(op, l, r) => {
            let lv = eval_expr(l, env);
            // Short-circuit three-valued AND/OR.
            match op {
                BinOp::And => {
                    let lt = truth(&lv);
                    if lt == Some(false) {
                        return Value::Bool(false);
                    }
                    let rv = eval_expr(r, env);
                    return and3(lt, truth(&rv));
                }
                BinOp::Or => {
                    let lt = truth(&lv);
                    if lt == Some(true) {
                        return Value::Bool(true);
                    }
                    let rv = eval_expr(r, env);
                    return or3(lt, truth(&rv));
                }
                _ => {}
            }
            let rv = eval_expr(r, env);
            eval_binary(*op, &lv, &rv)
        }
        ScalarExpr::Un(UnOp::Neg, x) => match eval_expr(x, env) {
            Value::Int(i) => Value::Int(i.wrapping_neg()),
            Value::Double(d) => Value::Double(-d),
            _ => Value::Null,
        },
        ScalarExpr::Un(UnOp::Not, x) => match truth(&eval_expr(x, env)) {
            Some(b) => Value::Bool(!b),
            None => Value::Null,
        },
        ScalarExpr::Func(f, args) => {
            let a = eval_expr(&args[0], env);
            eval_func(*f, &a)
        }
        ScalarExpr::Case {
            operand,
            arms,
            else_expr,
        } => {
            let opv = operand.as_ref().map(|o| eval_expr(o, env));
            for (w, t) in arms {
                let hit = match &opv {
                    Some(val) => {
                        let wv = eval_expr(w, env);
                        // Simple CASE compares with `=` semantics: NULL
                        // matches nothing.
                        !val.is_null()
                            && !wv.is_null()
                            && truth(&eval_binary(BinOp::Eq, val, &wv)) == Some(true)
                    }
                    None => truth(&eval_expr(w, env)) == Some(true),
                };
                if hit {
                    return eval_expr(t, env);
                }
            }
            match else_expr {
                Some(e) => eval_expr(e, env),
                None => Value::Null,
            }
        }
        ScalarExpr::IsNull { expr, negated } => {
            let v = eval_expr(expr, env);
            Value::Bool(v.is_null() != *negated)
        }
        ScalarExpr::Like {
            expr,
            pattern,
            negated,
        } => match eval_expr(expr, env) {
            Value::Str(s) => Value::Bool(like_match(&s, pattern) != *negated),
            Value::Null => Value::Null,
            _ => Value::Null,
        },
        ScalarExpr::Agg(_) | ScalarExpr::GeneralAgg { .. } => {
            unreachable!("aggregate evaluated as scalar")
        }
    }
}

/// SQL truth value of a scalar: `Some(bool)` or `None` for NULL/unknown.
pub fn truth(v: &Value) -> Option<bool> {
    match v {
        Value::Bool(b) => Some(*b),
        Value::Null => None,
        // Non-boolean values in predicate position are treated as unknown.
        _ => None,
    }
}

fn and3(a: Option<bool>, b: Option<bool>) -> Value {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Value::Bool(false),
        (Some(true), Some(true)) => Value::Bool(true),
        _ => Value::Null,
    }
}

fn or3(a: Option<bool>, b: Option<bool>) -> Value {
    match (a, b) {
        (Some(true), _) | (_, Some(true)) => Value::Bool(true),
        (Some(false), Some(false)) => Value::Bool(false),
        _ => Value::Null,
    }
}

/// Evaluate a non-logical binary operator with NULL propagation.
pub fn eval_binary(op: BinOp, l: &Value, r: &Value) -> Value {
    if l.is_null() || r.is_null() {
        return Value::Null;
    }
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => arith(op, l, r),
        BinOp::Eq => Value::Bool(cmp_eq(l, r)),
        BinOp::NotEq => Value::Bool(!cmp_eq(l, r)),
        BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
            let ord = match cmp_order(l, r) {
                Some(o) => o,
                None => return Value::Null,
            };
            let b = match op {
                BinOp::Lt => ord.is_lt(),
                BinOp::LtEq => ord.is_le(),
                BinOp::Gt => ord.is_gt(),
                BinOp::GtEq => ord.is_ge(),
                _ => unreachable!(),
            };
            Value::Bool(b)
        }
        BinOp::And | BinOp::Or => unreachable!("handled by eval_expr"),
    }
}

/// Value equality for predicate evaluation (both sides non-NULL).
fn cmp_eq(l: &Value, r: &Value) -> bool {
    match (l, r) {
        (Value::Int(a), Value::Double(b)) | (Value::Double(b), Value::Int(a)) => (*a as f64) == *b,
        _ => l == r,
    }
}

/// Ordering for comparison predicates; `None` for incomparable types.
fn cmp_order(l: &Value, r: &Value) -> Option<std::cmp::Ordering> {
    use Value::*;
    match (l, r) {
        (Int(a), Int(b)) => Some(a.cmp(b)),
        (Int(a), Double(b)) => (*a as f64).partial_cmp(b),
        (Double(a), Int(b)) => a.partial_cmp(&(*b as f64)),
        (Double(a), Double(b)) => a.partial_cmp(b),
        (Str(a), Str(b)) => Some(a.cmp(b)),
        (Date(a), Date(b)) => Some(a.cmp(b)),
        (Bool(a), Bool(b)) => Some(a.cmp(b)),
        _ => None,
    }
}

fn arith(op: BinOp, l: &Value, r: &Value) -> Value {
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => match op {
            BinOp::Add => Value::Int(a.wrapping_add(*b)),
            BinOp::Sub => Value::Int(a.wrapping_sub(*b)),
            BinOp::Mul => Value::Int(a.wrapping_mul(*b)),
            BinOp::Div => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Int(a.wrapping_div(*b))
                }
            }
            BinOp::Mod => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Int(a.wrapping_rem(*b))
                }
            }
            _ => unreachable!(),
        },
        _ => {
            let (a, b) = match (l.as_f64(), r.as_f64()) {
                (Some(a), Some(b)) => (a, b),
                _ => return Value::Null,
            };
            match op {
                BinOp::Add => Value::Double(a + b),
                BinOp::Sub => Value::Double(a - b),
                BinOp::Mul => Value::Double(a * b),
                BinOp::Div => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::Double(a / b)
                    }
                }
                BinOp::Mod => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::Double(a % b)
                    }
                }
                _ => unreachable!(),
            }
        }
    }
}

fn eval_func(f: ScalarFunc, a: &Value) -> Value {
    if a.is_null() {
        return Value::Null;
    }
    match (f, a) {
        (ScalarFunc::Year, Value::Date(d)) => Value::Int(i64::from(d.year())),
        (ScalarFunc::Month, Value::Date(d)) => Value::Int(i64::from(d.month())),
        (ScalarFunc::Day, Value::Date(d)) => Value::Int(i64::from(d.day())),
        (ScalarFunc::Abs, Value::Int(i)) => Value::Int(i.wrapping_abs()),
        (ScalarFunc::Abs, Value::Double(d)) => Value::Double(d.abs()),
        (ScalarFunc::Upper, Value::Str(s)) => Value::Str(s.to_uppercase()),
        (ScalarFunc::Lower, Value::Str(s)) => Value::Str(s.to_lowercase()),
        _ => Value::Null,
    }
}

/// SQL `LIKE` with `%` (any sequence) and `_` (any single character).
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some('%') => {
                // Greedy backtracking over the remaining suffixes.
                (0..=s.len()).any(|i| rec(&s[i..], &p[1..]))
            }
            Some('_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(c) => s.first() == Some(c) && rec(&s[1..], &p[1..]),
        }
    }
    let sc: Vec<char> = s.chars().collect();
    let pc: Vec<char> = pattern.chars().collect();
    rec(&sc, &pc)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod tests {
    use super::*;
    use sumtab_qgm::ScalarExpr as E;

    struct NoEnv;
    impl Env for NoEnv {
        fn col(&self, _: ColRef) -> Value {
            Value::Null
        }
    }

    fn lit(v: impl Into<Value>) -> E {
        E::Lit(v.into())
    }

    fn ev(e: &E) -> Value {
        eval_expr(e, &NoEnv)
    }

    #[test]
    fn arithmetic_and_widening() {
        assert_eq!(ev(&E::bin(BinOp::Add, lit(1i64), lit(2i64))), Value::Int(3));
        assert_eq!(
            ev(&E::bin(BinOp::Mul, lit(2i64), lit(1.5f64))),
            Value::Double(3.0)
        );
        assert_eq!(ev(&E::bin(BinOp::Div, lit(7i64), lit(2i64))), Value::Int(3));
        assert_eq!(ev(&E::bin(BinOp::Div, lit(7i64), lit(0i64))), Value::Null);
        assert_eq!(ev(&E::bin(BinOp::Mod, lit(7i64), lit(3i64))), Value::Int(1));
    }

    #[test]
    fn null_propagation() {
        assert_eq!(
            ev(&E::bin(BinOp::Add, lit(1i64), E::Lit(Value::Null))),
            Value::Null
        );
        assert_eq!(
            ev(&E::bin(BinOp::Eq, E::Lit(Value::Null), E::Lit(Value::Null))),
            Value::Null,
            "NULL = NULL is unknown in predicates"
        );
    }

    #[test]
    fn three_valued_logic() {
        let t = lit(true);
        let f = lit(false);
        let n = E::Lit(Value::Null);
        assert_eq!(
            ev(&E::bin(BinOp::And, f.clone(), n.clone())),
            Value::Bool(false)
        );
        assert_eq!(ev(&E::bin(BinOp::And, t.clone(), n.clone())), Value::Null);
        assert_eq!(
            ev(&E::bin(BinOp::Or, t.clone(), n.clone())),
            Value::Bool(true)
        );
        assert_eq!(ev(&E::bin(BinOp::Or, f.clone(), n.clone())), Value::Null);
        assert_eq!(ev(&E::Un(UnOp::Not, Box::new(n))), Value::Null);
        assert_eq!(ev(&E::Un(UnOp::Not, Box::new(t))), Value::Bool(false));
    }

    #[test]
    fn comparisons() {
        assert_eq!(
            ev(&E::bin(BinOp::Lt, lit("apple"), lit("banana"))),
            Value::Bool(true)
        );
        assert_eq!(
            ev(&E::bin(BinOp::GtEq, lit(2i64), lit(2.0f64))),
            Value::Bool(true)
        );
        // Incomparable types → NULL.
        assert_eq!(ev(&E::bin(BinOp::Lt, lit(1i64), lit("x"))), Value::Null);
    }

    #[test]
    fn date_functions() {
        use sumtab_catalog::Date;
        let d = E::Lit(Value::Date(Date::parse("1997-06-09").unwrap()));
        assert_eq!(
            ev(&E::Func(ScalarFunc::Year, vec![d.clone()])),
            Value::Int(1997)
        );
        assert_eq!(
            ev(&E::Func(ScalarFunc::Month, vec![d.clone()])),
            Value::Int(6)
        );
        assert_eq!(ev(&E::Func(ScalarFunc::Day, vec![d])), Value::Int(9));
        assert_eq!(
            ev(&E::Func(ScalarFunc::Year, vec![E::Lit(Value::Null)])),
            Value::Null
        );
    }

    #[test]
    fn case_expressions() {
        // Searched case.
        let e = E::Case {
            operand: None,
            arms: vec![(lit(false), lit(1i64)), (lit(true), lit(2i64))],
            else_expr: Some(Box::new(lit(3i64))),
        };
        assert_eq!(ev(&e), Value::Int(2));
        // Simple case with NULL operand matches nothing.
        let e = E::Case {
            operand: Some(Box::new(E::Lit(Value::Null))),
            arms: vec![(E::Lit(Value::Null), lit(1i64))],
            else_expr: None,
        };
        assert_eq!(ev(&e), Value::Null);
    }

    #[test]
    fn is_null_and_like() {
        let e = E::IsNull {
            expr: Box::new(E::Lit(Value::Null)),
            negated: false,
        };
        assert_eq!(ev(&e), Value::Bool(true));
        assert!(like_match("television", "tele%"));
        assert!(like_match("tv", "_v"));
        assert!(!like_match("tv", "_x"));
        assert!(like_match("abc", "%"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("a%b", "a%b"));
    }

    #[test]
    fn upper_lower_abs() {
        assert_eq!(
            ev(&E::Func(ScalarFunc::Upper, vec![lit("Tv")])),
            Value::from("TV")
        );
        assert_eq!(
            ev(&E::Func(ScalarFunc::Lower, vec![lit("Tv")])),
            Value::from("tv")
        );
        assert_eq!(
            ev(&E::Func(ScalarFunc::Abs, vec![lit(-5i64)])),
            Value::Int(5)
        );
    }
}
