//! Summary-table materialization.
//!
//! Executes an AST's defining query and stores the result as a backing base
//! table whose schema is derived by type inference over the definition
//! graph. The matcher later rewrites queries to scan this backing table.

use crate::db::Database;
use crate::exec::{execute_with, ExecError, ExecOptions};
use sumtab_catalog::{Catalog, Column, SqlType, Table};
use sumtab_qgm::{infer_output_types, QgmGraph};

/// Errors raised while materializing a summary table.
#[derive(Debug, Clone, PartialEq)]
pub enum MaterializeError {
    /// A definition output column's type could not be inferred.
    UnknownColumnType(String),
    /// Execution of the definition failed.
    Exec(ExecError),
}

impl std::fmt::Display for MaterializeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MaterializeError::UnknownColumnType(c) => {
                write!(f, "cannot infer type of output column `{c}`")
            }
            MaterializeError::Exec(e) => write!(f, "materialization failed: {e}"),
        }
    }
}

impl std::error::Error for MaterializeError {}

impl From<ExecError> for MaterializeError {
    fn from(e: ExecError) -> Self {
        MaterializeError::Exec(e)
    }
}

/// Derive the backing-table schema for a summary-table definition: one
/// column per root output, names uniquified, types from inference.
pub fn backing_table_schema(
    name: &str,
    g: &QgmGraph,
    catalog: &Catalog,
) -> Result<Table, MaterializeError> {
    let metas = infer_output_types(g, catalog);
    let root_metas = &metas[&g.root];
    let root = g.boxed(g.root);
    let mut used = std::collections::HashSet::new();
    let mut columns = Vec::with_capacity(root.outputs.len());
    for (i, oc) in root.outputs.iter().enumerate() {
        let mut cname = oc.name.clone();
        let mut n = 2;
        while !used.insert(cname.clone()) {
            cname = format!("{}_{}", oc.name, n);
            n += 1;
        }
        let m = root_metas[i];
        let ty = m.ty.unwrap_or(SqlType::Varchar);
        columns.push(if m.nullable {
            Column::nullable(&cname, ty)
        } else {
            Column::new(&cname, ty)
        });
    }
    Ok(Table::new(name, columns))
}

/// Execute the definition and store the result in `db` under `name`;
/// returns the backing-table schema (not yet registered in the catalog —
/// the caller owns catalog registration).
pub fn materialize(
    name: &str,
    g: &QgmGraph,
    catalog: &Catalog,
    db: &mut Database,
) -> Result<Table, MaterializeError> {
    materialize_with(name, g, catalog, db, &ExecOptions::default())
}

/// [`materialize`] with explicit executor options — AST refreshes over
/// large fact tables benefit from the same morsel fan-out as queries.
pub fn materialize_with(
    name: &str,
    g: &QgmGraph,
    catalog: &Catalog,
    db: &mut Database,
    opts: &ExecOptions,
) -> Result<Table, MaterializeError> {
    let schema = backing_table_schema(name, g, catalog)?;
    let rows = execute_with(g, db, opts)?;
    db.put_table(name, rows);
    Ok(schema)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod tests {
    use super::*;
    use sumtab_catalog::Value;
    use sumtab_parser::parse_query;
    use sumtab_qgm::build_query;

    #[test]
    fn schema_derivation_and_materialization() {
        let cat = Catalog::credit_card_sample();
        let mut db = Database::new();
        let d = |s: &str| Value::Date(sumtab_catalog::Date::parse(s).unwrap());
        db.insert(
            &cat,
            "trans",
            vec![
                vec![
                    1.into(),
                    100.into(),
                    1.into(),
                    10.into(),
                    d("1990-01-03"),
                    2.into(),
                    Value::Double(50.0),
                    Value::Double(0.0),
                ],
                vec![
                    2.into(),
                    100.into(),
                    1.into(),
                    10.into(),
                    d("1991-02-01"),
                    1.into(),
                    Value::Double(30.0),
                    Value::Double(0.1),
                ],
            ],
        )
        .unwrap();
        let q = parse_query(
            "select faid, flid, year(date) as year, count(*) as cnt from trans group by faid, flid, year(date)",
        )
        .unwrap();
        let g = build_query(&q, &cat).unwrap();
        let schema = materialize("ast1", &g, &cat, &mut db).unwrap();
        assert_eq!(schema.columns.len(), 4);
        assert_eq!(schema.columns[2].name, "year");
        assert_eq!(schema.columns[3].ty, SqlType::Int);
        assert!(!schema.columns[3].nullable, "COUNT(*) is non-nullable");
        assert_eq!(db.row_count("ast1"), 2);
    }

    #[test]
    fn duplicate_output_names_are_uniquified() {
        let cat = Catalog::credit_card_sample();
        let q = parse_query("select qty, qty from trans").unwrap();
        let g = build_query(&q, &cat).unwrap();
        let schema = backing_table_schema("x", &g, &cat).unwrap();
        assert_eq!(schema.columns[0].name, "qty");
        assert_eq!(schema.columns[1].name, "qty_2");
    }
}
