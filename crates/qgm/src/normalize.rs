//! Graph normalization: merging consecutive SELECT boxes.
//!
//! Footnote 6 of the paper: "consecutive SELECT boxes can (almost) always be
//! merged into a single SELECT." Merging derived-table SELECTs into their
//! consumers canonicalizes graphs, which increases match hits — the matcher
//! compares box-by-box, so two equivalent queries should produce identical
//! shapes.
//!
//! A child SELECT `C` merges into its parent SELECT `P` when `C` is consumed
//! by exactly one Foreach quantifier of `P`. The merge inlines `C`'s output
//! expressions into `P`'s expressions, adopts `C`'s quantifiers, and appends
//! `C`'s predicates. Unreachable boxes are then garbage-collected by
//! rebuilding the arena.

use crate::graph::{BoxKind, QgmGraph, QuantKind};

/// Merge consecutive SELECT boxes to a fixpoint, then compact the arena.
pub fn merge_selects(g: &mut QgmGraph) {
    while let Some((parent, quant)) = find_mergeable(g) {
        merge_one(g, parent, quant);
    }
    compact(g);
}

/// Find a `(parent box, quantifier)` pair where the quantifier's input is a
/// mergeable SELECT child.
fn find_mergeable(g: &QgmGraph) -> Option<(crate::graph::BoxId, crate::graph::QuantId)> {
    for b in g.topo_order() {
        if !g.boxed(b).is_select() {
            continue;
        }
        for &q in &g.boxed(b).quants {
            if g.quant(q).kind != QuantKind::Foreach {
                continue;
            }
            let child = g.input_of(q);
            if !g.boxed(child).is_select() {
                continue;
            }
            if g.consumer_count(child) != 1 {
                continue;
            }
            return Some((b, q));
        }
    }
    None
}

// `find_mergeable` returns only (parent, q) pairs where `q` is a quantifier
// of `parent` and both boxes are SELECTs, so the lookups below cannot fail.
#[allow(clippy::expect_used)]
fn merge_one(g: &mut QgmGraph, parent: crate::graph::BoxId, q: crate::graph::QuantId) {
    let child = g.input_of(q);
    let child_box = g.boxed(child).clone();
    let child_sel = match &child_box.kind {
        BoxKind::Select(s) => s.clone(),
        _ => unreachable!("merge_one called on non-select child"),
    };

    // Inline child's output expressions into every parent expression that
    // references `q`. Child quantifier ids are unchanged (they are adopted),
    // so child output expressions substitute verbatim.
    let subst = |e: &crate::expr::ScalarExpr| -> crate::expr::ScalarExpr {
        e.map_cols(&mut |c| {
            if c.qid == q {
                child_box.outputs[c.ordinal].expr.clone()
            } else {
                crate::expr::ScalarExpr::Col(c)
            }
        })
    };

    let new_outputs: Vec<_> = g
        .boxed(parent)
        .outputs
        .iter()
        .map(|oc| crate::graph::OutputCol {
            name: oc.name.clone(),
            expr: subst(&oc.expr),
        })
        .collect();
    let new_preds: Vec<_> = match &g.boxed(parent).kind {
        BoxKind::Select(s) => s
            .predicates
            .iter()
            .map(subst)
            .chain(child_sel.predicates.iter().cloned())
            .collect(),
        _ => unreachable!("merge parent must be select"),
    };

    // Adopt the child's quantifiers: replace `q` in the parent's quantifier
    // list with the child's list (preserving join order), and re-own them.
    let pos = g
        .boxed(parent)
        .quants
        .iter()
        .position(|&x| x == q)
        .expect("quantifier must be on parent");
    let adopted = child_box.quants.clone();
    {
        let pb = g.boxed_mut(parent);
        pb.quants.splice(pos..=pos, adopted.iter().copied());
        pb.outputs = new_outputs;
        pb.kind = BoxKind::Select(crate::graph::SelectBox {
            predicates: new_preds,
        });
    }
    for &aq in &adopted {
        let idx = aq.idx as usize;
        g.quants[idx].owner = parent;
    }
    // `q` itself becomes dangling; `child` becomes unreachable. Both are
    // removed by `compact`.
}

/// Rebuild the graph keeping only boxes reachable from the root. Box and
/// quantifier ids are remapped; the graph receives a fresh identity.
pub fn compact(g: &mut QgmGraph) {
    let mut fresh = QgmGraph::new();
    fresh.order = g.order.clone();
    let new_root = fresh.clone_subgraph(g, g.root);
    fresh.root = new_root;
    *g = fresh;
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod tests {
    use crate::build::build_query_with_params;
    use crate::graph::BoxKind;
    use sumtab_catalog::Catalog;
    use sumtab_parser::parse_query;

    fn build(sql: &str, normalize: bool) -> crate::graph::QgmGraph {
        let cat = Catalog::credit_card_sample();
        let q = parse_query(sql).unwrap();
        build_query_with_params(&q, &cat, normalize).unwrap()
    }

    #[test]
    fn derived_table_select_merges() {
        let sql = "select a1 from (select qty as a1 from trans where qty > 2) as s where a1 < 10";
        let unmerged = build(sql, false);
        let merged = build(sql, true);
        // Unmerged: outer select + inner select + base table = 3 boxes.
        assert_eq!(unmerged.topo_order().len(), 3);
        // Merged: single select over the base table.
        assert_eq!(merged.topo_order().len(), 2);
        let root = merged.boxed(merged.root);
        assert!(root.is_select());
        let preds = &root.as_select().unwrap().predicates;
        assert_eq!(preds.len(), 2, "both predicates live in the merged box");
        merged.validate();
    }

    #[test]
    fn groupby_blocks_merge_around_it() {
        // Inner aggregation query used as derived table: the inner top select
        // merges into the outer lower select, leaving
        // select(top) <- gb <- select <- gb <- select <- base.
        let sql = "select tcnt, count(*) as ycnt from \
                   (select year(date) as year, count(*) as tcnt from trans group by year(date)) as v \
                   group by tcnt";
        let g = build(sql, true);
        let order = g.topo_order();
        let kinds: Vec<&'static str> = order
            .iter()
            .map(|&b| match g.boxed(b).kind {
                BoxKind::BaseTable { .. } => "base",
                BoxKind::Select(_) => "select",
                BoxKind::GroupBy(_) => "groupby",
                BoxKind::SubsumerRef { .. } => "subsumer",
            })
            .collect();
        assert_eq!(
            kinds,
            vec!["base", "select", "groupby", "select", "groupby", "select"]
        );
        g.validate();
    }

    #[test]
    fn shared_children_are_not_merged() {
        // The scalar subquery stays a separate block (Scalar quantifier).
        let sql = "select flid, (select count(*) from trans) as totcnt from trans";
        let g = build(sql, true);
        // boxes: base(trans), base(trans for subquery), subquery select+gb+top..., outer select
        let root = g.boxed(g.root);
        assert!(root
            .quants
            .iter()
            .any(|&q| g.quant(q).kind == crate::graph::QuantKind::Scalar));
        g.validate();
    }

    #[test]
    fn compact_drops_unreachable() {
        let mut g = build("select qty from trans", false);
        // Add garbage box.
        g.add_box(BoxKind::BaseTable {
            table: "loc".into(),
        });
        assert_eq!(g.boxes.len(), 3);
        super::compact(&mut g);
        assert_eq!(g.boxes.len(), 2);
        g.validate();
    }
}
