//! # sumtab-qgm
//!
//! The Query Graph Model (QGM) of Section 2 of the paper, together with the
//! SQL-to-QGM translator, a QGM-to-SQL renderer, box-merging normalization,
//! and output type/nullability inference.
//!
//! A query is a rooted DAG of *boxes*. Leaf boxes are base tables; internal
//! boxes are `SELECT` (select-project-join, WHERE/HAVING predicates, scalar
//! expressions) or `GROUP BY` (grouping + aggregation, possibly
//! multidimensional via canonical grouping sets). Boxes consume their
//! children's output columns (*QCLs*) through *quantifiers*; a consumed
//! column is a *QNC*, written here as [`ColRef`]`{ qid, ordinal }`.
//!
//! Graphs are arena-allocated (`Vec<QgmBox>` + `Vec<Quantifier>`); all ids
//! are small copy types. Every [`QuantId`] carries the id of the graph that
//! owns it, so expressions that mix spaces during matching (subsumer QNCs vs
//! compensation rejoin columns) stay unambiguous.

#![forbid(unsafe_code)]

pub mod build;
pub mod dump;
pub mod expr;
pub mod fingerprint;
pub mod graph;
pub mod grouping;
pub mod maintainability;
pub mod normalize;
pub mod render;
pub mod types;
pub mod verify;

pub use build::{
    build_query, build_query_with_params, BuildError, BuildErrorKind, MAX_BUILD_DEPTH,
};
pub use dump::dump_graph;
pub use expr::{AggCall, ColRef, ScalarExpr};
pub use fingerprint::graph_fingerprint;
pub use graph::{
    BoxId, BoxKind, GraphId, GroupByBox, OutputCol, QgmBox, QgmGraph, QuantId, QuantKind,
    Quantifier, SelectBox,
};
pub use grouping::canonical_grouping_sets;
pub use maintainability::{
    analyze as analyze_maintainability, augment_with_count, ColumnOp, MaintStrategy,
    MaintainabilityReport, Obstruction, ObstructionKind, HIDDEN_COUNT_NAME,
};
pub use render::render_graph_sql;
pub use types::{infer_output_types, ColMeta};
pub use verify::{VerifyError, VerifyPass};

// Re-export the operator enums shared with the parser so downstream crates
// can depend on `sumtab-qgm` alone.
pub use sumtab_parser::{AggFunc, BinOp, ScalarFunc, UnOp};
