//! Multi-pass static verification of QGM graphs ("the plan verifier").
//!
//! The rewriting machinery of Sections 4–6 is only sound if every graph it
//! produces still *is* a QGM graph: an acyclic arena of well-wired boxes
//! whose expressions reference existing columns, whose grouping sets are in
//! the canonical form of Section 5, and whose root exposes the same schema
//! the user asked for. This module machine-checks those properties at every
//! transformation boundary (builder, normalizer, rewriter, maintenance,
//! program compilation) instead of trusting that the differential tests
//! happened to cover the offending shape.
//!
//! Three passes live here; the fourth (the compiled-program verifier) lives
//! with the bytecode in `sumtab-engine::program` and reports through the
//! same [`VerifyError`] type:
//!
//! 1. **Structural** ([`verify_structure`] / [`verify_plan_structure`]):
//!    arena-reference validity, DAG acyclicity from a single reachable root,
//!    no orphan boxes, quantifier↔box wiring, canonical `gs(...)` grouping
//!    sets.
//! 2. **Typing** ([`verify_types`]): propagates catalog column
//!    types/nullability bottom-up and requires boolean predicates, numeric
//!    `SUM` inputs, normalized aggregates, and base-table outputs that
//!    actually exist in the catalog.
//! 3. **Rewrite soundness** ([`verify_schema_preservation`] /
//!    [`verify_backing_projection`]): a rewritten graph must expose the
//!    original root schema (names, order, types, nullability direction) and
//!    may only read columns the registered AST definition exposes.
//!
//! Gating: every call site guards with [`runtime_checks_enabled`], which is
//! always true in debug builds and opt-in via `SUMTAB_VERIFY=1` in release
//! builds — the release hot path pays one branch on a cached boolean.

use crate::expr::{ColRef, ScalarExpr};
use crate::graph::{BoxId, BoxKind, QgmGraph, QuantId, QuantKind};
use crate::types::{infer_output_types, ColMeta};
use std::collections::{HashMap, HashSet};
use std::sync::OnceLock;
use sumtab_catalog::{Catalog, SqlType};
use sumtab_parser::AggFunc;

/// Which analysis pass rejected the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VerifyPass {
    /// Pass 1: arena references, acyclicity, wiring, canonical grouping sets.
    Structural,
    /// Pass 2: type/nullability propagation and per-box typing rules.
    Typing,
    /// Pass 3: rewrite soundness (schema preservation, AST column usage).
    Schema,
    /// Pass 4: compiled postfix-program checks (stack balance, jumps, slots).
    Program,
}

impl std::fmt::Display for VerifyPass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            VerifyPass::Structural => "structural",
            VerifyPass::Typing => "typing",
            VerifyPass::Schema => "rewrite-soundness",
            VerifyPass::Program => "program",
        })
    }
}

/// A typed verification failure: the pass that fired, the offending box
/// (when one is identifiable), a root-relative box path, and the reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// The pass that rejected the plan.
    pub pass: VerifyPass,
    /// The offending box, when the failure is attributable to one.
    pub box_id: Option<BoxId>,
    /// Human-readable location, e.g. `root/b1/b0(base:trans)`.
    pub path: String,
    /// What was violated.
    pub reason: String,
}

impl VerifyError {
    /// A structural-pass failure at `b`.
    pub fn structural(g: &QgmGraph, b: BoxId, reason: impl Into<String>) -> VerifyError {
        VerifyError {
            pass: VerifyPass::Structural,
            box_id: Some(b),
            path: box_path(g, b),
            reason: reason.into(),
        }
    }

    /// A typing-pass failure at `b`.
    pub fn typing(g: &QgmGraph, b: BoxId, reason: impl Into<String>) -> VerifyError {
        VerifyError {
            pass: VerifyPass::Typing,
            box_id: Some(b),
            path: box_path(g, b),
            reason: reason.into(),
        }
    }

    /// A rewrite-soundness failure (graph-level, no single box).
    pub fn schema(reason: impl Into<String>) -> VerifyError {
        VerifyError {
            pass: VerifyPass::Schema,
            box_id: None,
            path: "root".to_string(),
            reason: reason.into(),
        }
    }

    /// A program-pass failure attributed to box number `box_id`.
    pub fn program(box_id: u32, reason: impl Into<String>) -> VerifyError {
        VerifyError {
            pass: VerifyPass::Program,
            box_id: Some(BoxId(box_id)),
            path: format!("b{box_id}"),
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "verify: {} pass failed at {}: {}",
            self.pass, self.path, self.reason
        )
    }
}

impl std::error::Error for VerifyError {}

/// Should the verification gates run? Always in debug builds; in release
/// builds only when `SUMTAB_VERIFY=1` (or `true`) is set, so the hot path
/// costs a single branch on a cached boolean.
pub fn runtime_checks_enabled() -> bool {
    if cfg!(debug_assertions) {
        return true;
    }
    env_verify_requested()
}

/// Was verification explicitly requested through the environment
/// (`SUMTAB_VERIFY=1`)? Exposed separately so benchmarks can assert the
/// gates are off in release mode unless opted in.
pub fn env_verify_requested() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| {
        std::env::var("SUMTAB_VERIFY")
            .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
            .unwrap_or(false)
    })
}

/// Best-effort root-relative path to `b`, e.g. `root/b2/b0(base:trans)`.
/// Shared with the maintainability analyzer so its obstructions locate
/// boxes the same way verifier errors do.
pub(crate) fn box_path(g: &QgmGraph, b: BoxId) -> String {
    let label = |id: BoxId| -> String {
        let tag = match g.boxes.get(id.0 as usize).map(|bx| &bx.kind) {
            Some(BoxKind::BaseTable { table }) => format!("base:{table}"),
            Some(BoxKind::Select(_)) => "select".to_string(),
            Some(BoxKind::GroupBy(_)) => "group-by".to_string(),
            Some(BoxKind::SubsumerRef { .. }) => "subsumer-ref".to_string(),
            None => "out-of-range".to_string(),
        };
        format!("b{}({tag})", id.0)
    };
    if b == g.root {
        return format!("root:{}", label(b));
    }
    // BFS from the root recording parents; unreachable boxes get a bare tag.
    let n = g.boxes.len();
    if (g.root.0 as usize) >= n || (b.0 as usize) >= n {
        return label(b);
    }
    let mut parent: Vec<Option<BoxId>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::from([g.root]);
    seen[g.root.0 as usize] = true;
    while let Some(cur) = queue.pop_front() {
        for &q in &g.boxes[cur.0 as usize].quants {
            if q.graph != g.id || (q.idx as usize) >= g.quants.len() {
                continue;
            }
            let child = g.quants[q.idx as usize].input;
            if (child.0 as usize) < n && !seen[child.0 as usize] {
                seen[child.0 as usize] = true;
                parent[child.0 as usize] = Some(cur);
                queue.push_back(child);
            }
        }
    }
    if !seen[b.0 as usize] {
        return format!("{} (unreachable)", label(b));
    }
    let mut segs = vec![label(b)];
    let mut cur = b;
    while let Some(p) = parent[cur.0 as usize] {
        segs.push(if p == g.root {
            "root".to_string()
        } else {
            format!("b{}", p.0)
        });
        cur = p;
    }
    segs.reverse();
    segs.join("/")
}

/// Pass 1 in the permissive mode used by matcher-internal graphs: foreign
/// quantifiers and `SubsumerRef` leaves are tolerated (their targets live in
/// another graph by design), everything else is enforced.
pub fn verify_structure(g: &QgmGraph) -> Result<(), VerifyError> {
    structure(g, false)
}

/// Pass 1 in strict mode for final (executable) plans: additionally rejects
/// `SubsumerRef` boxes and foreign-graph quantifiers, which must never
/// survive translation or rewriting.
pub fn verify_plan_structure(g: &QgmGraph) -> Result<(), VerifyError> {
    structure(g, true)
}

fn structure(g: &QgmGraph, strict: bool) -> Result<(), VerifyError> {
    let n = g.boxes.len();
    let err = |b: BoxId, reason: String| Err(VerifyError::structural(g, b, reason));
    if (g.root.0 as usize) >= n {
        return Err(VerifyError {
            pass: VerifyPass::Structural,
            box_id: None,
            path: "root".to_string(),
            reason: format!(
                "root box id {} out of range (arena has {n} boxes)",
                g.root.0
            ),
        });
    }
    // Quantifier arena: endpoints in range, reverse wiring intact.
    for (i, q) in g.quants.iter().enumerate() {
        if (q.owner.0 as usize) >= n {
            return Err(VerifyError::structural(
                g,
                g.root,
                format!("quantifier {i} owner box {} out of range", q.owner.0),
            ));
        }
        if (q.input.0 as usize) >= n {
            return err(
                q.owner,
                format!(
                    "quantifier {i} input box {} dangling (arena has {n} boxes)",
                    q.input.0
                ),
            );
        }
        let own_id = QuantId {
            graph: g.id,
            idx: i as u32,
        };
        if !g.boxes[q.owner.0 as usize].quants.contains(&own_id) {
            return err(
                q.owner,
                format!("quantifier {i} not listed by its owner box {}", q.owner.0),
            );
        }
    }
    // Forward wiring + per-box invariants.
    for (bi, b) in g.boxes.iter().enumerate() {
        let bid = BoxId(bi as u32);
        for &q in &b.quants {
            if q.graph != g.id {
                if strict {
                    return err(
                        bid,
                        format!(
                            "foreign quantifier q{} (graph {}) in final plan",
                            q.idx, q.graph.0
                        ),
                    );
                }
                continue;
            }
            if (q.idx as usize) >= g.quants.len() {
                return err(bid, format!("dangling quantifier id q{}", q.idx));
            }
            if g.quants[q.idx as usize].owner != bid {
                return err(bid, format!("lists quantifier q{} it does not own", q.idx));
            }
            if g.quants[q.idx as usize].kind == QuantKind::Scalar {
                let input = g.quants[q.idx as usize].input;
                let outs = g.boxes[input.0 as usize].outputs.len();
                if outs != 1
                    && !matches!(g.boxes[input.0 as usize].kind, BoxKind::SubsumerRef { .. })
                {
                    return err(
                        bid,
                        format!(
                            "scalar quantifier q{} input has {outs} output columns, expected 1",
                            q.idx
                        ),
                    );
                }
            }
        }
        let own: HashSet<QuantId> = b.quants.iter().copied().collect();
        let check_ref = |c: ColRef, what: &str| -> Result<(), VerifyError> {
            if !own.contains(&c.qid) {
                return Err(VerifyError::structural(
                    g,
                    bid,
                    format!("{what} references foreign quantifier {c}"),
                ));
            }
            if c.qid.graph == g.id {
                let input = g.quants[c.qid.idx as usize].input;
                let inbox = &g.boxes[input.0 as usize];
                if c.ordinal >= inbox.outputs.len()
                    && !matches!(inbox.kind, BoxKind::SubsumerRef { .. })
                {
                    return Err(VerifyError::structural(
                        g,
                        bid,
                        format!(
                            "{what} ordinal {} out of range (input box {} has {} outputs)",
                            c.ordinal,
                            input.0,
                            inbox.outputs.len()
                        ),
                    ));
                }
            }
            Ok(())
        };
        let check_expr = |e: &ScalarExpr, what: &str| -> Result<(), VerifyError> {
            for c in e.col_refs() {
                check_ref(c, what)?;
            }
            Ok(())
        };
        match &b.kind {
            BoxKind::BaseTable { .. } => {
                if !b.quants.is_empty() {
                    return err(bid, "base table box has quantifiers".to_string());
                }
                for c in &b.outputs {
                    if !matches!(c.expr, ScalarExpr::BaseCol(_)) {
                        return err(bid, "base table output must be BaseCol".to_string());
                    }
                }
            }
            BoxKind::Select(s) => {
                for c in &b.outputs {
                    if c.expr.contains_agg() {
                        return err(
                            bid,
                            format!("select output `{}` contains aggregate", c.name),
                        );
                    }
                    check_expr(&c.expr, "output")?;
                }
                for p in &s.predicates {
                    check_expr(p, "predicate")?;
                }
            }
            BoxKind::GroupBy(gb) => {
                let foreach = b
                    .quants
                    .iter()
                    .filter(|q| {
                        q.graph != g.id || g.quants[q.idx as usize].kind == QuantKind::Foreach
                    })
                    .count();
                if foreach != 1 {
                    return err(
                        bid,
                        format!("group-by box needs exactly 1 child, has {foreach}"),
                    );
                }
                for cr in &gb.items {
                    check_ref(*cr, "grouping item")?;
                }
                // Canonical gs(...) form (Section 5): each set strictly
                // ascending (sorted + deduped), indices in range, and no
                // duplicate sets in the list.
                let mut seen_sets: HashSet<&[usize]> = HashSet::new();
                for s in &gb.sets {
                    if !s.windows(2).all(|w| w[0] < w[1]) {
                        return err(bid, format!("grouping set {s:?} not sorted/deduped"));
                    }
                    if let Some(&i) = s.iter().find(|&&i| i >= gb.items.len()) {
                        return err(
                            bid,
                            format!(
                                "grouping set index {i} out of range ({} items)",
                                gb.items.len()
                            ),
                        );
                    }
                    if !seen_sets.insert(s.as_slice()) {
                        return err(bid, format!("duplicate grouping set {s:?}"));
                    }
                }
                if gb.sets.is_empty() {
                    return err(bid, "group-by box has no grouping sets".to_string());
                }
                for (i, c) in b.outputs.iter().enumerate() {
                    match &c.expr {
                        ScalarExpr::Col(cr) => {
                            if !gb.items.contains(cr) {
                                return err(
                                    bid,
                                    format!(
                                        "output {i} (`{}`) must reference a grouping item",
                                        c.name
                                    ),
                                );
                            }
                        }
                        ScalarExpr::Agg(_) => {}
                        other => {
                            return err(
                                bid,
                                format!(
                                    "output {i} must be grouping item or aggregate, got {other:?}"
                                ),
                            )
                        }
                    }
                    check_expr(&c.expr, "output")?;
                }
            }
            BoxKind::SubsumerRef { .. } => {
                if strict {
                    return err(
                        bid,
                        "matcher-internal SubsumerRef box in final plan".to_string(),
                    );
                }
                if !b.quants.is_empty() {
                    return err(bid, "subsumer-ref box has quantifiers".to_string());
                }
            }
        }
    }
    // Acyclicity + reachability: iterative colored DFS from the root.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color = vec![Color::White; n];
    // (box, next-child-index) stack.
    let mut stack: Vec<(BoxId, usize)> = vec![(g.root, 0)];
    color[g.root.0 as usize] = Color::Gray;
    while let Some(top) = stack.len().checked_sub(1) {
        let (b, next) = stack[top];
        let quants = &g.boxes[b.0 as usize].quants;
        if next >= quants.len() {
            color[b.0 as usize] = Color::Black;
            stack.pop();
            continue;
        }
        stack[top].1 += 1;
        let q = quants[next];
        if q.graph != g.id {
            continue;
        }
        let child = g.quants[q.idx as usize].input;
        match color[child.0 as usize] {
            Color::Gray => {
                return err(
                    b,
                    format!("cycle: box {} reaches itself through box {}", child.0, b.0),
                );
            }
            Color::White => {
                color[child.0 as usize] = Color::Gray;
                stack.push((child, 0));
            }
            Color::Black => {}
        }
    }
    if let Some(orphan) = (0..n).find(|&i| color[i] != Color::Black) {
        return err(
            BoxId(orphan as u32),
            "orphan box not reachable from the root".to_string(),
        );
    }
    if g.boxes[g.root.0 as usize].outputs.is_empty() {
        return err(g.root, "root box has no output columns".to_string());
    }
    Ok(())
}

/// Numeric types accepted as `SUM`/`AVG` inputs.
fn numeric(ty: SqlType) -> bool {
    matches!(ty, SqlType::Int | SqlType::Double)
}

/// Pass 2: propagate catalog types/nullability bottom-up and enforce per-box
/// typing rules. Requires a structurally valid graph (run pass 1 first);
/// unknown catalog tables contribute unknown types rather than failing, so
/// matcher fixtures without registered backing tables still verify.
pub fn verify_types(g: &QgmGraph, catalog: &Catalog) -> Result<(), VerifyError> {
    let metas = infer_output_types(g, catalog);
    for b in g.topo_order() {
        let bx = g.boxed(b);
        match &bx.kind {
            BoxKind::BaseTable { table } => {
                if let Some(t) = catalog.table(table) {
                    for (i, c) in bx.outputs.iter().enumerate() {
                        let ScalarExpr::BaseCol(j) = c.expr else {
                            continue; // structural pass already rejected
                        };
                        let Some(col) = t.columns.get(j) else {
                            return Err(VerifyError::typing(
                                g,
                                b,
                                format!(
                                    "output {i} reads column ordinal {j} but table `{table}` has {} columns",
                                    t.columns.len()
                                ),
                            ));
                        };
                        if !c.name.eq_ignore_ascii_case(&col.name) {
                            return Err(VerifyError::typing(
                                g,
                                b,
                                format!(
                                    "output {i} named `{}` but `{table}` column {j} is `{}`",
                                    c.name, col.name
                                ),
                            ));
                        }
                    }
                }
            }
            BoxKind::Select(s) => {
                for p in &s.predicates {
                    let m = crate::types::infer_expr(g, b, p, &metas);
                    if let Some(ty) = m.ty {
                        if ty != SqlType::Bool {
                            return Err(VerifyError::typing(
                                g,
                                b,
                                format!("predicate has type {ty:?}, expected Bool"),
                            ));
                        }
                    }
                }
            }
            BoxKind::GroupBy(_) => {
                for (i, c) in bx.outputs.iter().enumerate() {
                    let ScalarExpr::Agg(a) = &c.expr else {
                        continue;
                    };
                    if a.func == AggFunc::Avg {
                        return Err(VerifyError::typing(
                            g,
                            b,
                            format!("output {i} (`{}`) is an un-normalized AVG", c.name),
                        ));
                    }
                    if a.func == AggFunc::Sum {
                        let arg_meta = a
                            .arg
                            .map(|cr| crate::types::infer_expr(g, b, &ScalarExpr::Col(cr), &metas));
                        if let Some(ColMeta { ty: Some(ty), .. }) = arg_meta {
                            if !numeric(ty) {
                                return Err(VerifyError::typing(
                                    g,
                                    b,
                                    format!(
                                        "output {i} (`{}`): SUM over non-numeric {ty:?}",
                                        c.name
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
            BoxKind::SubsumerRef { .. } => {}
        }
    }
    Ok(())
}

/// Passes 1+2 over a final (executable) plan.
pub fn verify_plan(g: &QgmGraph, catalog: &Catalog) -> Result<(), VerifyError> {
    verify_plan_structure(g)?;
    verify_types(g, catalog)
}

/// Pass 3a: the rewritten graph must expose the original root schema —
/// same arity, same column names in the same order, equal types where both
/// are known, and no *narrowing* of nullability (a rewrite may widen
/// nullability: `COUNT(*)` derived as `SUM(cnt)` over an empty summary is
/// NULL where the original COUNT is 0 — the classic empty-input edge the
/// paper's derivation table glosses over — but must never claim non-NULL
/// where the original could be NULL... nor the reverse: we reject only the
/// direction that invents non-nullability, `original nullable` →
/// `rewritten non-nullable`).
pub fn verify_schema_preservation(
    original: &QgmGraph,
    rewritten: &QgmGraph,
    catalog: &Catalog,
) -> Result<(), VerifyError> {
    let o = &original.boxed(original.root).outputs;
    let r = &rewritten.boxed(rewritten.root).outputs;
    if o.len() != r.len() {
        return Err(VerifyError::schema(format!(
            "rewrite changed output arity: {} -> {}",
            o.len(),
            r.len()
        )));
    }
    for (i, (oc, rc)) in o.iter().zip(r.iter()).enumerate() {
        if !oc.name.eq_ignore_ascii_case(&rc.name) {
            return Err(VerifyError::schema(format!(
                "rewrite renamed output {i}: `{}` -> `{}`",
                oc.name, rc.name
            )));
        }
    }
    let om = infer_output_types(original, catalog);
    let rm = infer_output_types(rewritten, catalog);
    let empty: Vec<ColMeta> = Vec::new();
    let omr = om.get(&original.root).unwrap_or(&empty);
    let rmr = rm.get(&rewritten.root).unwrap_or(&empty);
    for i in 0..o.len().min(omr.len()).min(rmr.len()) {
        if let (Some(ot), Some(rt)) = (omr[i].ty, rmr[i].ty) {
            if ot != rt {
                return Err(VerifyError::schema(format!(
                    "rewrite changed type of output {i} (`{}`): {ot:?} -> {rt:?}",
                    o[i].name
                )));
            }
        }
        if omr[i].nullable && !rmr[i].nullable {
            return Err(VerifyError::schema(format!(
                "rewrite narrowed nullability of output {i} (`{}`)",
                o[i].name
            )));
        }
    }
    // Presentation decoration must survive untouched (sort keys are output
    // ordinals, and output order is preserved above).
    if original.order.keys != rewritten.order.keys || original.order.limit != rewritten.order.limit
    {
        return Err(VerifyError::schema(
            "rewrite changed the root ORDER BY/LIMIT decoration".to_string(),
        ));
    }
    Ok(())
}

/// Pass 3b: every base-table box over the summary table `table` may only
/// read columns the registered AST definition exposes (`allowed`, in backing
/// column order).
pub fn verify_backing_projection(
    g: &QgmGraph,
    table: &str,
    allowed: &[String],
) -> Result<(), VerifyError> {
    for (bi, b) in g.boxes.iter().enumerate() {
        let BoxKind::BaseTable { table: t } = &b.kind else {
            continue;
        };
        if !t.eq_ignore_ascii_case(table) {
            continue;
        }
        for (i, c) in b.outputs.iter().enumerate() {
            let ScalarExpr::BaseCol(j) = c.expr else {
                continue;
            };
            let Some(want) = allowed.get(j) else {
                return Err(VerifyError {
                    pass: VerifyPass::Schema,
                    box_id: Some(BoxId(bi as u32)),
                    path: box_path(g, BoxId(bi as u32)),
                    reason: format!(
                        "rewrite reads column ordinal {j} of AST `{table}` which exposes only {} columns",
                        allowed.len()
                    ),
                });
            };
            if !c.name.eq_ignore_ascii_case(want) {
                return Err(VerifyError {
                    pass: VerifyPass::Schema,
                    box_id: Some(BoxId(bi as u32)),
                    path: box_path(g, BoxId(bi as u32)),
                    reason: format!(
                        "rewrite output {i} named `{}` but AST `{table}` column {j} is `{want}`",
                        c.name
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Output metadata of the root box — the "schema" passes 3a/3b reason about,
/// exposed for tests and tooling.
pub fn root_schema(g: &QgmGraph, catalog: &Catalog) -> Vec<(String, ColMeta)> {
    let metas = infer_output_types(g, catalog);
    let empty: Vec<ColMeta> = Vec::new();
    let root = metas.get(&g.root).unwrap_or(&empty);
    g.boxed(g.root)
        .outputs
        .iter()
        .enumerate()
        .map(|(i, c)| {
            (
                c.name.clone(),
                root.get(i).copied().unwrap_or(ColMeta {
                    ty: None,
                    nullable: true,
                }),
            )
        })
        .collect()
}

/// Memo of per-graph verification results, keyed by graph identity; lets a
/// session gate repeatedly on the same cached plan without re-walking it.
#[derive(Default)]
pub struct VerifyCache {
    done: HashMap<u32, Result<(), VerifyError>>,
}

impl VerifyCache {
    /// An empty cache.
    pub fn new() -> VerifyCache {
        VerifyCache::default()
    }

    /// Run [`verify_plan`] once per graph identity, returning the memoized
    /// verdict afterwards.
    pub fn verify_plan(&mut self, g: &QgmGraph, catalog: &Catalog) -> Result<(), VerifyError> {
        self.done
            .entry(g.id.0)
            .or_insert_with(|| verify_plan(g, catalog))
            .clone()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod tests {
    use super::*;
    use crate::build::build_query;
    use sumtab_parser::parse_query;

    fn built(sql: &str) -> (QgmGraph, Catalog) {
        let cat = Catalog::credit_card_sample();
        let q = parse_query(sql).unwrap();
        (build_query(&q, &cat).unwrap(), cat)
    }

    #[test]
    fn built_graphs_verify_clean() {
        for sql in [
            "select faid, count(*) as c from trans group by faid",
            "select qty * price as v from trans, acct where faid = aid and status = 'a'",
            "select flid, year(date) as y, count(*) as c from trans \
             group by grouping sets ((flid, year(date)), (flid))",
            "select state, sum(qty) as s from trans, loc where flid = lid group by state",
        ] {
            let (g, cat) = built(sql);
            verify_plan(&g, &cat).unwrap_or_else(|e| panic!("{sql}: {e}"));
        }
    }

    #[test]
    fn orphan_box_is_rejected() {
        let (mut g, cat) = built("select faid from trans");
        g.add_box(BoxKind::BaseTable {
            table: "loc".into(),
        });
        let e = verify_plan(&g, &cat).unwrap_err();
        assert_eq!(e.pass, VerifyPass::Structural);
        assert!(e.reason.contains("orphan"), "{e}");
    }

    #[test]
    fn cycle_is_rejected() {
        // `tid` is ordinal 0, so re-pointing the child edge at the
        // single-output root keeps every ordinal in range — only the cycle
        // check can reject this shape.
        let (mut g, cat) = built("select tid from trans");
        // Re-point the select's child edge back at the root.
        let root = g.root;
        let qidx = g.boxed(root).quants[0].idx as usize;
        g.quants[qidx].input = root;
        let e = verify_plan(&g, &cat).unwrap_err();
        assert_eq!(e.pass, VerifyPass::Structural);
        assert!(e.reason.contains("cycle"), "{e}");
    }

    #[test]
    fn schema_preservation_detects_rename_and_type_change() {
        let (g, cat) = built("select faid, count(*) as c from trans group by faid");
        let mut renamed = g.clone();
        renamed.boxed_mut(renamed.root).outputs[1].name = "cnt".into();
        let e = verify_schema_preservation(&g, &renamed, &cat).unwrap_err();
        assert_eq!(e.pass, VerifyPass::Schema);

        let (other, _) = built("select faid, date as c from trans");
        let e = verify_schema_preservation(&g, &other, &cat).unwrap_err();
        assert_eq!(e.pass, VerifyPass::Schema);
        assert!(e.reason.contains("type"), "{e}");
    }

    #[test]
    fn identity_preserves_schema() {
        let (g, cat) = built("select faid, sum(qty) as s from trans group by faid");
        verify_schema_preservation(&g, &g.clone(), &cat).unwrap();
    }
}
