//! Canonical query fingerprints for plan caching.
//!
//! A fingerprint is a deterministic string identifying a query up to the
//! normalizations the workspace already performs: consecutive-SELECT
//! merging (footnote 6) and structural expression normalization
//! ([`ScalarExpr::normalize`]). Two builds of the same query text always
//! produce the same fingerprint, and trivially equivalent variants (swapped
//! commutative operands, flipped comparisons, an extra derived-table layer)
//! converge to the same one.
//!
//! The fingerprint is the rendered SQL of the canonicalized graph
//! ([`render_graph_sql`]), which refers to boxes via quantifier *names* —
//! never via arena indices or the process-global [`GraphId`](crate::GraphId)
//! counter — so it is stable across graphs, sessions, and platforms. The
//! engine's plan cache keys on this string together with an epoch snapshot
//! of every table involved; see `sumtab-engine::plancache`.

use crate::expr::ScalarExpr;
use crate::graph::{BoxKind, QgmGraph};
use crate::normalize::merge_selects;
use crate::render::render_graph_sql;

/// Canonicalize a clone of `g` and render it as the fingerprint string.
pub fn graph_fingerprint(g: &QgmGraph) -> String {
    let mut canon = g.clone();
    merge_selects(&mut canon);
    for bx in &mut canon.boxes {
        for oc in &mut bx.outputs {
            oc.expr = oc.expr.normalize();
        }
        if let BoxKind::Select(sel) = &mut bx.kind {
            for p in &mut sel.predicates {
                *p = p.normalize();
            }
            sel.predicates.sort_by_key(pred_sort_key);
        }
    }
    render_graph_sql(&canon)
}

/// Stable sort key for predicate order: predicates are a conjunction, so
/// their order is semantically irrelevant; sorting by a structural key makes
/// `where a and b` and `where b and a` fingerprint identically. The clone is
/// never executed, so reordering is safe.
fn pred_sort_key(p: &ScalarExpr) -> String {
    format!("{p:?}")
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod tests {
    use super::*;
    use sumtab_catalog::Catalog;
    use sumtab_parser::parse_query;

    fn fp(sql: &str) -> String {
        let cat = Catalog::credit_card_sample();
        graph_fingerprint(&crate::build_query(&parse_query(sql).unwrap(), &cat).unwrap())
    }

    #[test]
    fn identical_text_identical_fingerprint() {
        let sql = "select faid, sum(qty) as s from trans, loc where flid = lid group by faid";
        assert_eq!(fp(sql), fp(sql));
    }

    #[test]
    fn commuted_predicates_converge() {
        assert_eq!(
            fp("select qty from trans where qty > 1 and faid = 2"),
            fp("select qty from trans where faid = 2 and qty > 1"),
        );
    }

    #[test]
    fn different_queries_differ() {
        assert_ne!(
            fp("select qty from trans where qty > 1"),
            fp("select qty from trans where qty > 2"),
        );
    }
}
