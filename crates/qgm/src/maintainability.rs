//! Self-maintainability static analysis: which maintenance strategy is
//! sound for a given (AST definition graph, base table) pair?
//!
//! The paper defers AST maintenance to related work (problem (c),
//! Mumick/Quass/Mumick SIGMOD'97); Cohen & Nutt characterize which
//! aggregates are self-maintainable under which operations. This module
//! turns that characterization into a static analysis over QGM, in the
//! spirit of the plan verifier: a pure function of the graph and catalog,
//! computed once at registration time, whose result is a typed
//! *certificate* that the maintenance engine executes.
//!
//! ## The strategy lattice
//!
//! Strategies form a total order, strongest first:
//!
//! 1. [`MaintStrategy::CountingDelta`] — inserts *and* deletes (and thus
//!    updates, as delete + insert) maintain the AST from signed deltas. A
//!    per-group row count (an existing `COUNT(*)`-equivalent output, or a
//!    hidden injected one — see [`augment_with_count`]) tells the engine
//!    when a group's last row disappears so the group itself can be
//!    dropped. `COUNT`/`SUM` adjust by signed deltas; `MIN`/`MAX` are
//!    *shrink-sensitive*: a delete that removes the current extremum
//!    cannot be repaired from the delta alone and forces a recompute.
//! 2. [`MaintStrategy::InsertDelta`] — only appends maintain the AST
//!    (the classic insert-only case); deletes and updates refresh.
//! 3. [`MaintStrategy::RefreshOnly`] — every mutation recomputes.
//!
//! Every downgrade from the top of the lattice is explained by a typed
//! [`Obstruction`] naming the offending box, so EXPLAIN can show *why* an
//! AST is refresh-only.
//!
//! ## Soundness rules
//!
//! The insert-delta preconditions (linearity, `SELECT ← simple GROUP BY`
//! shape, no HAVING/grouping sets/DISTINCT/scalar subqueries, plain
//! projection) are inherited from the historical ad-hoc check. On top of
//! those, delete maintenance requires:
//!
//! * **Group liveness**: a per-group count of *all* rows, so a group is
//!   dropped exactly when it empties. `COUNT(*)` qualifies, as does
//!   `COUNT(c)` over a non-nullable `c`; otherwise the engine must inject
//!   a hidden counter column.
//! * **`SUM` delete-safety**: `SUM(c)` is only delete-self-maintainable
//!   when `c` is non-nullable. With a nullable argument, `stored − delta`
//!   cannot reproduce the transition back to `SUM = NULL` when the last
//!   non-NULL contributor leaves a surviving group.
//! * **`MIN`/`MAX` shrink detection**: subtraction does not exist for
//!   extrema. They stay under [`MaintStrategy::CountingDelta`] but are
//!   marked in [`MaintainabilityReport::shrink_sensitive`]; the engine
//!   must recompute when a delete's extremum ties or beats the stored one.

use crate::expr::ScalarExpr;
use crate::graph::{BoxId, BoxKind, OutputCol, QgmGraph, QuantKind};
use crate::types::infer_output_types;
use crate::verify::box_path;
use sumtab_catalog::Catalog;
use sumtab_parser::AggFunc;

/// Name of the hidden per-group row counter injected by
/// [`augment_with_count`]. The column exists only in backing-table *rows*
/// (never in the catalog schema), so it is invisible to queries and to the
/// matcher.
pub const HIDDEN_COUNT_NAME: &str = "__sumtab_rows";

/// The maintenance-strategy lattice, strongest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MaintStrategy {
    /// Signed-delta maintenance for inserts, deletes, and updates, with a
    /// per-group liveness counter.
    CountingDelta,
    /// Delta maintenance for inserts only; deletes/updates refresh.
    InsertDelta,
    /// Every mutation triggers a full recomputation.
    RefreshOnly,
}

impl std::fmt::Display for MaintStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            MaintStrategy::CountingDelta => "counting-delta",
            MaintStrategy::InsertDelta => "insert-delta",
            MaintStrategy::RefreshOnly => "refresh-only",
        })
    }
}

/// How one backing-table column behaves under delta maintenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnOp {
    /// Grouping column: part of the merge key, never modified.
    Key,
    /// Non-DISTINCT `COUNT`: adds on insert, subtracts on delete.
    /// `counter_eligible` marks counts of *every* row (`COUNT(*)` or a
    /// non-nullable argument), usable as the group-liveness counter.
    Count {
        /// Counts every input row, so zero means the group is gone.
        counter_eligible: bool,
    },
    /// Non-DISTINCT `SUM`: adds on insert; subtracts on delete only when
    /// `delete_safe` (non-nullable argument — see module docs).
    Sum {
        /// Signed subtraction is sound for this column.
        delete_safe: bool,
    },
    /// `MIN`: extremum merge on insert; shrink-sensitive under delete.
    Min,
    /// `MAX`: extremum merge on insert; shrink-sensitive under delete.
    Max,
}

/// Why a strategy is weaker than [`MaintStrategy::CountingDelta`] (or why a
/// column is marked recompute-on-shrink).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObstructionKind {
    /// The table is not read by the definition at all.
    TableNotRead,
    /// The table occurs more than once (self-join): a delta query over the
    /// changed rows alone does not compute the AST's change.
    NonLinear,
    /// The definition is not `SELECT ← GROUP BY` at the root (pure SPJ,
    /// nested aggregation, or non-Foreach root quantifier).
    NoAggregationRoot,
    /// A predicate sits above the aggregation (HAVING): merged groups may
    /// enter or leave the filter, which delta merging cannot express.
    PostAggregationPredicate,
    /// Multidimensional grouping sets: one delta row would have to merge
    /// into several cuboids.
    GroupingSets,
    /// Grand-total aggregation (no grouping columns): merging needs an
    /// existence check the engine does not perform.
    GrandTotal,
    /// A scalar subquery appears somewhere; its value changes with the
    /// mutation.
    ScalarSubquery,
    /// A DISTINCT aggregate: per-group distinct sets are not stored.
    DistinctAggregate,
    /// An `AVG` survived to this point; the builder lowers `AVG` to
    /// `SUM`/`COUNT`, so this indicates an unnormalized graph.
    UnloweredAverage,
    /// An output is not a plain grouping column or supported aggregate.
    NonMaintainableExpression,
    /// No grouping column is projected, so delta rows cannot be matched to
    /// stored groups.
    NoGroupingColumn,
    /// `SUM` over a nullable argument: signed subtraction cannot reproduce
    /// the transition back to NULL (delete downgrade to insert-only).
    NullableSumUnderDelete,
    /// `MIN`/`MAX` under delete: kept under counting-delta, but the engine
    /// must recompute when a delete removes the stored extremum.
    ShrinkSensitiveExtremum,
}

impl std::fmt::Display for ObstructionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ObstructionKind::TableNotRead => "table-not-read",
            ObstructionKind::NonLinear => "non-linear",
            ObstructionKind::NoAggregationRoot => "no-aggregation-root",
            ObstructionKind::PostAggregationPredicate => "post-aggregation-predicate",
            ObstructionKind::GroupingSets => "grouping-sets",
            ObstructionKind::GrandTotal => "grand-total",
            ObstructionKind::ScalarSubquery => "scalar-subquery",
            ObstructionKind::DistinctAggregate => "distinct-aggregate",
            ObstructionKind::UnloweredAverage => "unlowered-average",
            ObstructionKind::NonMaintainableExpression => "non-maintainable-expression",
            ObstructionKind::NoGroupingColumn => "no-grouping-column",
            ObstructionKind::NullableSumUnderDelete => "nullable-sum-under-delete",
            ObstructionKind::ShrinkSensitiveExtremum => "shrink-sensitive-extremum",
        })
    }
}

/// One reason the analysis settled below the top of the lattice, attributed
/// to a box.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Obstruction {
    /// The offending box.
    pub box_id: BoxId,
    /// Root-relative location, e.g. `root/b1(group-by)`.
    pub path: String,
    /// The typed reason.
    pub reason: ObstructionKind,
    /// Free-text detail (column names, occurrence counts).
    pub detail: String,
}

impl std::fmt::Display for Obstruction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at {}: {}", self.reason, self.path, self.detail)
    }
}

/// The analysis certificate for one (definition graph, base table) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct MaintainabilityReport {
    /// The table the analysis is relative to (lower-cased).
    pub table: String,
    /// The strongest sound strategy.
    pub strategy: MaintStrategy,
    /// One op per root output column; empty for
    /// [`MaintStrategy::RefreshOnly`].
    pub per_column_ops: Vec<ColumnOp>,
    /// Ordinal of an existing counter-eligible `COUNT` output, when one is
    /// projected.
    pub counter: Option<usize>,
    /// Counting-delta needs [`augment_with_count`] to inject a hidden
    /// counter (no projected `COUNT(*)`-equivalent).
    pub needs_hidden_counter: bool,
    /// Ordinals of `MIN`/`MAX` columns (recompute-on-shrink under delete).
    pub shrink_sensitive: Vec<usize>,
    /// Every downgrade, attributed and typed.
    pub obstructions: Vec<Obstruction>,
}

impl MaintainabilityReport {
    fn refresh_only(table: &str, obstructions: Vec<Obstruction>) -> MaintainabilityReport {
        MaintainabilityReport {
            table: table.to_ascii_lowercase(),
            strategy: MaintStrategy::RefreshOnly,
            per_column_ops: Vec::new(),
            counter: None,
            needs_hidden_counter: false,
            shrink_sensitive: Vec::new(),
            obstructions,
        }
    }

    /// True when deletes/updates on `self.table` can be maintained from
    /// signed deltas.
    pub fn supports_delete(&self) -> bool {
        self.strategy == MaintStrategy::CountingDelta
    }

    /// True when appends to `self.table` can be maintained from deltas.
    pub fn supports_insert(&self) -> bool {
        self.strategy != MaintStrategy::RefreshOnly
    }
}

fn obstruction(
    g: &QgmGraph,
    b: BoxId,
    reason: ObstructionKind,
    detail: impl Into<String>,
) -> Obstruction {
    Obstruction {
        box_id: b,
        path: box_path(g, b),
        reason,
        detail: detail.into(),
    }
}

/// Analyze the definition graph of an AST with respect to mutations on
/// `table`. Total: always returns a report, with the downgrade reasons in
/// [`MaintainabilityReport::obstructions`] when the strategy is not
/// [`MaintStrategy::CountingDelta`].
pub fn analyze(graph: &QgmGraph, table: &str, catalog: &Catalog) -> MaintainabilityReport {
    let table_lc = table.to_ascii_lowercase();

    // Linearity: the mutated table must occur exactly once, otherwise the
    // delta query over the changed rows alone does not compute the change
    // of the join (a self-join mixes old and delta rows).
    let occurrences: Vec<BoxId> = graph
        .topo_order()
        .into_iter()
        .filter(|&b| {
            matches!(&graph.boxed(b).kind,
                     BoxKind::BaseTable { table: t } if t.eq_ignore_ascii_case(&table_lc))
        })
        .collect();
    match occurrences.len() {
        0 => {
            return MaintainabilityReport::refresh_only(
                &table_lc,
                vec![obstruction(
                    graph,
                    graph.root,
                    ObstructionKind::TableNotRead,
                    format!("definition never reads `{table_lc}`"),
                )],
            )
        }
        1 => {}
        n => {
            return MaintainabilityReport::refresh_only(
                &table_lc,
                vec![obstruction(
                    graph,
                    occurrences[1],
                    ObstructionKind::NonLinear,
                    format!("`{table_lc}` occurs {n} times (self-join)"),
                )],
            )
        }
    }

    // Scalar subqueries anywhere poison every delta strategy: their value
    // can change with the mutation while the delta query sees only delta
    // rows.
    if let Some(q) = graph.quants.iter().find(|q| q.kind == QuantKind::Scalar) {
        return MaintainabilityReport::refresh_only(
            &table_lc,
            vec![obstruction(
                graph,
                q.owner,
                ObstructionKind::ScalarSubquery,
                "scalar subquery value changes with the base data",
            )],
        );
    }

    // Shape: root SELECT (pure projection, no predicates) over one simple
    // GROUP BY.
    let root = graph.boxed(graph.root);
    let Some(sel) = root.as_select() else {
        return MaintainabilityReport::refresh_only(
            &table_lc,
            vec![obstruction(
                graph,
                graph.root,
                ObstructionKind::NoAggregationRoot,
                "root box is not a SELECT over a GROUP BY",
            )],
        );
    };
    if !sel.predicates.is_empty() {
        return MaintainabilityReport::refresh_only(
            &table_lc,
            vec![obstruction(
                graph,
                graph.root,
                ObstructionKind::PostAggregationPredicate,
                format!(
                    "{} predicate(s) above the aggregation (HAVING)",
                    sel.predicates.len()
                ),
            )],
        );
    }
    if root.quants.len() != 1 || graph.quant(root.quants[0]).kind != QuantKind::Foreach {
        return MaintainabilityReport::refresh_only(
            &table_lc,
            vec![obstruction(
                graph,
                graph.root,
                ObstructionKind::NoAggregationRoot,
                "root must range over exactly one FOREACH quantifier",
            )],
        );
    }
    let root_q = root.quants[0];
    let gb_id = graph.input_of(root_q);
    let gb = graph.boxed(gb_id);
    let Some(gbk) = gb.as_group_by() else {
        return MaintainabilityReport::refresh_only(
            &table_lc,
            vec![obstruction(
                graph,
                gb_id,
                ObstructionKind::NoAggregationRoot,
                "root SELECT does not consume a GROUP BY box",
            )],
        );
    };
    if !gbk.is_simple() {
        return MaintainabilityReport::refresh_only(
            &table_lc,
            vec![obstruction(
                graph,
                gb_id,
                ObstructionKind::GroupingSets,
                format!(
                    "{} grouping sets: one delta row would merge into several cuboids",
                    gbk.sets.len()
                ),
            )],
        );
    }
    if gbk.items.is_empty() {
        return MaintainabilityReport::refresh_only(
            &table_lc,
            vec![obstruction(
                graph,
                gb_id,
                ObstructionKind::GrandTotal,
                "grand-total aggregation has no merge key",
            )],
        );
    }

    // Per-column ops: every root output must be a plain reference to a
    // GROUP BY output that is either a grouping column or a supported,
    // non-DISTINCT aggregate. Nullability of aggregate arguments (for
    // COUNT counter-eligibility and SUM delete-safety) comes from type
    // inference over the GROUP BY's input box.
    let metas = infer_output_types(graph, catalog);
    let arg_nullable = |arg: Option<crate::expr::ColRef>| -> bool {
        match arg {
            None => false, // COUNT(*): no argument to be NULL
            Some(c) => {
                let producer = graph.input_of(c.qid);
                metas
                    .get(&producer)
                    .and_then(|m| m.get(c.ordinal))
                    .map(|m| m.nullable)
                    // Unknown metadata: assume nullable (conservative).
                    .unwrap_or(true)
            }
        }
    };

    let mut ops: Vec<ColumnOp> = Vec::with_capacity(root.outputs.len());
    for oc in &root.outputs {
        let ScalarExpr::Col(c) = &oc.expr else {
            return MaintainabilityReport::refresh_only(
                &table_lc,
                vec![obstruction(
                    graph,
                    graph.root,
                    ObstructionKind::NonMaintainableExpression,
                    format!("output `{}` is not a plain column reference", oc.name),
                )],
            );
        };
        if c.qid != root_q || c.ordinal >= gb.outputs.len() {
            return MaintainabilityReport::refresh_only(
                &table_lc,
                vec![obstruction(
                    graph,
                    graph.root,
                    ObstructionKind::NonMaintainableExpression,
                    format!("output `{}` does not reference the GROUP BY box", oc.name),
                )],
            );
        }
        let op = match &gb.outputs[c.ordinal].expr {
            ScalarExpr::Col(_) => ColumnOp::Key,
            ScalarExpr::Agg(a) => {
                if a.distinct {
                    return MaintainabilityReport::refresh_only(
                        &table_lc,
                        vec![obstruction(
                            graph,
                            gb_id,
                            ObstructionKind::DistinctAggregate,
                            format!("DISTINCT aggregate `{}`", oc.name),
                        )],
                    );
                }
                match a.func {
                    AggFunc::Count => ColumnOp::Count {
                        counter_eligible: !arg_nullable(a.arg),
                    },
                    AggFunc::Sum => ColumnOp::Sum {
                        delete_safe: !arg_nullable(a.arg),
                    },
                    AggFunc::Min => ColumnOp::Min,
                    AggFunc::Max => ColumnOp::Max,
                    AggFunc::Avg => {
                        return MaintainabilityReport::refresh_only(
                            &table_lc,
                            vec![obstruction(
                                graph,
                                gb_id,
                                ObstructionKind::UnloweredAverage,
                                format!("AVG `{}` should have been lowered to SUM/COUNT", oc.name),
                            )],
                        );
                    }
                }
            }
            _ => {
                return MaintainabilityReport::refresh_only(
                    &table_lc,
                    vec![obstruction(
                        graph,
                        gb_id,
                        ObstructionKind::NonMaintainableExpression,
                        format!(
                            "GROUP BY output `{}` is neither a grouping column \
                             nor a simple aggregate",
                            gb.outputs[c.ordinal].name
                        ),
                    )],
                );
            }
        };
        ops.push(op);
    }
    if !ops.contains(&ColumnOp::Key) {
        return MaintainabilityReport::refresh_only(
            &table_lc,
            vec![obstruction(
                graph,
                graph.root,
                ObstructionKind::NoGroupingColumn,
                "no grouping column is projected; delta rows cannot find their group",
            )],
        );
    }

    // InsertDelta is certified. Try to upgrade to CountingDelta.
    let mut obstructions = Vec::new();
    let mut strategy = MaintStrategy::CountingDelta;
    let mut shrink_sensitive = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match op {
            ColumnOp::Sum { delete_safe: false } => {
                strategy = MaintStrategy::InsertDelta;
                obstructions.push(obstruction(
                    graph,
                    gb_id,
                    ObstructionKind::NullableSumUnderDelete,
                    format!(
                        "SUM `{}` has a nullable argument: stored − delta cannot \
                         reproduce SUM = NULL",
                        root.outputs[i].name
                    ),
                ));
            }
            ColumnOp::Min | ColumnOp::Max => {
                shrink_sensitive.push(i);
                obstructions.push(obstruction(
                    graph,
                    gb_id,
                    ObstructionKind::ShrinkSensitiveExtremum,
                    format!(
                        "`{}` is recompute-on-shrink: a delete removing the stored \
                         extremum forces a refresh",
                        root.outputs[i].name
                    ),
                ));
            }
            _ => {}
        }
    }
    let counter = ops.iter().position(|op| {
        matches!(
            op,
            ColumnOp::Count {
                counter_eligible: true
            }
        )
    });
    let needs_hidden_counter = strategy == MaintStrategy::CountingDelta && counter.is_none();

    MaintainabilityReport {
        table: table_lc,
        strategy,
        per_column_ops: ops,
        counter,
        needs_hidden_counter,
        shrink_sensitive,
        obstructions,
    }
}

/// Clone `graph` and append a hidden `COUNT(*)` output (named
/// [`HIDDEN_COUNT_NAME`]) to its GROUP BY box and root SELECT. The hidden
/// column lands at ordinal `graph.root outputs.len()` — the engine stores
/// it as an extra trailing value in backing-table rows without registering
/// it in the catalog schema, so it stays invisible to queries and matching.
///
/// Returns `None` when the graph does not have the `SELECT ← GROUP BY`
/// shape (callers should only invoke this on graphs the analyzer certified
/// with [`MaintainabilityReport::needs_hidden_counter`]).
pub fn augment_with_count(graph: &QgmGraph) -> Option<QgmGraph> {
    let mut g = graph.clone();
    let root = g.root;
    let root_q = *g.boxed(root).quants.first()?;
    if !g.boxed(root).is_select() || g.boxed(root).quants.len() != 1 {
        return None;
    }
    let gb_id = g.input_of(root_q);
    if !g.boxed(gb_id).is_group_by() {
        return None;
    }
    let gb_ord = g.boxed(gb_id).outputs.len();
    // The GROUP BY layout invariant (grouping columns first, aggregates
    // after) makes appending at the end safe.
    g.boxed_mut(gb_id).outputs.push(OutputCol {
        name: HIDDEN_COUNT_NAME.into(),
        expr: ScalarExpr::Agg(crate::expr::AggCall {
            func: AggFunc::Count,
            arg: None,
            distinct: false,
        }),
    });
    g.boxed_mut(root).outputs.push(OutputCol {
        name: HIDDEN_COUNT_NAME.into(),
        expr: ScalarExpr::col(root_q, gb_ord),
    });
    Some(g)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod tests {
    use super::*;
    use crate::build_query;
    use sumtab_parser::parse_query;

    fn graph_of(sql: &str, cat: &Catalog) -> QgmGraph {
        build_query(&parse_query(sql).unwrap(), cat).unwrap()
    }

    #[test]
    fn counting_delta_for_count_star_and_non_nullable_sum() {
        let cat = Catalog::credit_card_sample();
        let g = graph_of(
            "select faid, count(*) as c, sum(qty) as s from trans group by faid",
            &cat,
        );
        let r = analyze(&g, "trans", &cat);
        assert_eq!(r.strategy, MaintStrategy::CountingDelta);
        assert_eq!(r.counter, Some(1));
        assert!(!r.needs_hidden_counter);
        assert!(r.obstructions.is_empty(), "{:?}", r.obstructions);
        assert_eq!(
            r.per_column_ops,
            vec![
                ColumnOp::Key,
                ColumnOp::Count {
                    counter_eligible: true
                },
                ColumnOp::Sum { delete_safe: true },
            ]
        );
    }

    #[test]
    fn hidden_counter_requested_without_count_star() {
        let cat = Catalog::credit_card_sample();
        let g = graph_of("select faid, sum(qty) as s from trans group by faid", &cat);
        let r = analyze(&g, "trans", &cat);
        assert_eq!(r.strategy, MaintStrategy::CountingDelta);
        assert_eq!(r.counter, None);
        assert!(r.needs_hidden_counter);
        let aug = augment_with_count(&g).unwrap();
        aug.validate();
        assert_eq!(aug.boxed(aug.root).outputs.len(), 3);
        assert_eq!(aug.boxed(aug.root).outputs[2].name, HIDDEN_COUNT_NAME);
    }

    #[test]
    fn min_max_are_shrink_sensitive_not_blocking() {
        let cat = Catalog::credit_card_sample();
        let g = graph_of(
            "select faid, count(*) as c, min(price) as mn, max(price) as mx \
             from trans group by faid",
            &cat,
        );
        let r = analyze(&g, "trans", &cat);
        assert_eq!(r.strategy, MaintStrategy::CountingDelta);
        assert_eq!(r.shrink_sensitive, vec![2, 3]);
        assert!(r
            .obstructions
            .iter()
            .all(|o| o.reason == ObstructionKind::ShrinkSensitiveExtremum));
    }

    #[test]
    fn having_blocks_with_typed_obstruction_at_root() {
        let cat = Catalog::credit_card_sample();
        let g = graph_of(
            "select faid, count(*) as c from trans group by faid having count(*) > 1",
            &cat,
        );
        let r = analyze(&g, "trans", &cat);
        assert_eq!(r.strategy, MaintStrategy::RefreshOnly);
        let o = &r.obstructions[0];
        assert_eq!(o.reason, ObstructionKind::PostAggregationPredicate);
        assert_eq!(o.box_id, g.root);
        assert!(o.path.contains("root"), "{}", o.path);
    }

    #[test]
    fn self_join_blocks_as_non_linear() {
        let cat = Catalog::credit_card_sample();
        let g = graph_of(
            "select t1.faid as f, count(*) as c from trans as t1, trans as t2 \
             where t1.faid = t2.faid group by t1.faid",
            &cat,
        );
        let r = analyze(&g, "trans", &cat);
        assert_eq!(r.strategy, MaintStrategy::RefreshOnly);
        assert_eq!(r.obstructions[0].reason, ObstructionKind::NonLinear);
    }
}
