//! Canonicalization of supergroup functions (Section 5).
//!
//! "Every supergroup expression can be converted to an equivalent canonical
//! expression that consists of a single `gs` function: `gs(GS1, ..., GSk)`."
//! This module performs that conversion over *item indices*: the builder
//! first maps each distinct grouping expression to an index, then hands the
//! per-element alternatives here for cross-producting and deduplication.

/// Expand `ROLLUP(e0, ..., e_{n-1})` over item indices: the prefixes
/// `{e0..e_{n-1}}, {e0..e_{n-2}}, ..., {e0}, {}`.
pub fn expand_rollup(items: &[usize]) -> Vec<Vec<usize>> {
    let mut out = Vec::with_capacity(items.len() + 1);
    for len in (0..=items.len()).rev() {
        out.push(items[..len].to_vec());
    }
    out
}

/// Expand `CUBE(e0, ..., e_{n-1})`: all `2^n` subsets.
pub fn expand_cube(items: &[usize]) -> Vec<Vec<usize>> {
    let n = items.len();
    assert!(n <= 16, "CUBE over more than 16 columns is unsupported");
    let mut out = Vec::with_capacity(1 << n);
    for mask in (0..(1u32 << n)).rev() {
        let mut set = Vec::new();
        for (i, &item) in items.iter().enumerate() {
            if mask & (1 << i) != 0 {
                set.push(item);
            }
        }
        out.push(set);
    }
    out
}

/// Combine per-element alternative sets by cross product (SQL:1999
/// semantics: `GROUP BY a, ROLLUP(b)` means `gs((a,b),(a))`), then sort and
/// deduplicate each resulting set and the set list.
///
/// Each input element is a list of alternative index sets; the output is the
/// canonical list of grouping sets, each sorted ascending, with duplicates
/// removed (first occurrence kept).
pub fn canonical_grouping_sets(elements: &[Vec<Vec<usize>>]) -> Vec<Vec<usize>> {
    let mut combined: Vec<Vec<usize>> = vec![Vec::new()];
    for alts in elements {
        let mut next = Vec::with_capacity(combined.len() * alts.len());
        for base in &combined {
            for alt in alts {
                let mut set = base.clone();
                set.extend_from_slice(alt);
                next.push(set);
            }
        }
        combined = next;
    }
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for mut set in combined {
        set.sort_unstable();
        set.dedup();
        if seen.insert(set.clone()) {
            out.push(set);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rollup_prefixes() {
        assert_eq!(
            expand_rollup(&[0, 1, 2]),
            vec![vec![0, 1, 2], vec![0, 1], vec![0], vec![]]
        );
        assert_eq!(expand_rollup(&[]), vec![Vec::<usize>::new()]);
    }

    #[test]
    fn cube_subsets() {
        let subs = expand_cube(&[0, 1]);
        assert_eq!(subs.len(), 4);
        assert!(subs.contains(&vec![0, 1]));
        assert!(subs.contains(&vec![0]));
        assert!(subs.contains(&vec![1]));
        assert!(subs.contains(&vec![]));
    }

    #[test]
    fn plain_group_by_is_single_set() {
        // GROUP BY a, b  =>  elements [[{0}], [{1}]]  =>  gs((a,b))
        let sets = canonical_grouping_sets(&[vec![vec![0]], vec![vec![1]]]);
        assert_eq!(sets, vec![vec![0, 1]]);
    }

    #[test]
    fn mixed_element_cross_product() {
        // GROUP BY a, ROLLUP(b)  =>  gs((a,b),(a))
        let sets = canonical_grouping_sets(&[vec![vec![0]], expand_rollup(&[1])]);
        assert_eq!(sets, vec![vec![0, 1], vec![0]]);
    }

    #[test]
    fn duplicate_sets_are_removed() {
        // ROLLUP(a) x ROLLUP(a) would produce {a},{a},{a},{} variants.
        let sets = canonical_grouping_sets(&[expand_rollup(&[0]), expand_rollup(&[0])]);
        assert_eq!(sets, vec![vec![0], vec![]]);
    }

    #[test]
    fn paper_figure_14_like_ast() {
        // gs((flid,faid,year),(flid,year),(flid,year,month),(year)) is taken
        // verbatim; canonicalization only sorts within sets.
        let raw = vec![vec![vec![0, 1, 2], vec![0, 2], vec![0, 2, 3], vec![2]]];
        let sets = canonical_grouping_sets(&raw);
        assert_eq!(
            sets,
            vec![vec![0, 1, 2], vec![0, 2], vec![0, 2, 3], vec![2]]
        );
    }

    #[test]
    fn within_set_duplicates_collapse() {
        let sets = canonical_grouping_sets(&[vec![vec![0, 0, 1]]]);
        assert_eq!(sets, vec![vec![0, 1]]);
    }
}
