//! SQL syntax → QGM translation.
//!
//! Produces the canonical box shapes of Section 2:
//!
//! * a non-aggregated block becomes a single SELECT box over its FROM items;
//! * an aggregated block becomes `SELECT(top) ← GROUPBY ← SELECT(lower)`:
//!   the lower SELECT joins, filters, and computes grouping expressions and
//!   aggregate arguments; the GROUP BY box groups by *simple* input columns
//!   and computes aggregates of simple input columns; the top SELECT applies
//!   HAVING and computes the final projection (compare Figure 3);
//! * `SELECT DISTINCT` is normalized to a trailing GROUP BY box with no
//!   aggregates (the footnote-2 bridge);
//! * `AVG(x)` is normalized to `SUM(x) / COUNT(x)`;
//! * `BETWEEN` and `IN (list)` are normalized to comparison conjunctions /
//!   disjunctions;
//! * supergroup functions are canonicalized to a single grouping-sets list
//!   (Section 5);
//! * scalar subqueries become `Scalar` quantifiers on the consuming box.
//!
//! Correlated subqueries are rejected (their QGM graphs contain cycles,
//! which the paper excludes).

use crate::expr::{AggCall, ColRef, ScalarExpr};
use crate::graph::GroupByBox;
use crate::graph::{BoxId, BoxKind, OutputCol, QgmGraph, QuantId, QuantKind, SelectBox};
use crate::grouping::{canonical_grouping_sets, expand_cube, expand_rollup};
use sumtab_catalog::{Catalog, Value};
use sumtab_parser as sql;
use sumtab_parser::{AggFunc, BinOp};

/// What went wrong during QGM construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildErrorKind {
    /// The query is semantically invalid (unknown column, misplaced
    /// aggregate, ...).
    Semantic,
    /// Query/expression nesting exceeded [`MAX_BUILD_DEPTH`].
    DepthExceeded,
    /// The builder produced an inconsistent graph — a bug in this crate,
    /// reported as an error instead of a panic so callers can degrade
    /// gracefully.
    Internal,
}

/// Errors raised during QGM construction (semantic analysis).
#[derive(Debug, Clone, PartialEq)]
pub struct BuildError {
    /// Classification of the failure.
    pub kind: BuildErrorKind,
    /// Human-readable message.
    pub message: String,
}

impl BuildError {
    fn new(msg: impl Into<String>) -> BuildError {
        BuildError {
            kind: BuildErrorKind::Semantic,
            message: msg.into(),
        }
    }

    fn internal(msg: impl Into<String>) -> BuildError {
        BuildError {
            kind: BuildErrorKind::Internal,
            message: msg.into(),
        }
    }

    fn depth_exceeded() -> BuildError {
        BuildError {
            kind: BuildErrorKind::DepthExceeded,
            message: format!("query nesting deeper than {MAX_BUILD_DEPTH} levels"),
        }
    }
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            BuildErrorKind::Semantic => write!(f, "semantic error: {}", self.message),
            BuildErrorKind::DepthExceeded => write!(f, "depth limit: {}", self.message),
            BuildErrorKind::Internal => write!(f, "internal builder error: {}", self.message),
        }
    }
}

impl std::error::Error for BuildError {}

/// Maximum nesting depth of blocks/expressions the builder will follow
/// before returning [`BuildErrorKind::DepthExceeded`] instead of overflowing
/// the stack on adversarial (programmatically constructed) syntax trees.
pub const MAX_BUILD_DEPTH: usize = 256;

type Result<T> = std::result::Result<T, BuildError>;

/// Translate a parsed query into a QGM graph.
pub fn build_query(q: &sql::Query, catalog: &Catalog) -> Result<QgmGraph> {
    build_query_with_params(q, catalog, true)
}

/// Like [`build_query`], optionally skipping the final normalization pass
/// (merging of consecutive SELECT boxes); useful in tests.
pub fn build_query_with_params(
    q: &sql::Query,
    catalog: &Catalog,
    normalize: bool,
) -> Result<QgmGraph> {
    let mut b = Builder {
        catalog,
        g: QgmGraph::new(),
        depth: 0,
    };
    let root = b.build_block(q, true)?;
    b.g.root = root;
    let mut g = b.g;
    if normalize {
        crate::normalize::merge_selects(&mut g);
    }
    // Translation/normalization boundary gate: passes 1+2 of the plan
    // verifier (debug builds and opt-in `SUMTAB_VERIFY=1` release runs).
    if crate::verify::runtime_checks_enabled() {
        crate::verify::verify_plan(&g, catalog).map_err(|e| BuildError::internal(e.to_string()))?;
    }
    Ok(g)
}

/// One name binding in a FROM scope.
struct Binding {
    name: String,
    qid: QuantId,
    cols: Vec<String>,
}

struct Scope {
    bindings: Vec<Binding>,
}

impl Scope {
    fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<ColRef> {
        let lname = name.to_ascii_lowercase();
        match qualifier {
            Some(q) => {
                let lq = q.to_ascii_lowercase();
                let b = self
                    .bindings
                    .iter()
                    .find(|b| b.name == lq)
                    .ok_or_else(|| BuildError::new(format!("unknown table alias `{q}`")))?;
                let ord = b
                    .cols
                    .iter()
                    .position(|c| *c == lname)
                    .ok_or_else(|| BuildError::new(format!("unknown column `{q}.{name}`")))?;
                Ok(ColRef {
                    qid: b.qid,
                    ordinal: ord,
                })
            }
            None => {
                let mut found = None;
                for b in &self.bindings {
                    if let Some(ord) = b.cols.iter().position(|c| *c == lname) {
                        if found.is_some() {
                            return Err(BuildError::new(format!("ambiguous column `{name}`")));
                        }
                        found = Some(ColRef {
                            qid: b.qid,
                            ordinal: ord,
                        });
                    }
                }
                found.ok_or_else(|| BuildError::new(format!("unknown column `{name}`")))
            }
        }
    }
}

struct Builder<'a> {
    catalog: &'a Catalog,
    g: QgmGraph,
    /// Current recursion depth of `build_block`/`resolve_*` frames (bounded
    /// by [`MAX_BUILD_DEPTH`]).
    depth: usize,
}

impl<'a> Builder<'a> {
    /// Bump the recursion depth, failing with `DepthExceeded` past the cap.
    fn enter(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > MAX_BUILD_DEPTH {
            return Err(BuildError::depth_exceeded());
        }
        Ok(())
    }

    /// Build one query block; returns its root box. `is_outermost` controls
    /// whether ORDER BY / LIMIT decorate the graph root.
    fn build_block(&mut self, q: &sql::Query, is_outermost: bool) -> Result<BoxId> {
        self.enter()?;
        let r = self.build_block_inner(q, is_outermost);
        self.depth -= 1;
        r
    }

    fn build_block_inner(&mut self, q: &sql::Query, is_outermost: bool) -> Result<BoxId> {
        // 1. The main (lower) SELECT box and its FROM scope.
        let sel = self.g.add_box(BoxKind::Select(SelectBox::default()));
        let mut scope = Scope {
            bindings: Vec::new(),
        };
        if q.from.is_empty() && q.select.is_empty() {
            return Err(BuildError::new("empty select"));
        }
        for tr in &q.from {
            let (child, cols) = match tr {
                sql::TableRef::Named { name, .. } => {
                    let table = self
                        .catalog
                        .table(name)
                        .ok_or_else(|| BuildError::new(format!("unknown table `{name}`")))?;
                    let cols: Vec<String> = table.columns.iter().map(|c| c.name.clone()).collect();
                    let tb = self.g.add_box(BoxKind::BaseTable {
                        table: table.name.clone(),
                    });
                    self.g.boxed_mut(tb).outputs = cols
                        .iter()
                        .enumerate()
                        .map(|(i, n)| OutputCol {
                            name: n.clone(),
                            expr: ScalarExpr::BaseCol(i),
                        })
                        .collect();
                    (tb, cols)
                }
                sql::TableRef::Derived { query, .. } => {
                    let sub = self.build_block(query, false)?;
                    let cols = self
                        .g
                        .boxed(sub)
                        .outputs
                        .iter()
                        .map(|c| c.name.clone())
                        .collect();
                    (sub, cols)
                }
            };
            let bind_name = tr.binding_name().to_ascii_lowercase();
            if scope.bindings.iter().any(|b| b.name == bind_name) {
                return Err(BuildError::new(format!(
                    "duplicate table alias `{bind_name}`"
                )));
            }
            let qid = self
                .g
                .add_quant(sel, child, QuantKind::Foreach, bind_name.clone());
            scope.bindings.push(Binding {
                name: bind_name,
                qid,
                cols,
            });
        }

        // 2. WHERE (no aggregates allowed).
        if let Some(w) = &q.where_clause {
            if w.contains_aggregate() {
                return Err(BuildError::new("aggregates are not allowed in WHERE"));
            }
            let pred = self.resolve_expr(w, &scope, sel)?;
            let conjuncts = pred.split_conjuncts();
            match &mut self.g.boxed_mut(sel).kind {
                BoxKind::Select(s) => s.predicates.extend(conjuncts),
                _ => return Err(BuildError::internal("WHERE target box is not a SELECT")),
            }
        }

        // 3. Expand wildcards into explicit items.
        let items = self.expand_select_items(&q.select, &scope)?;

        let has_aggs = !q.group_by.is_empty()
            || items.iter().any(|(e, _)| e.contains_aggregate())
            || q.having.as_ref().is_some_and(sql::Expr::contains_aggregate);

        let mut root = if !has_aggs {
            if q.having.is_some() {
                return Err(BuildError::new("HAVING without GROUP BY or aggregates"));
            }
            // Simple select-project-join block.
            let mut outputs = Vec::with_capacity(items.len());
            for (i, (e, alias)) in items.iter().enumerate() {
                let expr = self.resolve_expr(e, &scope, sel)?;
                outputs.push(OutputCol {
                    name: output_name(e, alias.as_deref(), i),
                    expr,
                });
            }
            self.g.boxed_mut(sel).outputs = outputs;
            sel
        } else {
            self.build_aggregation(q, &items, sel, &scope)?
        };

        // 4. SELECT DISTINCT → trailing GROUP BY box with no aggregates.
        if q.distinct {
            root = self.add_distinct(root)?;
        }

        // 5. ORDER BY / LIMIT decorate the outermost root only.
        if is_outermost && (!q.order_by.is_empty() || q.limit.is_some()) {
            let mut keys = Vec::new();
            for k in &q.order_by {
                let ord = self.resolve_order_key(&k.expr, root, &scope, has_aggs, q)?;
                keys.push((ord, k.desc));
            }
            self.g.order.keys = keys;
            self.g.order.limit = q.limit;
        }
        Ok(root)
    }

    /// Expand `*` and `t.*` into explicit `(expr, alias)` pairs.
    fn expand_select_items(
        &self,
        items: &[sql::SelectItem],
        scope: &Scope,
    ) -> Result<Vec<(sql::Expr, Option<String>)>> {
        let mut out = Vec::new();
        for item in items {
            match item {
                sql::SelectItem::Wildcard => {
                    for b in &scope.bindings {
                        for c in &b.cols {
                            out.push((
                                sql::Expr::Column {
                                    qualifier: Some(b.name.clone()),
                                    name: c.clone(),
                                },
                                Some(c.clone()),
                            ));
                        }
                    }
                }
                sql::SelectItem::QualifiedWildcard(t) => {
                    let lt = t.to_ascii_lowercase();
                    let b = scope
                        .bindings
                        .iter()
                        .find(|b| b.name == lt)
                        .ok_or_else(|| BuildError::new(format!("unknown table alias `{t}`")))?;
                    for c in &b.cols {
                        out.push((
                            sql::Expr::Column {
                                qualifier: Some(b.name.clone()),
                                name: c.clone(),
                            },
                            Some(c.clone()),
                        ));
                    }
                }
                sql::SelectItem::Expr { expr, alias } => out.push((expr.clone(), alias.clone())),
            }
        }
        Ok(out)
    }

    /// Build `GROUPBY ← top SELECT` over the lower `sel` box.
    fn build_aggregation(
        &mut self,
        q: &sql::Query,
        items: &[(sql::Expr, Option<String>)],
        sel: BoxId,
        scope: &Scope,
    ) -> Result<BoxId> {
        // --- Grouping items -------------------------------------------------
        // Resolve every grouping expression in lower (sel) space, dedup, and
        // record per-element alternatives for canonicalization.
        let mut item_exprs: Vec<ScalarExpr> = Vec::new(); // normalized
        let mut item_display: Vec<sql::Expr> = Vec::new();
        let intern_item = |exprs: &mut Vec<ScalarExpr>,
                           display: &mut Vec<sql::Expr>,
                           e: ScalarExpr,
                           d: &sql::Expr|
         -> usize {
            let n = e.normalize();
            if let Some(i) = exprs.iter().position(|x| *x == n) {
                i
            } else {
                exprs.push(n);
                display.push(d.clone());
                exprs.len() - 1
            }
        };
        let mut elements: Vec<Vec<Vec<usize>>> = Vec::new();
        for ge in &q.group_by {
            let resolve_list = |this: &mut Self,
                                exprs: &mut Vec<ScalarExpr>,
                                display: &mut Vec<sql::Expr>,
                                list: &[sql::Expr]|
             -> Result<Vec<usize>> {
                let mut out = Vec::new();
                for e in list {
                    if e.contains_aggregate() {
                        return Err(BuildError::new("aggregates not allowed in GROUP BY"));
                    }
                    let r = this.resolve_expr_no_subquery(e, scope)?;
                    out.push(intern_item(exprs, display, r, e));
                }
                Ok(out)
            };
            match ge {
                sql::GroupingElement::Expr(e) => {
                    let idx = resolve_list(
                        self,
                        &mut item_exprs,
                        &mut item_display,
                        std::slice::from_ref(e),
                    )?;
                    elements.push(vec![idx]);
                }
                sql::GroupingElement::Rollup(es) => {
                    let idx = resolve_list(self, &mut item_exprs, &mut item_display, es)?;
                    elements.push(expand_rollup(&idx));
                }
                sql::GroupingElement::Cube(es) => {
                    let idx = resolve_list(self, &mut item_exprs, &mut item_display, es)?;
                    elements.push(expand_cube(&idx));
                }
                sql::GroupingElement::GroupingSets(sets) => {
                    let mut alts = Vec::new();
                    for set in sets {
                        alts.push(resolve_list(self, &mut item_exprs, &mut item_display, set)?);
                    }
                    elements.push(alts);
                }
            }
        }
        let sets = if elements.is_empty() {
            vec![vec![]] // scalar aggregation: one grand-total group
        } else {
            canonical_grouping_sets(&elements)
        };

        // --- Lower SELECT outputs -------------------------------------------
        // One output per grouping item; aggregate arguments are appended as
        // they are discovered.
        let mut lower_outputs: Vec<OutputCol> = Vec::new();
        for (i, e) in item_exprs.iter().enumerate() {
            lower_outputs.push(OutputCol {
                name: grouping_name(&item_display[i], i),
                expr: e.clone(),
            });
        }

        // --- GROUP BY box ----------------------------------------------------
        let gb = self.g.add_box(BoxKind::GroupBy(GroupByBox {
            items: vec![],
            sets: sets.clone(),
        }));
        let q_gb = self.g.add_quant(gb, sel, QuantKind::Foreach, "gbin");
        let n_items = item_exprs.len();
        let gb_items: Vec<ColRef> = (0..n_items)
            .map(|i| ColRef {
                qid: q_gb,
                ordinal: i,
            })
            .collect();
        let mut gb_outputs: Vec<OutputCol> = gb_items
            .iter()
            .enumerate()
            .map(|(i, c)| OutputCol {
                name: lower_outputs[i].name.clone(),
                expr: ScalarExpr::Col(*c),
            })
            .collect();

        // --- Top SELECT box ----------------------------------------------------
        let top = self.g.add_box(BoxKind::Select(SelectBox::default()));
        let q_top = self.g.add_quant(top, gb, QuantKind::Foreach, "gbout");

        // Shared state for aggregate interning.
        let mut aggs: Vec<(AggFunc, Option<usize>, bool)> = Vec::new(); // (func, lower ordinal, distinct)

        // Translate the SELECT list and HAVING against grouping items and
        // aggregates.
        let mut ctx = AggBlockCtx {
            scope,
            sel,
            item_exprs: &item_exprs,
            lower_outputs: &mut lower_outputs,
            aggs: &mut aggs,

            q_top,
            n_items,
            top,
        };

        let mut top_outputs = Vec::with_capacity(items.len());
        for (i, (e, alias)) in items.iter().enumerate() {
            let expr = self.resolve_agg_space(e, &mut ctx)?;
            top_outputs.push(OutputCol {
                name: output_name(e, alias.as_deref(), i),
                expr,
            });
        }
        let mut having_preds = Vec::new();
        if let Some(h) = &q.having {
            let pred = self.resolve_agg_space(h, &mut ctx)?;
            having_preds = pred.split_conjuncts();
        }

        // --- Wire everything up ------------------------------------------------
        for (func, arg_ord, distinct) in aggs.iter() {
            gb_outputs.push(OutputCol {
                name: format!("agg{}", gb_outputs.len() - n_items),
                expr: ScalarExpr::Agg(AggCall {
                    func: *func,
                    arg: arg_ord.map(|o| ColRef {
                        qid: q_gb,
                        ordinal: o,
                    }),
                    distinct: *distinct,
                }),
            });
        }
        self.g.boxed_mut(sel).outputs = lower_outputs;
        match &mut self.g.boxed_mut(gb).kind {
            BoxKind::GroupBy(g) => g.items = gb_items,
            _ => return Err(BuildError::internal("aggregation box is not a GROUP BY")),
        }
        self.g.boxed_mut(gb).outputs = gb_outputs;
        self.g.boxed_mut(top).outputs = top_outputs;
        match &mut self.g.boxed_mut(top).kind {
            BoxKind::Select(s) => s.predicates = having_preds,
            _ => return Err(BuildError::internal("HAVING target box is not a SELECT")),
        }
        Ok(top)
    }

    /// Wrap `root` in a duplicate-eliminating GROUP BY box, topped by an
    /// identity SELECT so the block keeps the canonical Select-rooted shape
    /// (matching compares boxes of equal type; aggregation blocks always
    /// end in a SELECT).
    fn add_distinct(&mut self, root: BoxId) -> Result<BoxId> {
        let gb = self.add_distinct_gb(root)?;
        let sel = self.g.add_box(BoxKind::Select(SelectBox::default()));
        let q = self.g.add_quant(sel, gb, QuantKind::Foreach, "dout");
        self.g.boxed_mut(sel).outputs = self
            .g
            .boxed(gb)
            .outputs
            .iter()
            .enumerate()
            .map(|(i, oc)| OutputCol {
                name: oc.name.clone(),
                expr: ScalarExpr::col(q, i),
            })
            .collect();
        Ok(sel)
    }

    /// The DISTINCT GROUP BY itself.
    fn add_distinct_gb(&mut self, root: BoxId) -> Result<BoxId> {
        let n = self.g.boxed(root).outputs.len();
        let names: Vec<String> = self
            .g
            .boxed(root)
            .outputs
            .iter()
            .map(|c| c.name.clone())
            .collect();
        let gb = self.g.add_box(BoxKind::GroupBy(GroupByBox {
            items: vec![],
            sets: vec![(0..n).collect()],
        }));
        let qd = self.g.add_quant(gb, root, QuantKind::Foreach, "dist");
        let items: Vec<ColRef> = (0..n)
            .map(|i| ColRef {
                qid: qd,
                ordinal: i,
            })
            .collect();
        self.g.boxed_mut(gb).outputs = items
            .iter()
            .zip(names)
            .map(|(c, name)| OutputCol {
                name,
                expr: ScalarExpr::Col(*c),
            })
            .collect();
        match &mut self.g.boxed_mut(gb).kind {
            BoxKind::GroupBy(g) => g.items = items,
            _ => return Err(BuildError::internal("DISTINCT box is not a GROUP BY")),
        }
        Ok(gb)
    }

    /// Resolve an expression in a box's own space; scalar subqueries create
    /// `Scalar` quantifiers on `owner`.
    fn resolve_expr(&mut self, e: &sql::Expr, scope: &Scope, owner: BoxId) -> Result<ScalarExpr> {
        self.enter()?;
        let r = self.resolve_expr_inner(e, scope, owner);
        self.depth -= 1;
        r
    }

    fn resolve_expr_inner(
        &mut self,
        e: &sql::Expr,
        scope: &Scope,
        owner: BoxId,
    ) -> Result<ScalarExpr> {
        match e {
            sql::Expr::Lit(v) => Ok(ScalarExpr::Lit(v.clone())),
            sql::Expr::Column { qualifier, name } => {
                let c = scope.resolve(qualifier.as_deref(), name)?;
                Ok(ScalarExpr::Col(c))
            }
            sql::Expr::Binary { op, left, right } => Ok(ScalarExpr::bin(
                *op,
                self.resolve_expr(left, scope, owner)?,
                self.resolve_expr(right, scope, owner)?,
            )),
            sql::Expr::Unary { op, expr } => Ok(ScalarExpr::Un(
                *op,
                Box::new(self.resolve_expr(expr, scope, owner)?),
            )),
            sql::Expr::Func { func, args } => {
                let mut out = Vec::with_capacity(args.len());
                for a in args {
                    out.push(self.resolve_expr(a, scope, owner)?);
                }
                Ok(ScalarExpr::Func(*func, out))
            }
            sql::Expr::Case {
                operand,
                arms,
                else_expr,
            } => {
                let operand = match operand {
                    Some(o) => Some(Box::new(self.resolve_expr(o, scope, owner)?)),
                    None => None,
                };
                let mut rarms = Vec::with_capacity(arms.len());
                for (w, t) in arms {
                    rarms.push((
                        self.resolve_expr(w, scope, owner)?,
                        self.resolve_expr(t, scope, owner)?,
                    ));
                }
                let else_expr = match else_expr {
                    Some(e) => Some(Box::new(self.resolve_expr(e, scope, owner)?)),
                    None => None,
                };
                Ok(ScalarExpr::Case {
                    operand,
                    arms: rarms,
                    else_expr,
                })
            }
            sql::Expr::IsNull { expr, negated } => Ok(ScalarExpr::IsNull {
                expr: Box::new(self.resolve_expr(expr, scope, owner)?),
                negated: *negated,
            }),
            sql::Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                // e BETWEEN a AND b  ≡  e >= a AND e <= b
                let e1 = self.resolve_expr(expr, scope, owner)?;
                let lo = self.resolve_expr(low, scope, owner)?;
                let hi = self.resolve_expr(high, scope, owner)?;
                let both = ScalarExpr::bin(
                    BinOp::And,
                    ScalarExpr::bin(BinOp::GtEq, e1.clone(), lo),
                    ScalarExpr::bin(BinOp::LtEq, e1, hi),
                );
                Ok(if *negated {
                    ScalarExpr::Un(sql::UnOp::Not, Box::new(both))
                } else {
                    both
                })
            }
            sql::Expr::InList {
                expr,
                list,
                negated,
            } => {
                // e IN (a, b)  ≡  e = a OR e = b
                let e1 = self.resolve_expr(expr, scope, owner)?;
                let mut alts = Vec::with_capacity(list.len());
                for item in list {
                    let r = self.resolve_expr(item, scope, owner)?;
                    alts.push(ScalarExpr::bin(BinOp::Eq, e1.clone(), r));
                }
                let mut it = alts.into_iter();
                let first = it.next().ok_or_else(|| BuildError::new("empty IN list"))?;
                let ored = it.fold(first, |acc, a| ScalarExpr::bin(BinOp::Or, acc, a));
                Ok(if *negated {
                    ScalarExpr::Un(sql::UnOp::Not, Box::new(ored))
                } else {
                    ored
                })
            }
            sql::Expr::Like {
                expr,
                pattern,
                negated,
            } => Ok(ScalarExpr::Like {
                expr: Box::new(self.resolve_expr(expr, scope, owner)?),
                pattern: pattern.clone(),
                negated: *negated,
            }),
            sql::Expr::ScalarSubquery(sub) => {
                let sub_root = self.build_block(sub, false)?;
                if self.g.boxed(sub_root).outputs.len() != 1 {
                    return Err(BuildError::new(
                        "scalar subquery must produce exactly one column",
                    ));
                }
                let qid = self.g.add_quant(owner, sub_root, QuantKind::Scalar, "sq");
                Ok(ScalarExpr::col(qid, 0))
            }
            sql::Expr::Agg { .. } => Err(BuildError::new(
                "aggregate used where no aggregation context exists",
            )),
        }
    }

    /// Like [`Builder::resolve_expr`] but rejecting subqueries (used for
    /// GROUP BY elements, where a Scalar quantifier has no box to attach to).
    fn resolve_expr_no_subquery(&mut self, e: &sql::Expr, scope: &Scope) -> Result<ScalarExpr> {
        if contains_subquery(e) {
            return Err(BuildError::new("subqueries not allowed in GROUP BY"));
        }
        // Owner is irrelevant: no subquery means no quantifier is created.
        self.resolve_expr(e, scope, BoxId(0))
    }

    /// Translate an expression into top-SELECT space: grouping expressions
    /// become references to GROUP BY grouping outputs, aggregates become
    /// references to GROUP BY aggregate outputs.
    fn resolve_agg_space(
        &mut self,
        e: &sql::Expr,
        ctx: &mut AggBlockCtx<'_>,
    ) -> Result<ScalarExpr> {
        self.enter()?;
        let r = self.resolve_agg_space_inner(e, ctx);
        self.depth -= 1;
        r
    }

    fn resolve_agg_space_inner(
        &mut self,
        e: &sql::Expr,
        ctx: &mut AggBlockCtx<'_>,
    ) -> Result<ScalarExpr> {
        // Whole-node grouping-item check (aggregate- and subquery-free only).
        if !e.contains_aggregate() && !contains_subquery(e) {
            let resolved = self.resolve_expr(e, ctx.scope, ctx.sel)?.normalize();
            if let Some(i) = ctx.item_exprs.iter().position(|x| *x == resolved) {
                return Ok(ScalarExpr::col(ctx.q_top, i));
            }
        }
        match e {
            sql::Expr::Lit(v) => Ok(ScalarExpr::Lit(v.clone())),
            sql::Expr::Agg {
                func,
                arg,
                distinct,
            } => {
                if *func == AggFunc::Avg {
                    // AVG(x) → SUM(x) / COUNT(x); COUNT ignores NULLs, so the
                    // NULL-skipping semantics match.
                    let arg = arg
                        .as_deref()
                        .ok_or_else(|| BuildError::new("AVG requires an argument"))?;
                    let sum = self.intern_agg(AggFunc::Sum, Some(arg), *distinct, ctx)?;
                    let cnt = self.intern_agg(AggFunc::Count, Some(arg), *distinct, ctx)?;
                    return Ok(ScalarExpr::bin(BinOp::Div, sum, cnt));
                }
                self.intern_agg(*func, arg.as_deref(), *distinct, ctx)
            }
            sql::Expr::Binary { op, left, right } => Ok(ScalarExpr::bin(
                *op,
                self.resolve_agg_space(left, ctx)?,
                self.resolve_agg_space(right, ctx)?,
            )),
            sql::Expr::Unary { op, expr } => Ok(ScalarExpr::Un(
                *op,
                Box::new(self.resolve_agg_space(expr, ctx)?),
            )),
            sql::Expr::Func { func, args } => {
                let mut out = Vec::with_capacity(args.len());
                for a in args {
                    out.push(self.resolve_agg_space(a, ctx)?);
                }
                Ok(ScalarExpr::Func(*func, out))
            }
            sql::Expr::Case {
                operand,
                arms,
                else_expr,
            } => {
                let operand = match operand {
                    Some(o) => Some(Box::new(self.resolve_agg_space(o, ctx)?)),
                    None => None,
                };
                let mut rarms = Vec::with_capacity(arms.len());
                for (w, t) in arms {
                    rarms.push((
                        self.resolve_agg_space(w, ctx)?,
                        self.resolve_agg_space(t, ctx)?,
                    ));
                }
                let else_expr = match else_expr {
                    Some(x) => Some(Box::new(self.resolve_agg_space(x, ctx)?)),
                    None => None,
                };
                Ok(ScalarExpr::Case {
                    operand,
                    arms: rarms,
                    else_expr,
                })
            }
            sql::Expr::IsNull { expr, negated } => Ok(ScalarExpr::IsNull {
                expr: Box::new(self.resolve_agg_space(expr, ctx)?),
                negated: *negated,
            }),
            sql::Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let e1 = self.resolve_agg_space(expr, ctx)?;
                let lo = self.resolve_agg_space(low, ctx)?;
                let hi = self.resolve_agg_space(high, ctx)?;
                let both = ScalarExpr::bin(
                    BinOp::And,
                    ScalarExpr::bin(BinOp::GtEq, e1.clone(), lo),
                    ScalarExpr::bin(BinOp::LtEq, e1, hi),
                );
                Ok(if *negated {
                    ScalarExpr::Un(sql::UnOp::Not, Box::new(both))
                } else {
                    both
                })
            }
            sql::Expr::InList {
                expr,
                list,
                negated,
            } => {
                let e1 = self.resolve_agg_space(expr, ctx)?;
                let mut alts = Vec::with_capacity(list.len());
                for item in list {
                    let r = self.resolve_agg_space(item, ctx)?;
                    alts.push(ScalarExpr::bin(BinOp::Eq, e1.clone(), r));
                }
                let mut it = alts.into_iter();
                let first = it.next().ok_or_else(|| BuildError::new("empty IN list"))?;
                let ored = it.fold(first, |acc, a| ScalarExpr::bin(BinOp::Or, acc, a));
                Ok(if *negated {
                    ScalarExpr::Un(sql::UnOp::Not, Box::new(ored))
                } else {
                    ored
                })
            }
            sql::Expr::Like {
                expr,
                pattern,
                negated,
            } => Ok(ScalarExpr::Like {
                expr: Box::new(self.resolve_agg_space(expr, ctx)?),
                pattern: pattern.clone(),
                negated: *negated,
            }),
            sql::Expr::ScalarSubquery(sub) => {
                // Evaluated once per group: attach to the top box.
                let sub_root = self.build_block(sub, false)?;
                if self.g.boxed(sub_root).outputs.len() != 1 {
                    return Err(BuildError::new(
                        "scalar subquery must produce exactly one column",
                    ));
                }
                let qid = self.g.add_quant(ctx.top, sub_root, QuantKind::Scalar, "sq");
                Ok(ScalarExpr::col(qid, 0))
            }
            sql::Expr::Column { qualifier, name } => {
                let q = qualifier
                    .as_ref()
                    .map(|q| format!("{q}."))
                    .unwrap_or_default();
                Err(BuildError::new(format!(
                    "column `{q}{name}` must appear in GROUP BY or inside an aggregate"
                )))
            }
        }
    }

    /// Intern an aggregate call: resolve its argument in lower space, ensure
    /// the lower SELECT outputs it, register the aggregate on the GROUP BY
    /// box, and return a reference to the aggregate output in top space.
    fn intern_agg(
        &mut self,
        func: AggFunc,
        arg: Option<&sql::Expr>,
        distinct: bool,
        ctx: &mut AggBlockCtx<'_>,
    ) -> Result<ScalarExpr> {
        if arg.is_some_and(sql::Expr::contains_aggregate) {
            return Err(BuildError::new("nested aggregate calls are not allowed"));
        }
        let arg_ord = match arg {
            None => None,
            Some(a) => {
                if contains_subquery(a) {
                    return Err(BuildError::new(
                        "subqueries in aggregate arguments are not supported",
                    ));
                }
                let resolved = self.resolve_expr(a, ctx.scope, ctx.sel)?.normalize();
                let ord = match ctx.lower_outputs.iter().position(|c| c.expr == resolved) {
                    Some(i) => i,
                    None => {
                        ctx.lower_outputs.push(OutputCol {
                            name: format!("e{}", ctx.lower_outputs.len()),
                            expr: resolved,
                        });
                        ctx.lower_outputs.len() - 1
                    }
                };
                Some(ord)
            }
        };
        let key = (func, arg_ord, distinct);
        let agg_idx = match ctx.aggs.iter().position(|a| *a == key) {
            Some(i) => i,
            None => {
                ctx.aggs.push(key);
                ctx.aggs.len() - 1
            }
        };
        Ok(ScalarExpr::col(ctx.q_top, ctx.n_items + agg_idx))
    }

    /// Map an ORDER BY key to a root output ordinal.
    fn resolve_order_key(
        &mut self,
        e: &sql::Expr,
        root: BoxId,
        scope: &Scope,
        has_aggs: bool,
        q: &sql::Query,
    ) -> Result<usize> {
        // `ORDER BY 2` — positional.
        if let sql::Expr::Lit(Value::Int(i)) = e {
            let i = *i;
            let n = self.g.boxed(root).outputs.len() as i64;
            if i >= 1 && i <= n {
                return Ok((i - 1) as usize);
            }
            return Err(BuildError::new(format!(
                "ORDER BY position {i} out of range"
            )));
        }
        // By output name / alias.
        if let sql::Expr::Column {
            qualifier: None,
            name,
        } = e
        {
            if let Some(i) = self.g.boxed(root).output_index(name) {
                return Ok(i);
            }
        }
        // By expression equality against the select list.
        for (i, item) in q.select.iter().enumerate() {
            if let sql::SelectItem::Expr { expr, .. } = item {
                if expr == e {
                    return Ok(i);
                }
            }
        }
        // By resolved-expression equality (non-aggregate path only; for
        // aggregated queries the select-list comparison above suffices).
        if !has_aggs {
            let resolved = self.resolve_expr(e, scope, root)?.normalize();
            let found = self
                .g
                .boxed(root)
                .outputs
                .iter()
                .position(|c| c.expr.normalize() == resolved);
            if let Some(i) = found {
                return Ok(i);
            }
        }
        Err(BuildError::new(
            "ORDER BY expression does not appear in the select list",
        ))
    }
}

/// Per-aggregation-block translation state.
struct AggBlockCtx<'b> {
    scope: &'b Scope,
    sel: BoxId,
    item_exprs: &'b [ScalarExpr],
    lower_outputs: &'b mut Vec<OutputCol>,
    aggs: &'b mut Vec<(AggFunc, Option<usize>, bool)>,
    q_top: QuantId,
    n_items: usize,
    top: BoxId,
}

/// True when the expression contains a scalar subquery at any depth.
fn contains_subquery(e: &sql::Expr) -> bool {
    match e {
        sql::Expr::ScalarSubquery(_) => true,
        sql::Expr::Lit(_) | sql::Expr::Column { .. } => false,
        sql::Expr::Binary { left, right, .. } => {
            contains_subquery(left) || contains_subquery(right)
        }
        sql::Expr::Unary { expr, .. } => contains_subquery(expr),
        sql::Expr::Agg { arg, .. } => arg.as_deref().is_some_and(contains_subquery),
        sql::Expr::Func { args, .. } => args.iter().any(contains_subquery),
        sql::Expr::Case {
            operand,
            arms,
            else_expr,
        } => {
            operand.as_deref().is_some_and(contains_subquery)
                || arms
                    .iter()
                    .any(|(w, t)| contains_subquery(w) || contains_subquery(t))
                || else_expr.as_deref().is_some_and(contains_subquery)
        }
        sql::Expr::IsNull { expr, .. } | sql::Expr::Like { expr, .. } => contains_subquery(expr),
        sql::Expr::Between {
            expr, low, high, ..
        } => contains_subquery(expr) || contains_subquery(low) || contains_subquery(high),
        sql::Expr::InList { expr, list, .. } => {
            contains_subquery(expr) || list.iter().any(contains_subquery)
        }
    }
}

/// Pick an output column name: alias, else simple column name, else `c{i}`.
fn output_name(e: &sql::Expr, alias: Option<&str>, i: usize) -> String {
    if let Some(a) = alias {
        return a.to_ascii_lowercase();
    }
    if let sql::Expr::Column { name, .. } = e {
        return name.clone();
    }
    format!("c{i}")
}

/// Pick a grouping-output name: simple column name, else `g{i}`.
fn grouping_name(e: &sql::Expr, i: usize) -> String {
    if let sql::Expr::Column { name, .. } = e {
        return name.clone();
    }
    format!("g{i}")
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod tests {
    use super::*;
    use crate::graph::QuantKind;
    use sumtab_catalog::Catalog;
    use sumtab_parser::parse_query;

    fn build(sql: &str) -> QgmGraph {
        let cat = Catalog::credit_card_sample();
        build_query(&parse_query(sql).unwrap(), &cat).unwrap()
    }

    fn build_err(sql: &str) -> String {
        let cat = Catalog::credit_card_sample();
        match build_query(&parse_query(sql).unwrap(), &cat) {
            Ok(_) => panic!("expected semantic error for `{sql}`"),
            Err(e) => e.message,
        }
    }

    #[test]
    fn figure3_shape_for_q1() {
        // The paper's Figure 3: Q1 becomes SELECT <- GROUPBY <- SELECT
        // with the join and grouping-expression computation at the bottom
        // and the HAVING at the top.
        let g = build(
            "select faid, state, year(date) as year, count(*) as cnt \
             from trans, loc where flid = lid and country = 'USA' \
             group by faid, state, year(date) having count(*) > 100",
        );
        let root = g.boxed(g.root);
        assert!(root.is_select());
        assert_eq!(root.as_select().unwrap().predicates.len(), 1, "HAVING");
        let gb = g.input_of(root.quants[0]);
        assert!(g.boxed(gb).is_group_by());
        let gbx = g.boxed(gb).as_group_by().unwrap();
        assert_eq!(gbx.items.len(), 3);
        assert!(gbx.is_simple());
        let lower = g.input_of(g.boxed(gb).quants[0]);
        assert!(g.boxed(lower).is_select());
        assert_eq!(
            g.boxed(lower).as_select().unwrap().predicates.len(),
            2,
            "join + selection predicates live in the lower select"
        );
    }

    #[test]
    fn grouping_expressions_computed_below_group_by() {
        let g = build("select year(date) as y, count(*) as c from trans group by year(date)");
        let gb = g.input_of(g.boxed(g.root).quants[0]);
        let gbx = g.boxed(gb).as_group_by().unwrap();
        // The grouping item is a *simple* column of the lower select.
        assert!(matches!(g.boxed(gb).outputs[0].expr, ScalarExpr::Col(_)));
        let lower = g.input_of(gbx.items[0].qid);
        assert!(matches!(
            g.boxed(lower).outputs[gbx.items[0].ordinal].expr,
            ScalarExpr::Func(..)
        ));
    }

    #[test]
    fn aggregate_args_are_simple_columns() {
        let g = build("select sum(qty * price) as v from trans");
        let gb = g.input_of(g.boxed(g.root).quants[0]);
        match &g.boxed(gb).outputs[0].expr {
            ScalarExpr::Agg(a) => {
                let arg = a.arg.expect("sum has an argument");
                let lower = g.input_of(arg.qid);
                assert!(matches!(
                    g.boxed(lower).outputs[arg.ordinal].expr,
                    ScalarExpr::Bin(..)
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn avg_normalizes_to_sum_over_count() {
        let g = build("select avg(qty) as a from trans");
        let root = g.boxed(g.root);
        assert!(
            matches!(root.outputs[0].expr, ScalarExpr::Bin(BinOp::Div, ..)),
            "AVG becomes SUM/COUNT: {:?}",
            root.outputs[0].expr
        );
        let gb = g.input_of(root.quants[0]);
        assert_eq!(g.boxed(gb).outputs.len(), 2, "SUM and COUNT aggregates");
    }

    #[test]
    fn duplicate_aggregates_are_shared() {
        let g = build(
            "select count(*) as a, count(*) + 1 as b from trans group by faid having count(*) > 2",
        );
        let gb = g.input_of(g.boxed(g.root).quants[0]);
        let aggs = g
            .boxed(gb)
            .outputs
            .iter()
            .filter(|o| matches!(o.expr, ScalarExpr::Agg(_)))
            .count();
        assert_eq!(aggs, 1, "one COUNT(*) output serves all three uses");
    }

    #[test]
    fn between_and_in_normalize() {
        let g = build("select tid from trans where qty between 1 and 3 and fpgid in (10, 11)");
        let preds = &g.boxed(g.root).as_select().unwrap().predicates;
        // BETWEEN splits into two conjuncts; IN stays one OR conjunct.
        assert_eq!(preds.len(), 3);
    }

    #[test]
    fn scalar_subquery_gets_scalar_quantifier() {
        let g = build("select tid, (select max(price) from trans) as m from trans");
        let root = g.boxed(g.root);
        let kinds: Vec<QuantKind> = root.quants.iter().map(|&q| g.quant(q).kind).collect();
        assert!(kinds.contains(&QuantKind::Scalar));
        assert!(kinds.contains(&QuantKind::Foreach));
    }

    #[test]
    fn semantic_errors_are_reported() {
        assert!(build_err("select nosuch from trans").contains("unknown column"));
        assert!(build_err("select qty from nosuch").contains("unknown table"));
        assert!(build_err(
            "select lid from trans, loc, acct where aid = lid and lid = flid \
                           group by flid"
        )
        .contains("GROUP BY"));
        assert!(build_err("select count(*) from trans where count(*) > 1")
            .contains("not allowed in WHERE"));
        assert!(build_err("select qty from trans, trans").contains("duplicate table alias"));
        assert!(build_err("select t.qty from trans as t, loc as t").contains("duplicate"));
        assert!(build_err("select sum(count(*)) from trans").contains("nested aggregate"));
        assert!(
            build_err("select qty from trans group by (select count(*) from loc)")
                .contains("subqueries not allowed in GROUP BY")
        );
        assert!(
            build_err("select price from trans group by qty").contains("must appear in GROUP BY")
        );
        assert!(
            build_err("select qty from trans having qty > 1").contains("HAVING without GROUP BY")
        );
    }

    #[test]
    fn ambiguous_column_is_rejected() {
        // `date` exists only in trans; `lid`/`flid` are unambiguous; but a
        // self-join via aliases makes columns ambiguous.
        let cat = Catalog::credit_card_sample();
        let q = parse_query("select qty from trans as a, trans as b").unwrap();
        let err = build_query(&q, &cat).unwrap_err();
        assert!(err.message.contains("ambiguous"));
    }

    #[test]
    fn order_by_resolution_variants() {
        // By alias.
        let g = build("select qty as q from trans order by q desc");
        assert_eq!(g.order.keys, vec![(0, true)]);
        // By position.
        let g = build("select tid, qty from trans order by 2");
        assert_eq!(g.order.keys, vec![(1, false)]);
        // By expression equality.
        let g = build("select qty * price as v from trans order by qty * price");
        assert_eq!(g.order.keys, vec![(0, false)]);
        // Aggregated query: by select-list expression.
        let g = build("select faid, count(*) as c from trans group by faid order by count(*)");
        assert_eq!(g.order.keys, vec![(1, false)]);
        // Unresolvable.
        let cat = Catalog::credit_card_sample();
        let q = parse_query("select qty from trans order by price").unwrap();
        assert!(build_query(&q, &cat).is_err());
    }

    #[test]
    fn grouping_sets_cross_product_with_plain_columns() {
        // GROUP BY a, ROLLUP(b) => gs((a,b),(a)).
        let g = build("select faid, flid, count(*) as c from trans group by faid, rollup(flid)");
        let gb = g.input_of(g.boxed(g.root).quants[0]);
        let gbx = g.boxed(gb).as_group_by().unwrap();
        assert_eq!(gbx.items.len(), 2);
        assert_eq!(gbx.sets, vec![vec![0, 1], vec![0]]);
    }

    #[test]
    fn scalar_aggregation_has_grand_total_set() {
        let g = build("select count(*) as c from trans");
        let gb = g.input_of(g.boxed(g.root).quants[0]);
        let gbx = g.boxed(gb).as_group_by().unwrap();
        assert!(gbx.items.is_empty());
        assert_eq!(gbx.sets, vec![Vec::<usize>::new()]);
    }

    #[test]
    fn wildcard_expansion() {
        let g = build("select * from pgroup");
        assert_eq!(g.boxed(g.root).outputs.len(), 2);
        let g = build("select loc.* from trans, loc where flid = lid");
        assert_eq!(g.boxed(g.root).outputs.len(), 4);
    }

    #[test]
    fn distinct_wraps_with_identity_select_over_group_by() {
        let g = build("select distinct state from loc");
        let root = g.boxed(g.root);
        assert!(root.is_select(), "canonical Select-rooted shape");
        let gb = g.input_of(root.quants[0]);
        assert!(g.boxed(gb).is_group_by());
        assert!(g.boxed(gb).as_group_by().unwrap().is_simple());
    }
}
