//! Human-readable QGM graph dumps, in the spirit of the paper's box
//! diagrams (Figure 3): one indented block per box, listing quantifiers,
//! output columns, predicates, and grouping sets. Used by `EXPLAIN
//! VERBOSE`-style tooling and debugging sessions.

use crate::graph::{BoxId, BoxKind, QgmGraph, QuantKind};
use crate::render::render_expr;

/// Render the whole graph as an indented box tree.
pub fn dump_graph(g: &QgmGraph) -> String {
    let mut out = String::new();
    dump_box(g, g.root, 0, &mut out, &mut vec![false; g.boxes.len()]);
    out
}

fn dump_box(g: &QgmGraph, b: BoxId, depth: usize, out: &mut String, seen: &mut Vec<bool>) {
    let pad = "  ".repeat(depth);
    let bx = g.boxed(b);
    let already = seen[b.0 as usize];
    seen[b.0 as usize] = true;
    match &bx.kind {
        BoxKind::BaseTable { table } => {
            out.push_str(&format!("{pad}BaseTable#{} {table}\n", b.0));
            return;
        }
        BoxKind::SubsumerRef { target, .. } => {
            out.push_str(&format!("{pad}SubsumerRef#{} -> box {}\n", b.0, target.0));
            return;
        }
        BoxKind::Select(sel) => {
            out.push_str(&format!("{pad}Select#{}\n", b.0));
            if already {
                out.push_str(&format!("{pad}  (shared, see above)\n"));
                return;
            }
            for (i, oc) in bx.outputs.iter().enumerate() {
                out.push_str(&format!(
                    "{pad}  out[{i}] {} = {}\n",
                    oc.name,
                    render_expr(g, &oc.expr, 0)
                ));
            }
            for p in &sel.predicates {
                out.push_str(&format!("{pad}  pred {}\n", render_expr(g, p, 0)));
            }
        }
        BoxKind::GroupBy(gb) => {
            out.push_str(&format!("{pad}GroupBy#{}\n", b.0));
            if already {
                out.push_str(&format!("{pad}  (shared, see above)\n"));
                return;
            }
            let items: Vec<String> = gb
                .items
                .iter()
                .map(|c| render_expr(g, &crate::expr::ScalarExpr::Col(*c), 0))
                .collect();
            if gb.sets.len() == 1 {
                out.push_str(&format!("{pad}  group by ({})\n", items.join(", ")));
            } else {
                let sets: Vec<String> = gb
                    .sets
                    .iter()
                    .map(|s| {
                        let cols: Vec<&str> = s.iter().map(|&i| items[i].as_str()).collect();
                        format!("({})", cols.join(", "))
                    })
                    .collect();
                out.push_str(&format!("{pad}  grouping sets {}\n", sets.join(", ")));
            }
            for (i, oc) in bx.outputs.iter().enumerate() {
                out.push_str(&format!(
                    "{pad}  out[{i}] {} = {}\n",
                    oc.name,
                    render_expr(g, &oc.expr, 0)
                ));
            }
        }
    }
    for &q in &bx.quants {
        let quant = g.quant(q);
        let kind = match quant.kind {
            QuantKind::Foreach => "F",
            QuantKind::Scalar => "S",
        };
        out.push_str(&format!(
            "{}  q{} [{}] \"{}\" over:\n",
            pad, q.idx, kind, quant.name
        ));
        dump_box(g, quant.input, depth + 2, out, seen);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod tests {
    use super::*;
    use crate::build::build_query;
    use sumtab_catalog::Catalog;
    use sumtab_parser::parse_query;

    #[test]
    fn dump_shows_figure3_structure() {
        let cat = Catalog::credit_card_sample();
        let g = build_query(
            &parse_query(
                "select faid, state, year(date) as year, count(*) as cnt \
                 from trans, loc where flid = lid and country = 'USA' \
                 group by faid, state, year(date) having count(*) > 100",
            )
            .unwrap(),
            &cat,
        )
        .unwrap();
        let d = dump_graph(&g);
        assert!(d.contains("Select#"), "{d}");
        assert!(d.contains("GroupBy#"), "{d}");
        assert!(d.contains("BaseTable"), "{d}");
        assert!(d.contains("group by"), "{d}");
        assert!(d.contains("COUNT(*)"), "{d}");
        // Box nesting depth: top select, group-by, lower select, tables.
        assert!(d.lines().count() > 10, "{d}");
    }

    #[test]
    fn dump_marks_grouping_sets_and_scalar_quants() {
        let cat = Catalog::credit_card_sample();
        let g = build_query(
            &parse_query(
                "select flid, (select count(*) from loc) as n, count(*) as c \
                 from trans group by rollup(flid)",
            )
            .unwrap(),
            &cat,
        )
        .unwrap();
        let d = dump_graph(&g);
        assert!(d.contains("grouping sets"), "{d}");
        assert!(d.contains("[S]"), "scalar quantifier marker: {d}");
    }
}

/// Render the graph in Graphviz DOT format: one node per box, labeled with
/// its kind, outputs, and predicates; solid edges for Foreach quantifiers,
/// dashed for Scalar ones. Pipe into `dot -Tsvg` to visualize.
pub fn dump_dot(g: &QgmGraph) -> String {
    let mut out = String::from(
        "digraph qgm {\n  rankdir=BT;\n  node [shape=box, fontname=\"monospace\", fontsize=10];\n",
    );
    for b in g.topo_order() {
        let bx = g.boxed(b);
        let mut label = match &bx.kind {
            BoxKind::BaseTable { table } => format!("BaseTable {table}"),
            BoxKind::Select(_) => format!("Select#{}", b.0),
            BoxKind::GroupBy(gb) => {
                if gb.sets.len() == 1 {
                    format!("GroupBy#{}", b.0)
                } else {
                    format!("GroupBy#{} ({} sets)", b.0, gb.sets.len())
                }
            }
            BoxKind::SubsumerRef { target, .. } => {
                format!("SubsumerRef -> {}", target.0)
            }
        };
        if !matches!(bx.kind, BoxKind::BaseTable { .. }) {
            for oc in &bx.outputs {
                label.push_str(&format!(
                    "\\l{} = {}",
                    oc.name,
                    escape(&render_expr(g, &oc.expr, 0))
                ));
            }
            if let BoxKind::Select(s) = &bx.kind {
                for p in &s.predicates {
                    label.push_str(&format!("\\lWHERE {}", escape(&render_expr(g, p, 0))));
                }
            }
        }
        let shape = if b == g.root { ", peripheries=2" } else { "" };
        out.push_str(&format!("  b{} [label=\"{}\\l\"{}];\n", b.0, label, shape));
        for &q in &bx.quants {
            let quant = g.quant(q);
            let style = match quant.kind {
                QuantKind::Foreach => "solid",
                QuantKind::Scalar => "dashed",
            };
            out.push_str(&format!(
                "  b{} -> b{} [style={}, label=\"{}\"];\n",
                quant.input.0, b.0, style, quant.name
            ));
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod dot_tests {
    use super::*;
    use crate::build::build_query;
    use sumtab_catalog::Catalog;
    use sumtab_parser::parse_query;

    #[test]
    fn dot_output_is_well_formed() {
        let cat = Catalog::credit_card_sample();
        let g = build_query(
            &parse_query(
                "select faid, count(*) as cnt, (select count(*) from loc) as n \
                 from trans, loc where flid = lid group by faid",
            )
            .unwrap(),
            &cat,
        )
        .unwrap();
        let dot = dump_dot(&g);
        assert!(dot.starts_with("digraph qgm {"), "{dot}");
        assert!(dot.trim_end().ends_with('}'), "{dot}");
        assert!(dot.contains("BaseTable trans"), "{dot}");
        assert!(dot.contains("style=dashed"), "scalar edge: {dot}");
        assert!(dot.contains("peripheries=2"), "root marker: {dot}");
        // Every edge references declared nodes.
        for line in dot.lines().filter(|l| l.contains("->")) {
            let src = line.trim().split(' ').next().unwrap();
            assert!(dot.contains(&format!("  {src} [label=")), "dangling {src}");
        }
    }
}
