//! QGM scalar expressions.
//!
//! Unlike the parser's surface syntax, QGM expressions reference columns
//! positionally through quantifiers ([`ColRef`]) and confine aggregate calls
//! to GROUP BY box outputs, where the aggregate argument is always a *simple*
//! input column (Section 2: "their QCLs include all of the grouping input
//! columns, plus aggregate functions over simple input columns").
//!
//! `BETWEEN` and `IN (list)` are normalized to conjunctions/disjunctions of
//! comparisons during QGM construction, which keeps the matcher's expression
//! algebra small.

use crate::graph::QuantId;
use sumtab_catalog::Value;
use sumtab_parser::{AggFunc, BinOp, ScalarFunc, UnOp};

/// A reference to an input column (QNC): column `ordinal` of the box consumed
/// through quantifier `qid`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColRef {
    /// The quantifier (tagged with its owning graph).
    pub qid: QuantId,
    /// Output ordinal of the producing box.
    pub ordinal: usize,
}

/// An aggregate call inside a GROUP BY box output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AggCall {
    /// The aggregate function (`AVG` never appears: it is normalized to
    /// SUM/COUNT during construction).
    pub func: AggFunc,
    /// The argument column; `None` only for `COUNT(*)`.
    pub arg: Option<ColRef>,
    /// `DISTINCT`?
    pub distinct: bool,
}

/// A QGM scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// Column `ordinal` of a base table; appears only in BaseTable box outputs.
    BaseCol(usize),
    /// An input column reference (QNC).
    Col(ColRef),
    /// A literal.
    Lit(Value),
    /// Binary operation.
    Bin(BinOp, Box<ScalarExpr>, Box<ScalarExpr>),
    /// Unary operation.
    Un(UnOp, Box<ScalarExpr>),
    /// Scalar built-in function.
    Func(ScalarFunc, Vec<ScalarExpr>),
    /// Searched/simple CASE.
    Case {
        /// Comparand for simple CASE.
        operand: Option<Box<ScalarExpr>>,
        /// `(when, then)` arms.
        arms: Vec<(ScalarExpr, ScalarExpr)>,
        /// ELSE branch.
        else_expr: Option<Box<ScalarExpr>>,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<ScalarExpr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `expr [NOT] LIKE 'pattern'`.
    Like {
        /// Tested expression.
        expr: Box<ScalarExpr>,
        /// Literal pattern with `%`/`_` wildcards.
        pattern: String,
        /// True for `NOT LIKE`.
        negated: bool,
    },
    /// Aggregate call; appears only in GROUP BY box outputs.
    Agg(AggCall),
    /// An aggregate over a *general* argument expression. This never appears
    /// in stored QGM graphs (aggregate arguments are simple columns there);
    /// it exists for the matcher's expression-translation machinery
    /// (Section 6), where pushing an expression through a GROUP BY
    /// compensation box turns `cnt` into `SUM(cnt-expression)` (Figure 15).
    GeneralAgg {
        /// The aggregate function.
        func: AggFunc,
        /// Argument; `None` only for `COUNT(*)`.
        arg: Option<Box<ScalarExpr>>,
        /// `DISTINCT`?
        distinct: bool,
    },
}

impl ScalarExpr {
    /// Shorthand for a column reference.
    pub fn col(qid: QuantId, ordinal: usize) -> ScalarExpr {
        ScalarExpr::Col(ColRef { qid, ordinal })
    }

    /// Shorthand for a binary expression.
    pub fn bin(op: BinOp, l: ScalarExpr, r: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Bin(op, Box::new(l), Box::new(r))
    }

    /// Visit every node pre-order. The callback returns `false` to prune the
    /// walk below a node.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a ScalarExpr) -> bool) {
        if !f(self) {
            return;
        }
        match self {
            ScalarExpr::BaseCol(_)
            | ScalarExpr::Col(_)
            | ScalarExpr::Lit(_)
            | ScalarExpr::Agg(_) => {}
            ScalarExpr::Bin(_, l, r) => {
                l.walk(f);
                r.walk(f);
            }
            ScalarExpr::Un(_, e) => e.walk(f),
            ScalarExpr::GeneralAgg { arg, .. } => {
                if let Some(a) = arg {
                    a.walk(f);
                }
            }
            ScalarExpr::Func(_, args) => {
                for a in args {
                    a.walk(f);
                }
            }
            ScalarExpr::Case {
                operand,
                arms,
                else_expr,
            } => {
                if let Some(op) = operand {
                    op.walk(f);
                }
                for (w, t) in arms {
                    w.walk(f);
                    t.walk(f);
                }
                if let Some(e) = else_expr {
                    e.walk(f);
                }
            }
            ScalarExpr::IsNull { expr, .. } | ScalarExpr::Like { expr, .. } => expr.walk(f),
        }
    }

    /// Collect every [`ColRef`] in the expression, including aggregate
    /// arguments.
    pub fn col_refs(&self) -> Vec<ColRef> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            match e {
                ScalarExpr::Col(c) => out.push(*c),
                ScalarExpr::Agg(a) => {
                    if let Some(c) = a.arg {
                        out.push(c);
                    }
                }
                _ => {}
            }
            true
        });
        out
    }

    /// Rewrite every column reference bottom-up with `f`; `f` returns the
    /// replacement *expression* for the reference, enabling substitution of
    /// whole subtrees (the translation mechanism of Section 6 builds on this).
    ///
    /// Aggregate argument references are NOT rewritten by this function —
    /// aggregate rewriting has bespoke rules (Section 4.1.2) and is handled
    /// by the matcher.
    pub fn map_cols(&self, f: &mut impl FnMut(ColRef) -> ScalarExpr) -> ScalarExpr {
        match self {
            ScalarExpr::Col(c) => f(*c),
            ScalarExpr::BaseCol(i) => ScalarExpr::BaseCol(*i),
            ScalarExpr::Lit(v) => ScalarExpr::Lit(v.clone()),
            ScalarExpr::Bin(op, l, r) => ScalarExpr::bin(*op, l.map_cols(f), r.map_cols(f)),
            ScalarExpr::Un(op, e) => ScalarExpr::Un(*op, Box::new(e.map_cols(f))),
            ScalarExpr::GeneralAgg {
                func,
                arg,
                distinct,
            } => ScalarExpr::GeneralAgg {
                func: *func,
                arg: arg.as_ref().map(|a| Box::new(a.map_cols(f))),
                distinct: *distinct,
            },
            ScalarExpr::Func(func, args) => {
                ScalarExpr::Func(*func, args.iter().map(|a| a.map_cols(f)).collect())
            }
            ScalarExpr::Case {
                operand,
                arms,
                else_expr,
            } => ScalarExpr::Case {
                operand: operand.as_ref().map(|o| Box::new(o.map_cols(f))),
                arms: arms
                    .iter()
                    .map(|(w, t)| (w.map_cols(f), t.map_cols(f)))
                    .collect(),
                else_expr: else_expr.as_ref().map(|e| Box::new(e.map_cols(f))),
            },
            ScalarExpr::IsNull { expr, negated } => ScalarExpr::IsNull {
                expr: Box::new(expr.map_cols(f)),
                negated: *negated,
            },
            ScalarExpr::Like {
                expr,
                pattern,
                negated,
            } => ScalarExpr::Like {
                expr: Box::new(expr.map_cols(f)),
                pattern: pattern.clone(),
                negated: *negated,
            },
            ScalarExpr::Agg(a) => ScalarExpr::Agg(*a),
        }
    }

    /// True if the expression contains any aggregate call.
    pub fn contains_agg(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if matches!(e, ScalarExpr::Agg(_) | ScalarExpr::GeneralAgg { .. }) {
                found = true;
                return false;
            }
            true
        });
        found
    }

    /// Split a predicate into its top-level AND conjuncts.
    pub fn split_conjuncts(self) -> Vec<ScalarExpr> {
        match self {
            ScalarExpr::Bin(BinOp::And, l, r) => {
                let mut out = l.split_conjuncts();
                out.extend(r.split_conjuncts());
                out
            }
            other => vec![other],
        }
    }

    /// Re-join conjuncts with AND; `TRUE` for an empty list.
    pub fn and_all(conjuncts: Vec<ScalarExpr>) -> ScalarExpr {
        let mut it = conjuncts.into_iter();
        match it.next() {
            None => ScalarExpr::Lit(Value::Bool(true)),
            Some(first) => it.fold(first, |acc, c| ScalarExpr::bin(BinOp::And, acc, c)),
        }
    }

    /// Structural normalization that makes syntactically different but
    /// trivially equivalent expressions compare equal:
    ///
    /// * operands of commutative operators (`+`, `*`, `=`, `<>`, `AND`, `OR`)
    ///   are sorted by a stable structural key;
    /// * comparisons are oriented so the structurally smaller side is first
    ///   (`10 < x` becomes `x > 10`);
    /// * double negation is removed.
    ///
    /// The matcher compares normalized forms; normalization is idempotent.
    pub fn normalize(&self) -> ScalarExpr {
        match self {
            ScalarExpr::Bin(op, l, r) => {
                let ln = l.normalize();
                let rn = r.normalize();
                match op {
                    BinOp::Add | BinOp::Mul | BinOp::Eq | BinOp::NotEq | BinOp::And | BinOp::Or => {
                        if expr_key(&rn) < expr_key(&ln) {
                            ScalarExpr::bin(*op, rn, ln)
                        } else {
                            ScalarExpr::bin(*op, ln, rn)
                        }
                    }
                    BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
                        if expr_key(&rn) < expr_key(&ln) {
                            ScalarExpr::bin(flip_comparison(*op), rn, ln)
                        } else {
                            ScalarExpr::bin(*op, ln, rn)
                        }
                    }
                    _ => ScalarExpr::bin(*op, ln, rn),
                }
            }
            ScalarExpr::Un(UnOp::Not, inner) => {
                let n = inner.normalize();
                if let ScalarExpr::Un(UnOp::Not, inner2) = n {
                    *inner2
                } else {
                    ScalarExpr::Un(UnOp::Not, Box::new(n))
                }
            }
            ScalarExpr::Un(op, e) => ScalarExpr::Un(*op, Box::new(e.normalize())),
            ScalarExpr::GeneralAgg {
                func,
                arg,
                distinct,
            } => ScalarExpr::GeneralAgg {
                func: *func,
                arg: arg.as_ref().map(|a| Box::new(a.normalize())),
                distinct: *distinct,
            },
            ScalarExpr::Func(f, args) => {
                ScalarExpr::Func(*f, args.iter().map(ScalarExpr::normalize).collect())
            }
            ScalarExpr::Case {
                operand,
                arms,
                else_expr,
            } => ScalarExpr::Case {
                operand: operand.as_ref().map(|o| Box::new(o.normalize())),
                arms: arms
                    .iter()
                    .map(|(w, t)| (w.normalize(), t.normalize()))
                    .collect(),
                else_expr: else_expr.as_ref().map(|e| Box::new(e.normalize())),
            },
            ScalarExpr::IsNull { expr, negated } => ScalarExpr::IsNull {
                expr: Box::new(expr.normalize()),
                negated: *negated,
            },
            ScalarExpr::Like {
                expr,
                pattern,
                negated,
            } => ScalarExpr::Like {
                expr: Box::new(expr.normalize()),
                pattern: pattern.clone(),
                negated: *negated,
            },
            other => other.clone(),
        }
    }
}

/// Mirror a comparison operator (`a < b` ⇔ `b > a`).
pub fn flip_comparison(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::LtEq => BinOp::GtEq,
        BinOp::Gt => BinOp::Lt,
        BinOp::GtEq => BinOp::LtEq,
        other => other,
    }
}

/// A stable ordering key for commutative-operand sorting: the debug rendering
/// is structural and deterministic, which is all we need.
fn expr_key(e: &ScalarExpr) -> String {
    format!("{e:?}")
}

impl std::fmt::Display for ColRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}.{}#{}", self.qid.graph.0, self.qid.idx, self.ordinal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{GraphId, QuantId};

    fn q(idx: u32) -> QuantId {
        QuantId {
            graph: GraphId(7),
            idx,
        }
    }

    #[test]
    fn split_and_join_conjuncts() {
        let e = ScalarExpr::bin(
            BinOp::And,
            ScalarExpr::bin(
                BinOp::And,
                ScalarExpr::col(q(0), 0),
                ScalarExpr::col(q(0), 1),
            ),
            ScalarExpr::col(q(0), 2),
        );
        let parts = e.clone().split_conjuncts();
        assert_eq!(parts.len(), 3);
        let rejoined = ScalarExpr::and_all(parts);
        assert_eq!(rejoined.clone().split_conjuncts().len(), 3);
        assert_eq!(
            ScalarExpr::and_all(vec![]),
            ScalarExpr::Lit(Value::Bool(true))
        );
    }

    #[test]
    fn normalize_orients_comparisons() {
        // 10 < x  ==>  x > 10
        let a = ScalarExpr::bin(
            BinOp::Lt,
            ScalarExpr::Lit(Value::Int(10)),
            ScalarExpr::col(q(1), 0),
        );
        let b = ScalarExpr::bin(
            BinOp::Gt,
            ScalarExpr::col(q(1), 0),
            ScalarExpr::Lit(Value::Int(10)),
        );
        assert_eq!(a.normalize(), b.normalize());
    }

    #[test]
    fn normalize_sorts_commutative_operands() {
        let ab = ScalarExpr::bin(
            BinOp::Mul,
            ScalarExpr::col(q(0), 0),
            ScalarExpr::col(q(0), 1),
        );
        let ba = ScalarExpr::bin(
            BinOp::Mul,
            ScalarExpr::col(q(0), 1),
            ScalarExpr::col(q(0), 0),
        );
        assert_eq!(ab.normalize(), ba.normalize());
        // Subtraction is NOT commutative.
        let s1 = ScalarExpr::bin(
            BinOp::Sub,
            ScalarExpr::col(q(0), 0),
            ScalarExpr::col(q(0), 1),
        );
        let s2 = ScalarExpr::bin(
            BinOp::Sub,
            ScalarExpr::col(q(0), 1),
            ScalarExpr::col(q(0), 0),
        );
        assert_ne!(s1.normalize(), s2.normalize());
    }

    #[test]
    fn normalize_is_idempotent() {
        let e = ScalarExpr::bin(
            BinOp::Eq,
            ScalarExpr::bin(
                BinOp::Add,
                ScalarExpr::col(q(2), 3),
                ScalarExpr::col(q(0), 1),
            ),
            ScalarExpr::Un(
                UnOp::Not,
                Box::new(ScalarExpr::Un(
                    UnOp::Not,
                    Box::new(ScalarExpr::col(q(1), 0)),
                )),
            ),
        );
        let n1 = e.normalize();
        assert_eq!(n1.normalize(), n1);
    }

    #[test]
    fn col_refs_include_agg_args() {
        let agg = ScalarExpr::Agg(AggCall {
            func: AggFunc::Sum,
            arg: Some(ColRef {
                qid: q(4),
                ordinal: 2,
            }),
            distinct: false,
        });
        let refs = agg.col_refs();
        assert_eq!(refs.len(), 1);
        assert_eq!(refs[0].ordinal, 2);
    }

    #[test]
    fn map_cols_substitutes_subtrees() {
        let e = ScalarExpr::bin(
            BinOp::Add,
            ScalarExpr::col(q(0), 0),
            ScalarExpr::Lit(Value::Int(1)),
        );
        let mapped = e.map_cols(&mut |c| {
            assert_eq!(c.ordinal, 0);
            ScalarExpr::bin(
                BinOp::Mul,
                ScalarExpr::col(q(9), 5),
                ScalarExpr::Lit(Value::Int(2)),
            )
        });
        assert!(matches!(mapped, ScalarExpr::Bin(BinOp::Add, _, _)));
        assert_eq!(mapped.col_refs()[0].qid, q(9));
    }

    #[test]
    fn contains_agg_detects_nesting() {
        let agg = ScalarExpr::Agg(AggCall {
            func: AggFunc::Count,
            arg: None,
            distinct: false,
        });
        let e = ScalarExpr::bin(BinOp::Gt, agg, ScalarExpr::Lit(Value::Int(2)));
        assert!(e.contains_agg());
        assert!(!ScalarExpr::col(q(0), 0).contains_agg());
    }
}
