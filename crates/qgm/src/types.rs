//! Output type and nullability inference for QGM boxes.
//!
//! The matcher consumes nullability in two places: the aggregate derivation
//! rules of Section 4.1.2 (e.g. `COUNT(x) -> SUM(COUNT(z))` requires `x`
//! non-nullable when `z ≠ y`), and the lossless-extra-join test of Section
//! 4.1.1 (FK columns must be non-nullable). The engine and the AST
//! materializer consume the types to create backing tables.

use crate::expr::ScalarExpr;
use crate::graph::{BoxId, BoxKind, QgmGraph, QuantKind};
use std::collections::HashMap;
use sumtab_catalog::{Catalog, SqlType};
use sumtab_parser::{AggFunc, BinOp, ScalarFunc, UnOp};

/// Type and nullability of one output column. `ty == None` means the type
/// could not be determined (e.g. a bare NULL literal).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColMeta {
    /// Scalar type, when known.
    pub ty: Option<SqlType>,
    /// May the column be NULL?
    pub nullable: bool,
}

impl ColMeta {
    /// A known, non-nullable column.
    pub fn known(ty: SqlType) -> ColMeta {
        ColMeta {
            ty: Some(ty),
            nullable: false,
        }
    }
}

/// Infer output metadata for every box reachable from the root.
///
/// Graphs containing `SubsumerRef` boxes are not supported here (the matcher
/// carries its own metadata for those).
pub fn infer_output_types(g: &QgmGraph, catalog: &Catalog) -> HashMap<BoxId, Vec<ColMeta>> {
    let mut metas: HashMap<BoxId, Vec<ColMeta>> = HashMap::new();
    for b in g.topo_order() {
        let bx = g.boxed(b);
        let out = match &bx.kind {
            BoxKind::BaseTable { table } => {
                let t = catalog.table(table);
                bx.outputs
                    .iter()
                    .enumerate()
                    .map(|(i, _)| match t {
                        Some(t) => ColMeta {
                            ty: Some(t.columns[i].ty),
                            nullable: t.columns[i].nullable,
                        },
                        None => ColMeta {
                            ty: None,
                            nullable: true,
                        },
                    })
                    .collect()
            }
            BoxKind::Select(_) => bx
                .outputs
                .iter()
                .map(|c| infer_expr(g, b, &c.expr, &metas))
                .collect(),
            BoxKind::GroupBy(gb) => {
                let mut out = Vec::with_capacity(bx.outputs.len());
                for (i, c) in bx.outputs.iter().enumerate() {
                    let mut m = infer_expr(g, b, &c.expr, &metas);
                    // Grouping columns missing from some grouping set are
                    // NULL-padded there (Section 5).
                    if i < gb.items.len() && !gb.sets.iter().all(|s| s.contains(&i)) {
                        m.nullable = true;
                    }
                    out.push(m);
                }
                out
            }
            BoxKind::SubsumerRef { .. } => bx
                .outputs
                .iter()
                .map(|_| ColMeta {
                    ty: None,
                    nullable: true,
                })
                .collect(),
        };
        metas.insert(b, out);
    }
    metas
}

/// Infer the metadata of one expression evaluated in box `owner`.
pub fn infer_expr(
    g: &QgmGraph,
    owner: BoxId,
    e: &ScalarExpr,
    metas: &HashMap<BoxId, Vec<ColMeta>>,
) -> ColMeta {
    let _ = owner;
    match e {
        ScalarExpr::BaseCol(_) => ColMeta {
            ty: None,
            nullable: true,
        },
        ScalarExpr::Col(c) => {
            if c.qid.graph != g.id {
                return ColMeta {
                    ty: None,
                    nullable: true,
                };
            }
            let quant = g.quant(c.qid);
            let child = quant.input;
            let mut m = metas
                .get(&child)
                .and_then(|v| v.get(c.ordinal))
                .copied()
                .unwrap_or(ColMeta {
                    ty: None,
                    nullable: true,
                });
            // A scalar subquery over an empty input yields NULL.
            if quant.kind == QuantKind::Scalar {
                m.nullable = true;
            }
            m
        }
        ScalarExpr::Lit(v) => ColMeta {
            ty: v.sql_type(),
            nullable: v.is_null(),
        },
        ScalarExpr::Bin(op, l, r) => {
            let lm = infer_expr(g, owner, l, metas);
            let rm = infer_expr(g, owner, r, metas);
            let nullable = lm.nullable || rm.nullable;
            let ty = match op {
                BinOp::And | BinOp::Or => Some(SqlType::Bool),
                op if op.is_comparison() => Some(SqlType::Bool),
                BinOp::Mod => Some(SqlType::Int),
                BinOp::Div => match (lm.ty, rm.ty) {
                    (Some(a), Some(b)) => a.arith_result(b),
                    _ => None,
                },
                _ => match (lm.ty, rm.ty) {
                    (Some(a), Some(b)) => a.arith_result(b),
                    _ => None,
                },
            };
            // Division may produce NULL on a zero divisor — unless the
            // divisor is a provably non-zero literal (e.g. `year % 100`,
            // whose non-nullability cube slicing relies on).
            let nonzero_divisor = matches!(
                &**r,
                ScalarExpr::Lit(v) if v.as_f64().is_some_and(|x| x != 0.0)
            );
            let nullable =
                nullable || ((*op == BinOp::Div || *op == BinOp::Mod) && !nonzero_divisor);
            ColMeta { ty, nullable }
        }
        ScalarExpr::Un(UnOp::Neg, x) => infer_expr(g, owner, x, metas),
        ScalarExpr::Un(UnOp::Not, x) => ColMeta {
            ty: Some(SqlType::Bool),
            nullable: infer_expr(g, owner, x, metas).nullable,
        },
        ScalarExpr::Func(f, args) => {
            let am = args
                .first()
                .map(|a| infer_expr(g, owner, a, metas))
                .unwrap_or(ColMeta {
                    ty: None,
                    nullable: true,
                });
            match f {
                ScalarFunc::Year | ScalarFunc::Month | ScalarFunc::Day => ColMeta {
                    ty: Some(SqlType::Int),
                    nullable: am.nullable,
                },
                ScalarFunc::Abs => am,
                ScalarFunc::Upper | ScalarFunc::Lower => ColMeta {
                    ty: Some(SqlType::Varchar),
                    nullable: am.nullable,
                },
            }
        }
        ScalarExpr::Case {
            operand: _,
            arms,
            else_expr,
        } => {
            let mut ty = None;
            let mut nullable = else_expr.is_none();
            for (_, t) in arms {
                let m = infer_expr(g, owner, t, metas);
                ty = ty.or(m.ty);
                nullable |= m.nullable;
            }
            if let Some(el) = else_expr {
                let m = infer_expr(g, owner, el, metas);
                ty = ty.or(m.ty);
                nullable |= m.nullable;
            }
            ColMeta { ty, nullable }
        }
        ScalarExpr::IsNull { .. } => ColMeta {
            ty: Some(SqlType::Bool),
            nullable: false,
        },
        ScalarExpr::Like { expr, .. } => ColMeta {
            ty: Some(SqlType::Bool),
            nullable: infer_expr(g, owner, expr, metas).nullable,
        },
        ScalarExpr::GeneralAgg { func, arg, .. } => {
            let arg_meta = arg.as_ref().map(|a| infer_expr(g, owner, a, metas));
            match func {
                AggFunc::Count => ColMeta::known(SqlType::Int),
                _ => {
                    let m = arg_meta.unwrap_or(ColMeta {
                        ty: None,
                        nullable: true,
                    });
                    ColMeta {
                        ty: m.ty,
                        nullable: true,
                    }
                }
            }
        }
        ScalarExpr::Agg(a) => {
            let arg_meta = a
                .arg
                .map(|c| infer_expr(g, owner, &ScalarExpr::Col(c), metas));
            match a.func {
                AggFunc::Count => ColMeta::known(SqlType::Int),
                AggFunc::Sum | AggFunc::Min | AggFunc::Max | AggFunc::Avg => {
                    let m = arg_meta.unwrap_or(ColMeta {
                        ty: None,
                        nullable: true,
                    });
                    ColMeta {
                        ty: m.ty,
                        // NULL when every argument in the group is NULL (or,
                        // for a grand-total group, when the input is empty).
                        nullable: m.nullable || is_scalar_agg(g, owner),
                    }
                }
            }
        }
    }
}

/// True when `owner` is a GROUP BY box with a grand-total grouping set,
/// whose aggregate outputs can therefore see an empty input.
fn is_scalar_agg(g: &QgmGraph, owner: BoxId) -> bool {
    match &g.boxed(owner).kind {
        BoxKind::GroupBy(gb) => gb.sets.iter().any(|s| s.is_empty()),
        _ => false,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod tests {
    use super::*;
    use crate::build::build_query;
    use sumtab_catalog::Catalog;
    use sumtab_parser::parse_query;

    fn root_metas(sql: &str) -> Vec<ColMeta> {
        let cat = Catalog::credit_card_sample();
        let q = parse_query(sql).unwrap();
        let g = build_query(&q, &cat).unwrap();
        let metas = infer_output_types(&g, &cat);
        metas[&g.root].clone()
    }

    #[test]
    fn base_columns_flow_through() {
        let m = root_metas("select qty, price, state from trans, loc where flid = lid");
        assert_eq!(m[0], ColMeta::known(SqlType::Int));
        assert_eq!(m[1], ColMeta::known(SqlType::Double));
        assert_eq!(m[2], ColMeta::known(SqlType::Varchar));
    }

    #[test]
    fn arithmetic_widens() {
        let m = root_metas("select qty * price as v, qty + 1 as q2 from trans");
        assert_eq!(m[0].ty, Some(SqlType::Double));
        assert_eq!(m[1].ty, Some(SqlType::Int));
    }

    #[test]
    fn count_not_null_sum_follows_arg() {
        let m = root_metas("select count(*) as c, sum(qty) as s from trans group by faid");
        assert_eq!(m[0], ColMeta::known(SqlType::Int));
        assert_eq!(m[1].ty, Some(SqlType::Int));
        assert!(!m[1].nullable, "per-group sum over non-null arg");
    }

    #[test]
    fn scalar_agg_sum_is_nullable() {
        let m = root_metas("select sum(qty) as s from trans");
        assert!(m[0].nullable, "sum over possibly-empty input is nullable");
    }

    #[test]
    fn grouping_set_padding_is_nullable() {
        let m = root_metas(
            "select flid, year(date) as y, count(*) as c from trans \
             group by grouping sets ((flid, year(date)), (flid))",
        );
        assert!(!m[0].nullable, "flid is in every set");
        assert!(
            m[1].nullable,
            "year is padded with NULL in the (flid) cuboid"
        );
        assert!(!m[2].nullable);
    }

    #[test]
    fn year_month_are_int() {
        let m = root_metas("select year(date) as y, month(date) as mo from trans");
        assert_eq!(m[0].ty, Some(SqlType::Int));
        assert_eq!(m[1].ty, Some(SqlType::Int));
        assert!(!m[0].nullable);
    }

    #[test]
    fn scalar_subquery_is_nullable() {
        let m = root_metas("select (select count(*) from loc) as c from trans");
        assert_eq!(m[0].ty, Some(SqlType::Int));
        assert!(m[0].nullable);
    }
}
