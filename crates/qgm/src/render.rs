//! QGM → SQL rendering.
//!
//! Produces executable SQL in the same dialect the parser accepts. Each
//! internal box renders as a `SELECT`; children render as derived tables.
//! HAVING predicates reappear as `WHERE` clauses over the grouped derived
//! table, which is equivalent. Used to display rewritten queries (the
//! `NewQ*` forms of the paper's figures) and for round-trip tests.

use crate::expr::{ColRef, ScalarExpr};
use crate::graph::{BoxId, BoxKind, QgmGraph, QuantId, QuantKind};
use sumtab_parser::{BinOp, UnOp};

/// Render the whole graph as a SQL query string.
pub fn render_graph_sql(g: &QgmGraph) -> String {
    let mut out = render_box(g, g.root);
    if !g.order.keys.is_empty() {
        let root = g.boxed(g.root);
        let keys: Vec<String> = g
            .order
            .keys
            .iter()
            .map(|&(ord, desc)| {
                format!(
                    "{}{}",
                    root.outputs[ord].name,
                    if desc { " DESC" } else { "" }
                )
            })
            .collect();
        // Wrap so ORDER BY refers to output names.
        out = format!("SELECT * FROM ({out}) AS q ORDER BY {}", keys.join(", "));
    }
    if let Some(n) = g.order.limit {
        out.push_str(&format!(" LIMIT {n}"));
    }
    out
}

/// Render one box as a complete `SELECT` statement.
pub fn render_box(g: &QgmGraph, b: BoxId) -> String {
    let bx = g.boxed(b);
    match &bx.kind {
        BoxKind::BaseTable { table } => {
            let cols: Vec<String> = bx.outputs.iter().map(|c| c.name.clone()).collect();
            format!("SELECT {} FROM {}", cols.join(", "), table)
        }
        BoxKind::SubsumerRef { .. } => "SELECT <subsumer>".to_string(),
        BoxKind::Select(sel) => {
            let mut s = String::from("SELECT ");
            if bx.outputs.is_empty() {
                s.push('1');
            }
            for (i, oc) in bx.outputs.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push_str(&render_expr(g, &oc.expr, 0));
                s.push_str(" AS ");
                s.push_str(&oc.name);
            }
            let from = render_from(g, b);
            if !from.is_empty() {
                s.push_str(" FROM ");
                s.push_str(&from);
            }
            if !sel.predicates.is_empty() {
                s.push_str(" WHERE ");
                let preds: Vec<String> = sel
                    .predicates
                    .iter()
                    .map(|p| render_expr(g, p, 3))
                    .collect();
                s.push_str(&preds.join(" AND "));
            }
            s
        }
        BoxKind::GroupBy(gb) => {
            let mut s = String::from("SELECT ");
            for (i, oc) in bx.outputs.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push_str(&render_expr(g, &oc.expr, 0));
                s.push_str(" AS ");
                s.push_str(&oc.name);
            }
            s.push_str(" FROM ");
            s.push_str(&render_from(g, b));
            if !gb.items.is_empty() || gb.sets.len() > 1 {
                s.push_str(" GROUP BY ");
                if gb.sets.len() == 1 && gb.sets[0].len() == gb.items.len() {
                    let cols: Vec<String> = gb.items.iter().map(|c| render_colref(g, *c)).collect();
                    s.push_str(&cols.join(", "));
                } else {
                    s.push_str("GROUPING SETS (");
                    for (i, set) in gb.sets.iter().enumerate() {
                        if i > 0 {
                            s.push_str(", ");
                        }
                        s.push('(');
                        let cols: Vec<String> = set
                            .iter()
                            .map(|&ix| render_colref(g, gb.items[ix]))
                            .collect();
                        s.push_str(&cols.join(", "));
                        s.push(')');
                    }
                    s.push(')');
                }
            }
            s
        }
    }
}

/// Render the FROM list for a box: each Foreach quantifier becomes a table
/// reference (base table name, or a parenthesized subquery).
fn render_from(g: &QgmGraph, b: BoxId) -> String {
    let bx = g.boxed(b);
    let mut parts = Vec::new();
    for (i, &q) in bx.quants.iter().enumerate() {
        let quant = g.quant(q);
        if quant.kind != QuantKind::Foreach {
            continue; // scalar subqueries render inline in expressions
        }
        let alias = quant_alias(g, q, i);
        match &g.boxed(quant.input).kind {
            BoxKind::BaseTable { table } => {
                if *table == alias {
                    parts.push(table.clone());
                } else {
                    parts.push(format!("{table} AS {alias}"));
                }
            }
            _ => parts.push(format!("({}) AS {}", render_box(g, quant.input), alias)),
        }
    }
    parts.join(", ")
}

/// A rendering alias for a quantifier, made unique within its owner box by
/// suffixing the quantifier index when names repeat.
fn quant_alias(g: &QgmGraph, q: QuantId, pos_in_owner: usize) -> String {
    let quant = g.quant(q);
    let owner = g.boxed(quant.owner);
    let dup = owner
        .quants
        .iter()
        .enumerate()
        .any(|(j, &other)| j != pos_in_owner && g.quant(other).name == quant.name);
    if dup {
        format!("{}_{}", quant.name, q.idx)
    } else {
        quant.name.clone()
    }
}

fn render_colref(g: &QgmGraph, c: ColRef) -> String {
    let quant = g.quant(c.qid);
    if quant.kind == QuantKind::Scalar {
        return format!("({})", render_box(g, quant.input));
    }
    let owner = g.boxed(quant.owner);
    let pos = owner
        .quants
        .iter()
        .position(|&x| x == c.qid)
        .unwrap_or(usize::MAX);
    let alias = quant_alias(g, c.qid, pos);
    let col = &g.boxed(quant.input).outputs[c.ordinal].name;
    format!("{alias}.{col}")
}

/// Precedence table mirroring the parser: OR=1, AND=2, NOT=3, cmp=4, add=5,
/// mul=6, unary=7.
fn prec_of(e: &ScalarExpr) -> u8 {
    match e {
        ScalarExpr::Bin(op, ..) => match op {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => 4,
            BinOp::Add | BinOp::Sub => 5,
            BinOp::Mul | BinOp::Div | BinOp::Mod => 6,
        },
        ScalarExpr::Un(UnOp::Not, _) => 3,
        ScalarExpr::IsNull { .. } | ScalarExpr::Like { .. } => 4,
        ScalarExpr::Un(UnOp::Neg, _) => 7,
        _ => 10,
    }
}

/// Render an expression in the context of graph `g`.
pub fn render_expr(g: &QgmGraph, e: &ScalarExpr, parent_prec: u8) -> String {
    let my_prec = prec_of(e);
    let body = match e {
        ScalarExpr::BaseCol(i) => format!("<base:{i}>"),
        ScalarExpr::Col(c) => render_colref(g, *c),
        ScalarExpr::Lit(v) => v.to_string(),
        ScalarExpr::Bin(op, l, r) => {
            // Comparisons are non-associative in the grammar, so both
            // operands need a strictly higher level; other binary operators
            // are left-associative.
            let left_prec = if op.is_comparison() {
                my_prec + 1
            } else {
                my_prec
            };
            format!(
                "{} {} {}",
                render_expr(g, l, left_prec),
                op.sql(),
                render_expr(g, r, my_prec + 1)
            )
        }
        ScalarExpr::Un(UnOp::Neg, x) => format!("-{}", render_expr(g, x, 8)),
        ScalarExpr::Un(UnOp::Not, x) => format!("NOT {}", render_expr(g, x, 4)),
        ScalarExpr::Func(f, args) => {
            let rendered: Vec<String> = args.iter().map(|a| render_expr(g, a, 0)).collect();
            format!("{}({})", f.sql(), rendered.join(", "))
        }
        ScalarExpr::Case {
            operand,
            arms,
            else_expr,
        } => {
            let mut s = String::from("CASE");
            if let Some(op) = operand {
                s.push(' ');
                s.push_str(&render_expr(g, op, 0));
            }
            for (w, t) in arms {
                s.push_str(&format!(
                    " WHEN {} THEN {}",
                    render_expr(g, w, 0),
                    render_expr(g, t, 0)
                ));
            }
            if let Some(el) = else_expr {
                s.push_str(&format!(" ELSE {}", render_expr(g, el, 0)));
            }
            s.push_str(" END");
            s
        }
        ScalarExpr::IsNull { expr, negated } => format!(
            "{} IS {}NULL",
            render_expr(g, expr, 5),
            if *negated { "NOT " } else { "" }
        ),
        ScalarExpr::Like {
            expr,
            pattern,
            negated,
        } => format!(
            "{} {}LIKE '{}'",
            render_expr(g, expr, 5),
            if *negated { "NOT " } else { "" },
            pattern
        ),
        ScalarExpr::Agg(a) => match a.arg {
            None => "COUNT(*)".to_string(),
            Some(c) => format!(
                "{}({}{})",
                a.func.sql(),
                if a.distinct { "DISTINCT " } else { "" },
                render_colref(g, c)
            ),
        },
        ScalarExpr::GeneralAgg {
            func,
            arg,
            distinct,
        } => match arg {
            None => "COUNT(*)".to_string(),
            Some(a) => format!(
                "{}({}{})",
                func.sql(),
                if *distinct { "DISTINCT " } else { "" },
                render_expr(g, a, 0)
            ),
        },
    };
    if my_prec < parent_prec {
        format!("({body})")
    } else {
        body
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod tests {
    use super::*;
    use crate::build::build_query;
    use sumtab_catalog::Catalog;
    use sumtab_parser::parse_query;

    fn rendered(sql: &str) -> String {
        let cat = Catalog::credit_card_sample();
        let q = parse_query(sql).unwrap();
        let g = build_query(&q, &cat).unwrap();
        render_graph_sql(&g)
    }

    #[test]
    fn rendered_sql_reparses_and_rebuilds() {
        for sql in [
            "select qty, price from trans where qty > 2",
            "select faid, count(*) as cnt from trans group by faid having count(*) > 100",
            "select year(date) as y, sum(qty * price) as v from trans group by year(date)",
            "select flid, (select count(*) from trans) as totcnt from trans group by flid",
            "select flid, year(date) as y, count(*) as cnt from trans \
             group by grouping sets ((flid, year(date)), (year(date)))",
            "select distinct state from loc",
        ] {
            let text = rendered(sql);
            let cat = Catalog::credit_card_sample();
            let q2 = parse_query(&text).unwrap_or_else(|e| panic!("reparse `{text}`: {e}"));
            build_query(&q2, &cat).unwrap_or_else(|e| panic!("rebuild `{text}`: {e}"));
        }
    }

    #[test]
    fn simple_select_mentions_table_and_predicate() {
        let text = rendered("select qty from trans where qty > 2");
        assert!(text.contains("FROM trans"), "{text}");
        assert!(text.contains("qty > 2"), "{text}");
    }

    #[test]
    fn group_by_renders_grouping_clause() {
        let text = rendered("select faid, count(*) as cnt from trans group by faid");
        assert!(text.contains("GROUP BY"), "{text}");
        assert!(text.contains("COUNT(*)"), "{text}");
    }

    #[test]
    fn grouping_sets_render() {
        let text = rendered(
            "select flid, year(date) as y from trans group by grouping sets ((flid), (year(date)))",
        );
        assert!(text.contains("GROUPING SETS"), "{text}");
    }

    #[test]
    fn order_by_wraps_query() {
        let text = rendered("select qty from trans order by qty desc limit 3");
        assert!(text.contains("ORDER BY qty DESC"), "{text}");
        assert!(text.ends_with("LIMIT 3"), "{text}");
    }
}
