//! The QGM graph arena: boxes, quantifiers, output columns.

use crate::expr::{ColRef, ScalarExpr};
use std::sync::atomic::{AtomicU32, Ordering};

/// Globally unique graph identity; tags every [`QuantId`] so expressions can
/// safely mix column spaces during matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GraphId(pub u32);

static NEXT_GRAPH_ID: AtomicU32 = AtomicU32::new(1);

/// Index of a box within its graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BoxId(pub u32);

/// A quantifier id, tagged with its owning graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QuantId {
    /// Owning graph.
    pub graph: GraphId,
    /// Index into that graph's quantifier arena.
    pub idx: u32,
}

/// How a quantifier ranges over its input box.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuantKind {
    /// Ranges over every row (join operand).
    Foreach,
    /// A scalar subquery: must produce exactly one row and one column.
    Scalar,
}

/// A quantifier: the edge from a consumer box to a producer box.
#[derive(Debug, Clone)]
pub struct Quantifier {
    /// The consuming box.
    pub owner: BoxId,
    /// The producing box.
    pub input: BoxId,
    /// Row semantics.
    pub kind: QuantKind,
    /// Correlation name, used for rendering and debugging.
    pub name: String,
}

/// One output column (QCL) of a box.
#[derive(Debug, Clone)]
pub struct OutputCol {
    /// Exposed column name.
    pub name: String,
    /// Defining expression over the box's own quantifiers.
    pub expr: ScalarExpr,
}

/// A SELECT box: select-project-join with predicates.
#[derive(Debug, Clone, Default)]
pub struct SelectBox {
    /// The conjunctive predicates (WHERE/HAVING conjuncts, join predicates).
    pub predicates: Vec<ScalarExpr>,
}

/// A GROUP BY box, possibly multidimensional.
///
/// Output layout invariant: outputs `0..items.len()` are exactly the grouping
/// columns (`Col(items[i])` in order), and the remaining outputs are
/// aggregate calls.
#[derive(Debug, Clone)]
pub struct GroupByBox {
    /// The grouping columns (simple QNCs of the single child), i.e. the union
    /// grouping set GS of Section 5.
    pub items: Vec<ColRef>,
    /// Canonical grouping sets: each is a sorted list of indices into
    /// `items`. A simple GROUP BY has exactly one set covering all items;
    /// `sets == [[]]` is the single grand-total group.
    pub sets: Vec<Vec<usize>>,
}

impl GroupByBox {
    /// True when this box performs plain (single-set, all-items) grouping.
    pub fn is_simple(&self) -> bool {
        self.sets.len() == 1 && self.sets[0].len() == self.items.len()
    }
}

/// Box payloads.
#[derive(Debug, Clone)]
pub enum BoxKind {
    /// A base-table leaf.
    BaseTable {
        /// Catalog table name.
        table: String,
    },
    /// Select-project-join.
    Select(SelectBox),
    /// Grouping and aggregation.
    GroupBy(GroupByBox),
    /// Matcher-internal leaf standing for "the output of the subsumer box".
    /// Never present in translator-produced or final rewritten graphs.
    SubsumerRef {
        /// The graph that owns the subsumer box.
        graph: GraphId,
        /// The subsumer box.
        target: BoxId,
    },
}

/// A QGM box.
#[derive(Debug, Clone)]
pub struct QgmBox {
    /// Operation payload.
    pub kind: BoxKind,
    /// Quantifiers owned by this box, in join order.
    pub quants: Vec<QuantId>,
    /// Output columns (QCLs).
    pub outputs: Vec<OutputCol>,
}

impl QgmBox {
    /// True for SELECT boxes.
    pub fn is_select(&self) -> bool {
        matches!(self.kind, BoxKind::Select(_))
    }

    /// True for GROUP BY boxes.
    pub fn is_group_by(&self) -> bool {
        matches!(self.kind, BoxKind::GroupBy(_))
    }

    /// The SELECT payload, if any.
    pub fn as_select(&self) -> Option<&SelectBox> {
        match &self.kind {
            BoxKind::Select(s) => Some(s),
            _ => None,
        }
    }

    /// The GROUP BY payload, if any.
    pub fn as_group_by(&self) -> Option<&GroupByBox> {
        match &self.kind {
            BoxKind::GroupBy(g) => Some(g),
            _ => None,
        }
    }

    /// Ordinal of the named output column.
    pub fn output_index(&self, name: &str) -> Option<usize> {
        let lname = name.to_ascii_lowercase();
        self.outputs.iter().position(|c| c.name == lname)
    }
}

/// Ordering/limit decoration on the root box (presentation only; ignored by
/// matching, honored by the engine).
#[derive(Debug, Clone, Default)]
pub struct RootOrder {
    /// `(output ordinal, descending)` sort keys.
    pub keys: Vec<(usize, bool)>,
    /// Row limit.
    pub limit: Option<u64>,
}

/// An arena-allocated QGM graph.
#[derive(Debug, Clone)]
pub struct QgmGraph {
    /// Unique identity.
    pub id: GraphId,
    /// Box arena.
    pub boxes: Vec<QgmBox>,
    /// Quantifier arena.
    pub quants: Vec<Quantifier>,
    /// The root box.
    pub root: BoxId,
    /// Presentation ordering attached to the root.
    pub order: RootOrder,
}

impl Default for QgmGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl QgmGraph {
    /// An empty graph with a fresh identity. `root` starts at box 0; set it
    /// after adding boxes.
    pub fn new() -> QgmGraph {
        QgmGraph {
            id: GraphId(NEXT_GRAPH_ID.fetch_add(1, Ordering::Relaxed)),
            boxes: Vec::new(),
            quants: Vec::new(),
            root: BoxId(0),
            order: RootOrder::default(),
        }
    }

    /// Add a box and return its id.
    pub fn add_box(&mut self, kind: BoxKind) -> BoxId {
        let id = BoxId(self.boxes.len() as u32);
        self.boxes.push(QgmBox {
            kind,
            quants: Vec::new(),
            outputs: Vec::new(),
        });
        id
    }

    /// Add a quantifier from `owner` over `input` and register it on the
    /// owner box.
    pub fn add_quant(
        &mut self,
        owner: BoxId,
        input: BoxId,
        kind: QuantKind,
        name: impl Into<String>,
    ) -> QuantId {
        let qid = QuantId {
            graph: self.id,
            idx: self.quants.len() as u32,
        };
        self.quants.push(Quantifier {
            owner,
            input,
            kind,
            name: name.into(),
        });
        self.boxes[owner.0 as usize].quants.push(qid);
        qid
    }

    /// The box with the given id.
    pub fn boxed(&self, id: BoxId) -> &QgmBox {
        &self.boxes[id.0 as usize]
    }

    /// Mutable access to a box.
    pub fn boxed_mut(&mut self, id: BoxId) -> &mut QgmBox {
        &mut self.boxes[id.0 as usize]
    }

    /// The quantifier with the given id (must belong to this graph).
    pub fn quant(&self, q: QuantId) -> &Quantifier {
        assert_eq!(q.graph, self.id, "quantifier from foreign graph");
        &self.quants[q.idx as usize]
    }

    /// The box a quantifier ranges over.
    pub fn input_of(&self, q: QuantId) -> BoxId {
        self.quant(q).input
    }

    /// The defining expression of the QCL a column reference points at.
    pub fn qcl_expr(&self, c: ColRef) -> &ScalarExpr {
        let input = self.input_of(c.qid);
        &self.boxed(input).outputs[c.ordinal].expr
    }

    /// Number of quantifiers (across all boxes) that consume `b`.
    pub fn consumer_count(&self, b: BoxId) -> usize {
        self.quants.iter().filter(|q| q.input == b).count()
    }

    /// Boxes reachable from the root, in bottom-up (post) order.
    pub fn topo_order(&self) -> Vec<BoxId> {
        let mut visited = vec![false; self.boxes.len()];
        let mut out = Vec::new();
        self.visit_post(self.root, &mut visited, &mut out);
        out
    }

    fn visit_post(&self, b: BoxId, visited: &mut [bool], out: &mut Vec<BoxId>) {
        if visited[b.0 as usize] {
            return;
        }
        visited[b.0 as usize] = true;
        for &q in &self.boxed(b).quants.clone() {
            self.visit_post(self.input_of(q), visited, out);
        }
        out.push(b);
    }

    /// Copy the subgraph rooted at `src_root` in `src` into `self`,
    /// remapping box and quantifier ids. Returns the new root id.
    ///
    /// `SubsumerRef` leaves are copied verbatim (their targets reference a
    /// *foreign* graph by design).
    pub fn clone_subgraph(&mut self, src: &QgmGraph, src_root: BoxId) -> BoxId {
        let mut box_map: std::collections::HashMap<BoxId, BoxId> = std::collections::HashMap::new();
        self.clone_rec(src, src_root, &mut box_map)
    }

    fn clone_rec(
        &mut self,
        src: &QgmGraph,
        b: BoxId,
        box_map: &mut std::collections::HashMap<BoxId, BoxId>,
    ) -> BoxId {
        if let Some(&nb) = box_map.get(&b) {
            return nb;
        }
        let src_box = src.boxed(b);
        let new_id = self.add_box(src_box.kind.clone());
        box_map.insert(b, new_id);
        // Clone children first, creating remapped quantifiers.
        let mut quant_map: std::collections::HashMap<QuantId, QuantId> =
            std::collections::HashMap::new();
        for &q in &src_box.quants.clone() {
            let src_q = src.quant(q);
            let new_child = self.clone_rec(src, src_q.input, box_map);
            let new_q = self.add_quant(new_id, new_child, src_q.kind, src_q.name.clone());
            quant_map.insert(q, new_q);
        }
        // Remap expressions.
        let remap = |e: &ScalarExpr| -> ScalarExpr { remap_expr(e, &quant_map) };
        let src_box = src.boxed(b); // re-borrow after mutation
        let outputs = src_box
            .outputs
            .iter()
            .map(|c| OutputCol {
                name: c.name.clone(),
                expr: remap(&c.expr),
            })
            .collect();
        self.boxed_mut(new_id).outputs = outputs;
        let new_kind = match &src.boxed(b).kind {
            BoxKind::Select(s) => BoxKind::Select(SelectBox {
                predicates: s.predicates.iter().map(remap).collect(),
            }),
            BoxKind::GroupBy(g) => BoxKind::GroupBy(GroupByBox {
                items: g
                    .items
                    .iter()
                    .map(|c| ColRef {
                        qid: quant_map[&c.qid],
                        ordinal: c.ordinal,
                    })
                    .collect(),
                sets: g.sets.clone(),
            }),
            other => other.clone(),
        };
        self.boxed_mut(new_id).kind = new_kind;
        new_id
    }

    /// Structural sanity checks; panics with a description on violation.
    /// Call from tests and after graph surgery; library code should prefer
    /// [`crate::verify::verify_structure`].
    pub fn validate(&self) {
        if let Err(e) = crate::verify::verify_structure(self) {
            panic!("invalid QGM graph: {e}");
        }
    }
}

/// Remap quantifier ids in an expression according to `quant_map`; ids
/// missing from the map (foreign-graph references) are kept as-is.
pub fn remap_expr(
    e: &ScalarExpr,
    quant_map: &std::collections::HashMap<QuantId, QuantId>,
) -> ScalarExpr {
    match e {
        ScalarExpr::Agg(a) => {
            let arg = a.arg.map(|c| ColRef {
                qid: quant_map.get(&c.qid).copied().unwrap_or(c.qid),
                ordinal: c.ordinal,
            });
            ScalarExpr::Agg(crate::expr::AggCall { arg, ..*a })
        }
        other => other.map_cols(&mut |c| {
            ScalarExpr::Col(ColRef {
                qid: quant_map.get(&c.qid).copied().unwrap_or(c.qid),
                ordinal: c.ordinal,
            })
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sumtab_catalog::Value;
    use sumtab_parser::BinOp;

    /// Build a tiny graph: BaseTable -> Select(root).
    fn tiny() -> QgmGraph {
        let mut g = QgmGraph::new();
        let t = g.add_box(BoxKind::BaseTable { table: "t".into() });
        g.boxed_mut(t).outputs = vec![
            OutputCol {
                name: "a".into(),
                expr: ScalarExpr::BaseCol(0),
            },
            OutputCol {
                name: "b".into(),
                expr: ScalarExpr::BaseCol(1),
            },
        ];
        let s = g.add_box(BoxKind::Select(SelectBox::default()));
        let q = g.add_quant(s, t, QuantKind::Foreach, "t");
        g.boxed_mut(s).outputs = vec![OutputCol {
            name: "a".into(),
            expr: ScalarExpr::col(q, 0),
        }];
        if let BoxKind::Select(sel) = &mut g.boxed_mut(s).kind {
            sel.predicates.push(ScalarExpr::bin(
                BinOp::Gt,
                ScalarExpr::col(q, 1),
                ScalarExpr::Lit(Value::Int(5)),
            ));
        }
        g.root = s;
        g
    }

    #[test]
    fn build_and_validate() {
        let g = tiny();
        g.validate();
        assert_eq!(g.topo_order().len(), 2);
        assert_eq!(g.consumer_count(BoxId(0)), 1);
        assert_eq!(g.consumer_count(g.root), 0);
    }

    #[test]
    fn qcl_expr_resolves_through_quantifier() {
        let g = tiny();
        let root = g.boxed(g.root);
        let c = match &root.outputs[0].expr {
            ScalarExpr::Col(c) => *c,
            other => panic!("{other:?}"),
        };
        assert_eq!(*g.qcl_expr(c), ScalarExpr::BaseCol(0));
    }

    #[test]
    fn clone_subgraph_remaps_ids() {
        let g = tiny();
        let mut dst = QgmGraph::new();
        let new_root = dst.clone_subgraph(&g, g.root);
        dst.root = new_root;
        dst.validate();
        assert_eq!(dst.boxes.len(), 2);
        assert_eq!(dst.quants.len(), 1);
        // All colrefs belong to dst now.
        for b in &dst.boxes {
            for c in &b.outputs {
                for r in c.expr.col_refs() {
                    assert_eq!(r.qid.graph, dst.id);
                }
            }
        }
    }

    #[test]
    fn clone_shares_common_subtrees() {
        // Diamond: two selects over one base table, joined above.
        let mut g = QgmGraph::new();
        let t = g.add_box(BoxKind::BaseTable { table: "t".into() });
        g.boxed_mut(t).outputs = vec![OutputCol {
            name: "a".into(),
            expr: ScalarExpr::BaseCol(0),
        }];
        let top = g.add_box(BoxKind::Select(SelectBox::default()));
        let q1 = g.add_quant(top, t, QuantKind::Foreach, "t1");
        let q2 = g.add_quant(top, t, QuantKind::Foreach, "t2");
        g.boxed_mut(top).outputs = vec![
            OutputCol {
                name: "x".into(),
                expr: ScalarExpr::col(q1, 0),
            },
            OutputCol {
                name: "y".into(),
                expr: ScalarExpr::col(q2, 0),
            },
        ];
        g.root = top;
        g.validate();
        let mut dst = QgmGraph::new();
        let r = dst.clone_subgraph(&g, g.root);
        dst.root = r;
        dst.validate();
        // The shared base table is cloned once, referenced twice.
        assert_eq!(dst.boxes.len(), 2);
        assert_eq!(dst.quants.len(), 2);
    }

    #[test]
    fn group_by_simple_detection() {
        let gb = GroupByBox {
            items: vec![],
            sets: vec![vec![]],
        };
        assert!(gb.is_simple());
        let gb2 = GroupByBox {
            items: vec![ColRef {
                qid: QuantId {
                    graph: GraphId(1),
                    idx: 0,
                },
                ordinal: 0,
            }],
            sets: vec![vec![0], vec![]],
        };
        assert!(!gb2.is_simple());
    }

    #[test]
    #[should_panic(expected = "foreign quantifier")]
    fn validate_catches_foreign_refs() {
        let mut g = tiny();
        let alien = QuantId {
            graph: GraphId(99_999),
            idx: 0,
        };
        g.boxed_mut(g.root).outputs[0].expr = ScalarExpr::col(alien, 0);
        g.validate();
    }
}
