//! A small, dependency-free pseudo-random number generator.
//!
//! The workspace is built offline/hermetically, so the generator cannot pull
//! in `rand`. This is Steele/Lea/Flood's SplitMix64 — a 64-bit mixing
//! function with a simple additive state update. It is statistically strong
//! enough for workload generation and deterministic test-case mutation, and
//! its output is fully determined by the seed, which keeps generated
//! databases reproducible across platforms and Rust versions (unlike
//! `rand::StdRng`, whose stream is only stable per rand major version).
//!
//! Not cryptographically secure; do not use for anything security-relevant.

/// SplitMix64 PRNG. Equal seeds produce equal streams, forever.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform index in `0..n`. `n` must be nonzero.
    ///
    /// Uses Lemire's multiply-shift reduction with a rejection loop, so the
    /// distribution is exactly uniform (no modulo bias).
    pub fn gen_index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "gen_index bound must be nonzero");
        let n = n as u64;
        // Rejection threshold: the smallest k with k * n >= 2^64 - ... —
        // equivalently reject x when x * n's low half < 2^64 % n.
        let zone = n.wrapping_neg() % n;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            if (m as u64) >= zone {
                return (m >> 64) as usize;
            }
        }
    }

    /// A uniform integer in the inclusive range `[lo, hi]`.
    pub fn gen_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi, "gen_i64 range must be non-empty");
        let span = (hi as i128 - lo as i128 + 1) as u64;
        if span == 0 {
            // Full i64 range: every u64 maps to a distinct i64.
            return self.next_u64() as i64;
        }
        lo.wrapping_add(self.gen_index(span as usize) as i64)
    }

    /// A uniform double in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A reference to a uniformly chosen element of `items`.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.gen_index(items.len())]
    }

    /// A random subsequence of `0..n` with between `min` and `max` elements
    /// (order-preserving, without replacement).
    pub fn subsequence(&mut self, n: usize, min: usize, max: usize) -> Vec<usize> {
        let max = max.min(n);
        let min = min.min(max);
        let take = self.gen_i64(min as i64, max as i64) as usize;
        let mut pool: Vec<usize> = (0..n).collect();
        // Partial Fisher–Yates: draw `take` distinct indices, then restore
        // ascending order.
        for i in 0..take {
            let j = i + self.gen_index(n - i);
            pool.swap(i, j);
        }
        let mut picked = pool[..take].to_vec();
        picked.sort_unstable();
        picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = (0..8).map(|_| SplitMix64::new(1).next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| SplitMix64::new(1).next_u64()).collect();
        assert_eq!(a, b);
        let mut r1 = SplitMix64::new(1);
        let mut r2 = SplitMix64::new(2);
        assert_ne!(r1.next_u64(), r2.next_u64());
    }

    #[test]
    fn known_answer_vector() {
        // Reference outputs for seed 0 (cross-checked against the published
        // SplitMix64 algorithm); guards against accidental stream changes,
        // which would silently alter every generated database.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SplitMix64::new(42);
        for _ in 0..10_000 {
            let i = r.gen_index(7);
            assert!(i < 7);
            let v = r.gen_i64(-3, 3);
            assert!((-3..=3).contains(&v));
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_index_is_roughly_uniform() {
        let mut r = SplitMix64::new(7);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[r.gen_index(5)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = SplitMix64::new(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.9)).count();
        assert!((8_800..9_200).contains(&hits), "got {hits}");
    }

    #[test]
    fn subsequence_is_sorted_distinct_and_bounded() {
        let mut r = SplitMix64::new(5);
        for _ in 0..1_000 {
            let s = r.subsequence(10, 1, 3);
            assert!(!s.is_empty() && s.len() <= 3);
            assert!(s.windows(2).all(|w| w[0] < w[1]), "{s:?}");
            assert!(s.iter().all(|&i| i < 10));
        }
    }
}
