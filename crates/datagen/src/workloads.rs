//! The paper's example workload: every query and AST from the figures, as
//! SQL over the credit-card schema. Shared by the integration tests, the
//! benchmarks, and the `paper-experiments` harness.

/// One figure's (query, AST, expectation) triple.
#[derive(Debug, Clone, Copy)]
pub struct FigureCase {
    /// Experiment id from DESIGN.md (e.g. "F2").
    pub id: &'static str,
    /// Short description.
    pub title: &'static str,
    /// The user query.
    pub query: &'static str,
    /// The AST definition.
    pub ast: &'static str,
    /// Whether the paper's algorithm finds a match.
    pub matches: bool,
}

/// Figure 2: AST1.
pub const AST1: &str = "select faid, flid, year(date) as year, count(*) as cnt \
     from trans group by faid, flid, year(date)";

/// Figure 2: Q1.
pub const Q1: &str = "select faid, state, year(date) as year, count(*) as cnt \
     from trans, loc where flid = lid and country = 'USA' \
     group by faid, state, year(date) having count(*) > 2";

/// Figure 5: AST2.
pub const AST2: &str = "select tid, faid, fpgid, status, country, price, qty, disc, \
     qty * price as value \
     from trans, loc, acct where lid = flid and faid = aid and disc > 0.1";

/// Figure 5: Q2.
pub const Q2: &str = "select aid, status, qty * price * (1 - disc) as amt \
     from trans, pgroup, acct \
     where pgid = fpgid and faid = aid and price > 100 and disc > 0.1 and pgname = 'pg1'";

/// Figures 6/7: the monthly-value AST.
pub const AST6: &str = "select year(date) as year, month(date) as month, \
     sum(qty * price) as value from trans group by year(date), month(date)";

/// Figure 6: Q4.
pub const Q4: &str =
    "select year(date) as year, sum(qty * price) as value from trans group by year(date)";

/// Figure 7: Q6.
pub const Q6: &str = "select year(date) % 100 as year, sum(qty * price) as value \
     from trans where month(date) >= 6 group by year(date) % 100";

/// Figure 8: AST7.
pub const AST7: &str = "select flid, year(date) as year, count(*) as cnt \
     from trans group by flid, year(date)";

/// Figure 8: Q7.
pub const Q7: &str = "select lid, year(date) as year, count(*) as cnt \
     from trans, loc where flid = lid and country = 'USA' group by lid, year(date)";

/// Figure 10: AST8 (monthly count histogram, keyed by year).
pub const AST8: &str = "select year, tcnt, count(*) as mcnt from \
     (select year(date) as year, month(date) as month, count(*) as tcnt \
      from trans group by year(date), month(date)) as m \
     group by year, tcnt";

/// Figure 10: Q8 (yearly count histogram).
pub const Q8: &str = "select tcnt, count(*) as ycnt from \
     (select year(date) as year, count(*) as tcnt from trans group by year(date)) as v \
     group by tcnt";

/// Figure 11: AST10. The paper's QGM preserves the `cnt` and `totcnt` QNCs
/// at the AST output; our ASTs export only declared columns, so the
/// experiment declares them explicitly.
pub const AST10: &str = "select flid, year(date) as year, count(*) as cnt, \
     (select count(*) from trans) as totcnt \
     from trans group by flid, year(date)";

/// Figure 11: Q10.
pub const Q10: &str = "select flid, count(*) / (select count(*) from trans) as cntpct \
     from trans, loc where flid = lid and country = 'USA' \
     group by flid having count(*) > 2";

/// Table 1: AST10 with a HAVING clause, which breaks the match.
pub const AST10_HAVING: &str = "select flid, year(date) as year, count(*) as cnt \
     from trans group by flid, year(date) having count(*) > 2";

/// Table 1: the query whose HAVING looks identical but is not equivalent.
pub const Q_TABLE1: &str =
    "select flid, count(*) as cnt from trans group by flid having count(*) > 2";

/// Figure 13: AST11 (grouping-sets AST).
pub const AST11: &str = "select flid, faid, year(date) as year, month(date) as month, \
     count(*) as cnt from trans group by grouping sets ((flid, year(date)), (flid, faid), \
     (flid, year(date), month(date)))";

/// Figure 13: Q11.1 (exact cuboid, slicing only).
pub const Q11_1: &str = "select flid, year(date) as year, count(*) as cnt \
     from trans where year(date) > 1990 group by flid, year(date)";

/// Figure 13: Q11.2 (regroup from the finer cuboid).
pub const Q11_2: &str = "select flid, year(date) as year, count(*) as cnt \
     from trans where month(date) >= 6 group by flid, year(date)";

/// Figure 13: Q11.3 (COUNT DISTINCT — no match).
pub const Q11_3: &str = "select flid, year(date) as year, month(date) as month, \
     count(distinct faid) as custcnt from trans group by flid, year(date), month(date)";

/// Figure 14: AST12 (cube AST).
pub const AST12: &str = "select flid, faid, year(date) as year, month(date) as month, \
     count(*) as cnt from trans group by grouping sets ((flid, faid, year(date)), \
     (flid, year(date)), (flid, year(date), month(date)), (year(date)))";

/// Figure 14: Q12.1 (cube query, all cuboids present).
pub const Q12_1: &str = "select flid, year(date) as year, count(*) as cnt \
     from trans where year(date) > 1990 \
     group by grouping sets ((flid, year(date)), (year(date)))";

/// Figure 14: Q12.2 (cube query with a missing cuboid).
pub const Q12_2: &str = "select flid, year(date) as year, count(*) as cnt \
     from trans where year(date) > 1990 group by grouping sets ((flid), (year(date)))";

/// The complete figure suite.
pub const FIGURES: &[FigureCase] = &[
    FigureCase {
        id: "F2",
        title: "Q1/AST1: rollup with rejoin and HAVING",
        query: Q1,
        ast: AST1,
        matches: true,
    },
    FigureCase {
        id: "F5",
        title: "Q2/AST2: SELECT match, rejoin + lossless extra join",
        query: Q2,
        ast: AST2,
        matches: true,
    },
    FigureCase {
        id: "F6",
        title: "Q4/AST6: regroup year from month",
        query: Q4,
        ast: AST6,
        matches: true,
    },
    FigureCase {
        id: "F7",
        title: "Q6/AST6: predicate pullup + grouping expression",
        query: Q6,
        ast: AST6,
        matches: true,
    },
    FigureCase {
        id: "F8",
        title: "Q7/AST7: 1:N rejoin without regrouping",
        query: Q7,
        ast: AST7,
        matches: true,
    },
    FigureCase {
        id: "F10",
        title: "Q8/AST8: histogram over histogram (multi-block)",
        query: Q8,
        ast: AST8,
        matches: true,
    },
    FigureCase {
        id: "F11",
        title: "Q10/AST10: scalar subquery percentage",
        query: Q10,
        ast: AST10,
        matches: true,
    },
    FigureCase {
        id: "T1",
        title: "Table 1: HAVING predicates compared semantically (no match)",
        query: Q_TABLE1,
        ast: AST10_HAVING,
        matches: false,
    },
    FigureCase {
        id: "F13.1",
        title: "Q11.1/AST11: exact cuboid with slicing",
        query: Q11_1,
        ast: AST11,
        matches: true,
    },
    FigureCase {
        id: "F13.2",
        title: "Q11.2/AST11: regroup from finer cuboid",
        query: Q11_2,
        ast: AST11,
        matches: true,
    },
    FigureCase {
        id: "F13.3",
        title: "Q11.3/AST11: COUNT DISTINCT (no match)",
        query: Q11_3,
        ast: AST11,
        matches: false,
    },
    FigureCase {
        id: "F14.1",
        title: "Q12.1/AST12: cube query, all cuboids present",
        query: Q12_1,
        ast: AST12,
        matches: true,
    },
    FigureCase {
        id: "F14.2",
        title: "Q12.2/AST12: cube query, missing cuboid regroups",
        query: Q12_2,
        ast: AST12,
        matches: true,
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use sumtab_catalog::Catalog;
    use sumtab_parser::parse_query;

    #[test]
    fn all_workload_sql_parses_and_builds() {
        let cat = Catalog::credit_card_sample();
        for case in FIGURES {
            for (what, sql) in [("query", case.query), ("ast", case.ast)] {
                let q = parse_query(sql).unwrap_or_else(|e| panic!("{} {}: {e}", case.id, what));
                sumtab_qgm::build_query(&q, &cat)
                    .unwrap_or_else(|e| panic!("{} {}: {e}", case.id, what));
            }
        }
    }

    #[test]
    fn figure_ids_are_unique() {
        let mut ids: Vec<_> = FIGURES.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }
}
