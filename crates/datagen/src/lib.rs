//! # sumtab-datagen
//!
//! Deterministic, seeded workload generation for the paper's Section 1.1
//! credit-card star schema.
//!
//! The paper's quantitative claims rest on data-shape properties it states
//! in prose: "the average customer performs a few hundred transactions per
//! year, most of them within the same city", which makes AST1 roughly a
//! hundred times smaller than the fact table. The generator reproduces that
//! shape: each account has a home location, and a transaction happens there
//! with probability [`GenConfig::locality`]; the per-account yearly
//! transaction count follows from `transactions / (accounts * years)`.

#![forbid(unsafe_code)]

use sumtab_catalog::{Catalog, Date, Value};
use sumtab_engine::{Database, Row};

pub mod rng;
pub mod workloads;

pub use rng::SplitMix64;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Number of fact rows (`Trans`).
    pub transactions: usize,
    /// Number of credit-card accounts.
    pub accounts: usize,
    /// Number of customers (accounts reference customers round-robin).
    pub customers: usize,
    /// Number of locations; 1/4 are non-USA.
    pub locations: usize,
    /// Number of product groups.
    pub pgroups: usize,
    /// First year of the Time dimension.
    pub start_year: i32,
    /// Number of years covered.
    pub years: u32,
    /// Probability that a transaction happens at the account's home
    /// location (the paper: "most of them within the same city").
    pub locality: f64,
    /// RNG seed; equal configs generate equal databases.
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            transactions: 100_000,
            accounts: 100,
            customers: 80,
            locations: 40,
            pgroups: 10,
            start_year: 1990,
            years: 5,
            locality: 0.9,
            seed: 0xA57_ACE,
        }
    }
}

impl GenConfig {
    /// A configuration scaled by fact-table size with the default
    /// dimension shape (dimensions grow with the square root).
    pub fn scale(transactions: usize) -> GenConfig {
        let s = (transactions as f64).sqrt() as usize;
        GenConfig {
            transactions,
            accounts: (s / 3).max(4),
            customers: (s / 4).max(3),
            locations: (s / 8).max(4),
            pgroups: (s / 16).clamp(4, 50),
            ..GenConfig::default()
        }
    }
}

/// US states and a few foreign markers used for the location dimension.
const STATES: [&str; 8] = ["CA", "NY", "TX", "WA", "IL", "MA", "FL", "CO"];
const COUNTRIES: [&str; 3] = ["France", "Germany", "Japan"];
const STATUSES: [&str; 3] = ["gold", "silver", "basic"];

/// Generate a populated database over the credit-card catalog.
pub fn generate(cfg: &GenConfig) -> (Catalog, Database) {
    let catalog = Catalog::credit_card_sample();
    let db = generate_into(cfg, &catalog);
    (catalog, db)
}

/// Generate data for an existing credit-card catalog.
// Generated rows conform to the generator's own schema; insertion failures
// are programming errors, so panicking is the right response here.
#[allow(clippy::unwrap_used, clippy::expect_used)]
pub fn generate_into(cfg: &GenConfig, catalog: &Catalog) -> Database {
    assert!(cfg.locations >= 2, "need at least two locations");
    assert!(cfg.accounts >= 1 && cfg.customers >= 1 && cfg.pgroups >= 1);
    assert!(cfg.years >= 1);
    let mut rng = SplitMix64::new(cfg.seed);
    let mut db = Database::new();

    // Locations: 3/4 USA, the rest spread over foreign countries.
    let mut loc_rows: Vec<Row> = Vec::with_capacity(cfg.locations);
    for lid in 0..cfg.locations {
        let usa = lid % 4 != 3;
        let (state, country) = if usa {
            (STATES[lid % STATES.len()], "USA")
        } else {
            ("--", COUNTRIES[lid % COUNTRIES.len()])
        };
        loc_rows.push(vec![
            Value::Int(lid as i64),
            Value::Str(format!("city{lid}")),
            Value::Str(state.to_string()),
            Value::Str(country.to_string()),
        ]);
    }
    db.insert(catalog, "loc", loc_rows).unwrap();

    // Product groups.
    let pg_rows: Vec<Row> = (0..cfg.pgroups)
        .map(|pgid| vec![Value::Int(pgid as i64), Value::Str(format!("pg{pgid}"))])
        .collect();
    db.insert(catalog, "pgroup", pg_rows).unwrap();

    // Customers.
    let cust_rows: Vec<Row> = (0..cfg.customers)
        .map(|cid| {
            vec![
                Value::Int(cid as i64),
                Value::Str(format!("cust{cid}")),
                Value::Int(18 + (cid as i64 * 7) % 60),
            ]
        })
        .collect();
    db.insert(catalog, "cust", cust_rows).unwrap();

    // Accounts: home location assigned here, reused by the fact generator.
    let mut home: Vec<usize> = Vec::with_capacity(cfg.accounts);
    let acct_rows: Vec<Row> = (0..cfg.accounts)
        .map(|aid| {
            home.push(rng.gen_index(cfg.locations));
            vec![
                Value::Int(aid as i64),
                Value::Int((aid % cfg.customers) as i64),
                Value::Str(STATUSES[aid % STATUSES.len()].to_string()),
            ]
        })
        .collect();
    db.insert(catalog, "acct", acct_rows).unwrap();

    // Fact rows.
    let mut trans_rows: Vec<Row> = Vec::with_capacity(cfg.transactions);
    for tid in 0..cfg.transactions {
        let aid = rng.gen_index(cfg.accounts);
        let lid = if rng.gen_bool(cfg.locality) {
            home[aid]
        } else if rng.gen_bool(0.8) {
            // Away-from-home purchases cluster in a small neighborhood of
            // the home city (the paper: "most of them within the same
            // city"), keeping the (faid, flid, year) group count low.
            (home[aid] + 1 + rng.gen_index(3)) % cfg.locations
        } else {
            rng.gen_index(cfg.locations)
        };
        let pgid = rng.gen_index(cfg.pgroups);
        let year = cfg.start_year + rng.gen_index(cfg.years as usize) as i32;
        let month = rng.gen_i64(1, 12) as u8;
        let day = rng.gen_i64(1, 28) as u8;
        let qty = rng.gen_i64(1, 8);
        let price = rng.gen_i64(100, 49_999) as f64 / 100.0;
        let disc = rng.gen_i64(0, 39) as f64 / 100.0;
        trans_rows.push(vec![
            Value::Int(tid as i64),
            Value::Int(aid as i64),
            Value::Int(lid as i64),
            Value::Int(pgid as i64),
            Value::Date(Date::new(year, month, day).expect("valid generated date")),
            Value::Int(qty),
            Value::Double(price),
            Value::Double(disc),
        ]);
    }
    db.insert(catalog, "trans", trans_rows).unwrap();
    db
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let cfg = GenConfig {
            transactions: 500,
            ..GenConfig::default()
        };
        let (_, db1) = generate(&cfg);
        let (_, db2) = generate(&cfg);
        assert_eq!(db1.rows("trans"), db2.rows("trans"));
        let other = GenConfig { seed: 7, ..cfg };
        let (_, db3) = generate(&other);
        assert_ne!(db1.rows("trans"), db3.rows("trans"));
    }

    #[test]
    fn cardinalities_match_config() {
        let cfg = GenConfig {
            transactions: 1_000,
            accounts: 20,
            customers: 10,
            locations: 8,
            pgroups: 5,
            ..GenConfig::default()
        };
        let (_, db) = generate(&cfg);
        assert_eq!(db.row_count("trans"), 1_000);
        assert_eq!(db.row_count("acct"), 20);
        assert_eq!(db.row_count("cust"), 10);
        assert_eq!(db.row_count("loc"), 8);
        assert_eq!(db.row_count("pgroup"), 5);
    }

    #[test]
    fn referential_integrity_holds() {
        let cfg = GenConfig {
            transactions: 2_000,
            ..GenConfig::default()
        };
        let (_, db) = generate(&cfg);
        let accts: std::collections::HashSet<i64> = db
            .rows("acct")
            .iter()
            .map(|r| r[0].as_i64().unwrap())
            .collect();
        let locs: std::collections::HashSet<i64> = db
            .rows("loc")
            .iter()
            .map(|r| r[0].as_i64().unwrap())
            .collect();
        for t in db.rows("trans") {
            assert!(accts.contains(&t[1].as_i64().unwrap()));
            assert!(locs.contains(&t[2].as_i64().unwrap()));
        }
    }

    #[test]
    fn locality_concentrates_transactions() {
        let cfg = GenConfig {
            transactions: 20_000,
            locality: 0.9,
            ..GenConfig::default()
        };
        let (_, db) = generate(&cfg);
        // Fraction of transactions at the modal location per account should
        // be high: group (faid → most common flid count / total).
        use std::collections::HashMap;
        let mut per_acct: HashMap<i64, HashMap<i64, usize>> = HashMap::new();
        for t in db.rows("trans") {
            *per_acct
                .entry(t[1].as_i64().unwrap())
                .or_default()
                .entry(t[2].as_i64().unwrap())
                .or_default() += 1;
        }
        let (hits, total): (usize, usize) = per_acct.values().fold((0, 0), |(h, n), m| {
            let max = m.values().max().copied().unwrap_or(0);
            let sum: usize = m.values().sum();
            (h + max, n + sum)
        });
        let frac = hits as f64 / total as f64;
        assert!(frac > 0.8, "locality fraction {frac} too low");
    }

    #[test]
    fn scaled_config_is_sane() {
        let cfg = GenConfig::scale(1_000_000);
        assert_eq!(cfg.transactions, 1_000_000);
        assert!(cfg.accounts > 100);
        assert!(cfg.locations >= 4);
    }

    #[test]
    fn ast1_summarization_ratio() {
        // The paper: AST1 (faid, flid, year) is ~100x smaller than Trans for
        // realistic locality. Validate a strong reduction on generated data.
        let cfg = GenConfig {
            transactions: 50_000,
            accounts: 50,
            years: 5,
            locality: 0.9,
            ..GenConfig::default()
        };
        let (_, db) = generate(&cfg);
        let mut groups = std::collections::HashSet::new();
        for t in db.rows("trans") {
            let year = match &t[4] {
                Value::Date(d) => d.year(),
                _ => unreachable!(),
            };
            groups.insert((t[1].clone(), t[2].clone(), year));
        }
        let ratio = db.row_count("trans") as f64 / groups.len() as f64;
        assert!(
            ratio > 10.0,
            "expected a strong summarization ratio, got {ratio:.1}"
        );
    }
}
