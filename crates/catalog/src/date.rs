//! A minimal proleptic-Gregorian calendar date.
//!
//! The paper's Time dimension is encoded in the `date` column of the fact
//! table and extracted with the built-in functions `YEAR`, `MONTH`, and `DAY`
//! (Section 1.1). We therefore need a real date type with correct calendar
//! arithmetic, not just a string.

/// A calendar date, stored as (year, month, day).
///
/// Supports years 1..=9999, which comfortably covers generated workloads.
/// Ordering is chronological.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    year: i32,
    month: u8,
    day: u8,
}

/// Cumulative days before the start of each month in a non-leap year.
const CUM_DAYS: [u32; 12] = [0, 31, 59, 90, 120, 151, 181, 212, 243, 273, 304, 334];

impl Date {
    /// Construct a date, validating calendar correctness.
    pub fn new(year: i32, month: u8, day: u8) -> Option<Date> {
        if !(1..=9999).contains(&year) || !(1..=12).contains(&month) {
            return None;
        }
        if day == 0 || u32::from(day) > days_in_month(year, month) {
            return None;
        }
        Some(Date { year, month, day })
    }

    /// The year component.
    pub fn year(self) -> i32 {
        self.year
    }

    /// The month component (1-12).
    pub fn month(self) -> u8 {
        self.month
    }

    /// The day-of-month component (1-31).
    pub fn day(self) -> u8 {
        self.day
    }

    /// Parse `YYYY-MM-DD`.
    pub fn parse(s: &str) -> Option<Date> {
        let mut parts = s.split('-');
        let year: i32 = parts.next()?.parse().ok()?;
        let month: u8 = parts.next()?.parse().ok()?;
        let day: u8 = parts.next()?.parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        Date::new(year, month, day)
    }

    /// Days since 0001-01-01 (day 0). Used for uniform random generation and
    /// date ordering in the engine.
    pub fn to_day_number(self) -> i64 {
        let y = i64::from(self.year) - 1;
        let leap_days = y / 4 - y / 100 + y / 400;
        let mut days = y * 365 + leap_days;
        days += i64::from(CUM_DAYS[self.month as usize - 1]);
        if self.month > 2 && is_leap_year(self.year) {
            days += 1;
        }
        days + i64::from(self.day) - 1
    }

    /// Inverse of [`Date::to_day_number`].
    pub fn from_day_number(mut n: i64) -> Option<Date> {
        if n < 0 {
            return None;
        }
        // 400-year cycles of 146097 days keep the search bounded.
        let cycles = n / 146_097;
        n %= 146_097;
        let mut year = (cycles * 400 + 1) as i32;
        loop {
            let len = if is_leap_year(year) { 366 } else { 365 };
            if n < len {
                break;
            }
            n -= len;
            year += 1;
        }
        let mut month = 1u8;
        loop {
            let len = i64::from(days_in_month(year, month));
            if n < len {
                break;
            }
            n -= len;
            month += 1;
        }
        Date::new(year, month, (n + 1) as u8)
    }
}

/// True when `year` is a Gregorian leap year.
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Number of days in the given month of the given year.
pub fn days_in_month(year: i32, month: u8) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

impl std::fmt::Display for Date {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(Date::new(2000, 2, 29).is_some());
        assert!(Date::new(1999, 2, 29).is_none());
        assert!(Date::new(2000, 13, 1).is_none());
        assert!(Date::new(2000, 0, 1).is_none());
        assert!(Date::new(2000, 4, 31).is_none());
        assert!(Date::new(0, 1, 1).is_none());
        assert!(Date::new(10000, 1, 1).is_none());
    }

    #[test]
    fn parse_and_display() {
        let d = Date::parse("1997-06-09").unwrap();
        assert_eq!((d.year(), d.month(), d.day()), (1997, 6, 9));
        assert_eq!(d.to_string(), "1997-06-09");
        assert!(Date::parse("1997-6").is_none());
        assert!(Date::parse("1997-02-30").is_none());
        assert!(Date::parse("1997-06-09-01").is_none());
    }

    #[test]
    fn chronological_ordering() {
        let a = Date::parse("1990-12-31").unwrap();
        let b = Date::parse("1991-01-01").unwrap();
        let c = Date::parse("1991-01-02").unwrap();
        assert!(a < b && b < c);
    }

    #[test]
    fn day_number_round_trip_samples() {
        for s in [
            "0001-01-01",
            "0004-02-29",
            "1900-02-28",
            "1970-01-01",
            "2000-02-29",
            "2000-03-01",
            "1991-07-15",
            "9999-12-31",
        ] {
            let d = Date::parse(s).unwrap();
            assert_eq!(Date::from_day_number(d.to_day_number()), Some(d), "{s}");
        }
    }

    #[test]
    fn day_number_is_dense() {
        let start = Date::parse("1999-12-25").unwrap().to_day_number();
        let mut prev = Date::from_day_number(start).unwrap();
        for i in 1..400 {
            let next = Date::from_day_number(start + i).unwrap();
            assert!(next > prev);
            prev = next;
        }
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(is_leap_year(1996));
        assert!(!is_leap_year(1999));
    }
}
