//! A small Fx-style hasher for hot integer-keyed maps.
//!
//! The matching navigator keys its match table by `(BoxId, BoxId)` pairs and
//! the engine hashes millions of small group keys; SipHash is unnecessarily
//! expensive there. The pre-approved dependency list does not include
//! `rustc-hash`, so we ship the ~20-line multiply-xor algorithm ourselves
//! (same recurrence as rustc's `FxHasher`).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher for small keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xdead_beef);
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinguishes_values() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn map_works() {
        let mut m: FxHashMap<(u32, u32), &str> = FxHashMap::default();
        m.insert((1, 2), "a");
        m.insert((2, 1), "b");
        assert_eq!(m.get(&(1, 2)), Some(&"a"));
        assert_eq!(m.get(&(2, 1)), Some(&"b"));
        assert_eq!(m.get(&(3, 3)), None);
    }

    #[test]
    fn byte_writes_cover_remainders() {
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3]);
        let short = h.finish();
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_ne!(short, h2.finish());
    }
}
