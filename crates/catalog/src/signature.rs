//! Match signatures: a constant-size summary of the matching-relevant shape
//! of a query or AST definition, used to prune the candidate set *before*
//! the expensive QGM navigator runs (PAPER §6 describes the DB2
//! implementation filtering ASTs cheaply; Cohen & Nutt treat candidate
//! pruning as the scalability lever for rewriting with many views).
//!
//! A signature records:
//!
//! * the **base tables** the graph reads, as a sorted name set plus a
//!   128-bit Bloom-style bitset for O(1) subset/intersection pre-checks;
//! * the **aggregate kinds** present in GROUP BY outputs, as a bitmask —
//!   per box (subsumee side needs "does *some* GROUP BY box survive?") and
//!   as a union (subsumer side);
//! * the **grouping columns**, as canonical `table.column` labels where a
//!   grouping item traces to a base column (diagnostic/display; the filter
//!   itself must not reject on grouping names because join-predicate
//!   equivalence classes make name-level tests unsound — see
//!   `sumtab_matcher::signature`).
//!
//! The type lives in the catalog crate so both the matcher (which computes
//! signatures from QGM graphs) and storage layers can carry it without a
//! dependency cycle. Construction from a graph is in
//! `sumtab_matcher::signature`.

/// Bitmask constants for aggregate kinds appearing in GROUP BY outputs.
/// `AVG` never appears: QGM construction normalizes it to SUM/COUNT.
pub mod agg_kind {
    /// Non-distinct `COUNT` (with or without an argument).
    pub const COUNT: u8 = 1 << 0;
    /// Non-distinct `SUM`.
    pub const SUM: u8 = 1 << 1;
    /// `MIN` (DISTINCT-insensitive).
    pub const MIN: u8 = 1 << 2;
    /// `MAX` (DISTINCT-insensitive).
    pub const MAX: u8 = 1 << 3;
    /// `COUNT(DISTINCT x)`.
    pub const COUNT_DISTINCT: u8 = 1 << 4;
    /// `SUM(DISTINCT x)`.
    pub const SUM_DISTINCT: u8 = 1 << 5;

    /// Human-readable names of the set bits, for diagnostics.
    pub fn names(mask: u8) -> Vec<&'static str> {
        let all = [
            (COUNT, "count"),
            (SUM, "sum"),
            (MIN, "min"),
            (MAX, "max"),
            (COUNT_DISTINCT, "count-distinct"),
            (SUM_DISTINCT, "sum-distinct"),
        ];
        all.iter()
            .filter(|(bit, _)| mask & bit != 0)
            .map(|(_, n)| *n)
            .collect()
    }
}

/// A set of (lower-cased) table names with a 128-bit Bloom companion for
/// constant-time conservative set tests. The exact name list is the ground
/// truth; the bitset only short-circuits the common reject/accept paths.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TableSet {
    names: Vec<String>,
    bits: u128,
}

/// FNV-1a over the byte string — stable across runs, platforms, and Rust
/// versions (unlike `DefaultHasher`), which keeps signature bits comparable
/// between a registration-time snapshot and a query-time computation.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl TableSet {
    /// An empty set.
    pub fn new() -> TableSet {
        TableSet::default()
    }

    /// Insert a table name (case-insensitive).
    pub fn insert(&mut self, name: &str) {
        let key = name.to_ascii_lowercase();
        self.bits |= 1u128 << (fnv1a(&key) % 128);
        if let Err(pos) = self.names.binary_search(&key) {
            self.names.insert(pos, key);
        }
    }

    /// Build from an iterator of names.
    pub fn from_names<'a>(names: impl IntoIterator<Item = &'a str>) -> TableSet {
        let mut s = TableSet::new();
        for n in names {
            s.insert(n);
        }
        s
    }

    /// The sorted, de-duplicated, lower-cased names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of distinct tables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Exact membership test (case-insensitive).
    pub fn contains(&self, name: &str) -> bool {
        let key = name.to_ascii_lowercase();
        if self.bits & (1u128 << (fnv1a(&key) % 128)) == 0 {
            return false; // Bloom miss is definitive
        }
        self.names.binary_search(&key).is_ok()
    }

    /// Exact subset test, with a bitset fast-reject: if some bit of `self`
    /// is missing from `other`, a name of `self` is certainly missing too.
    pub fn is_subset(&self, other: &TableSet) -> bool {
        if self.bits & !other.bits != 0 {
            return false;
        }
        self.names
            .iter()
            .all(|n| other.names.binary_search(n).is_ok())
    }

    /// Exact non-empty-intersection test, with a bitset fast-reject.
    pub fn intersects(&self, other: &TableSet) -> bool {
        if self.bits & other.bits == 0 {
            return false;
        }
        self.names
            .iter()
            .any(|n| other.names.binary_search(n).is_ok())
    }
}

/// The matching-relevant shape of one QGM graph (query or AST definition).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MatchSignature {
    /// Base tables read by boxes reachable from the root.
    pub tables: TableSet,
    /// Union over every GROUP BY box of the aggregate kinds present
    /// ([`agg_kind`] bits).
    pub agg_mask: u8,
    /// Aggregate-kind mask of each reachable GROUP BY box individually
    /// (bottom-up order). Empty iff the graph has no GROUP BY box.
    pub group_agg_masks: Vec<u8>,
    /// Canonical labels of grouping columns that trace to base-table
    /// columns (`table.column`, sorted, de-duplicated). Diagnostic only.
    pub grouping_cols: Vec<String>,
}

impl MatchSignature {
    /// Does the graph contain any GROUP BY box?
    pub fn has_group_by(&self) -> bool {
        !self.group_agg_masks.is_empty()
    }
}

impl std::fmt::Display for MatchSignature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tables={{{}}} aggs={{{}}} group_bys={} grouping=[{}]",
            self.tables.names().join(", "),
            agg_kind::names(self.agg_mask).join(", "),
            self.group_agg_masks.len(),
            self.grouping_cols.join(", "),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_set_algebra() {
        let a = TableSet::from_names(["Trans", "loc"]);
        let b = TableSet::from_names(["trans", "loc", "acct"]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.intersects(&b));
        assert!(a.contains("TRANS"));
        assert!(!a.contains("acct"));
        assert_eq!(a.names(), ["loc", "trans"]);

        let c = TableSet::from_names(["other"]);
        assert!(!a.intersects(&c));
        assert!(!c.is_subset(&b));
        assert!(TableSet::new().is_subset(&a), "empty set is subset of all");
    }

    #[test]
    fn insert_is_idempotent() {
        let mut s = TableSet::new();
        s.insert("t");
        s.insert("T");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn agg_kind_names_render() {
        let mask = agg_kind::COUNT | agg_kind::MAX;
        assert_eq!(agg_kind::names(mask), vec!["count", "max"]);
    }

    #[test]
    fn display_is_compact() {
        let sig = MatchSignature {
            tables: TableSet::from_names(["trans"]),
            agg_mask: agg_kind::COUNT,
            group_agg_masks: vec![agg_kind::COUNT],
            grouping_cols: vec!["trans.faid".into()],
        };
        let s = sig.to_string();
        assert!(s.contains("tables={trans}"), "{s}");
        assert!(s.contains("group_bys=1"), "{s}");
    }
}
