//! # sumtab-catalog
//!
//! Shared database substrate for the `sumtab` workspace: SQL scalar types,
//! runtime values, dates, table/column schemas, and integrity constraints
//! (primary keys and referential-integrity constraints).
//!
//! The matching algorithm of the paper depends on catalog metadata in two
//! places:
//!
//! * **Lossless extra joins** (Section 4.1.1, condition 1): an AST may join
//!   additional dimension tables that the query does not mention, provided the
//!   join follows a referential-integrity constraint over non-nullable
//!   foreign-key columns, so it neither duplicates nor eliminates rows.
//! * **Aggregate derivation** (Section 4.1.2): several rules, e.g.
//!   `COUNT(x) -> SUM(COUNT(z))`, require knowing that a column is
//!   non-nullable.
//!
//! The crate is dependency-free and sits at the bottom of the workspace.

#![forbid(unsafe_code)]

pub mod date;
pub mod fx;
pub mod schema;
pub mod signature;
pub mod types;
pub mod value;

pub use date::Date;
pub use schema::{Catalog, Column, ForeignKey, SummaryTableDef, Table};
pub use signature::{MatchSignature, TableSet};
pub use types::SqlType;
pub use value::Value;

/// Errors produced by catalog operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// A table with this name already exists.
    DuplicateTable(String),
    /// No table with this name exists.
    UnknownTable(String),
    /// No column with this name exists in the named table.
    UnknownColumn { table: String, column: String },
    /// A foreign key referenced a column set that is not the parent's primary key.
    InvalidForeignKey(String),
    /// A summary table with this name already exists.
    DuplicateSummaryTable(String),
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::DuplicateTable(t) => write!(f, "table `{t}` already exists"),
            CatalogError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            CatalogError::UnknownColumn { table, column } => {
                write!(f, "unknown column `{column}` in table `{table}`")
            }
            CatalogError::InvalidForeignKey(m) => write!(f, "invalid foreign key: {m}"),
            CatalogError::DuplicateSummaryTable(t) => {
                write!(f, "summary table `{t}` already exists")
            }
        }
    }
}

impl std::error::Error for CatalogError {}
