//! Runtime SQL values with SQL-compatible grouping semantics.
//!
//! `Value` implements `Eq`, `Ord`, and `Hash` with *grouping* semantics:
//! `NULL` compares equal to `NULL` and sorts first, and doubles use IEEE total
//! order. Predicate evaluation (three-valued logic, where `NULL = NULL` is
//! unknown) lives in the engine; this type only provides the deterministic
//! total order that hash aggregation and sorting require.

use crate::{Date, SqlType};

/// A runtime scalar value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Double(f64),
    /// UTF-8 string.
    Str(String),
    /// Calendar date.
    Date(Date),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// The type of this value, or `None` for NULL (which is typeless).
    pub fn sql_type(&self) -> Option<SqlType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(SqlType::Int),
            Value::Double(_) => Some(SqlType::Double),
            Value::Str(_) => Some(SqlType::Varchar),
            Value::Date(_) => Some(SqlType::Date),
            Value::Bool(_) => Some(SqlType::Bool),
        }
    }

    /// True when this is `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view as f64, for arithmetic that has already widened.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Double(d) => Some(*d),
            _ => None,
        }
    }

    /// Integer view; does not coerce doubles.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// A small integer used to rank variants in the cross-type total order.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Double(_) => 2, // numerics compare with each other
            Value::Str(_) => 3,
            Value::Date(_) => 4,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Double(a), Double(b)) => a.total_cmp(b),
            // Mixed numerics compare by value so that `1` groups with `1.0`
            // only when bitwise-representable; use total order on the widened
            // doubles, falling back to the exact integer comparison when both
            // conversions are exact.
            (Int(a), Double(b)) => (*a as f64).total_cmp(b),
            (Double(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            // Int and Double hash through the same numeric key so that the
            // Ord/Hash contract holds for mixed numeric comparisons.
            Value::Int(i) => {
                state.write_u8(2);
                (*i as f64).to_bits().hash(state);
            }
            Value::Double(d) => {
                state.write_u8(2);
                d.to_bits().hash(state);
            }
            Value::Str(s) => {
                state.write_u8(3);
                s.hash(state);
            }
            Value::Date(d) => {
                state.write_u8(4);
                d.hash(state);
            }
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => {
                if d.fract() == 0.0 && d.abs() < 1e15 {
                    write!(f, "{d:.1}")
                } else {
                    write!(f, "{d}")
                }
            }
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Date(d) => write!(f, "DATE '{d}'"),
            Value::Bool(b) => f.write_str(if *b { "TRUE" } else { "FALSE" }),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<Date> for Value {
    fn from(v: Date) -> Self {
        Value::Date(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn null_groups_with_null() {
        assert_eq!(Value::Null, Value::Null);
        assert!(Value::Null < Value::Int(0));
        assert!(Value::Null < Value::Str(String::new()));
    }

    #[test]
    fn mixed_numeric_equality_and_hash() {
        assert_eq!(Value::Int(3), Value::Double(3.0));
        assert_eq!(hash_of(&Value::Int(3)), hash_of(&Value::Double(3.0)));
        assert!(Value::Int(3) < Value::Double(3.5));
        assert!(Value::Double(2.5) < Value::Int(3));
    }

    #[test]
    fn double_total_order_handles_nan() {
        let nan = Value::Double(f64::NAN);
        assert_eq!(nan, nan.clone());
        assert!(Value::Double(f64::INFINITY) < nan);
    }

    #[test]
    fn string_and_date_ordering() {
        assert!(Value::from("apple") < Value::from("banana"));
        let d1 = Value::from(Date::parse("1990-01-01").unwrap());
        let d2 = Value::from(Date::parse("1991-01-01").unwrap());
        assert!(d1 < d2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Double(1.5).to_string(), "1.5");
        assert_eq!(Value::Double(2.0).to_string(), "2.0");
        assert_eq!(Value::from("TV").to_string(), "'TV'");
        assert_eq!(Value::Bool(true).to_string(), "TRUE");
    }

    #[test]
    fn sql_type_reporting() {
        assert_eq!(Value::Null.sql_type(), None);
        assert_eq!(Value::Int(1).sql_type(), Some(SqlType::Int));
        assert_eq!(Value::from("x").sql_type(), Some(SqlType::Varchar));
    }
}
