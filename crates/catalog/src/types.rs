//! SQL scalar types supported by the engine.

/// The scalar type system. Deliberately small: the paper's examples and the
/// TPC-D-style workloads need integers, floating point, strings, dates, and
/// booleans only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SqlType {
    /// 64-bit signed integer (`INT`, `INTEGER`, `BIGINT`).
    Int,
    /// 64-bit IEEE float (`DOUBLE`, `FLOAT`, `REAL`, `DECIMAL` are all mapped here).
    Double,
    /// UTF-8 string (`VARCHAR`, `CHAR`, `TEXT`).
    Varchar,
    /// Calendar date (`DATE`).
    Date,
    /// Boolean (`BOOLEAN`). Produced by predicates; storable for completeness.
    Bool,
}

impl SqlType {
    /// True for types on which `+ - * /` are defined.
    pub fn is_numeric(self) -> bool {
        matches!(self, SqlType::Int | SqlType::Double)
    }

    /// The result type of a binary arithmetic operation between two numeric
    /// types: integer op integer stays integer, anything with a double widens.
    pub fn arith_result(self, other: SqlType) -> Option<SqlType> {
        match (self, other) {
            (SqlType::Int, SqlType::Int) => Some(SqlType::Int),
            (a, b) if a.is_numeric() && b.is_numeric() => Some(SqlType::Double),
            _ => None,
        }
    }

    /// Canonical SQL spelling, used when rendering DDL.
    pub fn sql_name(self) -> &'static str {
        match self {
            SqlType::Int => "INT",
            SqlType::Double => "DOUBLE",
            SqlType::Varchar => "VARCHAR",
            SqlType::Date => "DATE",
            SqlType::Bool => "BOOLEAN",
        }
    }

    /// Parse a SQL type name (case-insensitive), accepting common synonyms.
    pub fn from_sql_name(name: &str) -> Option<SqlType> {
        match name.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" => Some(SqlType::Int),
            "DOUBLE" | "FLOAT" | "REAL" | "DECIMAL" | "NUMERIC" => Some(SqlType::Double),
            "VARCHAR" | "CHAR" | "TEXT" | "STRING" => Some(SqlType::Varchar),
            "DATE" => Some(SqlType::Date),
            "BOOLEAN" | "BOOL" => Some(SqlType::Bool),
            _ => None,
        }
    }
}

impl std::fmt::Display for SqlType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.sql_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_classification() {
        assert!(SqlType::Int.is_numeric());
        assert!(SqlType::Double.is_numeric());
        assert!(!SqlType::Varchar.is_numeric());
        assert!(!SqlType::Date.is_numeric());
        assert!(!SqlType::Bool.is_numeric());
    }

    #[test]
    fn arithmetic_widening() {
        assert_eq!(SqlType::Int.arith_result(SqlType::Int), Some(SqlType::Int));
        assert_eq!(
            SqlType::Int.arith_result(SqlType::Double),
            Some(SqlType::Double)
        );
        assert_eq!(
            SqlType::Double.arith_result(SqlType::Int),
            Some(SqlType::Double)
        );
        assert_eq!(SqlType::Varchar.arith_result(SqlType::Int), None);
    }

    #[test]
    fn name_round_trip() {
        for t in [
            SqlType::Int,
            SqlType::Double,
            SqlType::Varchar,
            SqlType::Date,
            SqlType::Bool,
        ] {
            assert_eq!(SqlType::from_sql_name(t.sql_name()), Some(t));
        }
        assert_eq!(SqlType::from_sql_name("integer"), Some(SqlType::Int));
        assert_eq!(SqlType::from_sql_name("bogus"), None);
    }
}
