//! Tables, columns, and integrity constraints.
//!
//! Includes [`Catalog::credit_card_sample`], the paper's Section 1.1 star
//! schema (fact table `Trans` plus dimensions `PGroup`, `Loc`, `Cust`,
//! `Acct`), which the examples, tests, and benchmarks all share.

use crate::{CatalogError, SqlType};
use std::collections::BTreeMap;

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (stored lower-case; SQL identifiers are case-insensitive).
    pub name: String,
    /// Scalar type.
    pub ty: SqlType,
    /// Whether NULLs are permitted. Non-nullability feeds the aggregate
    /// derivation rules of Section 4.1.2.
    pub nullable: bool,
}

impl Column {
    /// A non-nullable column.
    pub fn new(name: &str, ty: SqlType) -> Column {
        Column {
            name: name.to_ascii_lowercase(),
            ty,
            nullable: false,
        }
    }

    /// A nullable column.
    pub fn nullable(name: &str, ty: SqlType) -> Column {
        Column {
            name: name.to_ascii_lowercase(),
            ty,
            nullable: true,
        }
    }
}

/// A base table (or a materialized summary table's backing table).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table name (stored lower-case).
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<Column>,
    /// Ordinals of the primary-key columns (empty = no declared key).
    pub primary_key: Vec<usize>,
}

impl Table {
    /// Create a table with no primary key.
    pub fn new(name: &str, columns: Vec<Column>) -> Table {
        Table {
            name: name.to_ascii_lowercase(),
            columns,
            primary_key: Vec::new(),
        }
    }

    /// Declare the primary key by column names. Unknown names are reported
    /// as [`CatalogError::UnknownColumn`] (primary keys can come from user
    /// DDL, so this must not panic).
    pub fn with_primary_key(mut self, key: &[&str]) -> Result<Table, CatalogError> {
        let mut pk = Vec::with_capacity(key.len());
        for k in key {
            let i = self
                .column_index(k)
                .ok_or_else(|| CatalogError::UnknownColumn {
                    table: self.name.clone(),
                    column: (*k).into(),
                })?;
            pk.push(i);
        }
        self.primary_key = pk;
        Ok(self)
    }

    /// Ordinal of the named column (case-insensitive).
    pub fn column_index(&self, name: &str) -> Option<usize> {
        let lname = name.to_ascii_lowercase();
        self.columns.iter().position(|c| c.name == lname)
    }

    /// The named column (case-insensitive).
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.column_index(name).map(|i| &self.columns[i])
    }
}

/// A referential-integrity constraint: `child_table.(child_columns)`
/// references `parent_table`'s primary key.
///
/// The paper exploits RI constraints to prove that an "extra join" in an AST
/// is lossless (Section 4.1.1, condition 1): joining the child to the parent
/// over non-nullable FK columns neither duplicates nor drops child rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing (fact-side) table.
    pub child_table: String,
    /// Ordinals of the referencing columns in the child table.
    pub child_columns: Vec<usize>,
    /// Referenced (dimension-side) table.
    pub parent_table: String,
    /// Ordinals of the referenced columns in the parent table; always the
    /// parent's primary key.
    pub parent_columns: Vec<usize>,
}

/// A registered Automatic Summary Table definition.
///
/// The catalog stores the defining query as SQL text plus the schema of the
/// materialized backing table; higher layers (the matcher) parse the text
/// into QGM at registration time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SummaryTableDef {
    /// The AST's name; also the name of its materialized backing table.
    pub name: String,
    /// The defining `SELECT` statement.
    pub query_sql: String,
}

/// The database catalog: base tables, RI constraints, and AST definitions.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
    foreign_keys: Vec<ForeignKey>,
    summary_tables: BTreeMap<String, SummaryTableDef>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a base table.
    pub fn add_table(&mut self, table: Table) -> Result<(), CatalogError> {
        if self.tables.contains_key(&table.name) {
            return Err(CatalogError::DuplicateTable(table.name));
        }
        self.tables.insert(table.name.clone(), table);
        Ok(())
    }

    /// Look up a table by name (case-insensitive).
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    /// Iterate over all tables in name order.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    /// Declare an RI constraint by table/column names. The referenced columns
    /// must be exactly the parent's primary key.
    pub fn add_foreign_key(
        &mut self,
        child_table: &str,
        child_columns: &[&str],
        parent_table: &str,
    ) -> Result<(), CatalogError> {
        let child = self
            .table(child_table)
            .ok_or_else(|| CatalogError::UnknownTable(child_table.into()))?;
        let parent = self
            .table(parent_table)
            .ok_or_else(|| CatalogError::UnknownTable(parent_table.into()))?;
        if parent.primary_key.is_empty() {
            return Err(CatalogError::InvalidForeignKey(format!(
                "parent `{parent_table}` has no primary key"
            )));
        }
        if parent.primary_key.len() != child_columns.len() {
            return Err(CatalogError::InvalidForeignKey(format!(
                "FK arity {} != PK arity {}",
                child_columns.len(),
                parent.primary_key.len()
            )));
        }
        let mut child_idx = Vec::with_capacity(child_columns.len());
        for c in child_columns {
            let i = child
                .column_index(c)
                .ok_or_else(|| CatalogError::UnknownColumn {
                    table: child_table.into(),
                    column: (*c).into(),
                })?;
            child_idx.push(i);
        }
        self.foreign_keys.push(ForeignKey {
            child_table: child.name.clone(),
            child_columns: child_idx,
            parent_table: parent.name.clone(),
            parent_columns: parent.primary_key.clone(),
        });
        Ok(())
    }

    /// All declared RI constraints.
    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.foreign_keys
    }

    /// RI constraints whose child is `child_table`.
    pub fn foreign_keys_from(&self, child_table: &str) -> impl Iterator<Item = &ForeignKey> {
        let name = child_table.to_ascii_lowercase();
        self.foreign_keys
            .iter()
            .filter(move |fk| fk.child_table == name)
    }

    /// Register a summary-table definition together with its materialized
    /// backing table schema.
    pub fn add_summary_table(
        &mut self,
        def: SummaryTableDef,
        backing: Table,
    ) -> Result<(), CatalogError> {
        let key = def.name.to_ascii_lowercase();
        if self.summary_tables.contains_key(&key) {
            return Err(CatalogError::DuplicateSummaryTable(def.name));
        }
        self.add_table(backing)?;
        self.summary_tables.insert(key, def);
        Ok(())
    }

    /// Look up a summary-table definition.
    pub fn summary_table(&self, name: &str) -> Option<&SummaryTableDef> {
        self.summary_tables.get(&name.to_ascii_lowercase())
    }

    /// Iterate over all summary-table definitions in name order.
    pub fn summary_tables(&self) -> impl Iterator<Item = &SummaryTableDef> {
        self.summary_tables.values()
    }

    /// True if `name` names a registered summary table.
    pub fn is_summary_table(&self, name: &str) -> bool {
        self.summary_tables.contains_key(&name.to_ascii_lowercase())
    }

    /// Deregister a summary table: removes both the definition and its
    /// materialized backing table's schema. Returns the removed definition,
    /// or [`CatalogError::UnknownTable`] if no such summary table exists
    /// (base tables are deliberately not droppable through this path).
    pub fn drop_summary_table(&mut self, name: &str) -> Result<SummaryTableDef, CatalogError> {
        let key = name.to_ascii_lowercase();
        let def = self
            .summary_tables
            .remove(&key)
            .ok_or_else(|| CatalogError::UnknownTable(name.into()))?;
        self.tables.remove(&key);
        Ok(def)
    }

    /// The paper's Section 1.1 credit-card star schema.
    ///
    /// ```text
    /// Trans(tid, faid -> Acct, flid -> Loc, fpgid -> PGroup, date, qty, price, disc)
    /// PGroup(pgid, pgname)
    /// Loc(lid, city, state, country)
    /// Acct(aid, fcid -> Cust, status)
    /// Cust(cid, cname, age)
    /// ```
    // The sample schema is a static literal; construction failures here are
    // programming errors, so unwrap/expect are genuinely intended.
    #[allow(clippy::unwrap_used, clippy::expect_used)]
    pub fn credit_card_sample() -> Catalog {
        use SqlType::*;
        let mut cat = Catalog::new();
        cat.add_table(
            Table::new(
                "pgroup",
                vec![Column::new("pgid", Int), Column::new("pgname", Varchar)],
            )
            .with_primary_key(&["pgid"])
            .expect("static sample schema"),
        )
        .unwrap();
        cat.add_table(
            Table::new(
                "loc",
                vec![
                    Column::new("lid", Int),
                    Column::new("city", Varchar),
                    Column::new("state", Varchar),
                    Column::new("country", Varchar),
                ],
            )
            .with_primary_key(&["lid"])
            .expect("static sample schema"),
        )
        .unwrap();
        cat.add_table(
            Table::new(
                "cust",
                vec![
                    Column::new("cid", Int),
                    Column::new("cname", Varchar),
                    Column::new("age", Int),
                ],
            )
            .with_primary_key(&["cid"])
            .expect("static sample schema"),
        )
        .unwrap();
        cat.add_table(
            Table::new(
                "acct",
                vec![
                    Column::new("aid", Int),
                    Column::new("fcid", Int),
                    Column::new("status", Varchar),
                ],
            )
            .with_primary_key(&["aid"])
            .expect("static sample schema"),
        )
        .unwrap();
        cat.add_table(
            Table::new(
                "trans",
                vec![
                    Column::new("tid", Int),
                    Column::new("faid", Int),
                    Column::new("flid", Int),
                    Column::new("fpgid", Int),
                    Column::new("date", Date),
                    Column::new("qty", Int),
                    Column::new("price", Double),
                    Column::new("disc", Double),
                ],
            )
            .with_primary_key(&["tid"])
            .expect("static sample schema"),
        )
        .unwrap();
        cat.add_foreign_key("trans", &["faid"], "acct").unwrap();
        cat.add_foreign_key("trans", &["flid"], "loc").unwrap();
        cat.add_foreign_key("trans", &["fpgid"], "pgroup").unwrap();
        cat.add_foreign_key("acct", &["fcid"], "cust").unwrap();
        cat
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod tests {
    use super::*;

    #[test]
    fn sample_schema_shape() {
        let cat = Catalog::credit_card_sample();
        assert_eq!(cat.tables().count(), 5);
        let trans = cat.table("Trans").unwrap();
        assert_eq!(trans.columns.len(), 8);
        assert_eq!(trans.primary_key, vec![0]);
        assert_eq!(trans.column_index("PRICE"), Some(6));
        assert!(trans.column("price").unwrap().ty == SqlType::Double);
    }

    #[test]
    fn foreign_keys_resolve() {
        let cat = Catalog::credit_card_sample();
        assert_eq!(cat.foreign_keys().len(), 4);
        let fks: Vec<_> = cat.foreign_keys_from("trans").collect();
        assert_eq!(fks.len(), 3);
        let loc_fk = fks.iter().find(|f| f.parent_table == "loc").unwrap();
        assert_eq!(loc_fk.child_columns, vec![2]); // flid
        assert_eq!(loc_fk.parent_columns, vec![0]); // lid
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut cat = Catalog::new();
        cat.add_table(Table::new("t", vec![Column::new("a", SqlType::Int)]))
            .unwrap();
        let err = cat
            .add_table(Table::new("T", vec![Column::new("a", SqlType::Int)]))
            .unwrap_err();
        assert_eq!(err, CatalogError::DuplicateTable("t".into()));
    }

    #[test]
    fn fk_validation() {
        let mut cat = Catalog::new();
        cat.add_table(Table::new("child", vec![Column::new("p", SqlType::Int)]))
            .unwrap();
        cat.add_table(Table::new("parent", vec![Column::new("id", SqlType::Int)]))
            .unwrap();
        // Parent has no PK.
        assert!(matches!(
            cat.add_foreign_key("child", &["p"], "parent"),
            Err(CatalogError::InvalidForeignKey(_))
        ));
        // Unknown tables / columns.
        assert!(matches!(
            cat.add_foreign_key("nope", &["p"], "parent"),
            Err(CatalogError::UnknownTable(_))
        ));
    }

    #[test]
    fn summary_table_registry() {
        let mut cat = Catalog::credit_card_sample();
        let def = SummaryTableDef {
            name: "ast1".into(),
            query_sql: "select faid, count(*) as cnt from trans group by faid".into(),
        };
        let backing = Table::new(
            "ast1",
            vec![
                Column::new("faid", SqlType::Int),
                Column::new("cnt", SqlType::Int),
            ],
        );
        cat.add_summary_table(def.clone(), backing).unwrap();
        assert!(cat.is_summary_table("AST1"));
        assert_eq!(cat.summary_table("ast1").unwrap().query_sql, def.query_sql);
        assert!(cat.table("ast1").is_some());
        // Duplicate registration fails.
        let again = SummaryTableDef {
            name: "ast1".into(),
            query_sql: String::new(),
        };
        assert!(cat
            .add_summary_table(again, Table::new("ast1b", vec![]))
            .is_err());
        // Deregistration removes both the definition and the backing table,
        // and frees the name for re-registration.
        let removed = cat.drop_summary_table("AST1").unwrap();
        assert_eq!(removed.name, "ast1");
        assert!(!cat.is_summary_table("ast1"));
        assert!(cat.table("ast1").is_none());
        assert!(matches!(
            cat.drop_summary_table("ast1"),
            Err(CatalogError::UnknownTable(_))
        ));
    }
}
