//! `sumtab-cli` — an interactive SQL shell with transparent Automatic
//! Summary Table rewriting.
//!
//! ```text
//! cargo run --release -p sumtab --bin sumtab-cli            # empty session
//! cargo run --release -p sumtab --bin sumtab-cli -- --demo  # generated star schema
//! ```
//!
//! Statements end with `;`. Dot-commands:
//!
//! * `.help` — this text
//! * `.tables` — list tables and row counts
//! * `.asts` — list registered summary tables
//! * `.explain <select...>;` — show the rewritten SQL without running it
//! * `.qgm <select...>;` — dump the Query Graph Model
//! * `.norewrite <select...>;` — run against base tables only
//! * `.import <table> <file.csv>` — load a CSV file (with header) into a table
//! * `.export <file.csv> <select...>;` — run a query and write CSV
//! * `.quit`

use std::io::{BufRead, Write};
use sumtab::datagen::{generate, GenConfig};
use sumtab::{format_table, SummarySession};

fn main() {
    let demo = std::env::args().any(|a| a == "--demo");
    let mut session = if demo {
        let cfg = GenConfig {
            transactions: 20_000,
            ..GenConfig::scale(20_000)
        };
        eprintln!(
            "generating demo star schema ({} transactions)...",
            cfg.transactions
        );
        let (catalog, db) = generate(&cfg);
        let mut s = SummarySession::with_data(catalog, db);
        if let Err(e) = s.run_script(
            "create summary table demo_ast as (
                 select faid, flid, year(date) as year, count(*) as cnt
                 from trans group by faid, flid, year(date));",
        ) {
            eprintln!("demo AST setup failed: {e}");
            std::process::exit(1);
        }
        eprintln!("demo AST `demo_ast` materialized. Try:");
        eprintln!("  select faid, count(*) as cnt from trans group by faid;");
        eprintln!(
            "  .explain select year(date) as y, count(*) as c from trans group by year(date);"
        );
        s
    } else {
        SummarySession::new()
    };

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    print_prompt(&buffer);
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('.') {
            if !dot_command(&mut session, trimmed) {
                break;
            }
            print_prompt(&buffer);
            continue;
        }
        buffer.push_str(&line);
        buffer.push('\n');
        if trimmed.ends_with(';') {
            run_buffer(&mut session, &std::mem::take(&mut buffer));
        }
        print_prompt(&buffer);
    }
}

fn print_prompt(buffer: &str) {
    let p = if buffer.is_empty() {
        "sumtab> "
    } else {
        "   ...> "
    };
    print!("{p}");
    let _ = std::io::stdout().flush();
}

/// Returns false to quit.
fn dot_command(session: &mut SummarySession, cmd: &str) -> bool {
    let (head, rest) = match cmd.split_once(' ') {
        Some((h, r)) => (h, r.trim().trim_end_matches(';')),
        None => (cmd, ""),
    };
    match head {
        ".quit" | ".exit" => return false,
        ".help" => {
            println!(
                ".tables | .asts | .explain <q>; | .qgm <q>; | .norewrite <q>; | \
                 .import <table> <csv> | .export <csv> <q>; | .quit"
            )
        }
        ".tables" => {
            for t in session.session.catalog.tables() {
                let kind = if session.session.catalog.is_summary_table(&t.name) {
                    " (summary)"
                } else {
                    ""
                };
                println!(
                    "  {:<24} {:>8} rows{}",
                    t.name,
                    session.session.db.row_count(&t.name),
                    kind
                );
            }
        }
        ".asts" => {
            for ast in session.asts() {
                println!("  {}", ast.name);
                if let Some(def) = session.session.catalog.summary_table(&ast.name) {
                    println!("      {}", def.query_sql);
                }
            }
        }
        ".explain" => match session.explain(rest) {
            Ok(plan) => println!("{plan}"),
            Err(e) => eprintln!("error: {e}"),
        },
        ".qgm" => match sumtab::parser::parse_query(rest)
            .map_err(|e| e.to_string())
            .and_then(|q| {
                sumtab::build_query(&q, &session.session.catalog).map_err(|e| e.to_string())
            }) {
            Ok(g) => println!("{}", sumtab::qgm::dump_graph(&g)),
            Err(e) => eprintln!("error: {e}"),
        },
        ".norewrite" => match session.query_no_rewrite(rest) {
            Ok(r) => println!("{}", format_table(&r.header, &r.rows)),
            Err(e) => eprintln!("error: {e}"),
        },
        ".import" => {
            let mut parts = rest.splitn(2, ' ');
            match (parts.next(), parts.next()) {
                (Some(table), Some(path)) => match std::fs::read_to_string(path.trim()) {
                    Ok(text) => match sumtab::engine::load_csv(
                        &session.session.catalog,
                        &mut session.session.db,
                        table,
                        &text,
                        true,
                    ) {
                        Ok(n) => println!("loaded {n} rows into {table}"),
                        Err(e) => eprintln!("error: {e}"),
                    },
                    Err(e) => eprintln!("error reading {path}: {e}"),
                },
                _ => eprintln!("usage: .import <table> <file.csv>"),
            }
        }
        ".export" => {
            let mut parts = rest.splitn(2, ' ');
            match (parts.next(), parts.next()) {
                (Some(path), Some(sql)) => match session.query(sql) {
                    Ok(r) => {
                        let csv = sumtab::engine::to_csv(&r.header, &r.rows);
                        match std::fs::write(path, csv) {
                            Ok(()) => println!("wrote {} rows to {path}", r.rows.len()),
                            Err(e) => eprintln!("error writing {path}: {e}"),
                        }
                    }
                    Err(e) => eprintln!("error: {e}"),
                },
                _ => eprintln!("usage: .export <file.csv> <select...>;"),
            }
        }
        other => eprintln!("unknown command `{other}` — try .help"),
    }
    true
}

fn run_buffer(session: &mut SummarySession, sql: &str) {
    let sql = sql.trim().trim_end_matches(';');
    if sql.is_empty() {
        return;
    }
    // SELECTs go through the rewriting path so we can report routing.
    if sql.trim_start().to_ascii_lowercase().starts_with("select") {
        match session.query(sql) {
            Ok(r) => {
                if let Some(ast) = &r.used_ast {
                    eprintln!("-- answered from summary table `{ast}`");
                }
                println!("{}", format_table(&r.header, &r.rows));
                println!("({} rows)", r.rows.len());
            }
            Err(e) => eprintln!("error: {e}"),
        }
        return;
    }
    match session.run_script(sql) {
        Ok(results) => {
            for res in results {
                match res {
                    sumtab::engine::session::StatementResult::Rows(h, rows) => {
                        println!("{}", format_table(&h, &rows));
                    }
                    sumtab::engine::session::StatementResult::Count(n) => {
                        println!("({n} rows affected)");
                    }
                    sumtab::engine::session::StatementResult::Done => println!("ok"),
                }
            }
        }
        Err(e) => eprintln!("error: {e}"),
    }
}
