//! Durable sessions: a write-ahead-logged, snapshotted [`SummarySession`]
//! that survives crashes with its full state — catalog, base data,
//! registered ASTs and their materialized contents, per-table modification
//! epochs, and the plan-cache generation.
//!
//! ## Protocol (logical redo; DESIGN.md §12 has the invariants)
//!
//! Every mutating operation is applied **in memory first**, then framed as
//! one or more [`WalRecord`]s and appended (checksummed, fsynced) to
//! `wal.bin`; only then is it acknowledged. Every `snapshot_every` records
//! the whole session state is serialized to `snapshot.bin` via an atomic
//! temp-file-then-rename, after which the log is reset. Recovery
//! ([`DurableSession::open`]) loads the newest valid snapshot, replays the
//! WAL records it does not already cover, truncates any torn tail at the
//! last valid record, and re-runs the plan verifier on every recovered AST
//! registration — an AST that no longer verifies is *skipped* with a typed
//! [`RecoverError::AstRejected`] entry in the [`RecoveryReport`], never
//! loaded and never a panic.
//!
//! ## Degradation, not failure
//!
//! When a WAL append fails even after bounded retry-with-backoff, the
//! session drops to [`DurabilityMode::Ephemeral`] — it keeps answering
//! queries and applying mutations in memory, and the mode (with its cause)
//! is explicitly reported rather than silently losing the durability
//! guarantee. A failed snapshot is softer still: the previous snapshot plus
//! the intact WAL remain authoritative, and the error is surfaced through
//! [`DurableSession::last_snapshot_error`].
//!
//! ## Replay determinism
//!
//! Replay drives the *same* code paths as live execution (inserts,
//! incremental maintenance, materialization), so epochs advance identically
//! and recovered staleness bookkeeping matches the pre-crash session. The
//! one non-deterministic live event — an incremental maintenance attempt
//! that a transient fault pushed onto the full-refresh path — is
//! neutralized by logging an idempotent `Refresh` record after the
//! `Append`. After replay the plan-cache generation is bumped once more
//! than the pre-crash session ever saw, so no plan cached before the crash
//! can validate against the recovered session.

use crate::{AppliedOp, SummarySession};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use sumtab_catalog::{Catalog, Table};
use sumtab_engine::session::StatementResult;
use sumtab_engine::{Database, Row, SumtabError};
use sumtab_parser::parse_statements;
use sumtab_persist::snapshot::{self, SnapshotState};
use sumtab_persist::wal::{self, Wal, WalRecord};
use sumtab_persist::{PersistError, WalOptions};

/// WAL file name inside a durability directory.
pub const WAL_FILE: &str = "wal.bin";

/// Configuration for a [`DurableSession`].
#[derive(Debug, Clone, Copy)]
pub struct DurableOptions {
    /// Take a snapshot (and reset the log) after this many WAL records.
    /// `0` disables automatic snapshots — the log then grows until
    /// [`DurableSession::snapshot_now`] is called.
    pub snapshot_every: u64,
    /// WAL write options (retry policy, fsync).
    pub wal: WalOptions,
}

impl Default for DurableOptions {
    fn default() -> DurableOptions {
        DurableOptions {
            snapshot_every: 64,
            wal: WalOptions::default(),
        }
    }
}

/// Whether the session is actually persisting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurabilityMode {
    /// Mutations are logged (and snapshotted) before acknowledgement.
    Durable,
    /// The WAL became unavailable; the session continues in memory only.
    /// Ops applied in this mode are lost on crash — explicitly, not
    /// silently: the reason records what failed.
    Ephemeral {
        /// Why durability was lost.
        reason: String,
    },
}

/// A failure while opening/recovering a durable session, or a typed note
/// about an AST recovery skipped.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoverError {
    /// The storage layer failed (IO, or validated-as-corrupt state).
    Storage(PersistError),
    /// A WAL record could not be re-applied to the recovered session.
    Replay {
        /// The record's LSN.
        lsn: u64,
        /// What went wrong.
        detail: String,
    },
    /// A recovered AST registration no longer parses, plans, or passes the
    /// plan verifier. Recovery *skips* the AST (it takes no part in
    /// rewriting) and continues; this variant appears in
    /// [`RecoveryReport::rejected`], not as a hard error.
    AstRejected {
        /// The AST's name.
        name: String,
        /// Why it was rejected.
        reason: String,
    },
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::Storage(e) => write!(f, "recovery storage error: {e}"),
            RecoverError::Replay { lsn, detail } => {
                write!(f, "replay failed at lsn {lsn}: {detail}")
            }
            RecoverError::AstRejected { name, reason } => {
                write!(f, "recovered AST `{name}` rejected: {reason}")
            }
        }
    }
}

impl std::error::Error for RecoverError {}

impl From<PersistError> for RecoverError {
    fn from(e: PersistError) -> RecoverError {
        RecoverError::Storage(e)
    }
}

/// What [`DurableSession::open`] found and did.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// LSN the loaded snapshot covered (0 = no snapshot).
    pub snapshot_lsn: u64,
    /// WAL records replayed after the snapshot.
    pub replayed: u64,
    /// Why the WAL scan stopped early, when it did — the torn/corrupt tail
    /// that was truncated away.
    pub torn_tail: Option<String>,
    /// ASTs skipped during recovery ([`RecoverError::AstRejected`] entries).
    pub rejected: Vec<RecoverError>,
}

impl RecoveryReport {
    fn is_rejected(&self, name: &str) -> bool {
        self.rejected.iter().any(|r| {
            matches!(r, RecoverError::AstRejected { name: n, .. }
                     if n.eq_ignore_ascii_case(name))
        })
    }
}

/// A [`SummarySession`] whose state survives process death.
///
/// ```
/// use sumtab::DurableSession;
/// let dir = std::env::temp_dir().join(format!("sumtab-doc-{}", std::process::id()));
/// std::fs::remove_dir_all(&dir).ok();
/// let mut s = DurableSession::open(&dir).unwrap();
/// s.run_script(
///     "create table t (k int not null);
///      insert into t values (1), (1), (2);
///      create summary table st as (select k, count(*) as c from t group by k);",
/// ).unwrap();
/// drop(s); // "crash"
/// let mut s = DurableSession::open(&dir).unwrap();
/// let r = s.query("select k, count(*) as c from t group by k").unwrap();
/// assert_eq!(r.used_ast.as_deref(), Some("st"), "AST survives recovery");
/// # std::fs::remove_dir_all(&dir).ok();
/// ```
pub struct DurableSession {
    inner: SummarySession,
    dir: PathBuf,
    /// `None` exactly when `mode` is ephemeral.
    wal: Option<Wal>,
    mode: DurabilityMode,
    opts: DurableOptions,
    records_since_snapshot: u64,
    report: RecoveryReport,
    last_snapshot_error: Option<String>,
}

impl DurableSession {
    /// Open (or create) a durable session rooted at `dir`, recovering any
    /// state a previous process left there. See [`DurableSession::open_with`].
    pub fn open(dir: impl AsRef<Path>) -> Result<DurableSession, RecoverError> {
        DurableSession::open_with(dir, DurableOptions::default())
    }

    /// [`DurableSession::open`] with explicit options.
    ///
    /// Recovery sequence: load `snapshot.bin` (typed error if present but
    /// corrupt), scan `wal.bin` accepting the longest valid prefix, replay
    /// records the snapshot does not cover, truncate the torn tail, then
    /// bump the plan generation past anything the pre-crash session could
    /// have cached. Opening the WAL for *append* is allowed to fail — that
    /// degrades the session to [`DurabilityMode::Ephemeral`] instead of
    /// refusing to serve.
    pub fn open_with(
        dir: impl AsRef<Path>,
        opts: DurableOptions,
    ) -> Result<DurableSession, RecoverError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| PersistError::io(format!("create {}", dir.display()), &e))?;
        let snap = snapshot::read_snapshot(&dir)?;
        let wal_path = dir.join(WAL_FILE);
        let scanned = wal::scan(&wal_path)?;
        let had_prior_state = snap.is_some() || scanned.is_some();

        let mut report = RecoveryReport::default();
        let mut inner = match snap {
            Some(state) => {
                report.snapshot_lsn = state.last_lsn;
                restore_session(state, &mut report)?
            }
            None => SummarySession::new(),
        };
        if let Some(out) = &scanned {
            report.torn_tail = out.torn.clone();
            for (lsn, rec) in &out.records {
                if *lsn <= report.snapshot_lsn {
                    // The snapshot already covers this record (crash hit
                    // the window between snapshot rename and WAL reset).
                    continue;
                }
                replay_record(&mut inner, *lsn, rec, &mut report)?;
                report.replayed += 1;
            }
        }
        if had_prior_state {
            // No plan cached by the pre-crash process may ever validate
            // against the recovered session, even though replay reproduces
            // its epochs exactly.
            inner.bump_plan_generation();
        }

        let next_lsn = scanned
            .as_ref()
            .map(|o| o.next_lsn)
            .unwrap_or(1)
            .max(report.snapshot_lsn + 1);
        let opened = match &scanned {
            Some(out) => Wal::open_after_scan(&wal_path, out, next_lsn, opts.wal),
            None => Wal::create(&wal_path, next_lsn, opts.wal),
        };
        let (wal, mode) = match opened {
            Ok(w) => (Some(w), DurabilityMode::Durable),
            // Degrade explicitly: the recovered state is served, but new
            // mutations cannot be made durable.
            Err(e) => (
                None,
                DurabilityMode::Ephemeral {
                    reason: format!("wal unavailable: {e}"),
                },
            ),
        };
        Ok(DurableSession {
            inner,
            dir,
            wal,
            mode,
            opts,
            records_since_snapshot: 0,
            report,
            last_snapshot_error: None,
        })
    }

    /// The durability directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether mutations are currently being persisted.
    pub fn mode(&self) -> &DurabilityMode {
        &self.mode
    }

    /// What recovery found when this session was opened.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.report
    }

    /// The most recent automatic-snapshot failure, if any (cleared by the
    /// next successful snapshot). The session stays durable through the
    /// WAL regardless.
    pub fn last_snapshot_error(&self) -> Option<&str> {
        self.last_snapshot_error.as_deref()
    }

    /// Read-only view of the wrapped session (plans, EXPLAIN, AST
    /// introspection). Mutations must go through the durable methods.
    pub fn session(&self) -> &SummarySession {
        &self.inner
    }

    /// The wrapped session's plan-cache generation.
    pub fn plan_generation(&self) -> u64 {
        self.inner.plan_generation()
    }

    /// Configure the wrapped session's result-cache capacity.
    ///
    /// Routing, feedback, and result-cache state are *derived* — none of it
    /// is WAL-logged. Recovery replays registrations, which bumps the plan
    /// generation and so invalidates any pre-crash routing decisions and
    /// cached results; the cost model re-derives the same routes from the
    /// recovered catalog, and the feedback loop re-learns from live
    /// executions.
    pub fn set_result_cache_capacity(&mut self, n: usize) {
        self.inner.set_result_cache_capacity(n);
    }

    /// Configure the wrapped session's routing policy (not WAL-logged;
    /// reapply after reopening if a non-default policy is wanted).
    pub fn set_router_options(&mut self, opts: crate::RouterOptions) {
        self.inner.set_router_options(opts);
    }

    /// Run a script durably: each statement is applied in memory, then its
    /// logical records are appended to the WAL before the next statement
    /// runs. A failed statement surfaces as an error with nothing logged
    /// for it; a failed *log append* (after retries) degrades the session
    /// to ephemeral mode and the script continues.
    pub fn run_script(&mut self, sql: &str) -> Result<Vec<StatementResult>, SumtabError> {
        let stmts = parse_statements(sql).map_err(|e| SumtabError::parse(sql, e))?;
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in &stmts {
            let (result, op) = self.inner.apply_statement(stmt)?;
            self.log_op(op);
            out.push(result);
        }
        Ok(out)
    }

    /// Execute a query with transparent rewriting (no logging needed —
    /// queries do not mutate logical state).
    pub fn query(&mut self, sql: &str) -> Result<crate::QueryResult, SumtabError> {
        self.inner.query(sql)
    }

    /// Execute a query without rewriting (baseline).
    pub fn query_no_rewrite(&mut self, sql: &str) -> Result<crate::QueryResult, SumtabError> {
        self.inner.query_no_rewrite(sql)
    }

    /// EXPLAIN-style routing view.
    pub fn explain(&self, sql: &str) -> Result<String, SumtabError> {
        self.inner.explain(sql)
    }

    /// Durable [`SummarySession::append`]: rows land in the base table,
    /// affected summaries are maintained, and the batch (plus any
    /// fault-degraded refreshes) is logged.
    pub fn append(&mut self, table: &str, rows: Vec<Row>) -> Result<Vec<String>, SumtabError> {
        let report = self.inner.append_with_report(table, rows.clone())?;
        self.log_op(AppliedOp::Append {
            table: table.to_string(),
            rows,
            refreshed: report.refreshed,
        });
        Ok(report.maintained)
    }

    /// Durable [`SummarySession::refresh`].
    pub fn refresh(&mut self, name: &str) -> Result<(), SumtabError> {
        self.inner.refresh(name)?;
        self.log(WalRecord::Refresh {
            name: name.to_string(),
        });
        self.maybe_snapshot();
        Ok(())
    }

    /// Durable [`SummarySession::deregister`].
    pub fn deregister(&mut self, name: &str) -> Result<(), SumtabError> {
        self.inner.deregister(name)?;
        self.log(WalRecord::DeregisterAst {
            name: name.to_string(),
        });
        self.maybe_snapshot();
        Ok(())
    }

    /// Durably invalidate a table: bump its modification epoch (marking
    /// every summary snapshotted against it stale, and invalidating cached
    /// plans that read it) without changing its data.
    pub fn invalidate(&mut self, table: &str) {
        self.inner.session.db.bump_epoch(table);
        self.log(WalRecord::EpochBump {
            table: table.to_string(),
        });
        self.maybe_snapshot();
    }

    /// Take a snapshot immediately and reset the log. Errors if the
    /// session is ephemeral (there is no log to anchor the snapshot's LSN)
    /// or if the snapshot write fails — in the latter case the previous
    /// snapshot and the intact WAL remain authoritative.
    pub fn snapshot_now(&mut self) -> Result<(), PersistError> {
        let Some(w) = &mut self.wal else {
            return Err(PersistError::Io {
                context: "snapshot".to_string(),
                kind: std::io::ErrorKind::Other,
                message: "session is in ephemeral mode".to_string(),
            });
        };
        let state = build_snapshot_state(&self.inner, w.last_lsn());
        snapshot::write_snapshot(&self.dir, &state, self.opts.wal.retry)?;
        // A failed reset is harmless: the snapshot's LSN makes recovery
        // skip every record the log still holds.
        let _ = w.reset();
        self.records_since_snapshot = 0;
        self.last_snapshot_error = None;
        Ok(())
    }

    fn log_op(&mut self, op: AppliedOp) {
        match op {
            AppliedOp::None => return,
            AppliedOp::CreateTable(t) => self.log(WalRecord::CreateTable(t)),
            AppliedOp::AddForeignKey {
                child_table,
                columns,
                parent_table,
            } => self.log(WalRecord::AddForeignKey {
                child_table,
                columns,
                parent_table,
            }),
            AppliedOp::RegisterAst { name, query_sql } => {
                self.log(WalRecord::RegisterAst { name, query_sql })
            }
            AppliedOp::Insert { table, rows } => self.log(WalRecord::Insert { table, rows }),
            AppliedOp::Append {
                table,
                rows,
                refreshed,
            } => {
                self.log(WalRecord::Append { table, rows });
                // Neutralize non-deterministic degradations: replaying the
                // append may succeed incrementally where the live run fell
                // back to a refresh; the refresh record converges both.
                for name in refreshed {
                    self.log(WalRecord::Refresh { name });
                }
            }
            AppliedOp::Delete {
                table,
                rows,
                refreshed,
            } => {
                self.log(WalRecord::Delete { table, rows });
                // Same convergence contract as Append: the live run may have
                // degraded to a refresh non-deterministically.
                for name in refreshed {
                    self.log(WalRecord::Refresh { name });
                }
            }
            AppliedOp::Update {
                table,
                old_rows,
                new_rows,
                refreshed,
            } => {
                self.log(WalRecord::Update {
                    table,
                    old_rows,
                    new_rows,
                });
                for name in refreshed {
                    self.log(WalRecord::Refresh { name });
                }
            }
            AppliedOp::DeregisterAst { name } => self.log(WalRecord::DeregisterAst { name }),
        }
        self.maybe_snapshot();
    }

    /// Append one record, degrading to ephemeral mode when the WAL fails
    /// even after bounded retry. The in-memory application has already
    /// happened; what is lost is only the *durability* of this op — which
    /// is exactly what the mode change reports.
    fn log(&mut self, rec: WalRecord) {
        let Some(w) = &mut self.wal else { return };
        match w.append(&rec) {
            Ok(_) => self.records_since_snapshot += 1,
            Err(e) => {
                self.mode = DurabilityMode::Ephemeral {
                    reason: format!("wal append failed: {e}"),
                };
                self.wal = None;
            }
        }
    }

    fn maybe_snapshot(&mut self) {
        if self.opts.snapshot_every == 0
            || self.records_since_snapshot < self.opts.snapshot_every
            || self.wal.is_none()
        {
            return;
        }
        if let Err(e) = self.snapshot_now() {
            // Soft failure: WAL durability is intact; retry at the next
            // cadence point and surface the cause.
            self.last_snapshot_error = Some(e.to_string());
            self.records_since_snapshot = 0;
        }
    }
}

/// Serialize the full session state for a snapshot covering `last_lsn`.
fn build_snapshot_state(s: &SummarySession, last_lsn: u64) -> SnapshotState {
    let (data, epochs) = s.session.db.export_state();
    SnapshotState {
        last_lsn,
        generation: s.plan_generation(),
        tables: s.session.catalog.tables().cloned().collect(),
        foreign_keys: s.session.catalog.foreign_keys().to_vec(),
        summaries: s.session.catalog.summary_tables().cloned().collect(),
        data,
        epochs,
        ast_epochs: s
            .ast_states()
            .iter()
            .map(|st| {
                (
                    st.ast.name.clone(),
                    st.base_epochs
                        .iter()
                        .map(|(k, &v)| (k.clone(), v))
                        .collect(),
                )
            })
            .collect(),
    }
}

/// Rebuild a session from a decoded snapshot. Epochs and per-AST epoch
/// snapshots are restored *exactly* (a summary that was stale at snapshot
/// time is still stale after recovery). Every recovered AST registration is
/// re-verified; failures are recorded as typed rejections and skipped.
fn restore_session(
    state: SnapshotState,
    report: &mut RecoveryReport,
) -> Result<SummarySession, RecoverError> {
    let rerr = |detail: String| RecoverError::Replay {
        lsn: state.last_lsn,
        detail,
    };
    let mut catalog = Catalog::new();
    let summary_names: Vec<String> = state
        .summaries
        .iter()
        .map(|d| d.name.to_ascii_lowercase())
        .collect();
    let mut backing: BTreeMap<String, Table> = BTreeMap::new();
    for t in &state.tables {
        if summary_names.contains(&t.name) {
            backing.insert(t.name.clone(), t.clone());
        } else {
            catalog
                .add_table(t.clone())
                .map_err(|e| rerr(format!("snapshot table `{}`: {e}", t.name)))?;
        }
    }
    for def in &state.summaries {
        let b = backing
            .remove(&def.name.to_ascii_lowercase())
            .ok_or_else(|| {
                rerr(format!(
                    "snapshot summary `{}` has no backing table",
                    def.name
                ))
            })?;
        catalog
            .add_summary_table(def.clone(), b)
            .map_err(|e| rerr(format!("snapshot summary `{}`: {e}", def.name)))?;
    }
    for fk in &state.foreign_keys {
        // FKs travel as ordinals; resolve back to names so the catalog's
        // own validation re-runs against the restored schemas.
        let child = catalog
            .table(&fk.child_table)
            .ok_or_else(|| rerr(format!("snapshot fk child `{}` missing", fk.child_table)))?;
        let cols: Vec<String> = fk
            .child_columns
            .iter()
            .map(|&i| {
                child
                    .columns
                    .get(i)
                    .map(|c| c.name.clone())
                    .ok_or_else(|| rerr(format!("snapshot fk ordinal {i} out of range")))
            })
            .collect::<Result<_, _>>()?;
        let cols_ref: Vec<&str> = cols.iter().map(String::as_str).collect();
        catalog
            .add_foreign_key(&fk.child_table, &cols_ref, &fk.parent_table)
            .map_err(|e| rerr(format!("snapshot fk on `{}`: {e}", fk.child_table)))?;
    }

    let mut db = Database::new();
    db.restore_state(state.data, state.epochs);
    let mut inner = SummarySession::with_data(catalog, db);

    // Definitions that failed to re-parse/plan are typed rejections.
    for (name, reason) in inner.registration_failures().to_vec() {
        report.rejected.push(RecoverError::AstRejected {
            name,
            reason: format!("definition no longer plans: {reason}"),
        });
    }
    // Restore each AST's epoch snapshot exactly as persisted — NOT from the
    // current database — so pre-crash staleness survives recovery.
    let stored: BTreeMap<String, &Vec<(String, u64)>> = state
        .ast_epochs
        .iter()
        .map(|(n, v)| (n.to_ascii_lowercase(), v))
        .collect();
    for st in inner.asts.iter_mut() {
        if let Some(bases) = stored.get(&st.ast.name.to_ascii_lowercase()) {
            st.base_epochs = bases.iter().map(|(k, v)| (k.clone(), *v)).collect();
        }
    }
    inner.ast_generation = state.generation;

    // Satellite gate: every recovered registration must still pass the
    // plan verifier; failures are skipped (typed), never loaded.
    let mut rejected = Vec::new();
    for (i, st) in inner.asts.iter().enumerate() {
        if let Err(e) = sumtab_qgm::verify::verify_plan(&st.ast.graph, &inner.session.catalog) {
            report.rejected.push(RecoverError::AstRejected {
                name: st.ast.name.clone(),
                reason: format!("plan verifier rejected recovered AST: {e}"),
            });
            rejected.push(i);
        }
    }
    for i in rejected.into_iter().rev() {
        let st = inner.asts.remove(i);
        inner
            .registration_failures
            .push((st.ast.name.clone(), "rejected by recovery verifier".into()));
    }
    Ok(inner)
}

/// Re-apply one WAL record. Records are kind-authoritative: an `Insert`
/// replays as a plain insert even if an AST now reads the table, because
/// that is what the live session durably acknowledged.
fn replay_record(
    inner: &mut SummarySession,
    lsn: u64,
    rec: &WalRecord,
    report: &mut RecoveryReport,
) -> Result<(), RecoverError> {
    let rerr = |detail: String| RecoverError::Replay { lsn, detail };
    match rec {
        WalRecord::CreateTable(t) => {
            inner
                .session
                .catalog
                .add_table(t.clone())
                .map_err(|e| rerr(format!("create table `{}`: {e}", t.name)))?;
            inner.bump_plan_generation();
        }
        WalRecord::AddForeignKey {
            child_table,
            columns,
            parent_table,
        } => {
            let cols: Vec<&str> = columns.iter().map(String::as_str).collect();
            inner
                .session
                .catalog
                .add_foreign_key(child_table, &cols, parent_table)
                .map_err(|e| rerr(format!("add foreign key on `{child_table}`: {e}")))?;
            inner.bump_plan_generation();
        }
        WalRecord::RegisterAst { name, query_sql } => {
            // Re-run the full registration path (materialize + register),
            // then gate on the verifier exactly as the satellite requires.
            let ddl = format!("create summary table {name} as ({query_sql})");
            match inner.run_script(&ddl) {
                Ok(_) => {
                    let verdict = inner
                        .ast_states()
                        .iter()
                        .find(|st| st.ast.name.eq_ignore_ascii_case(name))
                        .map(|st| {
                            sumtab_qgm::verify::verify_plan(&st.ast.graph, &inner.session.catalog)
                        });
                    if let Some(Err(e)) = verdict {
                        report.rejected.push(RecoverError::AstRejected {
                            name: name.clone(),
                            reason: format!("plan verifier rejected replayed AST: {e}"),
                        });
                        // Typed skip: remove it cleanly, keep recovering.
                        let _ = inner.deregister(name);
                    }
                }
                Err(e) => report.rejected.push(RecoverError::AstRejected {
                    name: name.clone(),
                    reason: format!("replayed registration failed: {e}"),
                }),
            }
        }
        WalRecord::DeregisterAst { name } => {
            if let Err(e) = inner.deregister(name) {
                // Deregistering an AST that recovery already rejected is a
                // no-op, not a failure.
                if !report.is_rejected(name) {
                    return Err(rerr(format!("deregister `{name}`: {e}")));
                }
            }
        }
        WalRecord::Insert { table, rows } => {
            inner
                .session
                .db
                .insert(&inner.session.catalog, table, rows.clone())
                .map_err(|e| rerr(format!("insert into `{table}`: {e}")))?;
        }
        WalRecord::Append { table, rows } => {
            inner
                .append(table, rows.clone())
                .map_err(|e| rerr(format!("append to `{table}`: {e}")))?;
        }
        WalRecord::Refresh { name } => {
            if report.is_rejected(name) {
                return Ok(());
            }
            inner
                .refresh(name)
                .map_err(|e| rerr(format!("refresh `{name}`: {e}")))?;
        }
        WalRecord::EpochBump { table } => {
            inner.session.db.bump_epoch(table);
        }
        WalRecord::Delete { table, rows } => {
            inner
                .delete_rows(table, rows.clone())
                .map_err(|e| rerr(format!("delete from `{table}`: {e}")))?;
        }
        WalRecord::Update {
            table,
            old_rows,
            new_rows,
        } => {
            inner
                .update_rows(table, old_rows.clone(), new_rows.clone())
                .map_err(|e| rerr(format!("update `{table}`: {e}")))?;
        }
    }
    Ok(())
}
