//! # sumtab
//!
//! Answering complex SQL queries using Automatic Summary Tables — a Rust
//! reproduction of Zaharioudakis et al., SIGMOD 2000.
//!
//! This facade crate re-exports the whole workspace and adds
//! [`SummarySession`]: a SQL session in which `CREATE SUMMARY TABLE`
//! registers an AST for *transparent* use — subsequent queries are
//! automatically rewritten to read the summary table whenever the matching
//! algorithm proves they can be.
//!
//! ```
//! use sumtab::SummarySession;
//!
//! let mut s = SummarySession::new();
//! s.run_script(
//!     "create table sales (prod varchar not null, qty int not null);
//!      insert into sales values ('tv', 2), ('tv', 3), ('radio', 1);
//!      create summary table by_prod as
//!        (select prod, sum(qty) as total, count(*) as cnt from sales group by prod);",
//! ).unwrap();
//! let result = s.query("select prod, sum(qty) as total from sales group by prod").unwrap();
//! assert_eq!(result.used_ast.as_deref(), Some("by_prod"));
//! assert_eq!(result.rows.len(), 2);
//! ```

pub mod maintain;

pub use sumtab_catalog as catalog;
pub use sumtab_datagen as datagen;
pub use sumtab_engine as engine;
pub use sumtab_matcher as matcher;
pub use sumtab_parser as parser;
pub use sumtab_qgm as qgm;

pub use sumtab_catalog::{Catalog, Date, SqlType, Value};
pub use sumtab_engine::{format_table, sort_rows, Database, Row, Session};
pub use sumtab_matcher::{baseline::baseline_matches, RegisteredAst, Rewrite, Rewriter};
pub use sumtab_qgm::{build_query, render_graph_sql, QgmGraph};

use sumtab_engine::session::{SessionError, StatementResult};
use sumtab_parser::{parse_query, parse_statements, Statement};

fn err(e: impl std::fmt::Display) -> SessionError {
    SessionError {
        message: e.to_string(),
    }
}

/// The result of a transparently-rewritten query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Output column names.
    pub header: Vec<String>,
    /// Result rows.
    pub rows: Vec<Row>,
    /// The summary table the query was answered from, if any.
    pub used_ast: Option<String>,
    /// The executed (possibly rewritten) query, rendered as SQL.
    pub executed_sql: String,
}

/// A SQL session with transparent AST rewriting.
///
/// `CREATE SUMMARY TABLE` both materializes the summary and registers it
/// with the rewriter; `query` then routes each statement through the
/// matching algorithm, picking the smallest matching AST.
#[derive(Default)]
pub struct SummarySession {
    /// The underlying engine session (catalog + data).
    pub session: Session,
    asts: Vec<RegisteredAst>,
}

impl SummarySession {
    /// An empty session.
    pub fn new() -> SummarySession {
        SummarySession::default()
    }

    /// A session over a pre-built catalog and database.
    pub fn with_data(catalog: Catalog, db: Database) -> SummarySession {
        let mut asts = Vec::new();
        // Re-register any summary tables already present in the catalog.
        for def in catalog.summary_tables() {
            if let Ok(ast) = RegisteredAst::from_sql(&def.name, &def.query_sql, &catalog) {
                asts.push(ast);
            }
        }
        SummarySession {
            session: Session { catalog, db },
            asts,
        }
    }

    /// The registered ASTs.
    pub fn asts(&self) -> &[RegisteredAst] {
        &self.asts
    }

    /// Run a semicolon-separated script. `CREATE SUMMARY TABLE` statements
    /// are additionally registered for rewriting.
    pub fn run_script(&mut self, sql: &str) -> Result<Vec<StatementResult>, SessionError> {
        let stmts = parse_statements(sql).map_err(|e| SessionError {
            message: e.to_string(),
        })?;
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in &stmts {
            out.push(self.session.run_statement(stmt)?);
            if let Statement::CreateSummaryTable { name, .. } = stmt {
                let def = self
                    .session
                    .catalog
                    .summary_table(name)
                    .expect("just created");
                let ast = RegisteredAst::from_sql(&def.name, &def.query_sql, &self.session.catalog)
                    .map_err(|m| SessionError { message: m })?;
                self.asts.push(ast);
            }
        }
        Ok(out)
    }

    /// Plan a query: build its QGM and rewrite it against the registered
    /// ASTs, iteratively (Section 7: the result of one rewrite is matched
    /// against the remaining ASTs). Returns the final graph and the names
    /// of the ASTs used.
    pub fn plan(&self, sql: &str) -> Result<(QgmGraph, Vec<String>), SessionError> {
        let q = parse_query(sql).map_err(|e| SessionError {
            message: e.to_string(),
        })?;
        let mut graph = build_query(&q, &self.session.catalog).map_err(|e| SessionError {
            message: e.to_string(),
        })?;
        let rewriter = Rewriter::new(&self.session.catalog);
        let mut used = Vec::new();
        let mut remaining: Vec<&RegisteredAst> = self.asts.iter().collect();
        loop {
            let best = remaining
                .iter()
                .enumerate()
                .filter_map(|(i, ast)| rewriter.rewrite(&graph, ast).map(|rw| (i, rw)))
                .min_by_key(|(_, rw)| self.session.db.row_count(&rw.ast_name));
            match best {
                Some((i, rw)) => {
                    used.push(rw.ast_name.clone());
                    graph = rw.graph;
                    remaining.remove(i);
                }
                None => break,
            }
        }
        Ok((graph, used))
    }

    /// Execute a query with transparent rewriting.
    pub fn query(&mut self, sql: &str) -> Result<QueryResult, SessionError> {
        let (graph, used) = self.plan(sql)?;
        let header = graph
            .boxed(graph.root)
            .outputs
            .iter()
            .map(|c| c.name.clone())
            .collect();
        let rows = sumtab_engine::execute(&graph, &self.session.db).map_err(|e| SessionError {
            message: e.to_string(),
        })?;
        Ok(QueryResult {
            header,
            rows,
            used_ast: used.first().cloned(),
            executed_sql: render_graph_sql(&graph),
        })
    }

    /// Execute a query WITHOUT rewriting (the baseline for comparisons).
    pub fn query_no_rewrite(&mut self, sql: &str) -> Result<QueryResult, SessionError> {
        let (header, rows) = self.session.query(sql)?;
        Ok(QueryResult {
            header,
            rows,
            used_ast: None,
            executed_sql: sql.to_string(),
        })
    }

    /// EXPLAIN-style view: the SQL that would actually run.
    pub fn explain(&self, sql: &str) -> Result<String, SessionError> {
        let (graph, used) = self.plan(sql)?;
        let mut out = String::new();
        if used.is_empty() {
            out.push_str("-- no summary table applicable\n");
        } else {
            out.push_str(&format!("-- answered from: {}\n", used.join(", ")));
        }
        out.push_str(&render_graph_sql(&graph));
        Ok(out)
    }

    /// Append rows to a base table and maintain every affected summary
    /// table — incrementally when its definition is insert-maintainable
    /// (see [`maintain`]), by full recomputation otherwise.
    ///
    /// Returns the names of the incrementally-maintained ASTs.
    pub fn append(&mut self, table: &str, rows: Vec<Row>) -> Result<Vec<String>, SessionError> {
        // Plan first, against the pre-append state.
        let mut incremental = Vec::new();
        let mut full = Vec::new();
        for ast in &self.asts {
            let touches = ast.graph.boxes.iter().any(|b| {
                matches!(&b.kind, qgm::BoxKind::BaseTable { table: t }
                         if t.eq_ignore_ascii_case(table))
            });
            if !touches {
                continue;
            }
            match maintain::maintenance_plan(&ast.graph, &table.to_ascii_lowercase()) {
                Some(plan) => incremental.push((ast.name.clone(), plan)),
                None => full.push(ast.name.clone()),
            }
        }
        // Incremental ASTs merge the delta (computed against the dimension
        // state visible to the new rows, i.e. post-append for all other
        // tables). Insert the rows first, then run deltas with the fact
        // table overridden to just the new rows inside `apply_append`.
        self.session
            .db
            .insert(&self.session.catalog, table, rows.clone())
            .map_err(err)?;
        let mut maintained = Vec::new();
        for (name, plan) in incremental {
            let ast = self.asts.iter().find(|a| a.name == name).unwrap();
            maintain::apply_append(
                &ast.graph,
                &plan,
                &name,
                &table.to_ascii_lowercase(),
                &rows,
                &mut self.session.db,
            )
            .map_err(err)?;
            maintained.push(name);
        }
        for name in full {
            self.refresh(&name)?;
        }
        Ok(maintained)
    }

    /// Refresh one summary table from current base data (full recompute —
    /// related problem (c) is out of the paper's scope; see DESIGN.md).
    pub fn refresh(&mut self, name: &str) -> Result<(), SessionError> {
        let ast = self
            .asts
            .iter()
            .find(|a| a.name == name)
            .ok_or_else(|| SessionError {
                message: format!("unknown summary table `{name}`"),
            })?;
        let rows =
            sumtab_engine::execute(&ast.graph, &self.session.db).map_err(|e| SessionError {
                message: e.to_string(),
            })?;
        self.session.db.put_table(name, rows);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transparent_rewriting_round_trip() {
        let mut s = SummarySession::new();
        s.run_script(
            "create table t (k int not null, v int not null);
             insert into t values (1, 10), (1, 20), (2, 30);
             create summary table st as (select k, sum(v) as sv, count(*) as c from t group by k);",
        )
        .unwrap();
        let with = s.query("select k, sum(v) as sv from t group by k").unwrap();
        assert_eq!(with.used_ast.as_deref(), Some("st"));
        let without = s
            .query_no_rewrite("select k, sum(v) as sv from t group by k")
            .unwrap();
        assert_eq!(sort_rows(with.rows), sort_rows(without.rows));
    }

    #[test]
    fn explain_reports_routing() {
        let mut s = SummarySession::new();
        s.run_script(
            "create table t (k int not null, v int not null);
             insert into t values (1, 1);
             create summary table st as (select k, count(*) as c from t group by k);",
        )
        .unwrap();
        let plan = s
            .explain("select k, count(*) as c from t group by k")
            .unwrap();
        assert!(plan.contains("answered from: st"), "{plan}");
        let plan2 = s.explain("select v from t").unwrap();
        assert!(plan2.contains("no summary table applicable"), "{plan2}");
    }

    #[test]
    fn refresh_recomputes() {
        let mut s = SummarySession::new();
        s.run_script(
            "create table t (k int not null);
             insert into t values (1);
             create summary table st as (select k, count(*) as c from t group by k);",
        )
        .unwrap();
        s.run_script("insert into t values (1), (2)").unwrap();
        // Stale before refresh (summary tables are snapshots).
        assert_eq!(s.session.db.row_count("st"), 1);
        s.refresh("st").unwrap();
        assert_eq!(s.session.db.row_count("st"), 2);
        let r = s
            .query("select k, count(*) as c from t group by k")
            .unwrap();
        assert_eq!(
            sort_rows(r.rows),
            vec![
                vec![Value::Int(1), Value::Int(2)],
                vec![Value::Int(2), Value::Int(1)],
            ]
        );
    }

    #[test]
    fn with_data_reregisters_asts() {
        let mut s1 = SummarySession::new();
        s1.run_script(
            "create table t (k int not null);
             insert into t values (1), (1);
             create summary table st as (select k, count(*) as c from t group by k);",
        )
        .unwrap();
        let s2 = SummarySession::with_data(s1.session.catalog.clone(), s1.session.db.clone());
        assert_eq!(s2.asts().len(), 1);
    }
}

#[cfg(test)]
mod maintain_integration_tests {
    use super::*;

    #[test]
    fn append_maintains_incrementally_and_stays_consistent() {
        let mut s = SummarySession::new();
        s.run_script(
            "create table t (k int not null, v int not null);
             insert into t values (1, 10), (2, 5);
             create summary table st as
               (select k, count(*) as c, sum(v) as s, min(v) as mn, max(v) as mx
                from t group by k);",
        )
        .unwrap();
        let maintained = s
            .append(
                "t",
                vec![
                    vec![Value::Int(1), Value::Int(3)],
                    vec![Value::Int(3), Value::Int(7)],
                ],
            )
            .unwrap();
        assert_eq!(maintained, vec!["st".to_string()], "incremental path used");
        // The maintained summary equals a from-scratch recomputation.
        let direct = s
            .query_no_rewrite(
                "select k, count(*) as c, sum(v) as s, min(v) as mn, max(v) as mx \
                 from t group by k",
            )
            .unwrap();
        let stored = s
            .query_no_rewrite("select k, c, s, mn, mx from st")
            .unwrap();
        assert_eq!(sort_rows(direct.rows), sort_rows(stored.rows));
        // And queries routed through it see the fresh data.
        let routed = s.query("select k, sum(v) as s from t group by k").unwrap();
        assert_eq!(routed.used_ast.as_deref(), Some("st"));
        assert_eq!(
            sort_rows(routed.rows),
            vec![
                vec![Value::Int(1), Value::Int(13)],
                vec![Value::Int(2), Value::Int(5)],
                vec![Value::Int(3), Value::Int(7)],
            ]
        );
    }

    #[test]
    fn append_falls_back_to_refresh_for_having_asts() {
        let mut s = SummarySession::new();
        s.run_script(
            "create table t (k int not null);
             insert into t values (1), (1), (2);
             create summary table big as
               (select k, count(*) as c from t group by k having count(*) > 1);",
        )
        .unwrap();
        let maintained = s.append("t", vec![vec![Value::Int(2)]]).unwrap();
        assert!(maintained.is_empty(), "HAVING forces full refresh");
        let stored = s.query_no_rewrite("select k, c from big").unwrap();
        assert_eq!(
            sort_rows(stored.rows),
            vec![
                vec![Value::Int(1), Value::Int(2)],
                vec![Value::Int(2), Value::Int(2)],
            ]
        );
    }

    #[test]
    fn append_to_unrelated_table_leaves_asts_alone() {
        let mut s = SummarySession::new();
        s.run_script(
            "create table t (k int not null);
             create table u (k int not null);
             insert into t values (1);
             create summary table st as (select k, count(*) as c from t group by k);",
        )
        .unwrap();
        let maintained = s.append("u", vec![vec![Value::Int(9)]]).unwrap();
        assert!(maintained.is_empty());
        assert_eq!(s.session.db.row_count("st"), 1);
    }
}
