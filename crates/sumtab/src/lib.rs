//! # sumtab
//!
//! Answering complex SQL queries using Automatic Summary Tables — a Rust
//! reproduction of Zaharioudakis et al., SIGMOD 2000.
//!
//! This facade crate re-exports the whole workspace and adds
//! [`SummarySession`]: a SQL session in which `CREATE SUMMARY TABLE`
//! registers an AST for *transparent* use — subsequent queries are
//! automatically rewritten to read the summary table whenever the matching
//! algorithm proves they can be.
//!
//! ```
//! use sumtab::SummarySession;
//!
//! let mut s = SummarySession::new();
//! s.run_script(
//!     "create table sales (prod varchar not null, qty int not null);
//!      insert into sales values ('tv', 2), ('tv', 3), ('radio', 1);
//!      create summary table by_prod as
//!        (select prod, sum(qty) as total, count(*) as cnt from sales group by prod);",
//! ).unwrap();
//! let result = s.query("select prod, sum(qty) as total from sales group by prod").unwrap();
//! assert_eq!(result.used_ast.as_deref(), Some("by_prod"));
//! assert_eq!(result.rows.len(), 2);
//! ```
//!
//! ## Fault tolerance
//!
//! The pipeline degrades rather than failing or silently answering wrong:
//!
//! * **Staleness**: every [`Database`] mutation bumps a per-table epoch; a
//!   summary table records its base tables' epochs when (re)materialized and
//!   the planner skips any AST whose snapshot no longer matches
//!   ([`SummarySession::plan_detail`] reports the skip reasons, as does
//!   `EXPLAIN`). INSERTs issued through [`SummarySession::run_script`] keep
//!   affected summaries fresh via incremental maintenance.
//! * **Fallback**: if an AST-backed plan fails *at execution time*,
//!   [`SummarySession::query`] re-runs the query from base tables and
//!   reports the cause in [`QueryResult::fallback`] instead of erroring.
//! * **Fail points**: the `match`, `execute-rewritten`, and `maintain`
//!   boundaries carry [`failpoint`] hooks so the degraded paths are
//!   deterministically testable, as do the WAL/snapshot IO boundaries
//!   (`wal-append`, `wal-fsync`, `snapshot-write`, `snapshot-rename`).
//! * **Durability**: [`DurableSession`] wraps a [`SummarySession`] with a
//!   checksummed write-ahead log plus periodic atomic snapshots, and
//!   recovers the full session — catalog, data, registered ASTs, staleness
//!   epochs — after a crash (see [`durable`] and DESIGN.md §12).

#![forbid(unsafe_code)]

pub mod durable;
pub mod maintain;

pub use sumtab_catalog as catalog;
pub use sumtab_datagen as datagen;
pub use sumtab_engine as engine;
pub use sumtab_matcher as matcher;
pub use sumtab_parser as parser;
pub use sumtab_persist as persist;
pub use sumtab_persist::failpoint;
pub use sumtab_qgm as qgm;

pub use durable::{DurabilityMode, DurableOptions, DurableSession, RecoverError, RecoveryReport};

pub use sumtab_catalog::{Catalog, Date, SqlType, Value};
pub use sumtab_engine::{
    format_table, sort_rows, CacheStats, Database, FeedbackEntry, PlanCache, RouteChoice, Row,
    Session, SumtabError,
};
pub use sumtab_matcher::cost;
pub use sumtab_matcher::{
    baseline::baseline_matches, AstDefError, CandidateOutcome, MatchError, RegisteredAst, Rewrite,
    Rewriter,
};
pub use sumtab_qgm::{build_query, graph_fingerprint, render_graph_sql, QgmGraph};

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;
use sumtab_engine::session::StatementResult;
use sumtab_matcher::cost::{PlanCost, RoutePolicy};
use sumtab_parser::{parse_query, parse_statements, Statement};

/// The result of a transparently-rewritten query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Output column names.
    pub header: Vec<String>,
    /// Result rows.
    pub rows: Vec<Row>,
    /// The summary table the query was answered from, if any.
    pub used_ast: Option<String>,
    /// The executed (possibly rewritten) query, rendered as SQL.
    pub executed_sql: String,
    /// When the AST-backed plan failed at execution time and the query was
    /// re-answered from base tables: a description of the failure. `None`
    /// means no degradation happened (the plan that was chosen also ran).
    pub fallback: Option<String>,
    /// When the router *deliberately* declined or overrode a viable
    /// rewrite — the cost model kept the base plan, or runtime feedback
    /// re-routed the query — the reason is reported here. `None` for the
    /// normal paths (no match, or the rewrite was chosen and ran).
    ///
    /// This is intentionally distinct from [`QueryResult::fallback`]:
    /// a cost-based base-plan choice is the router working as designed,
    /// not a degradation, and must not pollute failure telemetry.
    pub routed: Option<String>,
}

/// A registered AST plus the base-table epochs captured when its contents
/// were last brought up to date (materialization, refresh, or incremental
/// maintenance).
#[derive(Debug, Clone)]
pub struct AstState {
    /// The AST definition.
    pub ast: RegisteredAst,
    /// Base table → [`Database::epoch`] at last (re)materialization.
    pub base_epochs: BTreeMap<String, u64>,
    /// The registration-time maintainability analysis: per-base-table
    /// strategy certificates plus the exec graph (definition, possibly
    /// augmented with a hidden row counter).
    pub maint: maintain::AstMaintenance,
}

impl AstState {
    /// Analyze the definition and snapshot base epochs for a freshly
    /// (re)registered AST.
    fn new(ast: RegisteredAst, catalog: &Catalog, db: &Database) -> AstState {
        let maint = maintain::analyze_ast(&ast.graph, catalog);
        let base_epochs = snapshot_epochs(db, &ast.graph);
        AstState {
            ast,
            base_epochs,
            maint,
        }
    }
}

/// Why an AST was passed over during planning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkippedAst {
    /// The AST's name.
    pub ast: String,
    /// Human-readable skip reason (staleness or a matcher error).
    pub reason: String,
}

/// What a statement *logically did* to session state — the unit the
/// durability layer ([`durable`]) frames into write-ahead-log records.
/// Replaying the same ops against the same starting state reproduces the
/// session exactly (data, catalog, and epoch bookkeeping alike), which is
/// the contract crash recovery depends on.
#[derive(Debug, Clone)]
pub enum AppliedOp {
    /// No durable effect (a query).
    None,
    /// A table was created, with this registered schema.
    CreateTable(catalog::Table),
    /// An RI constraint was declared, by names (replay re-validates).
    AddForeignKey {
        /// Referencing table.
        child_table: String,
        /// Referencing column names.
        columns: Vec<String>,
        /// Referenced table.
        parent_table: String,
    },
    /// A summary table was materialized and registered for rewriting.
    RegisterAst {
        /// The AST's name.
        name: String,
        /// Its canonical defining SQL (as stored in the catalog).
        query_sql: String,
    },
    /// A plain insert (no registered AST reads the table).
    Insert {
        /// Target table.
        table: String,
        /// The inserted values.
        rows: Vec<Row>,
    },
    /// An insert routed through summary maintenance.
    Append {
        /// Target table.
        table: String,
        /// The inserted values.
        rows: Vec<Row>,
        /// ASTs whose *incremental* path failed and degraded to a full
        /// refresh. The degradation can be non-deterministic (a transient
        /// fault), so replay must re-refresh these to converge — the
        /// durability layer logs one `Refresh` record per name.
        refreshed: Vec<String>,
    },
    /// A summary table was deregistered (definition, schema, and data).
    DeregisterAst {
        /// The AST's name.
        name: String,
    },
    /// A delete, with the exact removed rows (resolving the `WHERE` at
    /// replay time could match different rows; logging values keeps redo
    /// logical *and* deterministic).
    Delete {
        /// Target table.
        table: String,
        /// The removed rows.
        rows: Vec<Row>,
        /// ASTs whose incremental path degraded to a full refresh (same
        /// replay contract as [`AppliedOp::Append::refreshed`]).
        refreshed: Vec<String>,
    },
    /// An update, recorded as the removed old rows plus the inserted new
    /// rows (positionally paired).
    Update {
        /// Target table.
        table: String,
        /// The pre-image rows.
        old_rows: Vec<Row>,
        /// The post-image rows.
        new_rows: Vec<Row>,
        /// ASTs whose incremental path degraded to a full refresh.
        refreshed: Vec<String>,
    },
}

/// How an [`SummarySession::append_with_report`] kept each affected summary
/// fresh.
#[derive(Debug, Clone, Default)]
pub struct AppendReport {
    /// ASTs maintained through the incremental merge path.
    pub maintained: Vec<String>,
    /// ASTs recomputed in full because their incremental path failed
    /// (verify gate, injected fault, or merge error). ASTs whose definition
    /// *never* had an incremental plan (e.g. HAVING) are not listed: their
    /// full refresh re-runs deterministically on replay.
    pub refreshed: Vec<String>,
}

/// Which delta primitive an incremental maintenance step runs. An update is
/// the composition: delete the pre-images, then append the post-images.
enum DeltaApply<'a> {
    Append(&'a [Row]),
    Delete(&'a [Row]),
    Update { old: &'a [Row], new: &'a [Row] },
}

/// How the cost-based router disposed of one query's rewrite candidates.
#[derive(Debug, Clone, PartialEq)]
pub enum RouteDecision {
    /// No registered AST matched; the base plan is the only plan.
    NoMatch,
    /// A rewrite matched and the cost model chose it.
    Rewrite,
    /// A rewrite matched but the cost model estimated the base plan
    /// cheaper — the losing rewrite was rejected *before* execution.
    Base {
        /// Estimated total rows processed by the base plan.
        base_cost: f64,
        /// Estimated total rows processed by the rejected rewrite.
        rewrite_cost: f64,
        /// The ASTs the rejected rewrite would have read.
        rejected: Vec<String>,
    },
    /// Runtime feedback overrode the cost estimate for this query — either
    /// both plans have been measured and the measured-faster one differs
    /// from the estimate, or the estimated plan overran its estimate badly
    /// enough that the unmeasured alternative is being probed.
    ReRouted {
        /// The plan that actually runs.
        to: RouteChoice,
        /// Why the estimate was overridden.
        reason: String,
    },
}

impl RouteDecision {
    /// A stable one-word tag (`none` / `rewrite` / `base` / `re-routed`)
    /// for benches and telemetry.
    pub fn label(&self) -> &'static str {
        match self {
            RouteDecision::NoMatch => "none",
            RouteDecision::Rewrite => "rewrite",
            RouteDecision::Base { .. } => "base",
            RouteDecision::ReRouted { .. } => "re-routed",
        }
    }

    /// The reason string surfaced through [`QueryResult::routed`]: `Some`
    /// only when the router declined or overrode a viable rewrite.
    pub fn describe(&self) -> Option<String> {
        match self {
            RouteDecision::NoMatch | RouteDecision::Rewrite => None,
            RouteDecision::Base {
                base_cost,
                rewrite_cost,
                rejected,
            } => Some(format!(
                "cost routing kept the base plan: rewrite via {} estimated \
                 {rewrite_cost:.0} rows processed vs base {base_cost:.0}",
                rejected.join(", ")
            )),
            RouteDecision::ReRouted { to, reason } => Some(format!(
                "re-routed by runtime feedback to the {} plan: {reason}",
                match to {
                    RouteChoice::Base => "base",
                    RouteChoice::Rewrite => "rewritten",
                }
            )),
        }
    }
}

/// Tunables for the cost-based router and its feedback loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterOptions {
    /// The static cost policy (rewrite penalty, small-plan gate).
    pub policy: RoutePolicy,
    /// When the chosen plan's observed latency exceeds its calibrated
    /// estimate by this factor — and the alternative plan has never been
    /// measured — the next identical query probes the alternative, after
    /// which the measured-faster plan wins outright. `0.0` probes after
    /// every calibrated execution (useful in tests); larger values trust
    /// the estimates more.
    pub reroute_threshold: f64,
}

impl Default for RouterOptions {
    fn default() -> RouterOptions {
        RouterOptions {
            policy: RoutePolicy::default(),
            reroute_threshold: 4.0,
        }
    }
}

/// The outcome of planning one query: the final (possibly rewritten) graph,
/// the ASTs it uses, the ASTs that were considered but skipped, and the
/// router's disposition of the rewrite candidates.
#[derive(Debug, Clone)]
pub struct PlanDetail {
    /// The graph that would execute.
    pub graph: QgmGraph,
    /// Names of the ASTs the plan reads, in application order.
    pub used: Vec<String>,
    /// ASTs skipped for staleness or matcher errors, with reasons.
    pub skipped: Vec<SkippedAst>,
    /// What the cost-based router decided.
    pub routing: RouteDecision,
    /// For each AST the plan reads: how it will be kept fresh under
    /// base-table churn (the registration-time maintainability
    /// certificates).
    pub maintenance: Vec<MaintenanceNote>,
}

/// The maintainability certificate of one AST, surfaced for EXPLAIN and
/// diagnostics: per base table the strongest certified strategy, plus the
/// typed obstructions explaining every downgrade from counting-delta.
#[derive(Debug, Clone)]
pub struct MaintenanceNote {
    /// The AST's name.
    pub ast: String,
    /// Base table (lower-cased) → certified strategy.
    pub strategies: Vec<(String, qgm::MaintStrategy)>,
    /// Rendered obstructions (`reason at path: detail`), in analysis order.
    pub obstructions: Vec<String>,
}

/// Both alternatives the router chooses between for one fingerprint, with
/// their cost estimates — the unit the session plan cache stores. Caching
/// the *pair* (rather than the chosen plan) is what lets a feedback
/// re-route flip a cached entry without re-running the matcher, and what
/// makes a cost-*rejected* match cheap on repetition: an F5-shaped query
/// hits this entry and re-serves the base plan with zero navigator runs.
#[derive(Debug, Clone)]
struct RoutedPlan {
    /// The un-rewritten plan.
    base: QgmGraph,
    /// Estimated cost of the base plan.
    base_cost: PlanCost,
    /// The best rewrite, when any AST matched.
    rewrite: Option<RewriteAlt>,
    /// ASTs skipped for staleness or matcher errors.
    skipped: Vec<SkippedAst>,
}

/// A viable rewritten alternative.
#[derive(Debug, Clone)]
struct RewriteAlt {
    /// The fully (iteratively) rewritten graph.
    graph: QgmGraph,
    /// ASTs the rewrite reads, in application order.
    used: Vec<String>,
    /// Estimated cost of the rewritten plan.
    cost: PlanCost,
}

/// What `query` needs to close the feedback loop after execution.
#[derive(Clone)]
struct FeedbackCtx {
    /// The plan fingerprint.
    fp: String,
    /// The choice that ran.
    choice: RouteChoice,
    /// The chosen plan's estimated cost (rows processed).
    est_total: f64,
}

/// A fully routed plan: the detail to execute, plus the cache/feedback
/// bookkeeping `query` needs afterwards.
struct Routed {
    detail: PlanDetail,
    /// Fingerprint + epoch snapshot; `None` under fault injection (both
    /// the plan cache and the result cache are bypassed).
    key: Option<(String, BTreeMap<String, u64>)>,
    /// Present only when a rewrite alternative exists (feedback on a
    /// no-choice plan is meaningless).
    feedback: Option<FeedbackCtx>,
}

/// Record each base table the graph scans at its current epoch.
fn snapshot_epochs(db: &Database, graph: &QgmGraph) -> BTreeMap<String, u64> {
    let mut epochs = BTreeMap::new();
    for b in &graph.boxes {
        if let qgm::BoxKind::BaseTable { table } = &b.kind {
            let key = table.to_ascii_lowercase();
            let e = db.epoch(&key);
            epochs.insert(key, e);
        }
    }
    epochs
}

/// Does the graph scan `table` (case-insensitive)?
fn graph_reads(graph: &QgmGraph, table: &str) -> bool {
    graph.boxes.iter().any(|b| {
        matches!(&b.kind, qgm::BoxKind::BaseTable { table: t }
                 if t.eq_ignore_ascii_case(table))
    })
}

fn ast_def_err(sql: &str, e: AstDefError) -> SumtabError {
    match e {
        AstDefError::Parse(p) => SumtabError::parse(sql, p),
        AstDefError::Plan(b) => SumtabError::plan(sql, b),
    }
}

/// Plans a session keeps cached; small — a `RoutedPlan` is two graphs plus
/// a few strings — and bounded, so a long-lived session cannot grow without
/// limit on a stream of distinct queries.
const PLAN_CACHE_CAPACITY: usize = 256;

/// Default result-cache capacity. Results can be arbitrarily wide (a
/// cached entry clones its rows on every hit), so the default is small;
/// [`SummarySession::set_result_cache_capacity`] resizes, `0` disables.
const RESULT_CACHE_CAPACITY: usize = 16;

/// Lock a session cache, recovering from poisoning (the caches hold no
/// invariants a panicking reader could break — entries are validated on
/// every lookup anyway).
fn lock_cache<V>(m: &Mutex<PlanCache<V>>) -> MutexGuard<'_, PlanCache<V>> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A SQL session with transparent AST rewriting.
///
/// `CREATE SUMMARY TABLE` both materializes the summary and registers it
/// with the rewriter; `query` then routes each statement through the
/// matching algorithm, picking the smallest matching AST.
///
/// Planning is cached: a repeated query whose relevant tables are at
/// unchanged epochs (and whose AST/catalog generation is unchanged) is
/// served from the session plan cache without running the matcher at all.
pub struct SummarySession {
    /// The underlying engine session (catalog + data).
    pub session: Session,
    asts: Vec<AstState>,
    registration_failures: Vec<(String, String)>,
    /// Fingerprint → routed plan pair (base + best rewrite, with costs),
    /// validated per lookup by epoch snapshot and
    /// [`SummarySession::plan_generation`]. Also carries the routing
    /// feedback sidecar (generation-validated only).
    plan_cache: Mutex<PlanCache<Arc<RoutedPlan>>>,
    /// Fingerprint → complete [`QueryResult`], validated by the *same*
    /// epoch snapshot and generation as the plan cache: any mutation of a
    /// table the plan can depend on invalidates the cached result.
    result_cache: Mutex<PlanCache<QueryResult>>,
    /// `0` disables result caching entirely.
    result_cache_capacity: usize,
    /// Cost-router tunables.
    router: RouterOptions,
    /// Observed nanoseconds per estimated cost unit (EMA across executed
    /// queries) — the bridge between the cost model's "rows processed" and
    /// wall-clock time that the feedback threshold compares against.
    cost_calibration: Option<f64>,
    /// Bumped by every event that can change planning outcomes without
    /// touching table data: AST registration, `CREATE TABLE`, and
    /// `ALTER TABLE .. ADD FOREIGN KEY` (a new RI constraint can make a
    /// previously impossible lossless extra join legal).
    ast_generation: u64,
}

impl Default for SummarySession {
    fn default() -> SummarySession {
        SummarySession {
            session: Session::default(),
            asts: Vec::new(),
            registration_failures: Vec::new(),
            plan_cache: Mutex::new(PlanCache::new(PLAN_CACHE_CAPACITY)),
            result_cache: Mutex::new(PlanCache::new(RESULT_CACHE_CAPACITY)),
            result_cache_capacity: RESULT_CACHE_CAPACITY,
            router: RouterOptions::default(),
            cost_calibration: None,
            ast_generation: 0,
        }
    }
}

impl SummarySession {
    /// An empty session.
    pub fn new() -> SummarySession {
        SummarySession::default()
    }

    /// Set the executor worker-pool size used for queries, summary-table
    /// materialization, and refreshes (the `Rewriter::with_pool_size`
    /// idiom, applied to execution). Results are identical for every pool
    /// size; only wall-clock time changes.
    pub fn set_exec_pool_size(&mut self, n: usize) {
        self.session.exec.pool_size = n.max(1);
    }

    /// The executor options in effect.
    pub fn exec_options(&self) -> &sumtab_engine::ExecOptions {
        &self.session.exec
    }

    /// A session over a pre-built catalog and database.
    ///
    /// Summary tables already present in the catalog are re-registered for
    /// rewriting; any whose definition no longer parses or plans are
    /// reported through [`SummarySession::registration_failures`] rather
    /// than silently dropped. Their base tables are assumed up to date as
    /// of the given database.
    pub fn with_data(catalog: Catalog, db: Database) -> SummarySession {
        let mut asts = Vec::new();
        let mut registration_failures = Vec::new();
        for def in catalog.summary_tables() {
            match RegisteredAst::from_sql(&def.name, &def.query_sql, &catalog) {
                Ok(ast) => asts.push(AstState::new(ast, &catalog, &db)),
                Err(e) => registration_failures.push((def.name.clone(), e.to_string())),
            }
        }
        SummarySession {
            session: Session {
                catalog,
                db,
                exec: sumtab_engine::ExecOptions::default(),
            },
            asts,
            registration_failures,
            ..SummarySession::default()
        }
    }

    /// The registered ASTs.
    pub fn asts(&self) -> Vec<&RegisteredAst> {
        self.asts.iter().map(|s| &s.ast).collect()
    }

    /// The registered ASTs with their staleness bookkeeping.
    pub fn ast_states(&self) -> &[AstState] {
        &self.asts
    }

    /// Summary tables found in the catalog at construction whose definition
    /// could not be re-registered, as `(name, reason)` pairs. These ASTs
    /// exist as data but take no part in rewriting.
    pub fn registration_failures(&self) -> &[(String, String)] {
        &self.registration_failures
    }

    /// The registration-time maintainability analysis of one AST (`None`
    /// for unknown names).
    pub fn maintainability(&self, name: &str) -> Option<&maintain::AstMaintenance> {
        self.asts
            .iter()
            .find(|st| st.ast.name.eq_ignore_ascii_case(name))
            .map(|st| &st.maint)
    }

    /// Render an AST's maintainability certificate for EXPLAIN and
    /// [`PlanDetail::maintenance`].
    fn maintenance_note(&self, name: &str) -> Option<MaintenanceNote> {
        let st = self
            .asts
            .iter()
            .find(|st| st.ast.name.eq_ignore_ascii_case(name))?;
        let strategies = st
            .maint
            .reports
            .iter()
            .map(|(t, r)| (t.clone(), r.strategy))
            .collect();
        let obstructions = st
            .maint
            .reports
            .values()
            .flat_map(|r| r.obstructions.iter().map(|o| o.to_string()))
            .collect();
        Some(MaintenanceNote {
            ast: st.ast.name.clone(),
            strategies,
            obstructions,
        })
    }

    /// Register the named (already materialized) summary table for
    /// rewriting, snapshotting its base tables' epochs.
    fn register_ast(&mut self, name: &str) -> Result<(), SumtabError> {
        let def = self.session.catalog.summary_table(name).ok_or_else(|| {
            SumtabError::Catalog(sumtab_catalog::CatalogError::UnknownTable(name.to_string()))
        })?;
        let ast = RegisteredAst::from_sql(&def.name, &def.query_sql, &self.session.catalog)
            .map_err(|e| ast_def_err(&def.query_sql, e))?;
        let st = AstState::new(ast, &self.session.catalog, &self.session.db);
        // Counting-delta maintenance of a definition that does not project a
        // row counter needs the hidden one: re-materialize the backing table
        // through the augmented exec graph (the extra trailing column lives
        // only in backing rows — the catalog schema, and therefore every
        // query over the summary, never sees it).
        if st.maint.hidden_counter {
            let rows = sumtab_engine::execute_with(
                &st.maint.exec_graph,
                &self.session.db,
                &self.session.exec,
            )
            .map_err(|e| SumtabError::exec(format!("materialization of `{name}`"), e))?;
            self.session.db.put_table(name, rows);
        }
        self.asts.push(st);
        self.ast_generation += 1;
        Ok(())
    }

    /// The current plan-cache generation: bumped by AST registration and by
    /// DDL that can change match outcomes. Cached plans from earlier
    /// generations are invalidated on lookup.
    pub fn plan_generation(&self) -> u64 {
        self.ast_generation
    }

    /// Force-advance the plan-cache generation, invalidating every cached
    /// plan on its next lookup. Crash recovery calls this after replay so a
    /// plan cached by the pre-crash process can never validate against the
    /// recovered session, whatever epochs replay reproduced.
    pub fn bump_plan_generation(&mut self) {
        self.ast_generation += 1;
    }

    /// Deregister a summary table: drops its definition and backing schema
    /// from the catalog, its materialized data from the database, and its
    /// rewrite registration. Errors if no such summary table exists.
    pub fn deregister(&mut self, name: &str) -> Result<(), SumtabError> {
        self.session
            .catalog
            .drop_summary_table(name)
            .map_err(SumtabError::Catalog)?;
        self.session.db.drop_table(name);
        self.asts
            .retain(|st| !st.ast.name.eq_ignore_ascii_case(name));
        self.registration_failures
            .retain(|(n, _)| !n.eq_ignore_ascii_case(name));
        self.ast_generation += 1;
        Ok(())
    }

    /// Cumulative plan-cache statistics for this session.
    pub fn plan_cache_stats(&self) -> CacheStats {
        lock_cache(&self.plan_cache).stats()
    }

    /// Cumulative result-cache statistics for this session.
    pub fn result_cache_stats(&self) -> CacheStats {
        lock_cache(&self.result_cache).stats()
    }

    /// Resize the result cache (dropping its contents); `0` disables
    /// result caching. Results are validated like plans — same fingerprint,
    /// same epoch snapshot, same generation — so a cached result can never
    /// survive a mutation of any table its plan depends on, and fault
    /// injection bypasses the cache entirely.
    pub fn set_result_cache_capacity(&mut self, n: usize) {
        self.result_cache_capacity = n;
        *lock_cache(&self.result_cache) = PlanCache::new(n.max(1));
    }

    /// The configured result-cache capacity (`0` = disabled).
    pub fn result_cache_capacity(&self) -> usize {
        self.result_cache_capacity
    }

    /// Replace the router tunables (cost policy + feedback threshold).
    /// Takes effect on the next planning decision — cached plan *pairs*
    /// stay valid because the decision is re-derived on every lookup.
    pub fn set_router_options(&mut self, opts: RouterOptions) {
        self.router = opts;
    }

    /// The router tunables in effect.
    pub fn router_options(&self) -> RouterOptions {
        self.router
    }

    /// Is `table` read by any registered AST?
    fn any_ast_reads(&self, table: &str) -> bool {
        self.asts.iter().any(|st| graph_reads(&st.ast.graph, table))
    }

    /// `Some(reason)` when the AST's recorded base epochs no longer match
    /// the database — its contents may not reflect current data.
    fn staleness(&self, st: &AstState) -> Option<String> {
        for (table, &snap) in &st.base_epochs {
            let cur = self.session.db.epoch(table);
            if cur != snap {
                return Some(format!(
                    "stale: base table `{table}` is at epoch {cur}, \
                     summary captured epoch {snap}"
                ));
            }
        }
        None
    }

    /// Run a semicolon-separated script. `CREATE SUMMARY TABLE` statements
    /// are additionally registered for rewriting, and `INSERT`s into tables
    /// read by a registered AST are routed through [`SummarySession::append`]
    /// so the affected summaries stay fresh (incrementally where the
    /// definition allows, by full recomputation otherwise).
    pub fn run_script(&mut self, sql: &str) -> Result<Vec<StatementResult>, SumtabError> {
        let stmts = parse_statements(sql).map_err(|e| SumtabError::parse(sql, e))?;
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in &stmts {
            out.push(self.apply_statement(stmt)?.0);
        }
        Ok(out)
    }

    /// Run one parsed statement and report what it logically did as an
    /// [`AppliedOp`] — the hook the durability layer uses to frame WAL
    /// records *after* the in-memory application succeeds (logical redo:
    /// apply, then log, then acknowledge).
    pub fn apply_statement(
        &mut self,
        stmt: &Statement,
    ) -> Result<(StatementResult, AppliedOp), SumtabError> {
        match stmt {
            Statement::Insert { table, rows } if self.any_ast_reads(table) => {
                let values = sumtab_engine::session::literal_rows(rows)?;
                let n = values.len();
                let report = self.append_with_report(table, values.clone())?;
                Ok((
                    StatementResult::Count(n),
                    AppliedOp::Append {
                        table: table.clone(),
                        rows: values,
                        refreshed: report.refreshed,
                    },
                ))
            }
            // DELETE/UPDATE always resolve their matched rows here (not in
            // the engine session): the durability layer logs row *values*,
            // and summary maintenance needs the pre-images.
            Statement::Delete {
                table,
                where_clause,
            } => {
                let victims = sumtab_engine::matched_rows(
                    &self.session.catalog,
                    &self.session.db,
                    &self.session.exec,
                    table,
                    where_clause.as_ref(),
                )?;
                if victims.is_empty() {
                    return Ok((StatementResult::Count(0), AppliedOp::None));
                }
                let n = victims.len();
                let report = self.delete_rows(table, victims.clone())?;
                Ok((
                    StatementResult::Count(n),
                    AppliedOp::Delete {
                        table: table.clone(),
                        rows: victims,
                        refreshed: report.refreshed,
                    },
                ))
            }
            Statement::Update {
                table,
                sets,
                where_clause,
            } => {
                let (old_rows, new_rows) = sumtab_engine::update_deltas(
                    &self.session.catalog,
                    &self.session.db,
                    &self.session.exec,
                    table,
                    sets,
                    where_clause.as_ref(),
                )?;
                if old_rows.is_empty() {
                    return Ok((StatementResult::Count(0), AppliedOp::None));
                }
                let n = old_rows.len();
                let report = self.update_rows(table, old_rows.clone(), new_rows.clone())?;
                Ok((
                    StatementResult::Count(n),
                    AppliedOp::Update {
                        table: table.clone(),
                        old_rows,
                        new_rows,
                        refreshed: report.refreshed,
                    },
                ))
            }
            _ => {
                let result = self.session.run_statement(stmt)?;
                let op = match stmt {
                    Statement::CreateSummaryTable { name, .. } => {
                        self.register_ast(name)?;
                        // Log the catalog's canonical rendering, which is
                        // what re-registration parses on recovery.
                        let query_sql = self
                            .session
                            .catalog
                            .summary_table(name)
                            .map(|d| d.query_sql.clone())
                            .unwrap_or_default();
                        AppliedOp::RegisterAst {
                            name: name.clone(),
                            query_sql,
                        }
                    }
                    // Catalog DDL can change match outcomes (a new RI
                    // constraint legalizes extra joins) without moving
                    // any table epoch — invalidate cached plans.
                    Statement::CreateTable(ct) => {
                        self.ast_generation += 1;
                        match self.session.catalog.table(&ct.name) {
                            Some(t) => AppliedOp::CreateTable(t.clone()),
                            None => AppliedOp::None,
                        }
                    }
                    Statement::AddForeignKey {
                        child_table,
                        columns,
                        parent_table,
                    } => {
                        self.ast_generation += 1;
                        AppliedOp::AddForeignKey {
                            child_table: child_table.clone(),
                            columns: columns.clone(),
                            parent_table: parent_table.clone(),
                        }
                    }
                    Statement::Insert { table, rows } => AppliedOp::Insert {
                        table: table.clone(),
                        rows: sumtab_engine::session::literal_rows(rows)?,
                    },
                    // Handled by the dedicated arms above.
                    Statement::Delete { .. } | Statement::Update { .. } => AppliedOp::None,
                    Statement::Query(_) => AppliedOp::None,
                };
                Ok((result, op))
            }
        }
    }

    /// Plan a query: build its QGM and rewrite it against the registered
    /// ASTs, iteratively (Section 7: the result of one rewrite is matched
    /// against the remaining ASTs). Returns the final graph and the names
    /// of the ASTs used. See [`SummarySession::plan_detail`] for skip
    /// diagnostics.
    pub fn plan(&self, sql: &str) -> Result<(QgmGraph, Vec<String>), SumtabError> {
        let detail = self.plan_detail(sql)?;
        Ok((detail.graph, detail.used))
    }

    /// Every table a plan for `graph` can depend on, at current epochs: the
    /// query's base tables, each registered AST's base tables (staleness
    /// gating reads them), and each AST's backing table (row counts drive
    /// the best-pick; a refresh rewrites the backing table).
    fn plan_epoch_snapshot(&self, graph: &QgmGraph) -> BTreeMap<String, u64> {
        let mut snap = snapshot_epochs(&self.session.db, graph);
        for st in &self.asts {
            snap.extend(snapshot_epochs(&self.session.db, &st.ast.graph));
            let key = st.ast.name.to_ascii_lowercase();
            let e = self.session.db.epoch(&key);
            snap.insert(key, e);
        }
        snap
    }

    /// Plan a query, reporting which ASTs were used, which were skipped
    /// (stale snapshot, or the matcher erred on them) and why, and how the
    /// cost-based router disposed of the candidates.
    ///
    /// Both skip classes degrade gracefully: a stale or matcher-erroring
    /// AST is simply not used — planning continues with the remaining ASTs
    /// and, in the limit, the un-rewritten base plan.
    ///
    /// Fast paths, in order:
    ///
    /// 1. **Plan cache** — a query with the same canonical fingerprint
    ///    ([`graph_fingerprint`]) planned at the same table epochs and
    ///    generation returns its cached plan *pair* without any match
    ///    attempt — including when the cached decision was "use the base
    ///    plan": a cost-rejected match is not re-derived and re-rejected.
    ///    Fault injection ([`failpoint::any_armed`]) bypasses the cache
    ///    entirely so injected outcomes are never stored or served.
    /// 2. **Signature filter** — surviving cache misses run each candidate
    ///    through [`Rewriter::rewrite_candidates`], which rejects
    ///    provably-unmatchable ASTs by signature and fans the rest out
    ///    across threads, with deterministic result order.
    ///
    /// The routing decision itself is *derived on every call* from the
    /// cached pair, current [`RouterOptions`], and any runtime feedback —
    /// so a feedback re-route flips a cached entry in place.
    pub fn plan_detail(&self, sql: &str) -> Result<PlanDetail, SumtabError> {
        self.route(sql).map(|r| r.detail)
    }

    /// Plan + route a query; the internal entry point shared by
    /// [`SummarySession::plan_detail`] and [`SummarySession::query`].
    fn route(&self, sql: &str) -> Result<Routed, SumtabError> {
        let q = parse_query(sql).map_err(|e| SumtabError::parse(sql, e))?;
        let base_graph =
            build_query(&q, &self.session.catalog).map_err(|e| SumtabError::plan(sql, e))?;

        let key = if failpoint::any_armed() {
            None
        } else {
            let fp = graph_fingerprint(&base_graph);
            let snap = self.plan_epoch_snapshot(&base_graph);
            Some((fp, snap))
        };
        let routed: Arc<RoutedPlan> = match &key {
            Some((fp, snap)) => {
                let cached = lock_cache(&self.plan_cache)
                    .lookup(fp, snap, self.ast_generation)
                    .cloned();
                match cached {
                    Some(r) => r,
                    None => {
                        let r = Arc::new(self.compute_routed_plan(base_graph));
                        lock_cache(&self.plan_cache).store(
                            fp.clone(),
                            snap.clone(),
                            self.ast_generation,
                            Arc::clone(&r),
                        );
                        r
                    }
                }
            }
            None => Arc::new(self.compute_routed_plan(base_graph)),
        };

        let (choice, routing) = self.decide(&routed, key.as_ref().map(|(fp, _)| fp.as_str()));
        let feedback = match (&routed.rewrite, &key) {
            (Some(alt), Some((fp, _))) => Some(FeedbackCtx {
                fp: fp.clone(),
                choice,
                est_total: match choice {
                    RouteChoice::Base => routed.base_cost.total,
                    RouteChoice::Rewrite => alt.cost.total,
                },
            }),
            _ => None,
        };
        let detail = match (choice, &routed.rewrite) {
            (RouteChoice::Rewrite, Some(alt)) => PlanDetail {
                graph: alt.graph.clone(),
                used: alt.used.clone(),
                skipped: routed.skipped.clone(),
                routing,
                maintenance: alt
                    .used
                    .iter()
                    .filter_map(|n| self.maintenance_note(n))
                    .collect(),
            },
            _ => PlanDetail {
                graph: routed.base.clone(),
                used: Vec::new(),
                skipped: routed.skipped.clone(),
                routing,
                maintenance: Vec::new(),
            },
        };
        Ok(Routed {
            detail,
            key,
            feedback,
        })
    }

    /// Run the matcher and cost both alternatives (the cache-miss path).
    fn compute_routed_plan(&self, base_graph: QgmGraph) -> RoutedPlan {
        let rewriter = Rewriter::new(&self.session.catalog);
        let row_count = |t: &str| self.session.db.row_count(t);
        let mut used = Vec::new();
        let mut skipped = Vec::new();

        // Soundness gate: an AST whose base tables changed since its last
        // (re)materialization could answer with outdated data — skip it.
        let mut candidates: Vec<&AstState> = Vec::new();
        for st in &self.asts {
            match self.staleness(st) {
                Some(reason) => skipped.push(SkippedAst {
                    ast: st.ast.name.clone(),
                    reason,
                }),
                None => candidates.push(st),
            }
        }

        let mut graph = base_graph.clone();
        loop {
            let mut errored: Vec<usize> = Vec::new();
            let mut eligible: Vec<usize> = Vec::new();
            for (i, st) in candidates.iter().enumerate() {
                if failpoint::triggered("match") {
                    // A matcher failure disqualifies the AST but must not
                    // sink the query: record and move on.
                    skipped.push(SkippedAst {
                        ast: st.ast.name.clone(),
                        reason: "matcher error: injected fault at failpoint `match`".to_string(),
                    });
                    errored.push(i);
                } else {
                    eligible.push(i);
                }
            }
            let refs: Vec<&RegisteredAst> = eligible.iter().map(|&i| &candidates[i].ast).collect();
            // §7 multi-AST choice: among the matching candidates, take the
            // one whose rewritten graph the cost model estimates cheapest
            // (previously: fewest backing rows — a scan-only proxy).
            let mut best: Option<(usize, Rewrite, f64)> = None;
            let outcomes = rewriter.rewrite_candidates(&graph, &refs);
            for (k, outcome) in outcomes.into_iter().enumerate() {
                let i = eligible[k];
                match outcome {
                    CandidateOutcome::Match(rw) => {
                        let c = cost::estimate(&rw.graph, &row_count).total;
                        if best.as_ref().is_none_or(|(_, _, b)| c < *b) {
                            best = Some((i, *rw, c));
                        }
                    }
                    CandidateOutcome::Filtered | CandidateOutcome::NoMatch => {}
                    CandidateOutcome::Error(e) => {
                        skipped.push(SkippedAst {
                            ast: candidates[i].ast.name.clone(),
                            reason: format!("matcher error: {}", e.detail),
                        });
                        errored.push(i);
                    }
                }
            }
            let Some((chosen, rw, _)) = best else {
                break;
            };
            used.push(rw.ast_name.clone());
            graph = rw.graph;
            let mut remove = errored;
            remove.push(chosen);
            remove.sort_unstable();
            for i in remove.into_iter().rev() {
                candidates.remove(i);
            }
        }

        let base_cost = cost::estimate(&base_graph, &row_count);
        let rewrite = if used.is_empty() {
            None
        } else {
            let c = cost::estimate(&graph, &row_count);
            Some(RewriteAlt {
                graph,
                used,
                cost: c,
            })
        };
        RoutedPlan {
            base: base_graph,
            base_cost,
            rewrite,
            skipped,
        }
    }

    /// Derive the routing decision for a plan pair: cost estimate first,
    /// overridden by runtime feedback (measurements outrank estimates; a
    /// pending probe outranks an untrusted estimate).
    fn decide(&self, routed: &RoutedPlan, fp: Option<&str>) -> (RouteChoice, RouteDecision) {
        let Some(alt) = &routed.rewrite else {
            return (RouteChoice::Base, RouteDecision::NoMatch);
        };
        let est = if cost::rewrite_wins(&routed.base_cost, &alt.cost, &self.router.policy) {
            RouteChoice::Rewrite
        } else {
            RouteChoice::Base
        };
        let mut decided = est;
        let mut fb_reason = None;
        if let Some(fp) = fp {
            let mut cache = lock_cache(&self.plan_cache);
            if let Some(fb) = cache.feedback(fp, self.ast_generation) {
                if let Some(best) = fb.measured_best() {
                    if best != est {
                        let b = fb.observed(RouteChoice::Base).unwrap_or(0.0);
                        let r = fb.observed(RouteChoice::Rewrite).unwrap_or(0.0);
                        fb_reason = Some(format!(
                            "measured base {:.0}µs vs rewrite {:.0}µs",
                            b / 1e3,
                            r / 1e3
                        ));
                    }
                    decided = best;
                } else if let Some(forced) = fb.forced() {
                    if forced != est {
                        fb_reason = Some(
                            "probing the unmeasured alternative after the chosen plan \
                             overran its calibrated estimate"
                                .to_string(),
                        );
                    }
                    decided = forced;
                }
            }
            if decided != est {
                cache.count_reroute();
            }
        }
        let routing = if decided != est {
            RouteDecision::ReRouted {
                to: decided,
                reason: fb_reason.unwrap_or_default(),
            }
        } else if decided == RouteChoice::Base {
            RouteDecision::Base {
                base_cost: routed.base_cost.total,
                rewrite_cost: alt.cost.total,
                rejected: alt.used.clone(),
            }
        } else {
            RouteDecision::Rewrite
        };
        (decided, routing)
    }

    /// Close the feedback loop after a successful execution: fold the
    /// observed latency into the entry's per-choice moving average, keep
    /// the session's ns-per-cost-unit calibration current, and — when the
    /// chosen plan badly overran its calibrated estimate and the
    /// alternative has never been measured — arm a probe so the next
    /// identical query measures the other plan.
    fn record_observation(&mut self, fb: &FeedbackCtx, observed_ns: f64) {
        let prior = self.cost_calibration;
        let sample = observed_ns / fb.est_total.max(1.0);
        self.cost_calibration = Some(match prior {
            Some(c) => c * 0.7 + sample * 0.3,
            None => sample,
        });
        let mut cache = lock_cache(&self.plan_cache);
        cache.observe_latency(&fb.fp, self.ast_generation, fb.choice, observed_ns);
        let other_measured = cache
            .feedback(&fb.fp, self.ast_generation)
            .is_some_and(|e| e.observed(fb.choice.other()).is_some());
        if !other_measured {
            if let Some(calibration) = prior {
                let estimated_ns = fb.est_total.max(1.0) * calibration;
                if observed_ns > estimated_ns * self.router.reroute_threshold {
                    cache.force_route(&fb.fp, self.ast_generation, fb.choice.other());
                }
            }
        }
    }

    /// Execute a query with transparent rewriting.
    ///
    /// Graceful degradation: when an AST-backed plan fails at execution
    /// time (a corrupt backing table, an injected fault, a malformed
    /// rewritten graph), the query is re-planned *without* summary tables
    /// and answered from base data. The result then carries the failure in
    /// [`QueryResult::fallback`] and `used_ast` is `None`. Errors in the
    /// un-rewritten path itself still surface as `Err` — there is nothing
    /// left to fall back to.
    pub fn query(&mut self, sql: &str) -> Result<QueryResult, SumtabError> {
        let routed = self.route(sql)?;
        // Result cache: an identical query at identical table epochs and
        // AST generation replays the stored result without executing.
        // Fault injection already forced `routed.key` to `None`, so
        // injected outcomes are never stored or served.
        if self.result_cache_capacity > 0 {
            if let Some((fp, snap)) = &routed.key {
                if let Some(hit) =
                    lock_cache(&self.result_cache).lookup(fp, snap, self.ast_generation)
                {
                    return Ok(hit.clone());
                }
            }
        }
        let detail = &routed.detail;
        let header: Vec<String> = detail
            .graph
            .boxed(detail.graph.root)
            .outputs
            .iter()
            .map(|c| c.name.clone())
            .collect();
        let started = Instant::now();
        let exec = if !detail.used.is_empty() && failpoint::triggered("execute-rewritten") {
            Err(sumtab_engine::ExecError::Injected(
                "execute-rewritten".to_string(),
            ))
        } else {
            sumtab_engine::execute_with(&detail.graph, &self.session.db, &self.session.exec)
        };
        match exec {
            Ok(rows) => {
                let elapsed_ns = started.elapsed().as_nanos() as f64;
                if let Some(fb) = routed.feedback.clone() {
                    self.record_observation(&fb, elapsed_ns);
                }
                let result = QueryResult {
                    header,
                    rows,
                    used_ast: detail.used.first().cloned(),
                    executed_sql: render_graph_sql(&detail.graph),
                    fallback: None,
                    routed: detail.routing.describe(),
                };
                if self.result_cache_capacity > 0 {
                    if let Some((fp, snap)) = routed.key {
                        lock_cache(&self.result_cache).store(
                            fp,
                            snap,
                            self.ast_generation,
                            result.clone(),
                        );
                    }
                }
                Ok(result)
            }
            Err(cause) if !detail.used.is_empty() => {
                let (header, rows) = self.session.query(sql)?;
                Ok(QueryResult {
                    header,
                    rows,
                    used_ast: None,
                    executed_sql: sql.to_string(),
                    fallback: Some(format!(
                        "AST-backed plan using {} failed at execution ({cause}); \
                         fell back to the base plan",
                        detail.used.join(", ")
                    )),
                    routed: None,
                })
            }
            Err(cause) => Err(SumtabError::exec(sql, cause)),
        }
    }

    /// Execute a query WITHOUT rewriting (the baseline for comparisons).
    pub fn query_no_rewrite(&mut self, sql: &str) -> Result<QueryResult, SumtabError> {
        let (header, rows) = self.session.query(sql)?;
        Ok(QueryResult {
            header,
            rows,
            used_ast: None,
            executed_sql: sql.to_string(),
            fallback: None,
            routed: None,
        })
    }

    /// EXPLAIN-style view: the SQL that would actually run, with routing
    /// and per-AST skip reasons as leading comments.
    pub fn explain(&self, sql: &str) -> Result<String, SumtabError> {
        let detail = self.plan_detail(sql)?;
        let mut out = String::new();
        if !detail.used.is_empty() {
            out.push_str(&format!("-- answered from: {}\n", detail.used.join(", ")));
        } else if detail.routing.describe().is_none() {
            // Truly no usable rewrite. When the router *declined* one, the
            // routing line below tells the fuller story instead.
            out.push_str("-- no summary table applicable\n");
        }
        if let Some(why) = detail.routing.describe() {
            out.push_str(&format!("-- routing: {why}\n"));
        }
        for s in &detail.skipped {
            out.push_str(&format!("-- skipped {}: {}\n", s.ast, s.reason));
        }
        for note in &detail.maintenance {
            let strategies: Vec<String> = note
                .strategies
                .iter()
                .map(|(t, s)| format!("{t}={s}"))
                .collect();
            out.push_str(&format!(
                "-- maintenance {}: {}\n",
                note.ast,
                strategies.join(", ")
            ));
            for o in &note.obstructions {
                out.push_str(&format!("-- obstruction {}: {o}\n", note.ast));
            }
        }
        out.push_str(&render_graph_sql(&detail.graph));
        Ok(out)
    }

    /// Append rows to a base table and maintain every affected summary
    /// table — incrementally when its definition is insert-maintainable
    /// (see [`maintain`]), by full recomputation otherwise. An incremental
    /// path that fails degrades to a full refresh instead of leaving the
    /// summary stale. Maintained ASTs have their epoch snapshots advanced,
    /// so they remain eligible for rewriting.
    ///
    /// Returns the names of the incrementally-maintained ASTs.
    pub fn append(&mut self, table: &str, rows: Vec<Row>) -> Result<Vec<String>, SumtabError> {
        self.append_with_report(table, rows).map(|r| r.maintained)
    }

    /// [`SummarySession::append`], additionally reporting which ASTs fell
    /// off the incremental path onto a full refresh — the durability layer
    /// needs that distinction because the degradation may be caused by a
    /// transient fault that will not recur on replay.
    pub fn append_with_report(
        &mut self,
        table: &str,
        rows: Vec<Row>,
    ) -> Result<AppendReport, SumtabError> {
        let table_lc = table.to_ascii_lowercase();
        // Plan first, against the pre-append state: the registration-time
        // certificate decides which ASTs can merge the delta. Both
        // insert-delta and counting-delta certificates support appends.
        let mut incremental = Vec::new();
        let mut full = Vec::new();
        for (i, st) in self.asts.iter().enumerate() {
            if !graph_reads(&st.ast.graph, table) {
                continue;
            }
            match st.maint.plan_for(&table_lc) {
                Some(plan) => incremental.push((i, plan)),
                None => full.push(st.ast.name.clone()),
            }
        }
        // Incremental ASTs merge the delta (computed against the dimension
        // state visible to the new rows, i.e. post-append for all other
        // tables). Insert the rows first, then run deltas with the fact
        // table overridden to just the new rows inside `apply_append`.
        self.session
            .db
            .insert(&self.session.catalog, table, rows.clone())?;
        let mut report = AppendReport::default();
        for (i, plan) in incremental {
            let name = match self.asts.get(i) {
                Some(st) => st.ast.name.clone(),
                None => continue,
            };
            self.apply_incremental(
                i,
                &plan,
                &name,
                &table_lc,
                DeltaApply::Append(&rows),
                &mut report,
            )?;
        }
        for name in full {
            self.refresh(&name)?;
        }
        Ok(report)
    }

    /// Remove rows from a base table and maintain every affected summary
    /// table: counting-delta-certified ASTs subtract signed deltas (dropping
    /// groups whose hidden or visible row counter reaches zero); everything
    /// else — including shrink-sensitive `MIN`/`MAX` whose stored extremum
    /// may have been deleted — recomputes in full.
    ///
    /// `victims` must be rows currently present in `table` (as produced by
    /// [`sumtab_engine::matched_rows`]); the script and WAL-replay paths
    /// guarantee this.
    pub fn delete_rows(
        &mut self,
        table: &str,
        victims: Vec<Row>,
    ) -> Result<AppendReport, SumtabError> {
        let table_lc = table.to_ascii_lowercase();
        let mut incremental = Vec::new();
        let mut full = Vec::new();
        for (i, st) in self.asts.iter().enumerate() {
            if !graph_reads(&st.ast.graph, table) {
                continue;
            }
            match st.maint.plan_for(&table_lc) {
                Some(plan) if plan.strategy == qgm::MaintStrategy::CountingDelta => {
                    incremental.push((i, plan))
                }
                _ => full.push(st.ast.name.clone()),
            }
        }
        // Remove the base rows first; the delta aggregation re-installs the
        // victims over the post-delete database inside `apply_delete`.
        self.session.db.remove_rows(table, &victims);
        let mut report = AppendReport::default();
        for (i, plan) in incremental {
            let name = match self.asts.get(i) {
                Some(st) => st.ast.name.clone(),
                None => continue,
            };
            self.apply_incremental(
                i,
                &plan,
                &name,
                &table_lc,
                DeltaApply::Delete(&victims),
                &mut report,
            )?;
        }
        for name in full {
            self.refresh(&name)?;
        }
        Ok(report)
    }

    /// Replace rows in a base table (positionally paired pre/post-images)
    /// and maintain every affected summary table. Incrementally this is
    /// delete-then-insert of signed deltas, so it needs the same
    /// counting-delta certificate as [`SummarySession::delete_rows`].
    pub fn update_rows(
        &mut self,
        table: &str,
        old_rows: Vec<Row>,
        new_rows: Vec<Row>,
    ) -> Result<AppendReport, SumtabError> {
        let table_lc = table.to_ascii_lowercase();
        let mut incremental = Vec::new();
        let mut full = Vec::new();
        for (i, st) in self.asts.iter().enumerate() {
            if !graph_reads(&st.ast.graph, table) {
                continue;
            }
            match st.maint.plan_for(&table_lc) {
                Some(plan) if plan.strategy == qgm::MaintStrategy::CountingDelta => {
                    incremental.push((i, plan))
                }
                _ => full.push(st.ast.name.clone()),
            }
        }
        self.session
            .db
            .replace_rows(&self.session.catalog, table, &old_rows, new_rows.clone())?;
        let mut report = AppendReport::default();
        for (i, plan) in incremental {
            let name = match self.asts.get(i) {
                Some(st) => st.ast.name.clone(),
                None => continue,
            };
            self.apply_incremental(
                i,
                &plan,
                &name,
                &table_lc,
                DeltaApply::Update {
                    old: &old_rows,
                    new: &new_rows,
                },
                &mut report,
            )?;
        }
        for name in full {
            self.refresh(&name)?;
        }
        Ok(report)
    }

    /// Run one incremental maintenance step for AST `i` with full gating:
    /// the plan verifier (passes 1–3) in front, the `maintain` failpoint,
    /// the delta apply itself, and — under runtime checks — the
    /// recompute-equivalence assertion behind. Every failure mode degrades
    /// to a full refresh (recorded in `report.refreshed`) rather than
    /// leaving the summary stale or wrong.
    fn apply_incremental(
        &mut self,
        i: usize,
        plan: &maintain::MaintenancePlan,
        name: &str,
        table_lc: &str,
        apply: DeltaApply<'_>,
        report: &mut AppendReport,
    ) -> Result<(), SumtabError> {
        let gate = if sumtab_qgm::verify::runtime_checks_enabled() {
            match self.asts.get(i) {
                Some(st) => {
                    maintain::verify_maintenance(&st.maint.exec_graph, plan, &self.session.catalog)
                }
                None => Ok(()),
            }
        } else {
            Ok(())
        };
        let outcome: Result<maintain::DeltaOutcome, String> = if let Err(e) = gate {
            Err(e.to_string())
        } else if failpoint::triggered("maintain") {
            Err("injected fault: maintain".to_string())
        } else {
            match self.asts.get(i) {
                None => Err("registered AST set changed during maintenance".to_string()),
                Some(st) => {
                    let g = &st.maint.exec_graph;
                    let db = &mut self.session.db;
                    let r = match apply {
                        DeltaApply::Append(rows) => {
                            maintain::apply_append(g, plan, name, table_lc, rows, db)
                        }
                        DeltaApply::Delete(rows) => {
                            maintain::apply_delete(g, plan, name, table_lc, rows, db)
                        }
                        DeltaApply::Update { old, new } => {
                            match maintain::apply_delete(g, plan, name, table_lc, old, db) {
                                Ok(maintain::DeltaOutcome::Applied) => {
                                    maintain::apply_append(g, plan, name, table_lc, new, db)
                                }
                                other => other,
                            }
                        }
                    };
                    r.map_err(|e| e.to_string())
                }
            }
        };
        match outcome {
            Ok(maintain::DeltaOutcome::Applied) => {
                if sumtab_qgm::verify::runtime_checks_enabled() {
                    let check = match self.asts.get(i) {
                        Some(st) => maintain::check_equivalence(
                            &st.maint.exec_graph,
                            name,
                            &self.session.db,
                        ),
                        None => Ok(()),
                    };
                    if let Err(why) = check {
                        return self.degrade_to_refresh(
                            name,
                            &format!("recompute-equivalence check failed: {why}"),
                            report,
                        );
                    }
                }
                let epoch = self.session.db.epoch(table_lc);
                if let Some(st) = self.asts.get_mut(i) {
                    st.base_epochs.insert(table_lc.to_string(), epoch);
                }
                report.maintained.push(name.to_string());
                Ok(())
            }
            Ok(maintain::DeltaOutcome::NeedsRefresh(why)) => {
                self.degrade_to_refresh(name, &why, report)
            }
            Err(cause) => self.degrade_to_refresh(name, &cause, report),
        }
    }

    /// Degrade: recompute from scratch rather than leaving the summary
    /// stale (and thus skipped by the planner).
    fn degrade_to_refresh(
        &mut self,
        name: &str,
        cause: &str,
        report: &mut AppendReport,
    ) -> Result<(), SumtabError> {
        self.refresh(name).map_err(|e| SumtabError::Maintain {
            ast: name.to_string(),
            detail: format!(
                "incremental maintenance failed ({cause}) and the \
                 fallback full refresh also failed: {e}"
            ),
        })?;
        report.refreshed.push(name.to_string());
        Ok(())
    }

    /// Refresh one summary table from current base data (full recompute).
    /// Runs the *exec* graph, so a hidden-counter AST re-materializes with
    /// its counter column intact. Re-snapshots the base-table epochs,
    /// clearing any staleness.
    pub fn refresh(&mut self, name: &str) -> Result<(), SumtabError> {
        let idx = self
            .asts
            .iter()
            .position(|a| a.ast.name == name)
            .ok_or_else(|| SumtabError::Maintain {
                ast: name.to_string(),
                detail: "unknown summary table".to_string(),
            })?;
        let rows = sumtab_engine::execute_with(
            &self.asts[idx].maint.exec_graph,
            &self.session.db,
            &self.session.exec,
        )
        .map_err(|e| SumtabError::exec(format!("refresh of `{name}`"), e))?;
        self.session.db.put_table(name, rows);
        self.asts[idx].base_epochs = snapshot_epochs(&self.session.db, &self.asts[idx].ast.graph);
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod tests {
    use super::*;
    use sumtab_catalog::{Column, SummaryTableDef, Table};

    #[test]
    fn transparent_rewriting_round_trip() {
        let mut s = SummarySession::new();
        s.run_script(
            "create table t (k int not null, v int not null);
             insert into t values (1, 10), (1, 20), (2, 30);
             create summary table st as (select k, sum(v) as sv, count(*) as c from t group by k);",
        )
        .unwrap();
        let with = s.query("select k, sum(v) as sv from t group by k").unwrap();
        assert_eq!(with.used_ast.as_deref(), Some("st"));
        assert!(with.fallback.is_none());
        let without = s
            .query_no_rewrite("select k, sum(v) as sv from t group by k")
            .unwrap();
        assert_eq!(sort_rows(with.rows), sort_rows(without.rows));
    }

    #[test]
    fn explain_reports_routing() {
        let mut s = SummarySession::new();
        s.run_script(
            "create table t (k int not null, v int not null);
             insert into t values (1, 1);
             create summary table st as (select k, count(*) as c from t group by k);",
        )
        .unwrap();
        let plan = s
            .explain("select k, count(*) as c from t group by k")
            .unwrap();
        assert!(plan.contains("answered from: st"), "{plan}");
        let plan2 = s.explain("select v from t").unwrap();
        assert!(plan2.contains("no summary table applicable"), "{plan2}");
    }

    #[test]
    fn stale_asts_are_skipped_until_refreshed() {
        let mut s = SummarySession::new();
        s.run_script(
            "create table t (k int not null);
             insert into t values (1);
             create summary table st as (select k, count(*) as c from t group by k);",
        )
        .unwrap();
        // Mutate the base table BEHIND the session's back (directly in the
        // database), so no maintenance runs and `st`'s snapshot goes stale.
        let Session { catalog, db, .. } = &mut s.session;
        db.insert(catalog, "t", vec![vec![Value::Int(1)], vec![Value::Int(2)]])
            .unwrap();
        assert_eq!(s.session.db.row_count("st"), 1, "summary is a snapshot");

        // The planner must refuse the stale AST and answer from base data.
        let detail = s
            .plan_detail("select k, count(*) as c from t group by k")
            .unwrap();
        assert!(detail.used.is_empty(), "stale AST must not be used");
        assert_eq!(detail.skipped.len(), 1);
        assert!(detail.skipped[0].reason.contains("stale"), "{detail:?}");
        let explain = s
            .explain("select k, count(*) as c from t group by k")
            .unwrap();
        assert!(explain.contains("skipped st: stale"), "{explain}");
        let r = s
            .query("select k, count(*) as c from t group by k")
            .unwrap();
        assert_eq!(r.used_ast, None);
        assert_eq!(
            sort_rows(r.rows),
            vec![
                vec![Value::Int(1), Value::Int(2)],
                vec![Value::Int(2), Value::Int(1)],
            ],
            "answers reflect current data, not the stale summary"
        );

        // Refresh clears the staleness and re-enables routing.
        s.refresh("st").unwrap();
        assert_eq!(s.session.db.row_count("st"), 2);
        let r = s
            .query("select k, count(*) as c from t group by k")
            .unwrap();
        assert_eq!(r.used_ast.as_deref(), Some("st"));
    }

    #[test]
    fn script_inserts_keep_summaries_fresh() {
        let mut s = SummarySession::new();
        s.run_script(
            "create table t (k int not null);
             insert into t values (1);
             create summary table st as (select k, count(*) as c from t group by k);",
        )
        .unwrap();
        // Post-registration INSERTs route through append-maintenance.
        s.run_script("insert into t values (1), (2)").unwrap();
        assert_eq!(s.session.db.row_count("st"), 2, "summary maintained");
        let r = s
            .query("select k, count(*) as c from t group by k")
            .unwrap();
        assert_eq!(r.used_ast.as_deref(), Some("st"), "AST still fresh");
        assert_eq!(
            sort_rows(r.rows),
            vec![
                vec![Value::Int(1), Value::Int(2)],
                vec![Value::Int(2), Value::Int(1)],
            ]
        );
    }

    #[test]
    fn with_data_reregisters_asts() {
        let mut s1 = SummarySession::new();
        s1.run_script(
            "create table t (k int not null);
             insert into t values (1), (1);
             create summary table st as (select k, count(*) as c from t group by k);",
        )
        .unwrap();
        let s2 = SummarySession::with_data(s1.session.catalog.clone(), s1.session.db.clone());
        assert_eq!(s2.asts().len(), 1);
        assert!(s2.registration_failures().is_empty());
    }

    #[test]
    fn with_data_reports_undecodable_definitions() {
        let mut s1 = SummarySession::new();
        s1.run_script("create table t (k int not null); insert into t values (1);")
            .unwrap();
        let mut cat = s1.session.catalog.clone();
        // A definition that no longer plans (references a missing column).
        cat.add_summary_table(
            SummaryTableDef {
                name: "bad".into(),
                query_sql: "select nope, count(*) as c from t group by nope".into(),
            },
            Table::new("bad", vec![Column::new("nope", SqlType::Int)]),
        )
        .unwrap();
        let s2 = SummarySession::with_data(cat, s1.session.db.clone());
        assert!(s2.asts().is_empty());
        assert_eq!(s2.registration_failures().len(), 1);
        let (name, reason) = &s2.registration_failures()[0];
        assert_eq!(name, "bad");
        assert!(reason.contains("nope"), "{reason}");
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod maintain_integration_tests {
    use super::*;

    #[test]
    fn append_maintains_incrementally_and_stays_consistent() {
        let mut s = SummarySession::new();
        s.run_script(
            "create table t (k int not null, v int not null);
             insert into t values (1, 10), (2, 5);
             create summary table st as
               (select k, count(*) as c, sum(v) as s, min(v) as mn, max(v) as mx
                from t group by k);",
        )
        .unwrap();
        let maintained = s
            .append(
                "t",
                vec![
                    vec![Value::Int(1), Value::Int(3)],
                    vec![Value::Int(3), Value::Int(7)],
                ],
            )
            .unwrap();
        assert_eq!(maintained, vec!["st".to_string()], "incremental path used");
        // The maintained summary equals a from-scratch recomputation.
        let direct = s
            .query_no_rewrite(
                "select k, count(*) as c, sum(v) as s, min(v) as mn, max(v) as mx \
                 from t group by k",
            )
            .unwrap();
        let stored = s
            .query_no_rewrite("select k, c, s, mn, mx from st")
            .unwrap();
        assert_eq!(sort_rows(direct.rows), sort_rows(stored.rows));
        // And queries routed through it see the fresh data.
        let routed = s.query("select k, sum(v) as s from t group by k").unwrap();
        assert_eq!(routed.used_ast.as_deref(), Some("st"));
        assert_eq!(
            sort_rows(routed.rows),
            vec![
                vec![Value::Int(1), Value::Int(13)],
                vec![Value::Int(2), Value::Int(5)],
                vec![Value::Int(3), Value::Int(7)],
            ]
        );
    }

    #[test]
    fn append_falls_back_to_refresh_for_having_asts() {
        let mut s = SummarySession::new();
        s.run_script(
            "create table t (k int not null);
             insert into t values (1), (1), (2);
             create summary table big as
               (select k, count(*) as c from t group by k having count(*) > 1);",
        )
        .unwrap();
        let maintained = s.append("t", vec![vec![Value::Int(2)]]).unwrap();
        assert!(maintained.is_empty(), "HAVING forces full refresh");
        let stored = s.query_no_rewrite("select k, c from big").unwrap();
        assert_eq!(
            sort_rows(stored.rows),
            vec![
                vec![Value::Int(1), Value::Int(2)],
                vec![Value::Int(2), Value::Int(2)],
            ]
        );
    }

    #[test]
    fn append_to_unrelated_table_leaves_asts_alone() {
        let mut s = SummarySession::new();
        s.run_script(
            "create table t (k int not null);
             create table u (k int not null);
             insert into t values (1);
             create summary table st as (select k, count(*) as c from t group by k);",
        )
        .unwrap();
        let maintained = s.append("u", vec![vec![Value::Int(9)]]).unwrap();
        assert!(maintained.is_empty());
        assert_eq!(s.session.db.row_count("st"), 1);
    }
}
