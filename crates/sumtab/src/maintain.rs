//! Incremental summary-table maintenance driven by the static
//! maintainability analysis.
//!
//! The paper lists AST maintenance as related problem (c) and defers to
//! Mumick/Quass/Mumick (SIGMOD'97). This module executes the certificates
//! produced by [`sumtab_qgm::maintainability`]:
//!
//! * **Appends** ([`apply_append`]): aggregate only the delta rows and merge
//!   the result into the materialized groups — `COUNT`/`SUM` add, `MIN`/`MAX`
//!   take the extremum (the classic insert-only case).
//! * **Deletes** ([`apply_delete`]): counting-based delta maintenance. The
//!   per-group row counter (a projected `COUNT(*)`-equivalent, or the hidden
//!   one injected at materialization) tracks group liveness: when it reaches
//!   zero the whole group row is dropped; `COUNT`/`SUM` columns subtract the
//!   delta; `MIN`/`MAX` columns are *shrink-sensitive* — a delete whose delta
//!   extremum ties or beats the stored one may have removed the extremum
//!   itself, which a delta cannot repair, so the apply reports
//!   [`DeltaOutcome::NeedsRefresh`] and the caller recomputes.
//! * **Updates**: delete + insert of signed deltas, composed by the facade
//!   ([`crate::SummarySession`]) from the two primitives above.
//!
//! Every apply is gated behind the PR 4 plan verifier
//! ([`verify_maintenance`]) and, in debug builds (or `SUMTAB_VERIFY=1`),
//! a recompute-equivalence assertion ([`check_equivalence`]): the maintained
//! backing rows must equal a from-scratch recomputation, or the caller
//! degrades to a refresh.

use std::collections::{BTreeMap, HashMap};
use sumtab_catalog::{Catalog, Value};
use sumtab_engine::{execute, Database, Row};
use sumtab_qgm::{
    analyze_maintainability, augment_with_count, BoxKind, ColumnOp, MaintStrategy,
    MaintainabilityReport, QgmGraph, VerifyError,
};

/// The cached registration-time analysis of one AST: per-base-table
/// certificates plus the graph the engine actually executes (the definition,
/// or its hidden-counter augmentation when counting-delta maintenance needs
/// a group-liveness counter that the definition does not project).
#[derive(Debug, Clone)]
pub struct AstMaintenance {
    /// Base table (lower-cased) → maintainability certificate.
    pub reports: BTreeMap<String, MaintainabilityReport>,
    /// The graph executed for materialization, refresh, and delta
    /// computation. Identical to the definition graph unless
    /// `hidden_counter`.
    pub exec_graph: QgmGraph,
    /// The exec graph carries an extra trailing hidden `COUNT(*)` column
    /// (stored in backing rows, invisible to the catalog and the matcher).
    pub hidden_counter: bool,
}

impl AstMaintenance {
    /// Derive the executable plan for mutations on `table`; `None` when the
    /// certificate says refresh-only (or the table is not read).
    pub fn plan_for(&self, table: &str) -> Option<MaintenancePlan> {
        let r = self.reports.get(&table.to_ascii_lowercase())?;
        if r.strategy == MaintStrategy::RefreshOnly {
            return None;
        }
        let mut ops = r.per_column_ops.clone();
        let mut counter = r.counter;
        if self.hidden_counter {
            ops.push(ColumnOp::Count {
                counter_eligible: true,
            });
            if counter.is_none() {
                counter = Some(ops.len() - 1);
            }
        }
        Some(MaintenancePlan {
            strategy: r.strategy,
            ops,
            counter,
            shrink_sensitive: r.shrink_sensitive.clone(),
        })
    }

    /// The strongest strategy certified for `table`
    /// ([`MaintStrategy::RefreshOnly`] when the table is not read).
    pub fn strategy_for(&self, table: &str) -> MaintStrategy {
        self.reports
            .get(&table.to_ascii_lowercase())
            .map(|r| r.strategy)
            .unwrap_or(MaintStrategy::RefreshOnly)
    }
}

/// Run the maintainability analysis for every base table an AST definition
/// reads, and build the exec graph (injecting the hidden counter when any
/// certificate requests one). Pure function of (graph, catalog) — computed
/// once at registration, like `MatchSignature`.
pub fn analyze_ast(graph: &QgmGraph, catalog: &Catalog) -> AstMaintenance {
    let mut reports = BTreeMap::new();
    for b in &graph.boxes {
        if let BoxKind::BaseTable { table } = &b.kind {
            let t = table.to_ascii_lowercase();
            reports
                .entry(t.clone())
                .or_insert_with(|| analyze_maintainability(graph, &t, catalog));
        }
    }
    let wants_hidden = reports
        .values()
        .any(|r: &MaintainabilityReport| r.needs_hidden_counter);
    let (exec_graph, hidden_counter) = if wants_hidden {
        match augment_with_count(graph) {
            Some(g) => (g, true),
            // Unreachable for analyzer-certified graphs; stay sound anyway.
            None => (graph.clone(), false),
        }
    } else {
        (graph.clone(), false)
    };
    AstMaintenance {
        reports,
        exec_graph,
        hidden_counter,
    }
}

/// The executable maintenance plan for one (AST, base table) pair: one
/// [`ColumnOp`] per *exec-graph* output (the certificate's per-column ops
/// plus the hidden counter, when present).
#[derive(Debug, Clone)]
pub struct MaintenancePlan {
    /// The certified strategy.
    pub strategy: MaintStrategy,
    /// Per-backing-column merge behavior.
    pub ops: Vec<ColumnOp>,
    /// Ordinal of the group-liveness counter (visible or hidden). Always
    /// `Some` under [`MaintStrategy::CountingDelta`].
    pub counter: Option<usize>,
    /// Ordinals of shrink-sensitive (`MIN`/`MAX`) columns.
    pub shrink_sensitive: Vec<usize>,
}

/// The outcome of an incremental apply that ran to completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaOutcome {
    /// The backing table was merged in place.
    Applied,
    /// The delta cannot soundly maintain the backing table (shrink of a
    /// stored extremum, width drift, counter inconsistency); nothing was
    /// modified — the caller must recompute.
    NeedsRefresh(String),
}

/// Maintenance boundary gate: before a [`MaintenancePlan`] is applied, prove
/// the exec graph still verifies (passes 1+2) and that the plan's
/// per-column ops line up one-to-one with the exec graph's root outputs — a
/// drifted plan would merge deltas into the wrong columns. Callers treat a
/// failure like any other incremental-maintenance error and degrade to a
/// full refresh.
pub fn verify_maintenance(
    exec_graph: &QgmGraph,
    plan: &MaintenancePlan,
    catalog: &Catalog,
) -> Result<(), VerifyError> {
    sumtab_qgm::verify::verify_plan(exec_graph, catalog)?;
    let arity = exec_graph.boxed(exec_graph.root).outputs.len();
    if plan.ops.len() != arity {
        return Err(VerifyError::schema(format!(
            "maintenance plan has {} merge ops but the exec graph exposes {arity} columns",
            plan.ops.len()
        )));
    }
    if plan.strategy == MaintStrategy::CountingDelta {
        match plan.counter {
            Some(c) if matches!(plan.ops.get(c), Some(ColumnOp::Count { .. })) => {}
            _ => {
                return Err(VerifyError::schema(
                    "counting-delta plan lacks a COUNT group-liveness counter".to_string(),
                ))
            }
        }
    }
    Ok(())
}

/// Key ordinals of a plan.
fn key_ordinals(plan: &MaintenancePlan) -> Vec<usize> {
    plan.ops
        .iter()
        .enumerate()
        .filter(|(_, op)| **op == ColumnOp::Key)
        .map(|(i, _)| i)
        .collect()
}

/// Compute the delta aggregation: the exec graph over a database in which
/// `table` holds only `delta_rows` (every other table unchanged). Copies
/// only the tables the graph actually reads — crucially *not* the (large)
/// maintained fact table, whose contents the delta replaces anyway — so the
/// cost scales with the dimension tables and the delta, not the base data.
fn delta_aggregation(
    exec_graph: &QgmGraph,
    table: &str,
    delta_rows: &[Row],
    db: &Database,
) -> Result<Vec<Row>, sumtab_engine::ExecError> {
    let mut delta_db = Database::new();
    for b in &exec_graph.boxes {
        if let sumtab_qgm::BoxKind::BaseTable { table: t } = &b.kind {
            if !t.eq_ignore_ascii_case(table) {
                delta_db.put_table(t, db.rows(t).to_vec());
            }
        }
    }
    delta_db.put_table(table, delta_rows.to_vec());
    execute(exec_graph, &delta_db)
}

/// Apply an append incrementally: aggregate the delta rows and merge them
/// into the backing rows in `db` under `ast_name`. Reports
/// [`DeltaOutcome::NeedsRefresh`] (without modifying anything) when the
/// backing rows do not line up with the plan.
pub fn apply_append(
    exec_graph: &QgmGraph,
    plan: &MaintenancePlan,
    ast_name: &str,
    table: &str,
    delta_rows: &[Row],
    db: &mut Database,
) -> Result<DeltaOutcome, sumtab_engine::ExecError> {
    let delta = delta_aggregation(exec_graph, table, delta_rows, db)?;
    let mut backing = db.rows(ast_name).to_vec();
    if let Some(w) = backing.first().map(Vec::len) {
        if w != plan.ops.len() {
            // Legacy backing data without the hidden counter (or other
            // drift): a refresh re-materializes through the exec graph.
            return Ok(DeltaOutcome::NeedsRefresh(format!(
                "backing rows have {w} columns, plan expects {}",
                plan.ops.len()
            )));
        }
    }
    let key_idx = key_ordinals(plan);
    let mut index: HashMap<Vec<Value>, usize> = HashMap::with_capacity(backing.len());
    for (i, row) in backing.iter().enumerate() {
        index.insert(key_idx.iter().map(|&k| row[k].clone()).collect(), i);
    }
    for drow in delta {
        let key: Vec<Value> = key_idx.iter().map(|&k| drow[k].clone()).collect();
        match index.get(&key) {
            Some(&i) => {
                let row = &mut backing[i];
                for (c, op) in plan.ops.iter().enumerate() {
                    row[c] = merge_value(*op, &row[c], &drow[c]);
                }
            }
            None => {
                index.insert(key, backing.len());
                backing.push(drow);
            }
        }
    }
    db.put_table(ast_name, backing);
    Ok(DeltaOutcome::Applied)
}

/// Apply a delete through counting-based delta maintenance: aggregate the
/// removed rows, subtract signed deltas from `COUNT`/`SUM` columns, drop
/// groups whose liveness counter reaches zero, and refuse (without
/// modifying anything) whenever a shrink-sensitive extremum might have been
/// removed or the stored state is inconsistent with the delta.
pub fn apply_delete(
    exec_graph: &QgmGraph,
    plan: &MaintenancePlan,
    ast_name: &str,
    table: &str,
    removed_rows: &[Row],
    db: &mut Database,
) -> Result<DeltaOutcome, sumtab_engine::ExecError> {
    if plan.strategy != MaintStrategy::CountingDelta {
        return Ok(DeltaOutcome::NeedsRefresh(format!(
            "strategy {} does not certify deletes",
            plan.strategy
        )));
    }
    let Some(cnt) = plan.counter else {
        return Ok(DeltaOutcome::NeedsRefresh(
            "counting-delta plan without a counter ordinal".to_string(),
        ));
    };
    let delta = delta_aggregation(exec_graph, table, removed_rows, db)?;
    let mut backing = db.rows(ast_name).to_vec();
    if let Some(w) = backing.first().map(Vec::len) {
        if w != plan.ops.len() {
            return Ok(DeltaOutcome::NeedsRefresh(format!(
                "backing rows have {w} columns, plan expects {}",
                plan.ops.len()
            )));
        }
    }
    let key_idx = key_ordinals(plan);
    let mut index: HashMap<Vec<Value>, usize> = HashMap::with_capacity(backing.len());
    for (i, row) in backing.iter().enumerate() {
        index.insert(key_idx.iter().map(|&k| row[k].clone()).collect(), i);
    }

    // Plan the whole merge before touching `backing`, so a refusal midway
    // leaves the stored state untouched.
    let mut drop = vec![false; backing.len()];
    let mut merged: Vec<(usize, Row)> = Vec::with_capacity(delta.len());
    for drow in &delta {
        let key: Vec<Value> = key_idx.iter().map(|&k| drow[k].clone()).collect();
        let Some(&i) = index.get(&key) else {
            return Ok(DeltaOutcome::NeedsRefresh(
                "deleted rows belong to a group missing from the backing table".to_string(),
            ));
        };
        let row = &backing[i];
        // Group-liveness arithmetic decides removal before anything else:
        // a vanishing group needs no per-column repair.
        let (Value::Int(old_n), Value::Int(del_n)) = (&row[cnt], &drow[cnt]) else {
            return Ok(DeltaOutcome::NeedsRefresh(
                "group counter is not an integer".to_string(),
            ));
        };
        let new_n = old_n - del_n;
        if new_n < 0 {
            return Ok(DeltaOutcome::NeedsRefresh(format!(
                "counter underflow: {old_n} stored rows, {del_n} deleted"
            )));
        }
        if new_n == 0 {
            drop[i] = true;
            continue;
        }
        // Shrink detection: if the delta's extremum ties or beats the
        // stored one, the stored extremum may be among the deleted rows.
        for &s in &plan.shrink_sensitive {
            let stored = &row[s];
            let deleted = &drow[s];
            if *deleted == Value::Null {
                continue; // only NULLs deleted in this column: extrema ignore them
            }
            if *stored == Value::Null {
                return Ok(DeltaOutcome::NeedsRefresh(format!(
                    "stored extremum NULL but deleted rows carry values (column {s})"
                )));
            }
            let shrinks = match plan.ops[s] {
                ColumnOp::Min => deleted <= stored,
                ColumnOp::Max => deleted >= stored,
                _ => false,
            };
            if shrinks {
                return Ok(DeltaOutcome::NeedsRefresh(format!(
                    "delete removes the stored extremum of column {s}"
                )));
            }
        }
        // Signed subtraction for COUNT/SUM; keys and surviving extrema stay.
        let mut new_row = row.clone();
        for (c, op) in plan.ops.iter().enumerate() {
            match op {
                ColumnOp::Count { .. } | ColumnOp::Sum { .. } => {
                    match sub_value(&new_row[c], &drow[c]) {
                        Some(v) => new_row[c] = v,
                        None => {
                            return Ok(DeltaOutcome::NeedsRefresh(format!(
                                "cannot subtract delta from column {c}"
                            )))
                        }
                    }
                }
                ColumnOp::Key | ColumnOp::Min | ColumnOp::Max => {}
            }
        }
        merged.push((i, new_row));
    }
    for (i, row) in merged {
        backing[i] = row;
    }
    let backing: Vec<Row> = backing
        .into_iter()
        .zip(drop)
        .filter(|(_, d)| !d)
        .map(|(r, _)| r)
        .collect();
    db.put_table(ast_name, backing);
    Ok(DeltaOutcome::Applied)
}

/// Recompute-equivalence assertion: the maintained backing rows must be a
/// permutation of a from-scratch recomputation through the exec graph.
/// Double cells compare with a small relative tolerance (float accumulation
/// orders differ between merge and recompute); everything else compares
/// exactly. Returns a description of the first mismatch.
pub fn check_equivalence(
    exec_graph: &QgmGraph,
    ast_name: &str,
    db: &Database,
) -> Result<(), String> {
    let recomputed = execute(exec_graph, db).map_err(|e| format!("recompute failed: {e}"))?;
    let mut expected = recomputed;
    expected.sort();
    let mut actual = db.rows(ast_name).to_vec();
    actual.sort();
    if expected.len() != actual.len() {
        return Err(format!(
            "maintained backing has {} rows, recompute produced {}",
            actual.len(),
            expected.len()
        ));
    }
    for (ri, (a, e)) in actual.iter().zip(&expected).enumerate() {
        if a.len() != e.len() {
            return Err(format!("row {ri}: arity {} vs {}", a.len(), e.len()));
        }
        for (ci, (av, ev)) in a.iter().zip(e).enumerate() {
            let ok = match (av, ev) {
                (Value::Double(x), Value::Double(y)) => {
                    let scale = x.abs().max(y.abs()).max(1.0);
                    (x - y).abs() <= 1e-9 * scale
                }
                (a, e) => a == e,
            };
            if !ok {
                return Err(format!(
                    "row {ri}, column {ci}: maintained {av:?} != recomputed {ev:?}"
                ));
            }
        }
    }
    Ok(())
}

fn merge_value(op: ColumnOp, current: &Value, delta: &Value) -> Value {
    match op {
        ColumnOp::Key => current.clone(),
        ColumnOp::Count { .. } | ColumnOp::Sum { .. } => match (current, delta) {
            (Value::Null, d) => d.clone(),
            (c, Value::Null) => c.clone(),
            (c, d) => sumtab_engine::eval::eval_binary(sumtab_qgm::BinOp::Add, c, d),
        },
        ColumnOp::Min => match (current, delta) {
            (Value::Null, d) => d.clone(),
            (c, Value::Null) => c.clone(),
            (c, d) => {
                if d < c {
                    d.clone()
                } else {
                    c.clone()
                }
            }
        },
        ColumnOp::Max => match (current, delta) {
            (Value::Null, d) => d.clone(),
            (c, Value::Null) => c.clone(),
            (c, d) => {
                if d > c {
                    d.clone()
                } else {
                    c.clone()
                }
            }
        },
    }
}

/// Signed subtraction with the NULL conventions of delta maintenance:
/// subtracting a NULL delta keeps the current value; subtracting from NULL
/// is unrepresentable (`None` → refresh).
fn sub_value(current: &Value, delta: &Value) -> Option<Value> {
    match (current, delta) {
        (c, Value::Null) => Some(c.clone()),
        (Value::Null, _) => None,
        (c, d) => Some(sumtab_engine::eval::eval_binary(sumtab_qgm::BinOp::Sub, c, d)),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod tests {
    use super::*;
    use sumtab_catalog::Catalog;
    use sumtab_parser::parse_query;
    use sumtab_qgm::build_query;

    fn graph_of(sql: &str, cat: &Catalog) -> QgmGraph {
        build_query(&parse_query(sql).unwrap(), cat).unwrap()
    }

    #[test]
    fn merge_value_semantics() {
        let i = |n: i64| Value::Int(n);
        let add = ColumnOp::Sum { delete_safe: true };
        assert_eq!(merge_value(add, &i(3), &i(4)), i(7));
        assert_eq!(merge_value(add, &Value::Null, &i(4)), i(4));
        assert_eq!(merge_value(add, &i(3), &Value::Null), i(3));
        assert_eq!(merge_value(ColumnOp::Min, &i(3), &i(4)), i(3));
        assert_eq!(merge_value(ColumnOp::Min, &i(5), &i(4)), i(4));
        assert_eq!(merge_value(ColumnOp::Max, &i(3), &i(4)), i(4));
        assert_eq!(merge_value(ColumnOp::Max, &Value::Null, &i(4)), i(4));
        assert_eq!(
            merge_value(ColumnOp::Key, &i(1), &i(9)),
            i(1),
            "keys never change"
        );
        assert_eq!(
            merge_value(add, &Value::Double(1.5), &Value::Double(2.5)),
            Value::Double(4.0)
        );
        assert_eq!(sub_value(&i(7), &i(4)), Some(i(3)));
        assert_eq!(sub_value(&i(7), &Value::Null), Some(i(7)));
        assert_eq!(sub_value(&Value::Null, &i(4)), None);
    }

    #[test]
    fn plan_detection_via_analyzer() {
        let cat = Catalog::credit_card_sample();
        let g = graph_of(
            "select faid, count(*) as c, sum(qty) as s, min(price) as mn, max(price) as mx \
             from trans group by faid",
            &cat,
        );
        let m = analyze_ast(&g, &cat);
        assert!(!m.hidden_counter, "COUNT(*) is already projected");
        let plan = m.plan_for("trans").unwrap();
        assert_eq!(plan.strategy, MaintStrategy::CountingDelta);
        assert_eq!(plan.counter, Some(1));
        assert_eq!(plan.shrink_sensitive, vec![3, 4]);
        assert_eq!(plan.ops.len(), 5);
        assert_eq!(plan.ops[0], ColumnOp::Key);
    }

    #[test]
    fn hidden_counter_appended_to_plan_ops() {
        let cat = Catalog::credit_card_sample();
        let g = graph_of("select faid, sum(qty) as s from trans group by faid", &cat);
        let m = analyze_ast(&g, &cat);
        assert!(m.hidden_counter);
        assert_eq!(m.exec_graph.boxed(m.exec_graph.root).outputs.len(), 3);
        let plan = m.plan_for("trans").unwrap();
        assert_eq!(plan.ops.len(), 3);
        assert_eq!(plan.counter, Some(2));
        verify_maintenance(&m.exec_graph, &plan, &cat).unwrap();
    }

    #[test]
    fn non_maintainable_shapes_are_refresh_only() {
        let cat = Catalog::credit_card_sample();
        for sql in [
            "select faid, count(*) as c from trans group by faid having count(*) > 1",
            "select count(*) as c from trans",
            "select faid, count(distinct flid) as c from trans group by faid",
            "select faid, count(*) as c, (select count(*) from trans) as t \
             from trans group by faid",
            "select tid, qty from trans",
        ] {
            let g = graph_of(sql, &cat);
            let m = analyze_ast(&g, &cat);
            assert!(m.plan_for("trans").is_none(), "should be rejected: {sql}");
            assert!(
                !m.reports["trans"].obstructions.is_empty(),
                "rejection must carry an obstruction: {sql}"
            );
        }
        // Non-linear: self join on the maintained table.
        let g = graph_of(
            "select t1.faid as f, count(*) as c from trans as t1, trans as t2 \
             where t1.faid = t2.faid group by t1.faid",
            &cat,
        );
        assert!(analyze_ast(&g, &cat).plan_for("trans").is_none());
        // Linear in trans, joined dimension is fine — and maintainable with
        // respect to both tables.
        let g = graph_of(
            "select state, count(*) as c from trans, loc where flid = lid group by state",
            &cat,
        );
        let m = analyze_ast(&g, &cat);
        assert!(m.plan_for("trans").is_some());
        assert!(m.plan_for("loc").is_some());
    }

    #[test]
    fn verify_rejects_drifted_plans() {
        let cat = Catalog::credit_card_sample();
        let g = graph_of(
            "select faid, count(*) as c from trans group by faid",
            &cat,
        );
        let m = analyze_ast(&g, &cat);
        let mut plan = m.plan_for("trans").unwrap();
        plan.ops.push(ColumnOp::Key);
        assert!(verify_maintenance(&m.exec_graph, &plan, &cat).is_err());
        let mut plan2 = m.plan_for("trans").unwrap();
        plan2.counter = None;
        assert!(verify_maintenance(&m.exec_graph, &plan2, &cat).is_err());
    }
}
