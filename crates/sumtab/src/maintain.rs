//! Incremental summary-table maintenance on fact-table appends.
//!
//! The paper lists AST maintenance as related problem (c) and defers to
//! Mumick/Quass/Mumick (SIGMOD'97). This module implements the classic
//! insert-only case as an extension: when new rows are appended to a base
//! table, a *self-maintainable* AST is updated by aggregating only the
//! delta and merging it into the materialized groups — `COUNT`/`SUM` add,
//! `MIN`/`MAX` take the extremum (sound for inserts; deletes would need
//! the full re-computation fallback, which [`crate::SummarySession::refresh`]
//! provides).
//!
//! An AST is treated as self-maintainable when:
//! * its graph is `SELECT(no predicates, pure projection) ← simple GROUP BY
//!   ← SELECT ← base tables` (no HAVING, no grouping sets, no DISTINCT
//!   aggregates, no scalar subqueries), and
//! * the appended table occurs exactly once in the definition (linearity),
//!   so the delta query computes exactly the contribution of the new rows.

use sumtab_catalog::{Catalog, Value};
use sumtab_engine::{execute, Database, Row};
use sumtab_qgm::{AggFunc, BoxKind, QgmGraph, QuantKind, ScalarExpr, VerifyError};

/// How each backing-table column merges during maintenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeOp {
    /// Grouping column: part of the merge key.
    Key,
    /// `COUNT`/`SUM`: add delta to current (NULL-aware: NULL + x = x).
    Add,
    /// `MIN`: keep the smaller non-NULL value.
    Min,
    /// `MAX`: keep the larger non-NULL value.
    Max,
}

/// The maintenance plan for a self-maintainable AST: one [`MergeOp`] per
/// backing-table column.
#[derive(Debug, Clone)]
pub struct MaintenancePlan {
    /// Per-output merge behavior.
    pub ops: Vec<MergeOp>,
}

/// Analyze an AST definition; `None` when it is not insert-maintainable
/// with respect to `table`.
pub fn maintenance_plan(graph: &QgmGraph, table: &str) -> Option<MaintenancePlan> {
    // Linearity: the appended table occurs exactly once anywhere.
    let occurrences = graph
        .boxes
        .iter()
        .filter(|b| matches!(&b.kind, BoxKind::BaseTable { table: t } if t == table))
        .count();
    if occurrences != 1 {
        return None;
    }
    // Shape: root select (no predicates, pure projection of the GROUP BY).
    let root = graph.boxed(graph.root);
    let gb_box = match &root.kind {
        BoxKind::Select(s) => {
            if !s.predicates.is_empty() || root.quants.len() != 1 {
                return None;
            }
            if graph.quant(root.quants[0]).kind != QuantKind::Foreach {
                return None;
            }
            graph.input_of(root.quants[0])
        }
        _ => return None,
    };
    let gb = graph.boxed(gb_box);
    let gbk = gb.as_group_by()?;
    if !gbk.is_simple() || gbk.items.is_empty() {
        // Grand-total ASTs would need an existence check on merge; skip.
        return None;
    }
    // No scalar subqueries anywhere (their value changes with the append).
    if graph.quants.iter().any(|q| q.kind == QuantKind::Scalar) {
        return None;
    }
    // Root outputs must be plain references to GROUP BY outputs.
    let mut ops = Vec::with_capacity(root.outputs.len());
    for oc in &root.outputs {
        let ScalarExpr::Col(c) = &oc.expr else {
            return None;
        };
        if c.qid != root.quants[0] {
            return None;
        }
        let gb_out = &gb.outputs[c.ordinal];
        let op = match &gb_out.expr {
            ScalarExpr::Col(_) => MergeOp::Key,
            ScalarExpr::Agg(a) => {
                if a.distinct {
                    return None; // DISTINCT aggregates are not mergeable
                }
                match a.func {
                    AggFunc::Count | AggFunc::Sum => MergeOp::Add,
                    AggFunc::Min => MergeOp::Min,
                    AggFunc::Max => MergeOp::Max,
                    AggFunc::Avg => return None,
                }
            }
            _ => return None,
        };
        ops.push(op);
    }
    if !ops.contains(&MergeOp::Key) {
        return None;
    }
    Some(MaintenancePlan { ops })
}

/// Maintenance boundary gate: before a [`MaintenancePlan`] is applied, prove
/// the AST definition graph still verifies (passes 1+2) and that the plan's
/// per-column merge ops line up one-to-one with the definition's root
/// outputs — a drifted plan would merge deltas into the wrong columns.
/// Callers treat a failure like any other incremental-maintenance error and
/// degrade to a full refresh.
pub fn verify_maintenance(
    graph: &QgmGraph,
    plan: &MaintenancePlan,
    catalog: &Catalog,
) -> Result<(), VerifyError> {
    sumtab_qgm::verify::verify_plan(graph, catalog)?;
    let arity = graph.boxed(graph.root).outputs.len();
    if plan.ops.len() != arity {
        return Err(VerifyError::schema(format!(
            "maintenance plan has {} merge ops but the AST definition exposes {arity} columns",
            plan.ops.len()
        )));
    }
    Ok(())
}

/// Apply an append incrementally: compute the AST definition over a database
/// in which `table` holds only `delta_rows`, then merge into the backing
/// rows in `db` under `ast_name`.
pub fn apply_append(
    graph: &QgmGraph,
    plan: &MaintenancePlan,
    ast_name: &str,
    table: &str,
    delta_rows: &[Row],
    db: &mut Database,
) -> Result<(), sumtab_engine::ExecError> {
    // Delta database: same dimension data, fact table = the new rows only.
    let mut delta_db = db.clone();
    delta_db.put_table(table, delta_rows.to_vec());
    let delta = execute(graph, &delta_db)?;

    // Merge into the backing table.
    let mut backing = db.rows(ast_name).to_vec();
    let key_idx: Vec<usize> = plan
        .ops
        .iter()
        .enumerate()
        .filter(|(_, op)| **op == MergeOp::Key)
        .map(|(i, _)| i)
        .collect();
    use std::collections::HashMap;
    let mut index: HashMap<Vec<Value>, usize> = HashMap::with_capacity(backing.len());
    for (i, row) in backing.iter().enumerate() {
        index.insert(key_idx.iter().map(|&k| row[k].clone()).collect(), i);
    }
    for drow in delta {
        let key: Vec<Value> = key_idx.iter().map(|&k| drow[k].clone()).collect();
        match index.get(&key) {
            Some(&i) => {
                let row = &mut backing[i];
                for (c, op) in plan.ops.iter().enumerate() {
                    row[c] = merge_value(*op, &row[c], &drow[c]);
                }
            }
            None => {
                index.insert(key, backing.len());
                backing.push(drow);
            }
        }
    }
    db.put_table(ast_name, backing);
    Ok(())
}

fn merge_value(op: MergeOp, current: &Value, delta: &Value) -> Value {
    match op {
        MergeOp::Key => current.clone(),
        MergeOp::Add => match (current, delta) {
            (Value::Null, d) => d.clone(),
            (c, Value::Null) => c.clone(),
            (c, d) => sumtab_engine::eval::eval_binary(sumtab_qgm::BinOp::Add, c, d),
        },
        MergeOp::Min => match (current, delta) {
            (Value::Null, d) => d.clone(),
            (c, Value::Null) => c.clone(),
            (c, d) => {
                if d < c {
                    d.clone()
                } else {
                    c.clone()
                }
            }
        },
        MergeOp::Max => match (current, delta) {
            (Value::Null, d) => d.clone(),
            (c, Value::Null) => c.clone(),
            (c, d) => {
                if d > c {
                    d.clone()
                } else {
                    c.clone()
                }
            }
        },
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod tests {
    use super::*;
    use sumtab_catalog::Catalog;

    #[test]
    fn merge_value_semantics() {
        use MergeOp::*;
        let i = |n: i64| Value::Int(n);
        assert_eq!(merge_value(Add, &i(3), &i(4)), i(7));
        assert_eq!(merge_value(Add, &Value::Null, &i(4)), i(4));
        assert_eq!(merge_value(Add, &i(3), &Value::Null), i(3));
        assert_eq!(merge_value(Min, &i(3), &i(4)), i(3));
        assert_eq!(merge_value(Min, &i(5), &i(4)), i(4));
        assert_eq!(merge_value(Max, &i(3), &i(4)), i(4));
        assert_eq!(merge_value(Max, &Value::Null, &i(4)), i(4));
        assert_eq!(merge_value(Key, &i(1), &i(9)), i(1), "keys never change");
        // Double sums merge through engine arithmetic.
        assert_eq!(
            merge_value(Add, &Value::Double(1.5), &Value::Double(2.5)),
            Value::Double(4.0)
        );
    }
    use sumtab_parser::parse_query;
    use sumtab_qgm::build_query;

    fn graph_of(sql: &str, cat: &Catalog) -> QgmGraph {
        build_query(&parse_query(sql).unwrap(), cat).unwrap()
    }

    #[test]
    fn plan_detection() {
        let cat = Catalog::credit_card_sample();
        let g = graph_of(
            "select faid, count(*) as c, sum(qty) as s, min(price) as mn, max(price) as mx \
             from trans group by faid",
            &cat,
        );
        let plan = maintenance_plan(&g, "trans").unwrap();
        assert_eq!(
            plan.ops,
            vec![
                MergeOp::Key,
                MergeOp::Add,
                MergeOp::Add,
                MergeOp::Min,
                MergeOp::Max
            ]
        );
    }

    #[test]
    fn non_maintainable_shapes_are_rejected() {
        let cat = Catalog::credit_card_sample();
        for sql in [
            // HAVING filters groups.
            "select faid, count(*) as c from trans group by faid having count(*) > 1",
            // Grand total (no grouping key).
            "select count(*) as c from trans",
            // DISTINCT aggregate.
            "select faid, count(distinct flid) as c from trans group by faid",
            // Scalar subquery.
            "select faid, count(*) as c, (select count(*) from trans) as t \
             from trans group by faid",
            // Pure SPJ (no GROUP BY at root).
            "select tid, qty from trans",
        ] {
            let g = graph_of(sql, &cat);
            assert!(
                maintenance_plan(&g, "trans").is_none(),
                "should be rejected: {sql}"
            );
        }
        // Non-linear: self join on the maintained table.
        let g = graph_of(
            "select t1.faid as f, count(*) as c from trans as t1, trans as t2 \
             where t1.faid = t2.faid group by t1.faid",
            &cat,
        );
        assert!(maintenance_plan(&g, "trans").is_none());
        // Linear in trans, joined dimension is fine.
        let g = graph_of(
            "select state, count(*) as c from trans, loc where flid = lid group by state",
            &cat,
        );
        assert!(maintenance_plan(&g, "trans").is_some());
        // It is also maintainable with respect to the dimension: under RI
        // enforcement a newly appended Loc row matches no existing facts, so
        // the delta aggregation contributes exactly the new join rows.
        assert!(maintenance_plan(&g, "loc").is_some_and(|p| !p.ops.is_empty()));
    }
}
