//! Bounded retry with jittered exponential backoff for transient IO errors.
//!
//! Operational faults on the durability path split into two classes:
//! *transient* OS errors (interrupted syscalls, momentary ENOSPC races,
//! network-filesystem hiccups) that a short retry usually clears, and
//! everything else (injected faults, corruption) where retrying is wasted
//! work. [`with_backoff`] retries only the transient class, sleeping an
//! exponentially-growing, jittered delay between attempts so concurrent
//! retries do not thundering-herd the same device.
//!
//! Jitter comes from an in-tree SplitMix64 over a process-global counter —
//! the workspace builds with zero external dependencies, and cryptographic
//! quality is irrelevant here; decorrelation is the point.

use crate::PersistError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// How a write path retries transient IO errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub attempts: u32,
    /// Base delay before the first retry, in milliseconds.
    pub base_delay_ms: u64,
    /// Upper bound on any single delay, in milliseconds.
    pub max_delay_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 3,
            base_delay_ms: 2,
            max_delay_ms: 50,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries — for tests and for read paths where the
    /// caller handles failure itself.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            attempts: 1,
            base_delay_ms: 0,
            max_delay_ms: 0,
        }
    }

    /// The delay before retry number `retry` (1-based), jittered to
    /// 50–100% of the exponential target. Zero when the policy's base
    /// delay is zero, so tests never sleep.
    fn delay(&self, retry: u32) -> Duration {
        if self.base_delay_ms == 0 {
            return Duration::ZERO;
        }
        let target = self
            .base_delay_ms
            .saturating_mul(1u64 << retry.min(16))
            .min(self.max_delay_ms.max(self.base_delay_ms));
        let j = splitmix64(JITTER_STATE.fetch_add(1, Ordering::Relaxed));
        let jittered = target / 2 + j % (target / 2 + 1);
        Duration::from_millis(jittered)
    }
}

static JITTER_STATE: AtomicU64 = AtomicU64::new(0x9e37_79b9_7f4a_7c15);

/// SplitMix64: a tiny, well-mixed PRNG step (same generator the datagen
/// crate uses for workload synthesis).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Run `op` up to `policy.attempts` times, sleeping a jittered backoff
/// between attempts. Only [transient](PersistError::is_transient) errors are
/// retried; injected faults and corruption return immediately. The attempt
/// number (0-based) is passed to `op` so callers can log or adapt.
pub fn with_backoff<T>(
    policy: RetryPolicy,
    mut op: impl FnMut(u32) -> Result<T, PersistError>,
) -> Result<T, PersistError> {
    let attempts = policy.attempts.max(1);
    let mut last = None;
    for attempt in 0..attempts {
        match op(attempt) {
            Ok(v) => return Ok(v),
            Err(e) => {
                let transient = e.is_transient();
                last = Some(e);
                if !transient || attempt + 1 == attempts {
                    break;
                }
                let d = policy.delay(attempt + 1);
                if !d.is_zero() {
                    std::thread::sleep(d);
                }
            }
        }
    }
    // `last` is always set when we fall through: the loop runs at least
    // once and only breaks after storing an error.
    Err(last.unwrap_or(PersistError::Corrupt {
        what: "retry loop",
        detail: "no attempt ran".into(),
    }))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests assert on fixed inputs
mod tests {
    use super::*;
    use std::io;

    fn transient() -> PersistError {
        PersistError::io(
            "test op",
            &io::Error::new(io::ErrorKind::Interrupted, "EINTR"),
        )
    }

    #[test]
    fn retries_transient_until_success() {
        let mut calls = 0;
        let policy = RetryPolicy {
            attempts: 5,
            base_delay_ms: 0,
            max_delay_ms: 0,
        };
        let out = with_backoff(policy, |_| {
            calls += 1;
            if calls < 3 {
                Err(transient())
            } else {
                Ok(42)
            }
        })
        .unwrap();
        assert_eq!(out, 42);
        assert_eq!(calls, 3);
    }

    #[test]
    fn exhausts_attempts_and_reports_last_error() {
        let mut calls = 0;
        let policy = RetryPolicy {
            attempts: 3,
            base_delay_ms: 0,
            max_delay_ms: 0,
        };
        let err = with_backoff::<()>(policy, |_| {
            calls += 1;
            Err(transient())
        })
        .unwrap_err();
        assert_eq!(calls, 3);
        assert!(err.is_transient());
    }

    #[test]
    fn injected_faults_are_not_retried() {
        let mut calls = 0;
        let err = with_backoff::<()>(RetryPolicy::default(), |_| {
            calls += 1;
            Err(PersistError::injected("wal-append"))
        })
        .unwrap_err();
        assert_eq!(calls, 1, "non-transient errors short-circuit");
        assert_eq!(
            err,
            PersistError::Injected {
                failpoint: "wal-append".into()
            }
        );
    }

    #[test]
    fn delays_are_bounded_and_zero_when_disabled() {
        let p = RetryPolicy {
            attempts: 4,
            base_delay_ms: 2,
            max_delay_ms: 10,
        };
        for retry in 1..10 {
            assert!(p.delay(retry) <= Duration::from_millis(10));
        }
        assert_eq!(RetryPolicy::none().delay(1), Duration::ZERO);
    }
}
